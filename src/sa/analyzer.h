#ifndef LAMP_SA_ANALYZER_H_
#define LAMP_SA_ANALYZER_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/program.h"
#include "obs/json.h"
#include "relational/schema.h"
#include "sa/depgraph.h"
#include "sa/fragment.h"
#include "sa/lint.h"

/// \file
/// The analyzer front end: one call that runs the dependency graph, the
/// Figure 2 fragment classifiers and the lint over a program, and renders
/// the result as a stable JSON document ("lamp.sa.v1") or as text. This
/// is the single entry point shared by tools/lamp_lint, the golden tests
/// and the cross-validation suite, so they cannot drift apart.
///
/// Text mode (`AnalyzeProgramText`) understands the repository's `.dl`
/// convention: one rule per non-empty line, `#`/`%` comments, plus two
/// structured pragmas hidden inside comments (so the same file still
/// parses with plain `ParseProgram`):
///
///   # @edb NAME/ARITY     declare an extensional relation up front
///   # @output NAME        declare an output for the dead-rule pass

namespace lamp::sa {

/// Everything the analyzer knows about one program.
struct ProgramAnalysis {
  std::string name;  // Display name (file stem or catalog id); may be "".

  /// False when some line failed to parse. The analysis then covers only
  /// the rules that did parse; the failures are in `diagnostics` with
  /// pass "parse".
  bool parse_ok = true;

  DatalogProgram program;
  std::vector<int> rule_lines;  // 1-based source line per rule; text mode.

  FragmentReport fragments;
  std::optional<StratumAssignment> strata;

  /// Parse errors (pass "parse"), pragma problems (pass "pragma") and
  /// every lint diagnostic, in that order.
  std::vector<LintDiagnostic> diagnostics;

  std::size_t ErrorCount() const;
  std::size_t WarningCount() const;
  bool HasErrors() const { return ErrorCount() > 0; }
};

struct AnalyzerOptions {
  bool subsumption = true;
  /// Output relation names for the dead-rule pass (merged with any
  /// `# @output` pragmas in text mode).
  std::vector<std::string> outputs;
  /// Statistics-catalog relation names for the no-statistics pass
  /// (lamp_lint --catalog extracts these from a lamp.catalog.v1 file).
  /// The pass runs only when have_catalog is set — an empty catalog is a
  /// valid catalog that knows nothing.
  bool have_catalog = false;
  std::vector<std::string> catalog_relations;
};

/// Analyzes an already-built program.
ProgramAnalysis AnalyzeProgram(const Schema& schema,
                               const DatalogProgram& program,
                               const AnalyzerOptions& options = {});

/// Parses and analyzes program text, tracking source lines and pragmas.
/// Never aborts on malformed input: parse failures become diagnostics.
ProgramAnalysis AnalyzeProgramText(Schema& schema, std::string_view text,
                                   const AnalyzerOptions& options = {});

/// Renders \p analysis as the "lamp.sa.v1" JSON document.
obs::JsonValue AnalysisToJson(const Schema& schema,
                              const ProgramAnalysis& analysis);

/// Renders \p analysis for humans (one line per fact/diagnostic).
std::string RenderAnalysisText(const Schema& schema,
                               const ProgramAnalysis& analysis);

}  // namespace lamp::sa

#endif  // LAMP_SA_ANALYZER_H_
