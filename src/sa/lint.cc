#include "sa/lint.h"

#include <map>
#include <optional>
#include <set>
#include <string>

#include "cq/containment.h"
#include "sa/depgraph.h"

namespace lamp::sa {

std::string_view LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kNote:
      return "note";
  }
  return "?";
}

namespace {

std::string RenderAtom(const Schema& schema, const ConjunctiveQuery& rule,
                       const Atom& atom) {
  std::string out(schema.NameOf(atom.relation));
  out += "(";
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) out += ",";
    const Term& t = atom.terms[i];
    out += t.IsVar() ? rule.VarName(t.var) : std::to_string(t.constant.v);
  }
  out += ")";
  return out;
}

std::string RenderTerm(const ConjunctiveQuery& rule, const Term& t) {
  return t.IsVar() ? rule.VarName(t.var) : std::to_string(t.constant.v);
}

void Emit(std::vector<LintDiagnostic>& out, LintSeverity severity,
          std::string_view pass, int rule_index, std::string message) {
  LintDiagnostic d;
  d.severity = severity;
  d.pass = std::string(pass);
  d.rule_index = rule_index;
  d.message = std::move(message);
  out.push_back(std::move(d));
}

}  // namespace

std::vector<LintDiagnostic> LintProgram(const Schema& schema,
                                        const DatalogProgram& program,
                                        const LintOptions& options) {
  std::vector<LintDiagnostic> out;
  const std::vector<ConjunctiveQuery>& rules = program.rules();

  // -- safety (range restriction) -----------------------------------------
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const ConjunctiveQuery& rule = rules[k];
    const std::set<VarId> bound = rule.BodyVars();
    const int ki = static_cast<int>(k);
    for (const Term& t : rule.head().terms) {
      if (t.IsVar() && bound.count(t.var) == 0) {
        Emit(out, LintSeverity::kError, "safety", ki,
             "head variable '" + rule.VarName(t.var) +
                 "' is not bound by any positive body atom "
                 "(range restriction)");
      }
    }
    for (const Atom& atom : rule.negated()) {
      for (const Term& t : atom.terms) {
        if (t.IsVar() && bound.count(t.var) == 0) {
          Emit(out, LintSeverity::kError, "safety", ki,
               "variable '" + rule.VarName(t.var) + "' of negated atom !" +
                   RenderAtom(schema, rule, atom) +
                   " is not bound by any positive body atom");
        }
      }
    }
    for (const auto& [a, b] : rule.inequalities()) {
      for (const Term& t : {a, b}) {
        if (t.IsVar() && bound.count(t.var) == 0) {
          Emit(out, LintSeverity::kError, "safety", ki,
               "variable '" + rule.VarName(t.var) + "' of inequality " +
                   RenderTerm(rule, a) + " != " + RenderTerm(rule, b) +
                   " is not bound by any positive body atom");
        }
      }
    }
  }

  // -- stratification ------------------------------------------------------
  const DependencyGraph graph(program);
  if (!graph.IsStratifiable()) {
    const std::optional<NegationCycle> cycle = graph.FindNegationCycle();
    Emit(out, LintSeverity::kError, "stratification",
         cycle.has_value() ? static_cast<int>(cycle->rule_index) : -1,
         cycle.has_value()
             ? "program does not stratify: " +
                   DescribeNegationCycle(schema, *cycle) +
                   " — only the well-founded semantics applies"
             : "program does not stratify");
  }

  // -- unsatisfiable-rule --------------------------------------------------
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const ConjunctiveQuery& rule = rules[k];
    const int ki = static_cast<int>(k);
    bool flagged = false;
    for (const Atom& neg : rule.negated()) {
      for (const Atom& pos : rule.body()) {
        if (pos == neg && !flagged) {
          Emit(out, LintSeverity::kWarning, "unsatisfiable-rule", ki,
               "rule both asserts and negates " +
                   RenderAtom(schema, rule, pos) + " — it can never fire");
          flagged = true;
        }
      }
    }
    for (const auto& [a, b] : rule.inequalities()) {
      if (a == b && !flagged) {
        Emit(out, LintSeverity::kWarning, "unsatisfiable-rule", ki,
             "inequality " + RenderTerm(rule, a) + " != " +
                 RenderTerm(rule, b) + " can never hold — the rule never "
                 "fires");
        flagged = true;
      }
    }
  }

  // -- duplicate-atom ------------------------------------------------------
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const ConjunctiveQuery& rule = rules[k];
    const int ki = static_cast<int>(k);
    const auto scan = [&](const std::vector<Atom>& atoms, bool negated) {
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        for (std::size_t j = i + 1; j < atoms.size(); ++j) {
          if (atoms[i] == atoms[j]) {
            Emit(out, LintSeverity::kWarning, "duplicate-atom", ki,
                 std::string(negated ? "negated atom !" : "atom ") +
                     RenderAtom(schema, rule, atoms[i]) +
                     " is repeated in the body (positions " +
                     std::to_string(i) + " and " + std::to_string(j) + ")");
          }
        }
      }
    };
    scan(rule.body(), false);
    scan(rule.negated(), true);
  }

  // -- subsumed-rule -------------------------------------------------------
  if (options.subsumption) {
    // Rule i is redundant when some rule j with the same head relation
    // contains it as a CQ: everything i derives, j derives too, so the
    // immediate-consequence operator (and hence the fixpoint) is
    // unchanged by dropping i. Negated rules are skipped (containment.h
    // is exact only without negation), as are unsafe rules (no canonical
    // database).
    const auto eligible = [](const ConjunctiveQuery& rule) {
      return rule.negated().empty() && !rule.SafetyViolation().has_value();
    };
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (!eligible(rules[i])) continue;
      for (std::size_t j = 0; j < rules.size(); ++j) {
        if (i == j || !eligible(rules[j])) continue;
        if (rules[i].head().relation != rules[j].head().relation) continue;
        if (!IsContainedIn(rules[i], rules[j])) continue;
        // For equivalent pairs flag only the later rule, so exactly one
        // of the two is reported.
        if (IsContainedIn(rules[j], rules[i]) && j > i) continue;
        Emit(out, LintSeverity::kWarning, "subsumed-rule",
             static_cast<int>(i),
             "rule " + std::to_string(i) + " is subsumed by rule " +
                 std::to_string(j) + " — removing it does not change the "
                 "fixpoint");
        break;
      }
    }
  }

  // -- unused-relation -----------------------------------------------------
  for (RelationId rel : options.declared_relations) {
    if (graph.used_relations().count(rel) > 0) continue;
    Emit(out, LintSeverity::kWarning, "unused-relation", -1,
         "relation " + schema.NameOf(rel) + "/" +
             std::to_string(schema.ArityOf(rel)) +
             " is declared but never used by any rule");
  }

  // -- dead-rule -----------------------------------------------------------
  if (!options.outputs.empty()) {
    for (std::size_t k : graph.UnreachableRules(options.outputs)) {
      const ConjunctiveQuery& rule = rules[k];
      Emit(out, LintSeverity::kWarning, "dead-rule", static_cast<int>(k),
           "rule derives " + schema.NameOf(rule.head().relation) +
               ", which cannot reach any declared output relation");
    }
  }

  // -- cross-product -------------------------------------------------------
  // Components of the positive body under shared variables; constants
  // never connect atoms, but negated atoms and inequalities do (their
  // variables must be co-located too, so `ADom(x), ADom(y), !TC(x,y)` is
  // connected, not a cross product). Two or more components mean the
  // rule joins with no join key — the same hazard the sa/plan cost model
  // raises for the plain queries it routes.
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const ConjunctiveQuery& rule = rules[k];
    const std::vector<Atom>& body = rule.body();
    if (body.size() < 2) continue;
    std::vector<std::size_t> parent(body.size());
    for (std::size_t a = 0; a < body.size(); ++a) parent[a] = a;
    const auto find = [&parent](std::size_t a) {
      while (parent[a] != a) {
        parent[a] = parent[parent[a]];
        a = parent[a];
      }
      return a;
    };
    std::map<VarId, std::size_t> first_atom;
    for (std::size_t a = 0; a < body.size(); ++a) {
      for (const Term& term : body[a].terms) {
        if (!term.IsVar()) continue;
        auto [it, inserted] = first_atom.emplace(term.var, a);
        if (!inserted) parent[find(a)] = find(it->second);
      }
    }
    // Negative literals union every positive atom their variables touch.
    const auto connect_through = [&](const Term& term,
                                     std::optional<std::size_t>& anchor) {
      if (!term.IsVar()) return;
      const auto it = first_atom.find(term.var);
      if (it == first_atom.end()) return;  // Unsafe rule; safety flags it.
      if (anchor.has_value()) {
        parent[find(*anchor)] = find(it->second);
      } else {
        anchor = it->second;
      }
    };
    for (const Atom& neg : rule.negated()) {
      std::optional<std::size_t> anchor;
      for (const Term& term : neg.terms) connect_through(term, anchor);
    }
    for (const auto& [a, b] : rule.inequalities()) {
      std::optional<std::size_t> anchor;
      connect_through(a, anchor);
      connect_through(b, anchor);
    }
    std::set<std::size_t> roots;
    for (std::size_t a = 0; a < body.size(); ++a) roots.insert(find(a));
    if (roots.size() < 2) continue;
    std::string groups;
    for (const std::size_t root : roots) {
      if (!groups.empty()) groups += " x ";
      groups += "{";
      bool first = true;
      for (std::size_t a = 0; a < body.size(); ++a) {
        if (find(a) != root) continue;
        if (!first) groups += ", ";
        groups += RenderAtom(schema, rule, body[a]);
        first = false;
      }
      groups += "}";
    }
    Emit(out, LintSeverity::kWarning, "cross-product", static_cast<int>(k),
         "body splits into " + std::to_string(roots.size()) +
             " components sharing no variable (" + groups +
             ") — the join is a cross product with no key to route on");
  }

  // -- no-statistics -------------------------------------------------------
  if (options.have_catalog) {
    const std::set<RelationId> known(options.catalog_relations.begin(),
                                     options.catalog_relations.end());
    // IDB relations (some rule's head) have derived cardinalities no
    // catalog carries; only extensional atoms need statistics.
    std::set<RelationId> idb;
    for (const ConjunctiveQuery& rule : rules) {
      idb.insert(rule.head().relation);
    }
    for (std::size_t k = 0; k < rules.size(); ++k) {
      const ConjunctiveQuery& rule = rules[k];
      std::set<RelationId> flagged;  // Once per relation per rule.
      for (const Atom& atom : rule.body()) {
        if (known.count(atom.relation) > 0 ||
            idb.count(atom.relation) > 0) {
          continue;
        }
        if (!flagged.insert(atom.relation).second) continue;
        Emit(out, LintSeverity::kWarning, "no-statistics",
             static_cast<int>(k),
             "no cardinality for " + schema.NameOf(atom.relation) + "/" +
                 std::to_string(schema.ArityOf(atom.relation)) +
                 " in the statistics catalog — the planner treats the "
                 "atom as empty");
      }
    }
  }

  return out;
}

}  // namespace lamp::sa
