#include "sa/lint.h"

#include <optional>
#include <set>
#include <string>

#include "cq/containment.h"
#include "sa/depgraph.h"

namespace lamp::sa {

std::string_view LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kNote:
      return "note";
  }
  return "?";
}

namespace {

std::string RenderAtom(const Schema& schema, const ConjunctiveQuery& rule,
                       const Atom& atom) {
  std::string out(schema.NameOf(atom.relation));
  out += "(";
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) out += ",";
    const Term& t = atom.terms[i];
    out += t.IsVar() ? rule.VarName(t.var) : std::to_string(t.constant.v);
  }
  out += ")";
  return out;
}

std::string RenderTerm(const ConjunctiveQuery& rule, const Term& t) {
  return t.IsVar() ? rule.VarName(t.var) : std::to_string(t.constant.v);
}

void Emit(std::vector<LintDiagnostic>& out, LintSeverity severity,
          std::string_view pass, int rule_index, std::string message) {
  LintDiagnostic d;
  d.severity = severity;
  d.pass = std::string(pass);
  d.rule_index = rule_index;
  d.message = std::move(message);
  out.push_back(std::move(d));
}

}  // namespace

std::vector<LintDiagnostic> LintProgram(const Schema& schema,
                                        const DatalogProgram& program,
                                        const LintOptions& options) {
  std::vector<LintDiagnostic> out;
  const std::vector<ConjunctiveQuery>& rules = program.rules();

  // -- safety (range restriction) -----------------------------------------
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const ConjunctiveQuery& rule = rules[k];
    const std::set<VarId> bound = rule.BodyVars();
    const int ki = static_cast<int>(k);
    for (const Term& t : rule.head().terms) {
      if (t.IsVar() && bound.count(t.var) == 0) {
        Emit(out, LintSeverity::kError, "safety", ki,
             "head variable '" + rule.VarName(t.var) +
                 "' is not bound by any positive body atom "
                 "(range restriction)");
      }
    }
    for (const Atom& atom : rule.negated()) {
      for (const Term& t : atom.terms) {
        if (t.IsVar() && bound.count(t.var) == 0) {
          Emit(out, LintSeverity::kError, "safety", ki,
               "variable '" + rule.VarName(t.var) + "' of negated atom !" +
                   RenderAtom(schema, rule, atom) +
                   " is not bound by any positive body atom");
        }
      }
    }
    for (const auto& [a, b] : rule.inequalities()) {
      for (const Term& t : {a, b}) {
        if (t.IsVar() && bound.count(t.var) == 0) {
          Emit(out, LintSeverity::kError, "safety", ki,
               "variable '" + rule.VarName(t.var) + "' of inequality " +
                   RenderTerm(rule, a) + " != " + RenderTerm(rule, b) +
                   " is not bound by any positive body atom");
        }
      }
    }
  }

  // -- stratification ------------------------------------------------------
  const DependencyGraph graph(program);
  if (!graph.IsStratifiable()) {
    const std::optional<NegationCycle> cycle = graph.FindNegationCycle();
    Emit(out, LintSeverity::kError, "stratification",
         cycle.has_value() ? static_cast<int>(cycle->rule_index) : -1,
         cycle.has_value()
             ? "program does not stratify: " +
                   DescribeNegationCycle(schema, *cycle) +
                   " — only the well-founded semantics applies"
             : "program does not stratify");
  }

  // -- unsatisfiable-rule --------------------------------------------------
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const ConjunctiveQuery& rule = rules[k];
    const int ki = static_cast<int>(k);
    bool flagged = false;
    for (const Atom& neg : rule.negated()) {
      for (const Atom& pos : rule.body()) {
        if (pos == neg && !flagged) {
          Emit(out, LintSeverity::kWarning, "unsatisfiable-rule", ki,
               "rule both asserts and negates " +
                   RenderAtom(schema, rule, pos) + " — it can never fire");
          flagged = true;
        }
      }
    }
    for (const auto& [a, b] : rule.inequalities()) {
      if (a == b && !flagged) {
        Emit(out, LintSeverity::kWarning, "unsatisfiable-rule", ki,
             "inequality " + RenderTerm(rule, a) + " != " +
                 RenderTerm(rule, b) + " can never hold — the rule never "
                 "fires");
        flagged = true;
      }
    }
  }

  // -- duplicate-atom ------------------------------------------------------
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const ConjunctiveQuery& rule = rules[k];
    const int ki = static_cast<int>(k);
    const auto scan = [&](const std::vector<Atom>& atoms, bool negated) {
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        for (std::size_t j = i + 1; j < atoms.size(); ++j) {
          if (atoms[i] == atoms[j]) {
            Emit(out, LintSeverity::kWarning, "duplicate-atom", ki,
                 std::string(negated ? "negated atom !" : "atom ") +
                     RenderAtom(schema, rule, atoms[i]) +
                     " is repeated in the body (positions " +
                     std::to_string(i) + " and " + std::to_string(j) + ")");
          }
        }
      }
    };
    scan(rule.body(), false);
    scan(rule.negated(), true);
  }

  // -- subsumed-rule -------------------------------------------------------
  if (options.subsumption) {
    // Rule i is redundant when some rule j with the same head relation
    // contains it as a CQ: everything i derives, j derives too, so the
    // immediate-consequence operator (and hence the fixpoint) is
    // unchanged by dropping i. Negated rules are skipped (containment.h
    // is exact only without negation), as are unsafe rules (no canonical
    // database).
    const auto eligible = [](const ConjunctiveQuery& rule) {
      return rule.negated().empty() && !rule.SafetyViolation().has_value();
    };
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (!eligible(rules[i])) continue;
      for (std::size_t j = 0; j < rules.size(); ++j) {
        if (i == j || !eligible(rules[j])) continue;
        if (rules[i].head().relation != rules[j].head().relation) continue;
        if (!IsContainedIn(rules[i], rules[j])) continue;
        // For equivalent pairs flag only the later rule, so exactly one
        // of the two is reported.
        if (IsContainedIn(rules[j], rules[i]) && j > i) continue;
        Emit(out, LintSeverity::kWarning, "subsumed-rule",
             static_cast<int>(i),
             "rule " + std::to_string(i) + " is subsumed by rule " +
                 std::to_string(j) + " — removing it does not change the "
                 "fixpoint");
        break;
      }
    }
  }

  // -- unused-relation -----------------------------------------------------
  for (RelationId rel : options.declared_relations) {
    if (graph.used_relations().count(rel) > 0) continue;
    Emit(out, LintSeverity::kWarning, "unused-relation", -1,
         "relation " + schema.NameOf(rel) + "/" +
             std::to_string(schema.ArityOf(rel)) +
             " is declared but never used by any rule");
  }

  // -- dead-rule -----------------------------------------------------------
  if (!options.outputs.empty()) {
    for (std::size_t k : graph.UnreachableRules(options.outputs)) {
      const ConjunctiveQuery& rule = rules[k];
      Emit(out, LintSeverity::kWarning, "dead-rule", static_cast<int>(k),
           "rule derives " + schema.NameOf(rule.head().relation) +
               ", which cannot reach any declared output relation");
    }
  }

  return out;
}

}  // namespace lamp::sa
