#include "sa/fragment.h"

#include <map>
#include <numeric>

#include "common/check.h"

namespace lamp::sa {

std::string_view FragmentName(Fragment fragment) {
  switch (fragment) {
    case Fragment::kNegationFree:
      return "negation_free";
    case Fragment::kSemiPositive:
      return "semi_positive";
    case Fragment::kSemiConnected:
      return "semi_connected";
  }
  return "?";
}

MonotonicityKind FragmentGuarantee(Fragment fragment) {
  switch (fragment) {
    case Fragment::kNegationFree:
      return MonotonicityKind::kPlain;
    case Fragment::kSemiPositive:
      return MonotonicityKind::kDomainDistinct;
    case Fragment::kSemiConnected:
      return MonotonicityKind::kDomainDisjoint;
  }
  return MonotonicityKind::kPlain;
}

std::string_view FragmentClassName(Fragment fragment) {
  switch (fragment) {
    case Fragment::kNegationFree:
      return "M";
    case Fragment::kSemiPositive:
      return "Mdistinct";
    case Fragment::kSemiConnected:
      return "Mdisjoint";
  }
  return "?";
}

std::vector<std::size_t> BodyAtomComponents(const ConjunctiveQuery& rule) {
  const std::vector<Atom>& body = rule.body();
  std::vector<std::size_t> parent(body.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::map<VarId, std::size_t> owner;
  for (std::size_t i = 0; i < body.size(); ++i) {
    for (const Term& t : body[i].terms) {
      if (!t.IsVar()) continue;
      auto [it, inserted] = owner.emplace(t.var, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  std::vector<std::size_t> roots(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) roots[i] = find(i);
  return roots;
}

namespace {

void RefuteNegationFree(const Schema& schema, const DatalogProgram& program,
                        FragmentVerdict& verdict) {
  const std::vector<ConjunctiveQuery>& rules = program.rules();
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const std::vector<Atom>& negated = rules[k].negated();
    for (std::size_t i = 0; i < negated.size(); ++i) {
      FragmentRefutation r;
      r.rule_index = k;
      r.atom_index = static_cast<int>(i);
      r.in_negated = true;
      r.reason = "rule " + std::to_string(k) + " negates " +
                 schema.NameOf(negated[i].relation);
      verdict.refutations.push_back(std::move(r));
    }
  }
}

void RefuteSemiPositive(const Schema& schema, const DatalogProgram& program,
                        FragmentVerdict& verdict) {
  const std::set<RelationId> idb = program.IdbRelations();
  const std::vector<ConjunctiveQuery>& rules = program.rules();
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const std::vector<Atom>& negated = rules[k].negated();
    for (std::size_t i = 0; i < negated.size(); ++i) {
      if (idb.count(negated[i].relation) == 0) continue;
      FragmentRefutation r;
      r.rule_index = k;
      r.atom_index = static_cast<int>(i);
      r.in_negated = true;
      r.reason = "rule " + std::to_string(k) +
                 " negates the intensional relation " +
                 schema.NameOf(negated[i].relation);
      verdict.refutations.push_back(std::move(r));
    }
  }
}

void RefuteSemiConnected(const Schema& schema, const DatalogProgram& program,
                         const std::optional<StratumAssignment>& strata,
                         const std::optional<NegationCycle>& cycle,
                         FragmentVerdict& verdict) {
  if (!strata.has_value()) {
    FragmentRefutation r;
    r.rule_index = cycle.has_value() ? cycle->rule_index : 0;
    r.atom_index = -1;
    r.reason = cycle.has_value()
                   ? "program does not stratify: " +
                         DescribeNegationCycle(schema, *cycle)
                   : "program does not stratify";
    verdict.refutations.push_back(std::move(r));
    return;
  }
  const std::vector<ConjunctiveQuery>& rules = program.rules();
  for (std::size_t s = 0; s + 1 < strata->rule_strata.size(); ++s) {
    for (std::size_t k : strata->rule_strata[s]) {
      const std::vector<std::size_t> roots = BodyAtomComponents(rules[k]);
      if (roots.empty()) continue;
      for (std::size_t i = 1; i < roots.size(); ++i) {
        if (roots[i] == roots[0]) continue;
        FragmentRefutation r;
        r.rule_index = k;
        r.atom_index = static_cast<int>(i);
        r.in_negated = false;
        r.reason = "rule " + std::to_string(k) + " (stratum " +
                   std::to_string(s) + " of " +
                   std::to_string(strata->rule_strata.size()) +
                   ", not the last) is disconnected: atom " +
                   schema.NameOf(rules[k].body()[i].relation) +
                   " shares no variable chain with atom " +
                   schema.NameOf(rules[k].body()[0].relation);
        verdict.refutations.push_back(std::move(r));
        break;  // One refutation per disconnected rule.
      }
    }
  }
}

}  // namespace

FragmentReport ClassifyFragments(const Schema& schema,
                                 const DatalogProgram& program) {
  FragmentReport report;
  const DependencyGraph graph(program);
  const std::optional<StratumAssignment> strata = graph.Stratify();
  report.stratified = strata.has_value();
  if (!report.stratified) report.cycle = graph.FindNegationCycle();

  for (Fragment fragment : kAllFragments) {
    FragmentVerdict& verdict =
        report.verdicts[static_cast<std::size_t>(fragment)];
    verdict.fragment = fragment;
    switch (fragment) {
      case Fragment::kNegationFree:
        RefuteNegationFree(schema, program, verdict);
        break;
      case Fragment::kSemiPositive:
        RefuteSemiPositive(schema, program, verdict);
        break;
      case Fragment::kSemiConnected:
        RefuteSemiConnected(schema, program, strata, report.cycle, verdict);
        break;
    }
    verdict.certified = verdict.refutations.empty();
  }
  // Negation-free and semi-positive programs must stratify (negation-free
  // trivially; semi-positive because IDB negation is what cycles need) —
  // cross-check the two analyses agree.
  if (report.Verdict(Fragment::kSemiPositive).certified) {
    LAMP_CHECK(report.stratified);
  }

  for (Fragment fragment : kAllFragments) {
    if (report.Verdict(fragment).certified) {
      report.strongest = fragment;
      report.guarantee = FragmentGuarantee(fragment);
      break;
    }
  }
  return report;
}

}  // namespace lamp::sa
