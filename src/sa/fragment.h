#ifndef LAMP_SA_FRAGMENT_H_
#define LAMP_SA_FRAGMENT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/monotone.h"
#include "datalog/program.h"
#include "sa/depgraph.h"

/// \file
/// Syntactic fragment classifiers for the Figure 2 hierarchy. Membership
/// in each fragment is decidable from the program text and *certifies* a
/// semantic monotonicity class:
///
///   negation-free Datalog   => M          (CALM / Theorem 5.3: F0 = A0)
///   semi-positive Datalog   => Mdistinct  (Theorem 5.8:  F1 = A1)
///   semi-connected Datalog  => Mdisjoint  (Theorem 5.12: F2 = A2)
///
/// This is the certify side of the certify-vs-falsify contract: a
/// certificate is a proof (every program in the fragment has the
/// property, for all instances), while the dynamic checkers in
/// datalog/monotone.h and fault/confluence.h can only falsify over a
/// bounded instance space. The converse direction is a precision gap by
/// design — a program outside every fragment may still be semantically
/// monotone (the fragments are sound, not complete) — which is why every
/// refutation carries the exact rule and atom so the cross-validation
/// suite can pair it with a dynamic witness or a documented gap.

namespace lamp::sa {

/// The syntactic fragments, strongest certificate first.
enum class Fragment : std::uint8_t {
  kNegationFree = 0,
  kSemiPositive = 1,
  kSemiConnected = 2,
};

inline constexpr std::array<Fragment, 3> kAllFragments = {
    Fragment::kNegationFree, Fragment::kSemiPositive,
    Fragment::kSemiConnected};

/// "negation_free", "semi_positive", "semi_connected".
std::string_view FragmentName(Fragment fragment);

/// The monotonicity class the fragment certifies (M / Mdistinct /
/// Mdisjoint as MonotonicityKind::kPlain / kDomainDistinct /
/// kDomainDisjoint).
MonotonicityKind FragmentGuarantee(Fragment fragment);

/// "M", "Mdistinct", "Mdisjoint".
std::string_view FragmentClassName(Fragment fragment);

/// Why a program is NOT in a fragment: the offending rule and atom.
struct FragmentRefutation {
  std::size_t rule_index = 0;
  /// Index into rule.negated() when in_negated, else into rule.body();
  /// -1 for program-level reasons (e.g. a negation cycle).
  int atom_index = -1;
  bool in_negated = false;
  std::string reason;
};

/// Verdict for one fragment: a certificate or the refutations.
struct FragmentVerdict {
  Fragment fragment = Fragment::kNegationFree;
  bool certified = false;
  std::vector<FragmentRefutation> refutations;
};

/// The full Figure 2 classification of one program.
struct FragmentReport {
  bool stratified = false;
  std::optional<NegationCycle> cycle;  // Set when !stratified.
  std::array<FragmentVerdict, 3> verdicts;
  /// First certified fragment in kAllFragments order (strongest
  /// guarantee), and the monotonicity class it certifies.
  std::optional<Fragment> strongest;
  std::optional<MonotonicityKind> guarantee;

  const FragmentVerdict& Verdict(Fragment fragment) const {
    return verdicts[static_cast<std::size_t>(fragment)];
  }
};

/// Classifies \p program against every fragment. \p schema renders
/// relation names inside refutation messages.
FragmentReport ClassifyFragments(const Schema& schema,
                                 const DatalogProgram& program);

/// Union-find root per positive body atom of \p rule: two atoms share a
/// root iff they are connected through shared variables. The refutation
/// detail behind DatalogProgram::IsConnectedRule.
std::vector<std::size_t> BodyAtomComponents(const ConjunctiveQuery& rule);

}  // namespace lamp::sa

#endif  // LAMP_SA_FRAGMENT_H_
