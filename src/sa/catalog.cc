#include "sa/catalog.h"

#include "sa/analyzer.h"

namespace lamp::sa {

namespace {

// clang-format off
constexpr std::string_view kTcText =
    "# transitive closure of E: negation-free Datalog, class M (CALM)\n"
    "# @edb E/2\n"
    "# @output TC\n"
    "TC(x,y) <- E(x,y)\n"
    "TC(x,y) <- TC(x,z), E(z,y)\n";

constexpr std::string_view kTriangleText =
    "# triangle listing: a plain conjunctive query, class M\n"
    "# @edb E/2\n"
    "# @output H\n"
    "H(x,y,z) <- E(x,y), E(y,z), E(z,x)\n";

constexpr std::string_view kOpenTriangleText =
    "# open triangle: negation on the extensional E only, so semi-positive\n"
    "# (class Mdistinct) but not monotone\n"
    "# @edb E/2\n"
    "# @output H\n"
    "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)\n";

constexpr std::string_view kNotTcText =
    "# complement of transitive closure: negates the intensional TC, but\n"
    "# stratifies and every non-final stratum is connected, so\n"
    "# semi-connected (class Mdisjoint)\n"
    "# @edb E/2\n"
    "# @output OUT\n"
    "TC(x,y) <- E(x,y)\n"
    "TC(x,y) <- TC(x,z), TC(z,y)\n"
    "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)\n";

constexpr std::string_view kNoTriangleText =
    "# no-triangle: T marks every adom value as soon as any triangle\n"
    "# exists; NoT is its complement. Stratifies, but the T rule sits in a\n"
    "# non-final stratum and is disconnected (the ADom(u) atom shares no\n"
    "# variable with the triangle), so the program is outside all three\n"
    "# fragments - and indeed not even domain-disjoint-monotone.\n"
    "# @edb E/2\n"
    "# @output NoT\n"
    "T(u) <- E(x,y), E(y,z), E(z,x), ADom(u)\n"
    "NoT(u) <- ADom(u), !T(u)\n";

constexpr std::string_view kWinMoveText =
    "# win-move: negation through recursion. No stratification exists;\n"
    "# only the well-founded semantics (datalog/wellfounded.h) applies.\n"
    "# @edb Move/2\n"
    "# @output Win\n"
    "Win(x) <- Move(x,y), !Win(y)\n";
// clang-format on

std::vector<CatalogEntry> BuildCatalog() {
  std::vector<CatalogEntry> catalog;

  CatalogEntry tc;
  tc.id = "tc";
  tc.title = "transitive closure (negation-free => M)";
  tc.text = kTcText;
  tc.expected_fragment = Fragment::kNegationFree;
  tc.domain_size = 2;
  tc.extra_values = 1;
  tc.max_facts = 3;
  tc.expected_monotone = {true, true, true};
  catalog.push_back(tc);

  CatalogEntry triangle;
  triangle.id = "triangle";
  triangle.title = "triangle listing (negation-free => M)";
  triangle.text = kTriangleText;
  triangle.expected_fragment = Fragment::kNegationFree;
  triangle.domain_size = 2;
  triangle.extra_values = 1;
  triangle.max_facts = 3;
  triangle.expected_monotone = {true, true, true};
  catalog.push_back(triangle);

  CatalogEntry open_triangle;
  open_triangle.id = "open_triangle";
  open_triangle.title = "open triangle (semi-positive => Mdistinct)";
  open_triangle.text = kOpenTriangleText;
  open_triangle.expected_fragment = Fragment::kSemiPositive;
  open_triangle.domain_size = 2;
  open_triangle.extra_values = 2;
  open_triangle.max_facts = 3;
  open_triangle.expected_monotone = {false, true, true};
  catalog.push_back(open_triangle);

  CatalogEntry not_tc;
  not_tc.id = "not_tc";
  not_tc.title = "complement of TC (semi-connected => Mdisjoint)";
  not_tc.text = kNotTcText;
  not_tc.expected_fragment = Fragment::kSemiConnected;
  not_tc.domain_size = 2;
  not_tc.extra_values = 1;
  not_tc.max_facts = 2;
  not_tc.expected_monotone = {false, false, true};
  catalog.push_back(not_tc);

  CatalogEntry no_triangle;
  no_triangle.id = "no_triangle";
  no_triangle.title = "no-triangle (outside every fragment, not Mdisjoint)";
  no_triangle.text = kNoTriangleText;
  no_triangle.expected_fragment = std::nullopt;
  no_triangle.domain_size = 2;
  no_triangle.extra_values = 3;
  no_triangle.max_facts = 3;
  no_triangle.expected_monotone = {false, false, false};
  catalog.push_back(no_triangle);

  CatalogEntry win_move;
  win_move.id = "win_move";
  win_move.title = "win-move (unstratifiable: no fragment applies)";
  win_move.text = kWinMoveText;
  win_move.expected_fragment = std::nullopt;
  win_move.expected_stratified = false;
  win_move.run_falsifier = false;
  catalog.push_back(win_move);

  return catalog;
}

}  // namespace

const std::vector<CatalogEntry>& ExampleCatalog() {
  static const std::vector<CatalogEntry> catalog = BuildCatalog();
  return catalog;
}

const CatalogEntry* FindCatalogEntry(std::string_view id) {
  for (const CatalogEntry& entry : ExampleCatalog()) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

std::vector<std::string> CheckCatalogExpectations(
    const CatalogEntry& entry, const ProgramAnalysis& analysis) {
  std::vector<std::string> mismatches;
  if (!analysis.parse_ok) {
    mismatches.push_back("catalog text failed to parse");
  }
  const bool stratified = analysis.strata.has_value();
  if (stratified != entry.expected_stratified) {
    mismatches.push_back(std::string("expected stratified=") +
                         (entry.expected_stratified ? "yes" : "no") +
                         ", analyzer says " + (stratified ? "yes" : "no"));
  }
  if (analysis.fragments.strongest != entry.expected_fragment) {
    const std::string expected =
        entry.expected_fragment.has_value()
            ? std::string(FragmentName(*entry.expected_fragment))
            : std::string("none");
    const std::string got =
        analysis.fragments.strongest.has_value()
            ? std::string(FragmentName(*analysis.fragments.strongest))
            : std::string("none");
    mismatches.push_back("expected strongest fragment " + expected +
                         ", analyzer says " + got);
  }
  for (const LintDiagnostic& d : analysis.diagnostics) {
    if (d.severity != LintSeverity::kError) continue;
    // The one error an entry may expect: its documented negation cycle.
    if (d.pass == "stratification" && !entry.expected_stratified) continue;
    mismatches.push_back("unexpected " + d.pass +
                         " error: " + d.message);
  }
  return mismatches;
}

}  // namespace lamp::sa
