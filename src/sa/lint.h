#ifndef LAMP_SA_LINT_H_
#define LAMP_SA_LINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/program.h"
#include "relational/schema.h"

/// \file
/// Safety / range-restriction and redundancy lint for Datalog programs.
///
/// Passes (each diagnostic names its pass, so tooling can filter):
///   safety             head / negated / inequality variable not bound by
///                      a positive body atom (range restriction) — error
///   stratification     negation cycle, with the concrete witness — error
///   unsatisfiable-rule an atom both asserted and negated, or x != x —
///                      the rule can never fire — warning
///   duplicate-atom     an identical atom repeated in one body — warning
///   subsumed-rule      rule i contained in rule j (cq/containment.h) —
///                      removing i cannot change the fixpoint — warning
///   unused-relation    a declared relation no rule mentions — warning
///   dead-rule          with declared outputs: the rule's head cannot
///                      reach any output in the dependency graph — warning
///   cross-product      a rule body splits into components sharing no
///                      variable: the join is a cross product, there is no
///                      join key to route on and every one-round
///                      distribution strategy degenerates to broadcast
///                      (the sa/plan cost model raises the same hazard) —
///                      warning
///   no-statistics      with a statistics catalog: a positive body atom
///                      over a relation the catalog has no cardinality
///                      for — the planner would treat it as empty —
///                      warning
///
/// Errors mean the program has no (stratified) semantics as written;
/// warnings mean it computes what it computes wastefully or suspiciously.

namespace lamp::sa {

enum class LintSeverity : std::uint8_t { kError, kWarning, kNote };

std::string_view LintSeverityName(LintSeverity severity);

struct LintDiagnostic {
  LintSeverity severity = LintSeverity::kWarning;
  std::string pass;
  int rule_index = -1;  // -1: program-level.
  int line = -1;        // 1-based source line when known (text mode).
  std::string message;
};

struct LintOptions {
  /// Run the containment-based subsumption pass (NP-hard per pair; fine
  /// for the rule counts real programs have, switchable for the
  /// synthetic giants the bench generates).
  bool subsumption = true;
  /// Output relations for the dead-rule pass (empty: pass is skipped —
  /// without declared outputs every top-level relation looks like one).
  std::vector<RelationId> outputs;
  /// Relations that should occur in the program (e.g. @edb declarations);
  /// any that do not triggers unused-relation.
  std::vector<RelationId> declared_relations;
  /// Statistics catalog for the no-statistics pass: when true,
  /// `catalog_relations` holds every relation the catalog has a
  /// cardinality for and body atoms over any other relation are flagged.
  /// When false (no catalog supplied) the pass is skipped.
  bool have_catalog = false;
  std::vector<RelationId> catalog_relations;
};

/// Runs every pass over \p program. Diagnostics are ordered by pass (in
/// the order documented above), then by rule index — deterministic for
/// golden files. Line numbers are filled by the caller (analyzer.h) when
/// a source mapping exists.
std::vector<LintDiagnostic> LintProgram(const Schema& schema,
                                        const DatalogProgram& program,
                                        const LintOptions& options = {});

}  // namespace lamp::sa

#endif  // LAMP_SA_LINT_H_
