#ifndef LAMP_SA_CATALOG_H_
#define LAMP_SA_CATALOG_H_

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sa/fragment.h"

/// \file
/// The in-repo example program catalog: the witness programs of the
/// Figure 2 hierarchy, each with its *expected* static classification and
/// its *expected* dynamic monotonicity verdicts (with the falsifier
/// bounds that witness them). The catalog is what ties the certify side
/// (sa/fragment.h) to the falsify side (datalog/monotone.h):
///
///  * tools/lamp_lint --builtin analyzes these programs and, in --strict
///    mode, fails when an analysis disagrees with the expectation;
///  * tests/sa_crossval_test.cc runs the dynamic falsifiers over every
///    entry and checks certificates are never contradicted by a witness
///    and refutations are backed by one (or a documented gap).

namespace lamp::sa {

struct ProgramAnalysis;  // analyzer.h

/// One example program plus its ground-truth expectations.
struct CatalogEntry {
  std::string_view id;     // Stable name, e.g. "tc".
  std::string_view title;  // One-line description.
  /// Program text in .dl syntax, including @edb/@output pragmas.
  std::string_view text;

  /// Expected strongest certified fragment; nullopt = outside all three.
  std::optional<Fragment> expected_fragment;
  bool expected_stratified = true;

  /// Whether the dynamic falsifiers apply (false for win_move: without a
  /// stratification the evaluator has no semantics to falsify against —
  /// that *is* the point of the entry).
  bool run_falsifier = true;
  /// FindMonotonicityViolation bounds: base universe size, fresh values
  /// for the addition, max facts per instance.
  std::size_t domain_size = 2;
  std::size_t extra_values = 1;
  std::size_t max_facts = 3;
  /// Expected dynamic verdict per MonotonicityKind (kPlain,
  /// kDomainDistinct, kDomainDisjoint): true = no violation within the
  /// bounds.
  std::array<bool, 3> expected_monotone = {true, true, true};
};

/// All catalog entries, in a fixed order.
const std::vector<CatalogEntry>& ExampleCatalog();

/// Lookup by id; nullptr when unknown.
const CatalogEntry* FindCatalogEntry(std::string_view id);

/// Compares an analysis of \p entry.text against the entry's
/// expectations; returns one human-readable line per mismatch (empty =
/// the analysis agrees with the catalog's ground truth). Expected
/// unstratifiability is not a mismatch — it is what the entry documents.
std::vector<std::string> CheckCatalogExpectations(
    const CatalogEntry& entry, const ProgramAnalysis& analysis);

}  // namespace lamp::sa

#endif  // LAMP_SA_CATALOG_H_
