#include "sa/depgraph.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace lamp::sa {

std::string DescribeNegationCycle(const Schema& schema,
                                  const NegationCycle& cycle) {
  std::string out = "negation cycle ";
  for (std::size_t i = 0; i < cycle.relations.size(); ++i) {
    out += schema.NameOf(cycle.relations[i]);
    out += i == 0 ? " -!-> " : " -> ";
  }
  if (!cycle.relations.empty()) out += schema.NameOf(cycle.relations[0]);
  out += " (negated in rule " + std::to_string(cycle.rule_index) + ")";
  return out;
}

DependencyGraph::DependencyGraph(const DatalogProgram& program)
    : program_(program), idb_(program.IdbRelations()) {
  const std::vector<ConjunctiveQuery>& rules = program.rules();
  for (std::size_t k = 0; k < rules.size(); ++k) {
    const ConjunctiveQuery& rule = rules[k];
    const RelationId head = rule.head().relation;
    used_.insert(head);
    for (std::size_t i = 0; i < rule.body().size(); ++i) {
      const RelationId body = rule.body()[i].relation;
      used_.insert(body);
      edges_.push_back({head, body, false, k, i});
    }
    for (std::size_t i = 0; i < rule.negated().size(); ++i) {
      const RelationId body = rule.negated()[i].relation;
      used_.insert(body);
      edges_.push_back({head, body, true, k, i});
    }
  }

  // Dense indexing over the used relations.
  std::vector<RelationId> nodes(used_.begin(), used_.end());
  std::map<RelationId, std::size_t> dense;
  for (std::size_t i = 0; i < nodes.size(); ++i) dense[nodes[i]] = i;
  std::vector<std::vector<std::size_t>> adj(nodes.size());
  for (const DepEdge& e : edges_) {
    adj[dense[e.head]].push_back(dense[e.body]);
  }

  // Iterative Tarjan. Components are emitted callees-first, which is the
  // reverse topological order the stratifier wants.
  const std::size_t n = nodes.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> scc_stack;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t node;
    std::size_t next_child;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> call_stack{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t v = frame.node;
      if (frame.next_child < adj[v].size()) {
        const std::size_t w = adj[v][frame.next_child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<RelationId> component;
        while (true) {
          const std::size_t w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          component.push_back(nodes[w]);
          if (w == v) break;
        }
        std::sort(component.begin(), component.end());
        const std::size_t id = components_.size();
        for (RelationId rel : component) component_of_[rel] = id;
        components_.push_back(std::move(component));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        Frame& parent = call_stack.back();
        lowlink[parent.node] = std::min(lowlink[parent.node], lowlink[v]);
      }
    }
  }
}

std::size_t DependencyGraph::ComponentOf(RelationId rel) const {
  const auto it = component_of_.find(rel);
  LAMP_CHECK_MSG(it != component_of_.end(),
                 "relation does not occur in the program");
  return it->second;
}

bool DependencyGraph::IsStratifiable() const {
  for (const DepEdge& e : edges_) {
    if (e.negative && idb_.count(e.body) > 0 &&
        ComponentOf(e.head) == ComponentOf(e.body)) {
      return false;
    }
  }
  return true;
}

std::optional<StratumAssignment> DependencyGraph::Stratify() const {
  // Stratum per component, filled in reverse topological (emission)
  // order so every dependency is final before it is read. Negation on an
  // EDB relation does not force a bump: extensional relations are fully
  // known from stratum 0 (this matches DatalogProgram::Stratify and the
  // evaluator).
  if (!IsStratifiable()) return std::nullopt;
  std::vector<std::size_t> component_stratum(components_.size(), 0);

  // Relax component strata to the least fixpoint. The condensation is a
  // DAG, so |components| passes suffice; we iterate until stable for
  // simplicity (programs are small).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DepEdge& e : edges_) {
      const std::size_t head_comp = ComponentOf(e.head);
      const std::size_t body_comp = ComponentOf(e.body);
      if (head_comp == body_comp) continue;
      const bool body_idb = idb_.count(e.body) > 0;
      if (!body_idb) continue;  // EDB bodies sit at stratum 0 for free.
      const std::size_t need =
          component_stratum[body_comp] + (e.negative ? 1 : 0);
      if (component_stratum[head_comp] < need) {
        component_stratum[head_comp] = need;
        changed = true;
      }
    }
  }

  StratumAssignment out;
  for (RelationId rel : used_) {
    out.relation_stratum[rel] =
        idb_.count(rel) > 0 ? component_stratum[ComponentOf(rel)] : 0;
  }

  // Group rules by their head's stratum, densely renumbered bottom-up.
  std::set<std::size_t> raw_used;
  const std::vector<ConjunctiveQuery>& rules = program_.rules();
  for (const ConjunctiveQuery& rule : rules) {
    raw_used.insert(out.relation_stratum.at(rule.head().relation));
  }
  std::map<std::size_t, std::size_t> dense;
  std::size_t next = 0;
  for (std::size_t s : raw_used) dense[s] = next++;
  out.rule_strata.assign(next == 0 ? 1 : next, {});
  for (std::size_t k = 0; k < rules.size(); ++k) {
    out.rule_strata[dense[out.relation_stratum.at(rules[k].head().relation)]]
        .push_back(k);
  }
  out.num_strata = out.rule_strata.size();
  return out;
}

std::optional<NegationCycle> DependencyGraph::FindNegationCycle() const {
  for (const DepEdge& e : edges_) {
    if (!e.negative || idb_.count(e.body) == 0) continue;
    const std::size_t comp = ComponentOf(e.head);
    if (ComponentOf(e.body) != comp) continue;

    NegationCycle cycle;
    cycle.rule_index = e.rule_index;
    cycle.atom_index = e.atom_index;
    cycle.relations.push_back(e.head);
    if (e.body != e.head) {
      // BFS from e.body back to e.head inside the component.
      std::map<RelationId, RelationId> parent;
      std::deque<RelationId> queue{e.body};
      parent[e.body] = e.body;
      while (!queue.empty() && parent.count(e.head) == 0) {
        const RelationId cur = queue.front();
        queue.pop_front();
        for (const DepEdge& step : edges_) {
          if (step.head != cur) continue;
          if (component_of_.at(step.body) != comp) continue;
          if (parent.count(step.body) > 0) continue;
          parent[step.body] = cur;
          queue.push_back(step.body);
        }
      }
      LAMP_CHECK(parent.count(e.head) > 0);  // Same SCC => path exists.
      std::vector<RelationId> path;
      for (RelationId cur = e.head; cur != e.body; cur = parent.at(cur)) {
        path.push_back(cur);
      }
      path.push_back(e.body);
      // path is head..body following parents; the walk is body -> head.
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        if (*it != e.head) cycle.relations.push_back(*it);
      }
    }
    return cycle;
  }
  return std::nullopt;
}

std::vector<std::size_t> DependencyGraph::UnreachableRules(
    const std::vector<RelationId>& outputs) const {
  std::set<RelationId> reached;
  std::deque<RelationId> queue;
  for (RelationId rel : outputs) {
    if (reached.insert(rel).second) queue.push_back(rel);
  }
  while (!queue.empty()) {
    const RelationId cur = queue.front();
    queue.pop_front();
    for (const DepEdge& e : edges_) {
      if (e.head != cur) continue;
      if (reached.insert(e.body).second) queue.push_back(e.body);
    }
  }
  std::vector<std::size_t> unreachable;
  const std::vector<ConjunctiveQuery>& rules = program_.rules();
  for (std::size_t k = 0; k < rules.size(); ++k) {
    if (reached.count(rules[k].head().relation) == 0) {
      unreachable.push_back(k);
    }
  }
  return unreachable;
}

}  // namespace lamp::sa
