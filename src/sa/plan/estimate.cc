#include "sa/plan/estimate.h"

#include <algorithm>
#include <map>
#include <set>

#include "transport/wire.h"

namespace lamp::sa::plan {

namespace {

using obs::audit::ColumnStats;
using obs::audit::RelationStats;
using obs::audit::SketchEntry;

/// Guaranteed lower bound on the true frequency of a sketch entry. Used
/// for join-size corrections, where an overestimate would inflate the
/// output estimate; strategy costing (cost.cc) uses the upper-bound
/// count instead, where missing a heavy hitter is the expensive error.
double LowerFrequency(const SketchEntry& entry) {
  return static_cast<double>(entry.count - entry.error);
}

}  // namespace

Estimator::Estimator(const ConjunctiveQuery& query, const Schema& schema,
                     const obs::audit::Catalog& catalog)
    : query_(query), schema_(schema), catalog_(catalog) {
  relations_.reserve(query.body().size());
  for (const Atom& atom : query.body()) {
    relations_.push_back(catalog.Find(schema.NameOf(atom.relation)));
  }
}

std::vector<AtomEstimate> Estimator::InitialAtoms() const {
  std::vector<AtomEstimate> atoms;
  atoms.reserve(query_.body().size());
  for (std::size_t a = 0; a < query_.body().size(); ++a) {
    const Atom& atom = query_.body()[a];
    AtomEstimate est;
    est.atom_index = a;
    est.relation = schema_.NameOf(atom.relation);
    est.arity = atom.terms.size();
    const RelationStats* stats = relations_[a];
    est.in_catalog = stats != nullptr;
    est.cardinality =
        stats == nullptr ? 0.0 : static_cast<double>(stats->cardinality);
    est.effective = est.cardinality;
    // One encoded fact on the wire: relation varint + arity varint + one
    // zigzag varint per column at the column's catalog mean width
    // (lamp.wire.v1 PutFact; frame overhead is amortized per batch and
    // excluded here).
    est.fact_bytes =
        static_cast<double>(transport::VarintSize(atom.relation) +
                            transport::VarintSize(atom.terms.size()));
    if (stats != nullptr) {
      for (const ColumnStats& col : stats->columns) {
        est.fact_bytes += col.avg_bytes;
      }
    }
    atoms.push_back(std::move(est));
  }
  return atoms;
}

const ColumnStats* Estimator::ColumnAt(std::size_t a, std::size_t pos) const {
  if (a >= relations_.size() || relations_[a] == nullptr) return nullptr;
  const RelationStats& stats = *relations_[a];
  if (pos >= stats.columns.size()) return nullptr;
  return &stats.columns[pos];
}

double Estimator::DistinctAt(std::size_t a, std::size_t pos) const {
  const ColumnStats* col = ColumnAt(a, pos);
  return col == nullptr ? 0.0 : static_cast<double>(col->distinct);
}

double Estimator::FrequencyAt(std::size_t a, std::size_t pos,
                              Value value) const {
  const ColumnStats* col = ColumnAt(a, pos);
  if (col == nullptr) return 0.0;
  for (const SketchEntry& entry : col->heavy) {
    if (entry.value == value.v) return static_cast<double>(entry.count);
  }
  if (col->distinct == 0) return 0.0;
  const double cardinality =
      relations_[a] == nullptr
          ? 0.0
          : static_cast<double>(relations_[a]->cardinality);
  return cardinality / static_cast<double>(col->distinct);
}

std::vector<SketchEntry> Estimator::HeavyEntries(std::size_t a,
                                                 std::size_t pos) const {
  std::vector<SketchEntry> entries;
  const ColumnStats* col = ColumnAt(a, pos);
  if (col == nullptr || col->distinct == 0 || relations_[a] == nullptr) {
    return entries;
  }
  const double uniform =
      static_cast<double>(relations_[a]->cardinality) /
      static_cast<double>(col->distinct);
  for (const SketchEntry& entry : col->heavy) {
    if (LowerFrequency(entry) > uniform) entries.push_back(entry);
  }
  return entries;
}

double Estimator::EstimateOutput(
    const std::vector<AtomEstimate>& atoms) const {
  if (atoms.empty()) return 0.0;
  // var -> occurrences as (atom index, max-distinct over the positions the
  // var takes in that atom).
  std::map<VarId, std::vector<std::pair<std::size_t, double>>> occurrences;
  for (std::size_t a = 0; a < query_.body().size(); ++a) {
    const Atom& atom = query_.body()[a];
    std::map<VarId, double> per_atom;
    for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
      if (!atom.terms[pos].IsVar()) continue;
      const double d = DistinctAt(a, pos);
      auto [it, inserted] = per_atom.emplace(atom.terms[pos].var, d);
      if (!inserted) it->second = std::max(it->second, d);
    }
    for (const auto& [v, d] : per_atom) occurrences[v].push_back({a, d});
  }

  double base = 1.0;
  for (const AtomEstimate& atom : atoms) base *= atom.effective;
  for (const auto& [v, occ] : occurrences) {
    if (occ.size() < 2) continue;
    double max_distinct = 1.0;
    for (const auto& [a, d] : occ) max_distinct = std::max(max_distinct, d);
    for (std::size_t i = 1; i < occ.size(); ++i) base /= max_distinct;
  }

  // Heavy-hitter correction, binary single-shared-variable joins only:
  // split the estimate into the sketched heavy values (frequency product,
  // guaranteed lower bounds) and a uniform residual over the remaining
  // distincts. This is where a Zipf column departs from m_l*m_r/max(d).
  std::vector<std::pair<VarId, std::pair<std::size_t, std::size_t>>> shared;
  if (query_.body().size() == 2 && atoms.size() == 2) {
    const Atom& l = query_.body()[0];
    const Atom& r = query_.body()[1];
    std::set<VarId> seen;
    for (std::size_t i = 0; i < l.terms.size(); ++i) {
      if (!l.terms[i].IsVar()) continue;
      for (std::size_t j = 0; j < r.terms.size(); ++j) {
        if (r.terms[j].IsVar() && r.terms[j].var == l.terms[i].var &&
            seen.insert(l.terms[i].var).second) {
          shared.push_back({l.terms[i].var, {i, j}});
        }
      }
    }
  }
  if (shared.size() == 1) {
    const auto [l_pos, r_pos] = shared.front().second;
    const ColumnStats* lc = ColumnAt(0, l_pos);
    const ColumnStats* rc = ColumnAt(1, r_pos);
    if (lc != nullptr && rc != nullptr && lc->distinct > 0 &&
        rc->distinct > 0) {
      // Selectivity the rewrites already applied to each side.
      const double l_scale =
          atoms[0].cardinality > 0 ? atoms[0].effective / atoms[0].cardinality
                                   : 0.0;
      const double r_scale =
          atoms[1].cardinality > 0 ? atoms[1].effective / atoms[1].cardinality
                                   : 0.0;
      double heavy = 0.0;
      double covered_l = 0.0;
      double covered_r = 0.0;
      std::size_t matched = 0;
      for (const SketchEntry& le : lc->heavy) {
        for (const SketchEntry& re : rc->heavy) {
          if (le.value != re.value) continue;
          const double fl = LowerFrequency(le);
          const double fr = LowerFrequency(re);
          if (fl <= 0.0 || fr <= 0.0) continue;
          heavy += fl * fr;
          covered_l += fl;
          covered_r += fr;
          ++matched;
        }
      }
      if (matched > 0) {
        const double rest_l =
            std::max(0.0, atoms[0].cardinality - covered_l);
        const double rest_r =
            std::max(0.0, atoms[1].cardinality - covered_r);
        const double rest_d = std::max(
            1.0, static_cast<double>(std::max(lc->distinct, rc->distinct)) -
                     static_cast<double>(matched));
        base = (heavy + rest_l * rest_r / rest_d) * l_scale * r_scale;
      }
    }
  }
  return std::max(base, 0.0);
}

}  // namespace lamp::sa::plan
