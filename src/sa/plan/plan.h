#ifndef LAMP_SA_PLAN_PLAN_H_
#define LAMP_SA_PLAN_PLAN_H_

#include <string>
#include <vector>

#include "obs/json.h"
#include "sa/plan/cost.h"
#include "sa/plan/estimate.h"
#include "sa/plan/rewrite.h"

/// \file
/// The planner entry point and its output, the plan *certificate*
/// ("lamp.plan.v1"). PlanQuery runs the four stages —
///
///   estimates  (estimate.h: catalog cardinalities + sketch corrections)
///   rewrites   (rewrite.h: pushdowns, reducers, cross-product hazards)
///   cost       (cost.h: bounds.h closed forms + skew corrections)
///   certificate (this file: ranked verdict, hazards, JSON)
///
/// — entirely statically: no data is read, only the `lamp.catalog.v1`
/// statistics. The certificate is *checkable*: every base_bound it quotes
/// is the exact formula the audit layer recomputes at run time, and the
/// predicted winner is compared against the measured winner by the
/// planner-agreement gate (agreement.h), so a cost-model regression
/// surfaces as a CI failure rather than silent bad advice.

namespace lamp::sa::plan {

/// The planner's full output for one (query, catalog, p) instance.
/// `strategies` is ranked: feasible strategies by ascending predicted
/// load (ties broken by the preference order repartition < hypercube <
/// shares_skew < fragment_replicate — cheaper machinery first), then the
/// infeasible ones.
struct PlanCertificate {
  std::string query_text;   // query.ToString(schema).
  std::size_t p = 0;
  double tie_margin = 0.02;
  double estimated_output = 0.0;   // Estimator::EstimateOutput.
  std::vector<AtomEstimate> atoms;
  std::vector<Rewrite> rewrites;
  std::vector<StrategyPrediction> strategies;
  std::vector<std::string> hazards;  // Cross products, missing stats, skew.

  /// The top-ranked feasible strategy; nullptr when nothing is feasible.
  const StrategyPrediction* Winner() const;

  /// Every feasible strategy whose predicted load is within tie_margin
  /// of the winner's (always includes the winner). Two strategies inside
  /// one winner set are predicted indistinguishable — the agreement gate
  /// accepts a measured win by any member.
  std::vector<obs::audit::Strategy> WinnerSet() const;

  /// The prediction for \p strategy; nullptr when the planner did not
  /// score it.
  const StrategyPrediction* Find(obs::audit::Strategy strategy) const;

  /// "lamp.plan.v1" document.
  obs::JsonValue ToJson() const;

  /// Human-readable report. \p explain adds the per-strategy formulas and
  /// the applied rewrites.
  std::string RenderText(bool explain) const;
};

/// Runs the full pipeline. The query's positive body atoms are looked up
/// in \p catalog by schema name; unknown relations plan at size 0 and
/// raise a hazard (and a lamp_lint warning, which shares the detection).
PlanCertificate PlanQuery(const ConjunctiveQuery& query, const Schema& schema,
                          const obs::audit::Catalog& catalog,
                          const PlanOptions& options);

}  // namespace lamp::sa::plan

#endif  // LAMP_SA_PLAN_PLAN_H_
