#include "sa/plan/plan.h"

#include <algorithm>
#include <cstdio>

namespace lamp::sa::plan {

namespace {

using obs::JsonValue;
using obs::audit::Strategy;
using obs::audit::StrategyName;

/// Tie-break order among equally-priced strategies: prefer the cheaper
/// machinery (plain hash repartition) over grids and skew handling.
int PreferenceRank(Strategy strategy) {
  switch (strategy) {
    case Strategy::kRepartition:
      return 0;
    case Strategy::kHyperCube:
      return 1;
    case Strategy::kSharesSkew:
      return 2;
    case Strategy::kFragmentReplicate:
      return 3;
    default:
      return 4;
  }
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

const StrategyPrediction* PlanCertificate::Winner() const {
  for (const StrategyPrediction& s : strategies) {
    if (s.feasible) return &s;
  }
  return nullptr;
}

std::vector<Strategy> PlanCertificate::WinnerSet() const {
  std::vector<Strategy> set;
  const StrategyPrediction* winner = Winner();
  if (winner == nullptr) return set;
  const double cutoff = winner->predicted_max_load * (1.0 + tie_margin);
  for (const StrategyPrediction& s : strategies) {
    if (s.feasible && s.predicted_max_load <= cutoff) {
      set.push_back(s.strategy);
    }
  }
  return set;
}

const StrategyPrediction* PlanCertificate::Find(Strategy strategy) const {
  for (const StrategyPrediction& s : strategies) {
    if (s.strategy == strategy) return &s;
  }
  return nullptr;
}

JsonValue PlanCertificate::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.plan.v1");
  doc.Set("query", query_text);
  doc.Set("p", p);
  doc.Set("tie_margin", tie_margin);
  doc.Set("estimated_output", estimated_output);

  JsonValue atoms_json = JsonValue::Array();
  for (const AtomEstimate& atom : atoms) {
    JsonValue a = JsonValue::Object();
    a.Set("relation", atom.relation);
    a.Set("arity", atom.arity);
    a.Set("in_catalog", atom.in_catalog);
    a.Set("cardinality", atom.cardinality);
    a.Set("effective", atom.effective);
    a.Set("fact_bytes", atom.fact_bytes);
    atoms_json.PushBack(std::move(a));
  }
  doc.Set("atoms", std::move(atoms_json));

  JsonValue rewrites_json = JsonValue::Array();
  for (const Rewrite& rw : rewrites) {
    JsonValue r = JsonValue::Object();
    r.Set("kind", RewriteKindName(rw.kind));
    r.Set("atom", rw.atom);
    r.Set("before", rw.before);
    r.Set("after", rw.after);
    r.Set("description", rw.description);
    rewrites_json.PushBack(std::move(r));
  }
  doc.Set("rewrites", std::move(rewrites_json));

  JsonValue strategies_json = JsonValue::Array();
  for (const StrategyPrediction& s : strategies) {
    JsonValue v = JsonValue::Object();
    v.Set("strategy", StrategyName(s.strategy));
    v.Set("feasible", s.feasible);
    v.Set("base_bound", s.base_bound);
    v.Set("predicted_max_load", s.predicted_max_load);
    v.Set("predicted_tuples", s.predicted_tuples);
    v.Set("predicted_wire_bytes", s.predicted_wire_bytes);
    if (!s.shares.empty()) {
      JsonValue shares = JsonValue::Array();
      for (const std::size_t a : s.shares) shares.PushBack(a);
      v.Set("shares", std::move(shares));
    }
    if (!s.formula.empty()) v.Set("formula", s.formula);
    if (!s.note.empty()) v.Set("note", s.note);
    strategies_json.PushBack(std::move(v));
  }
  doc.Set("strategies", std::move(strategies_json));

  const StrategyPrediction* winner = Winner();
  doc.Set("winner",
          winner == nullptr ? "" : std::string(StrategyName(winner->strategy)));
  JsonValue winner_set = JsonValue::Array();
  for (const Strategy s : WinnerSet()) {
    winner_set.PushBack(StrategyName(s));
  }
  doc.Set("winner_set", std::move(winner_set));

  JsonValue hazards_json = JsonValue::Array();
  for (const std::string& h : hazards) hazards_json.PushBack(h);
  doc.Set("hazards", std::move(hazards_json));
  return doc;
}

std::string PlanCertificate::RenderText(bool explain) const {
  std::string out;
  out += "plan: " + query_text + "\n";
  out += "  p=" + std::to_string(p) +
         "  estimated_output=" + Fmt(estimated_output) + "\n";
  for (const AtomEstimate& atom : atoms) {
    out += "  atom " + atom.relation + "/" + std::to_string(atom.arity);
    if (!atom.in_catalog) {
      out += ": NO STATISTICS (planned at size 0)\n";
      continue;
    }
    out += ": m=" + Fmt(atom.cardinality);
    if (atom.effective != atom.cardinality) {
      out += " effective=" + Fmt(atom.effective);
    }
    out += " fact_bytes=" + Fmt(atom.fact_bytes) + "\n";
  }
  if (explain) {
    for (const Rewrite& rw : rewrites) {
      out += "  rewrite [" + std::string(RewriteKindName(rw.kind)) + "] " +
             rw.description + "\n";
    }
  }
  const StrategyPrediction* winner = Winner();
  for (const StrategyPrediction& s : strategies) {
    out += "  ";
    out += (winner != nullptr && &s == winner) ? "* " : "  ";
    out += std::string(StrategyName(s.strategy));
    if (!s.feasible) {
      out += ": infeasible (" + s.note + ")\n";
      continue;
    }
    out += ": load~" + Fmt(s.predicted_max_load) +
           " (bound " + Fmt(s.base_bound) + ")" +
           " tuples~" + Fmt(s.predicted_tuples) +
           " wire~" + Fmt(s.predicted_wire_bytes) + "B";
    if (!s.shares.empty()) {
      out += " shares=(";
      for (std::size_t i = 0; i < s.shares.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(s.shares[i]);
      }
      out += ")";
    }
    out += "\n";
    if (explain && !s.formula.empty()) {
      out += "      formula: " + s.formula + "\n";
    }
    if (explain && !s.note.empty()) {
      out += "      note: " + s.note + "\n";
    }
  }
  for (const std::string& h : hazards) {
    out += "  hazard: " + h + "\n";
  }
  return out;
}

PlanCertificate PlanQuery(const ConjunctiveQuery& query, const Schema& schema,
                          const obs::audit::Catalog& catalog,
                          const PlanOptions& options) {
  PlanCertificate cert;
  cert.query_text = query.ToString(schema);
  cert.p = options.p;
  cert.tie_margin = options.tie_margin;

  const Estimator estimator(query, schema, catalog);
  cert.atoms = estimator.InitialAtoms();
  cert.rewrites = ApplyRewrites(query, estimator, cert.atoms);
  cert.estimated_output = estimator.EstimateOutput(cert.atoms);
  cert.strategies = CostStrategies(query, schema, catalog, estimator,
                                   cert.atoms, options);

  // Rank: feasible by predicted load then preference; infeasible last in
  // preference order.
  std::stable_sort(cert.strategies.begin(), cert.strategies.end(),
                   [](const StrategyPrediction& a,
                      const StrategyPrediction& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     if (a.feasible &&
                         a.predicted_max_load != b.predicted_max_load) {
                       return a.predicted_max_load < b.predicted_max_load;
                     }
                     return PreferenceRank(a.strategy) <
                            PreferenceRank(b.strategy);
                   });

  // Hazards: the certificate-level warnings a caller should surface even
  // without reading the strategy table.
  for (const AtomEstimate& atom : cert.atoms) {
    if (!atom.in_catalog) {
      cert.hazards.push_back(
          "no statistics for " + atom.relation +
          " in the catalog: estimates treat it as empty and every bound "
          "is unreliable");
    }
  }
  for (const Rewrite& rw : cert.rewrites) {
    if (rw.kind == RewriteKind::kCrossProduct) {
      cert.hazards.push_back(rw.description);
    }
  }
  for (const StrategyPrediction& s : cert.strategies) {
    if (s.feasible && s.predicted_max_load > s.base_bound &&
        !s.note.empty()) {
      cert.hazards.push_back(std::string(StrategyName(s.strategy)) + ": " +
                             s.note);
    }
  }
  return cert;
}

}  // namespace lamp::sa::plan
