#include "sa/plan/rewrite.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace lamp::sa::plan {

namespace {

/// Size ratio above which a semi-join reducer pre-pass pays for itself:
/// shipping the small side's keys costs ~d_small tuples, so the big side
/// must dwarf the small one before the saved shuffle volume wins.
constexpr double kReducerSizeRatio = 4.0;

/// Minimum shrink a reducer must deliver to be recorded (a 5% trim is
/// not worth an extra pass).
constexpr double kReducerMaxKeep = 0.75;

std::string FormatTuples(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

}  // namespace

std::string_view RewriteKindName(RewriteKind kind) {
  switch (kind) {
    case RewriteKind::kFilterPushdown:
      return "filter_pushdown";
    case RewriteKind::kSemiJoinReducer:
      return "semi_join_reducer";
    case RewriteKind::kCrossProduct:
      return "cross_product";
  }
  return "unknown";
}

std::vector<std::size_t> JoinComponents(const ConjunctiveQuery& query) {
  const std::vector<Atom>& body = query.body();
  std::vector<std::size_t> parent(body.size());
  for (std::size_t a = 0; a < body.size(); ++a) parent[a] = a;
  const auto find = [&parent](std::size_t a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  };
  // Union atoms through the first atom each variable was seen in.
  std::map<VarId, std::size_t> first_atom;
  for (std::size_t a = 0; a < body.size(); ++a) {
    for (const Term& term : body[a].terms) {
      if (!term.IsVar()) continue;
      auto [it, inserted] = first_atom.emplace(term.var, a);
      if (!inserted) parent[find(a)] = find(it->second);
    }
  }
  std::vector<std::size_t> component(body.size());
  std::map<std::size_t, std::size_t> dense;
  for (std::size_t a = 0; a < body.size(); ++a) {
    const std::size_t root = find(a);
    component[a] = dense.emplace(root, dense.size()).first->second;
  }
  return component;
}

std::vector<Rewrite> ApplyRewrites(const ConjunctiveQuery& query,
                                   const Estimator& estimator,
                                   std::vector<AtomEstimate>& atoms) {
  std::vector<Rewrite> applied;
  const std::vector<Atom>& body = query.body();

  // Pass 1: filter pushdown. Constants select by the sketched frequency
  // of the constant (heavy values keep their true mass; unknown values
  // get the uniform 1/distinct average); a variable repeated within one
  // atom selects by 1/distinct of its second position.
  for (std::size_t a = 0; a < body.size() && a < atoms.size(); ++a) {
    AtomEstimate& atom = atoms[a];
    if (!atom.in_catalog || atom.cardinality <= 0.0) continue;
    double selectivity = 1.0;
    std::string what;
    std::map<VarId, std::size_t> seen_var;
    for (std::size_t pos = 0; pos < body[a].terms.size(); ++pos) {
      const Term& term = body[a].terms[pos];
      if (term.IsConst()) {
        const double freq = estimator.FrequencyAt(a, pos, term.constant);
        selectivity *= atom.cardinality > 0 ? freq / atom.cardinality : 0.0;
        if (!what.empty()) what += ", ";
        what += "$";
        what += std::to_string(pos);
        what += "=";
        what += std::to_string(term.constant.v);
        continue;
      }
      auto [it, inserted] = seen_var.emplace(term.var, pos);
      if (!inserted) {
        const double d = std::max(1.0, estimator.DistinctAt(a, pos));
        selectivity *= 1.0 / d;
        if (!what.empty()) what += ", ";
        what += "$";
        what += std::to_string(it->second);
        what += "=$";
        what += std::to_string(pos);
      }
    }
    if (selectivity >= 1.0 || what.empty()) continue;
    Rewrite rw;
    rw.kind = RewriteKind::kFilterPushdown;
    rw.atom = a;
    rw.before = atom.effective;
    atom.effective *= selectivity;
    rw.after = atom.effective;
    rw.description = "push filter [" + what + "] on " + atom.relation +
                     " into the routing predicate: ~" +
                     FormatTuples(rw.before) + " -> ~" +
                     FormatTuples(rw.after) + " tuples shuffled";
    applied.push_back(std::move(rw));
  }

  // Pass 2: semi-join reducers. For each atom, the strongest shrink any
  // join partner offers; at most one reducer per atom.
  for (std::size_t a = 0; a < body.size() && a < atoms.size(); ++a) {
    AtomEstimate& atom = atoms[a];
    if (!atom.in_catalog || atom.effective <= 0.0) continue;
    double best_keep = 1.0;
    std::size_t best_partner = 0;
    VarId best_var = 0;
    for (std::size_t b = 0; b < body.size() && b < atoms.size(); ++b) {
      if (b == a || !atoms[b].in_catalog) continue;
      if (atom.effective < kReducerSizeRatio * atoms[b].effective) continue;
      for (std::size_t pos = 0; pos < body[a].terms.size(); ++pos) {
        if (!body[a].terms[pos].IsVar()) continue;
        for (std::size_t bpos = 0; bpos < body[b].terms.size(); ++bpos) {
          if (!body[b].terms[bpos].IsVar() ||
              body[b].terms[bpos].var != body[a].terms[pos].var) {
            continue;
          }
          const double d_big = estimator.DistinctAt(a, pos);
          const double d_small = estimator.DistinctAt(b, bpos);
          if (d_big <= 0.0 || d_small <= 0.0) continue;
          const double keep = std::min(1.0, d_small / d_big);
          if (keep < best_keep) {
            best_keep = keep;
            best_partner = b;
            best_var = body[a].terms[pos].var;
          }
        }
      }
    }
    if (best_keep >= kReducerMaxKeep) continue;
    Rewrite rw;
    rw.kind = RewriteKind::kSemiJoinReducer;
    rw.atom = a;
    rw.before = atom.effective;
    atom.effective *= best_keep;
    rw.after = atom.effective;
    rw.description = "semi-join reduce " + atom.relation + " by " +
                     atoms[best_partner].relation + " on " +
                     query.VarName(best_var) + " before the shuffle: ~" +
                     FormatTuples(rw.before) + " -> ~" +
                     FormatTuples(rw.after) + " tuples";
    applied.push_back(std::move(rw));
  }

  // Pass 3: cross-product detection (hazard, no size change).
  const std::vector<std::size_t> components = JoinComponents(query);
  std::size_t num_components = 0;
  for (const std::size_t c : components) {
    num_components = std::max(num_components, c + 1);
  }
  if (num_components > 1) {
    std::size_t second_start = 0;
    for (std::size_t a = 0; a < components.size(); ++a) {
      if (components[a] != 0) {
        second_start = a;
        break;
      }
    }
    double total = 0.0;
    for (const AtomEstimate& atom : atoms) total += atom.effective;
    Rewrite rw;
    rw.kind = RewriteKind::kCrossProduct;
    rw.atom = second_start;
    rw.before = total;
    rw.after = total;
    rw.description =
        "body splits into " + std::to_string(num_components) +
        " components sharing no variable: the join is a cross product and "
        "every one-round strategy degenerates to broadcast";
    applied.push_back(std::move(rw));
  }
  return applied;
}

}  // namespace lamp::sa::plan
