#include "sa/plan/agreement.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace lamp::sa::plan {

namespace {

using obs::JsonValue;
using obs::audit::Strategy;
using obs::audit::StrategyFromName;
using obs::audit::StrategyName;

}  // namespace

double AgreementRecord::PredictedLoadOf(Strategy strategy) const {
  for (std::size_t i = 0; i < outcomes.size() && i < predicted_loads.size();
       ++i) {
    if (outcomes[i].strategy == strategy) return predicted_loads[i];
  }
  return -1.0;
}

bool AgreementRecord::Agree() const {
  if (predicted == measured) return true;
  const double runner = PredictedLoadOf(measured);
  if (runner < 0.0) return false;
  // The bar is the best prediction among the strategies actually raced: a
  // race can only falsify the model's ranking of its participants. When
  // the certificate's overall winner sat out (a partial race), the model
  // still agrees as long as the measured winner was predicted (near-)best
  // of the field that ran.
  double best = -1.0;
  for (const double load : predicted_loads) {
    if (load >= 0.0 && (best < 0.0 || load < best)) best = load;
  }
  if (best < 0.0) return false;
  return runner <= best * (1.0 + tie_margin);
}

JsonValue AgreementRecord::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.plan_agreement.v1");
  doc.Set("bench", bench);
  doc.Set("label", label);
  doc.Set("query", query_text);
  doc.Set("p", p);
  doc.Set("tie_margin", tie_margin);
  doc.Set("predicted", StrategyName(predicted));
  doc.Set("measured", StrategyName(measured));
  doc.Set("agree", Agree());
  JsonValue race = JsonValue::Array();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    JsonValue entry = JsonValue::Object();
    entry.Set("strategy", StrategyName(outcomes[i].strategy));
    entry.Set("measured_max_load", outcomes[i].measured_max_load);
    if (i < predicted_loads.size()) {
      entry.Set("predicted_max_load", predicted_loads[i]);
    }
    race.PushBack(std::move(entry));
  }
  doc.Set("race", std::move(race));
  return doc;
}

std::optional<AgreementRecord> AgreementRecord::FromJson(
    const JsonValue& doc) {
  if (!doc.IsObject()) return std::nullopt;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->AsString() != "lamp.plan_agreement.v1") {
    return std::nullopt;
  }
  AgreementRecord record;
  const auto str = [&doc](const char* key) -> std::string {
    const JsonValue* v = doc.Find(key);
    return v != nullptr && v->IsString() ? v->AsString() : std::string();
  };
  record.bench = str("bench");
  record.label = str("label");
  record.query_text = str("query");
  if (const JsonValue* v = doc.Find("p"); v != nullptr && v->IsNumber()) {
    record.p = static_cast<std::size_t>(v->AsInt());
  }
  if (const JsonValue* v = doc.Find("tie_margin");
      v != nullptr && v->IsNumber()) {
    record.tie_margin = v->AsDouble();
  }
  record.predicted = StrategyFromName(str("predicted"));
  record.measured = StrategyFromName(str("measured"));
  if (const JsonValue* race = doc.Find("race");
      race != nullptr && race->IsArray()) {
    for (std::size_t i = 0; i < race->size(); ++i) {
      const JsonValue& entry = race->at(i);
      if (!entry.IsObject()) continue;
      StrategyOutcome outcome;
      double predicted_load = -1.0;
      if (const JsonValue* v = entry.Find("strategy");
          v != nullptr && v->IsString()) {
        outcome.strategy = StrategyFromName(v->AsString());
      }
      if (const JsonValue* v = entry.Find("measured_max_load");
          v != nullptr && v->IsNumber()) {
        outcome.measured_max_load = v->AsDouble();
      }
      if (const JsonValue* v = entry.Find("predicted_max_load");
          v != nullptr && v->IsNumber()) {
        predicted_load = v->AsDouble();
      }
      record.outcomes.push_back(outcome);
      record.predicted_loads.push_back(predicted_load);
    }
  }
  return record;
}

AgreementRecord MakeAgreementRecord(std::string bench, std::string label,
                                    const PlanCertificate& cert,
                                    std::vector<StrategyOutcome> outcomes) {
  AgreementRecord record;
  record.bench = std::move(bench);
  record.label = std::move(label);
  record.query_text = cert.query_text;
  record.p = cert.p;
  record.tie_margin = cert.tie_margin;
  const StrategyPrediction* winner = cert.Winner();
  record.predicted =
      winner == nullptr ? Strategy::kNone : winner->strategy;
  for (const StrategyOutcome& outcome : outcomes) {
    const StrategyPrediction* prediction = cert.Find(outcome.strategy);
    record.predicted_loads.push_back(
        prediction == nullptr || !prediction->feasible
            ? -1.0
            : prediction->predicted_max_load);
    record.outcomes.push_back(outcome);
  }
  // Measured winner: smallest max load, ties keep the earlier entry.
  if (!record.outcomes.empty()) {
    const StrategyOutcome* best = &record.outcomes[0];
    for (const StrategyOutcome& outcome : record.outcomes) {
      if (outcome.measured_max_load < best->measured_max_load) {
        best = &outcome;
      }
    }
    record.measured = best->strategy;
  }
  return record;
}

PlanSink::~PlanSink() { Flush(); }

void PlanSink::Add(AgreementRecord record) {
  records_.push_back(std::move(record));
}

std::string PlanSink::RenderJsonLines() const {
  std::string out;
  for (const AgreementRecord& record : records_) {
    out += record.ToJson().Dump();
    out += "\n";
  }
  return out;
}

void PlanSink::Flush() {
  if (records_.empty()) return;
  const std::string lines = RenderJsonLines();
  const char* path = std::getenv(kPlanJsonEnvVar);
  bool to_stdout = true;
  if (path != nullptr && path[0] != '\0') {
    std::FILE* f = std::fopen(path, "a");
    if (f != nullptr) {
      std::fwrite(lines.data(), 1, lines.size(), f);
      std::fclose(f);
      to_stdout = false;
    } else {
      std::fprintf(stderr,
                   "plan: cannot open %s for append; writing records to"
                   " stdout instead\n",
                   path);
    }
  }
  if (to_stdout) {
    std::printf("# plan-json: %zu record(s)\n", records_.size());
    std::fwrite(lines.data(), 1, lines.size(), stdout);
  }
  records_.clear();
}

PlanSink& GlobalPlanSink() {
  static PlanSink* sink = new PlanSink();  // Leaked: alive at exit.
  return *sink;
}

void FinalizeGlobalPlan() { GlobalPlanSink().Flush(); }

bool AgreementPin::Matches(const AgreementRecord& record) const {
  if (!bench.empty() && bench != record.bench) return false;
  if (!label.empty() && label != record.label) return false;
  if (!predicted.empty() &&
      StrategyFromName(predicted) != record.predicted) {
    return false;
  }
  if (!measured.empty() && StrategyFromName(measured) != record.measured) {
    return false;
  }
  return true;
}

std::optional<std::vector<AgreementPin>> PinsFromJson(const JsonValue& doc) {
  if (!doc.IsObject()) return std::nullopt;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->AsString() != "lamp.plan_pins.v1") {
    return std::nullopt;
  }
  const JsonValue* pins_json = doc.Find("pins");
  if (pins_json == nullptr || !pins_json->IsArray()) return std::nullopt;
  std::vector<AgreementPin> pins;
  for (std::size_t i = 0; i < pins_json->size(); ++i) {
    const JsonValue& entry = pins_json->at(i);
    if (!entry.IsObject()) return std::nullopt;
    AgreementPin pin;
    const auto str = [&entry](const char* key) -> std::string {
      const JsonValue* v = entry.Find(key);
      return v != nullptr && v->IsString() ? v->AsString() : std::string();
    };
    pin.bench = str("bench");
    pin.label = str("label");
    pin.predicted = str("predicted");
    pin.measured = str("measured");
    pin.reason = str("reason");
    if (pin.reason.empty()) return std::nullopt;  // Pins must be explained.
    pins.push_back(std::move(pin));
  }
  return pins;
}

JsonValue PinsToJson(const std::vector<AgreementPin>& pins) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.plan_pins.v1");
  JsonValue list = JsonValue::Array();
  for (const AgreementPin& pin : pins) {
    JsonValue entry = JsonValue::Object();
    if (!pin.bench.empty()) entry.Set("bench", pin.bench);
    if (!pin.label.empty()) entry.Set("label", pin.label);
    if (!pin.predicted.empty()) entry.Set("predicted", pin.predicted);
    if (!pin.measured.empty()) entry.Set("measured", pin.measured);
    entry.Set("reason", pin.reason);
    list.PushBack(std::move(entry));
  }
  doc.Set("pins", std::move(list));
  return doc;
}

AgreementCheck CheckAgreement(const std::vector<AgreementRecord>& records,
                              const std::vector<AgreementPin>& pins) {
  AgreementCheck check;
  std::vector<bool> pin_used(pins.size(), false);
  for (const AgreementRecord& record : records) {
    bool pinned = false;
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (pins[i].Matches(record)) {
        pin_used[i] = true;
        pinned = true;
      }
    }
    if (record.Agree() || pinned) continue;
    check.failures.push_back(
        record.bench + "/" + record.label + ": predicted " +
        std::string(StrategyName(record.predicted)) + ", measured " +
        std::string(StrategyName(record.measured)) +
        " (predicted loads: " +
        std::to_string(record.PredictedLoadOf(record.predicted)) + " vs " +
        std::to_string(record.PredictedLoadOf(record.measured)) + ")");
  }
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pin_used[i]) continue;
    check.dangling_pins.push_back(
        pins[i].bench + "/" + pins[i].label + " (" + pins[i].reason +
        "): matched no record — remove or fix the pin");
  }
  return check;
}

}  // namespace lamp::sa::plan
