#ifndef LAMP_SA_PLAN_AGREEMENT_H_
#define LAMP_SA_PLAN_AGREEMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "sa/plan/plan.h"

/// \file
/// The planner-agreement gate: did the strategy the static planner
/// ranked first actually win the measured race?
///
/// Benches that run several strategies on one scenario emit an
/// AgreementRecord ("lamp.plan_agreement.v1") pairing the certificate's
/// predicted winner with the measured per-strategy max loads. Records
/// flow like audit records: JSON lines appended to the file named by
/// LAMP_PLAN_JSON, or stdout after a "# plan-json:" marker.
///
/// `lamp_plan check --pins bench/PLAN_pins.json` then holds every record
/// to Agree(): the predicted winner matches the measured one, OR the
/// measured winner's *predicted* cost is within the certificate's tie
/// margin of the best prediction (two strategies the model calls equal
/// may race either way — e.g. hypercube with shares (1,p,1) *is*
/// repartition up to hashing), OR the disagreement is pinned. Pins are
/// the cost-model analogue of expected_violation audit records: each
/// names a (bench, p, predicted, measured) quadruple and the reason the
/// model is allowed to be wrong there. Dangling pins (nothing matched)
/// fail the gate too, so stale excuses cannot accumulate.

namespace lamp::sa::plan {

/// Exit code of a failed agreement gate (audit hard-fail is 4).
inline constexpr int kPlanGateFailExit = 5;

/// Environment variable naming the JSON-lines destination file.
inline constexpr const char* kPlanJsonEnvVar = "LAMP_PLAN_JSON";

/// One strategy's measured result within a scenario race.
struct StrategyOutcome {
  obs::audit::Strategy strategy = obs::audit::Strategy::kNone;
  double measured_max_load = 0.0;
};

/// One scenario: the certificate's verdict next to the measured race.
struct AgreementRecord {
  std::string bench;       // e.g. "join_strategies".
  std::string label;       // Scenario ("skewed/p=16", ...).
  std::string query_text;
  std::size_t p = 0;
  double tie_margin = 0.02;
  obs::audit::Strategy predicted = obs::audit::Strategy::kNone;
  obs::audit::Strategy measured = obs::audit::Strategy::kNone;
  /// Predicted max load per strategy raced (parallel to outcomes).
  std::vector<StrategyOutcome> outcomes;
  std::vector<double> predicted_loads;

  /// Predicted cost of \p strategy from predicted_loads; negative when
  /// the strategy was not raced.
  double PredictedLoadOf(obs::audit::Strategy strategy) const;

  /// See file comment: winners match, or the measured winner was
  /// predicted within tie_margin of the best prediction *among the
  /// strategies raced* (a partial race cannot falsify the model's view
  /// of strategies that never ran).
  bool Agree() const;

  obs::JsonValue ToJson() const;  // "lamp.plan_agreement.v1"
  static std::optional<AgreementRecord> FromJson(const obs::JsonValue& doc);
};

/// Builds a record from a certificate and the measured race. The measured
/// winner is the raced strategy with the smallest measured max load (ties
/// keep the earlier entry); predicted loads are looked up in \p cert.
AgreementRecord MakeAgreementRecord(std::string bench, std::string label,
                                    const PlanCertificate& cert,
                                    std::vector<StrategyOutcome> outcomes);

/// Collects agreement records and flushes them as JSON lines to
/// LAMP_PLAN_JSON (append) or stdout after "# plan-json:", mirroring
/// AuditSink's destination contract.
class PlanSink {
 public:
  PlanSink() = default;
  ~PlanSink();
  PlanSink(const PlanSink&) = delete;
  PlanSink& operator=(const PlanSink&) = delete;

  void Add(AgreementRecord record);
  const std::vector<AgreementRecord>& records() const { return records_; }
  std::string RenderJsonLines() const;
  void Flush();

 private:
  std::vector<AgreementRecord> records_;
};

/// Process-global sink shared by a bench binary's configurations.
PlanSink& GlobalPlanSink();

/// Flushes the global sink (benches call this next to
/// FinalizeGlobalAudit; the gate itself runs offline in lamp_plan check).
void FinalizeGlobalPlan();

/// One pinned, explained disagreement ("lamp.plan_pins.v1").
struct AgreementPin {
  std::string bench;
  std::string label;
  std::string predicted;  // Strategy wire names, "" matches any.
  std::string measured;
  std::string reason;

  bool Matches(const AgreementRecord& record) const;
};

/// Parses {"schema":"lamp.plan_pins.v1","pins":[...]}; nullopt on
/// malformed input.
std::optional<std::vector<AgreementPin>> PinsFromJson(
    const obs::JsonValue& doc);
obs::JsonValue PinsToJson(const std::vector<AgreementPin>& pins);

/// Gate verdict: records that disagree and are not pinned, plus pins that
/// matched nothing (stale excuses).
struct AgreementCheck {
  std::vector<std::string> failures;
  std::vector<std::string> dangling_pins;
  bool Ok() const { return failures.empty() && dangling_pins.empty(); }
};

AgreementCheck CheckAgreement(const std::vector<AgreementRecord>& records,
                              const std::vector<AgreementPin>& pins);

}  // namespace lamp::sa::plan

#endif  // LAMP_SA_PLAN_AGREEMENT_H_
