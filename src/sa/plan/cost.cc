#include "sa/plan/cost.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "mpc/hypercube_run.h"

namespace lamp::sa::plan {

namespace {

using obs::audit::Catalog;
using obs::audit::LoadBound;
using obs::audit::RelationStats;
using obs::audit::SketchEntry;
using obs::audit::Strategy;

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

/// The catalog the bounds.h closed forms are evaluated on: the input
/// catalog with each body relation's cardinality replaced by its
/// rewritten effective size. When no rewrite fired this is the input
/// catalog verbatim, so base_bound is bit-identical to what the audit
/// layer computes (the plan_test property test pins this). Self-joins
/// share one entry per relation name; the larger effective size wins
/// (bounds are per-relation, not per-atom).
Catalog EffectiveCatalog(const Catalog& catalog,
                         const std::vector<AtomEstimate>& atoms) {
  Catalog effective = catalog;
  for (RelationStats& rel : effective.relations) {
    bool rewritten = false;
    double size = 0.0;
    for (const AtomEstimate& atom : atoms) {
      if (atom.relation != rel.name) continue;
      size = std::max(size, atom.effective);
      rewritten = rewritten || atom.effective != atom.cardinality;
    }
    if (rewritten) {
      rel.cardinality = static_cast<std::uint64_t>(std::llround(size));
    }
  }
  return effective;
}

/// Fraction of routed tuples that actually cross the wire: input facts
/// are spread uniformly over the p servers, so each routed copy is
/// already local with probability 1/p (the simulator counts neither its
/// load nor its bytes).
double ShippedFraction(std::size_t p) {
  return p == 0 ? 0.0
               : static_cast<double>(p - 1) / static_cast<double>(p);
}

/// The first variable shared by the two atoms of a binary join, with its
/// positions — the skew-correction key. nullopt when the query is not a
/// binary join on exactly one variable (multi-variable join keys hash
/// jointly; single-value skew does not pin a joint key, so the
/// correction does not apply).
struct SharedVar {
  VarId var = 0;
  std::size_t left_pos = 0;
  std::size_t right_pos = 0;
};

std::optional<SharedVar> SingleSharedVar(const ConjunctiveQuery& query) {
  if (query.body().size() != 2) return std::nullopt;
  const Atom& l = query.body()[0];
  const Atom& r = query.body()[1];
  std::optional<SharedVar> found;
  std::set<VarId> seen;
  for (std::size_t i = 0; i < l.terms.size(); ++i) {
    if (!l.terms[i].IsVar()) continue;
    for (std::size_t j = 0; j < r.terms.size(); ++j) {
      if (!r.terms[j].IsVar() || r.terms[j].var != l.terms[i].var) continue;
      if (!seen.insert(l.terms[i].var).second) continue;
      if (found.has_value()) return std::nullopt;  // Two join variables.
      found = SharedVar{l.terms[i].var, i, j};
    }
  }
  return found;
}

/// Join-value skew candidates of a binary join: every sketched value of
/// either join column, with its per-side frequency (sketch count when
/// the value is in that side's top-k — the upper bound, because missing
/// a pinned server is the expensive mistake — else the uniform
/// average).
struct SkewCandidate {
  Value value;
  double left = 0.0;
  double right = 0.0;
};

std::vector<SkewCandidate> JoinSkewCandidates(const Estimator& estimator,
                                              const SharedVar& shared) {
  std::vector<SkewCandidate> candidates;
  std::set<std::int64_t> seen;
  const auto add_from = [&](std::size_t a, std::size_t pos) {
    for (const SketchEntry& entry : estimator.HeavyEntries(a, pos)) {
      if (!seen.insert(entry.value).second) continue;
      SkewCandidate c;
      c.value = Value{entry.value};
      c.left = estimator.FrequencyAt(0, shared.left_pos, c.value);
      c.right = estimator.FrequencyAt(1, shared.right_pos, c.value);
      candidates.push_back(c);
    }
  };
  add_from(0, shared.left_pos);
  add_from(1, shared.right_pos);
  return candidates;
}

/// Why a strategy cannot run this query, or empty when it can.
std::string BinaryInfeasibility(const ConjunctiveQuery& query,
                                bool needs_shared_var) {
  if (!query.IsPlain()) {
    return "query has negation or inequalities; one-round routers move "
           "positive atoms only";
  }
  if (query.body().size() != 2) {
    return "needs exactly two body atoms, query has " +
           std::to_string(query.body().size());
  }
  if (query.body()[0].relation == query.body()[1].relation) {
    return "self-joins are not supported by the binary-join routers";
  }
  if (needs_shared_var) {
    bool shares_var = false;
    for (const Term& lt : query.body()[0].terms) {
      if (!lt.IsVar()) continue;
      for (const Term& rt : query.body()[1].terms) {
        if (rt.IsVar() && rt.var == lt.var) shares_var = true;
      }
    }
    if (!shares_var) {
      return "atoms share no variable (cross product): there is no join "
             "key to hash on";
    }
  }
  return "";
}

StrategyPrediction CostRepartition(const ConjunctiveQuery& query,
                                   const Schema& schema,
                                   const Catalog& effective,
                                   const Estimator& estimator,
                                   const std::vector<AtomEstimate>& atoms,
                                   const PlanOptions& options) {
  StrategyPrediction out;
  out.strategy = Strategy::kRepartition;
  out.note = BinaryInfeasibility(query, /*needs_shared_var=*/true);
  if (!out.note.empty()) return out;
  out.feasible = true;

  const std::size_t p = options.p;
  const LoadBound bound =
      obs::audit::RepartitionBound(query, schema, effective, p);
  out.base_bound = bound.tuples;
  const double m_total = atoms[0].effective + atoms[1].effective;

  double pinned = 0.0;
  std::string pinned_note;
  if (const std::optional<SharedVar> shared = SingleSharedVar(query)) {
    for (const SkewCandidate& c :
         JoinSkewCandidates(estimator, *shared)) {
      const double group = c.left + c.right;
      const double load =
          group + std::max(0.0, m_total - group) / static_cast<double>(p);
      if (load > pinned) {
        pinned = load;
        pinned_note = "heavy " + query.VarName(shared->var) + "=" +
                      std::to_string(c.value.v) + " pins ~" + Fmt(group) +
                      " tuples on one server";
      }
    }
  }
  const double shipped = ShippedFraction(p);
  out.predicted_max_load = std::max(out.base_bound, pinned) * shipped;
  out.predicted_tuples = m_total * shipped;
  out.predicted_wire_bytes = (atoms[0].effective * atoms[0].fact_bytes +
                              atoms[1].effective * atoms[1].fact_bytes) *
                             shipped;
  out.formula = "max(m/p, f+rest/p) * (p-1)/p; m=" + Fmt(m_total) +
                ", m/p=" + Fmt(out.base_bound);
  if (pinned > out.base_bound) {
    out.note = pinned_note;
    out.formula += ", pinned=" + Fmt(pinned);
  }
  return out;
}

StrategyPrediction CostFragmentReplicate(
    const ConjunctiveQuery& query, const Schema& schema,
    const Catalog& effective, const std::vector<AtomEstimate>& atoms,
    const PlanOptions& options) {
  StrategyPrediction out;
  out.strategy = Strategy::kFragmentReplicate;
  out.note = BinaryInfeasibility(query, /*needs_shared_var=*/true);
  if (!out.note.empty()) return out;
  out.feasible = true;

  const std::size_t p = options.p;
  const auto g = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(std::sqrt(static_cast<double>(p)) + 1e-9)));
  const LoadBound bound = obs::audit::SqrtPBound(query, schema, effective, p);
  out.base_bound = bound.tuples;
  const double shipped = ShippedFraction(p);
  // Replication is blind to values: the grid load is m/g whatever the
  // skew — that is the whole point of the strategy.
  out.predicted_max_load = out.base_bound * shipped;
  const double m_total = atoms[0].effective + atoms[1].effective;
  out.predicted_tuples = m_total * static_cast<double>(g) * shipped;
  out.predicted_wire_bytes = (atoms[0].effective * atoms[0].fact_bytes +
                              atoms[1].effective * atoms[1].fact_bytes) *
                             static_cast<double>(g) * shipped;
  out.formula = "m/floor(sqrt p) * (p-1)/p; m=" + Fmt(m_total) +
                ", g=" + std::to_string(g) + " (skew-independent)";
  return out;
}

StrategyPrediction CostHyperCube(const ConjunctiveQuery& query,
                                 const Schema& schema,
                                 const Catalog& effective,
                                 const Estimator& estimator,
                                 const std::vector<AtomEstimate>& atoms,
                                 const PlanOptions& options) {
  StrategyPrediction out;
  out.strategy = Strategy::kHyperCube;
  if (!query.IsPlain()) {
    out.note = "query has negation or inequalities; the HyperCube grid "
               "routes positive atoms only";
    return out;
  }
  if (query.body().empty()) {
    out.note = "empty body";
    return out;
  }
  out.feasible = true;

  const std::size_t p = options.p;
  std::vector<double> sizes;
  sizes.reserve(atoms.size());
  for (const AtomEstimate& atom : atoms) sizes.push_back(atom.effective);

  // Share selection: the caller's candidates first (benches pass the
  // shares they actually run, so prediction and measurement share a
  // grid), then the LP rounding and the exhaustive integer optimum, then
  // the uniform fallback inside BestShares. Ties keep the earlier entry.
  std::vector<Shares> candidates = options.share_candidates;
  candidates.push_back(LpRoundedShares(query, p));
  candidates.push_back(OptimizeIntegerShares(query, p, sizes));
  out.shares = BestShares(query, p, sizes, candidates);

  const LoadBound bound =
      obs::audit::HyperCubeBound(query, schema, effective, out.shares);
  out.base_bound = bound.tuples;

  // Skew correction: a heavy value h of variable v pins grid coordinate
  // h_v(h); the pinned cell's expected load replaces the uniform 1/a_v
  // split of v's column with (f + rest/a_v) for every atom containing v.
  double pinned = 0.0;
  std::string pinned_note;
  const std::vector<Atom>& body = query.body();
  for (VarId v = 0; v < query.NumVars(); ++v) {
    const std::size_t share = v < out.shares.size() ? out.shares[v] : 1;
    if (share <= 1) continue;  // A 1-share dimension pins nothing extra.
    // Candidate heavy values of v: sketched values of every column v
    // occupies.
    std::set<std::int64_t> values;
    for (std::size_t a = 0; a < body.size(); ++a) {
      for (std::size_t pos = 0; pos < body[a].terms.size(); ++pos) {
        if (!body[a].terms[pos].IsVar() || body[a].terms[pos].var != v) {
          continue;
        }
        for (const SketchEntry& entry : estimator.HeavyEntries(a, pos)) {
          values.insert(entry.value);
        }
      }
    }
    for (const std::int64_t value : values) {
      double load = 0.0;
      for (std::size_t a = 0; a < body.size(); ++a) {
        // Distinct variables of the atom and v's first position in it.
        std::set<VarId> vars;
        std::optional<std::size_t> v_pos;
        for (std::size_t pos = 0; pos < body[a].terms.size(); ++pos) {
          if (!body[a].terms[pos].IsVar()) continue;
          vars.insert(body[a].terms[pos].var);
          if (body[a].terms[pos].var == v && !v_pos) v_pos = pos;
        }
        double divisor = 1.0;
        for (const VarId u : vars) {
          if (u == v) continue;
          divisor *= static_cast<double>(
              u < out.shares.size() ? std::max<std::size_t>(out.shares[u], 1)
                                    : 1);
        }
        const double m_e = a < atoms.size() ? atoms[a].effective : 0.0;
        if (v_pos) {
          const double f = estimator.FrequencyAt(a, *v_pos, Value{value});
          load += (f + std::max(0.0, m_e - f) /
                           static_cast<double>(share)) /
                  divisor;
        } else {
          // v does not occur in the atom: the pinned coordinate changes
          // nothing, the atom contributes its uniform cell share.
          load += m_e / divisor;
        }
      }
      if (load > pinned) {
        pinned = load;
        pinned_note = "heavy " + query.VarName(v) + "=" +
                      std::to_string(value) + " pins one grid coordinate";
      }
    }
  }

  const double shipped = ShippedFraction(p);
  out.predicted_max_load = std::max(out.base_bound, pinned) * shipped;
  // Replication of atom e: the product of the shares of the variables e
  // does not constrain.
  double tuples = 0.0;
  double bytes = 0.0;
  for (std::size_t a = 0; a < body.size() && a < atoms.size(); ++a) {
    std::set<VarId> vars;
    for (const Term& term : body[a].terms) {
      if (term.IsVar()) vars.insert(term.var);
    }
    double replication = 1.0;
    for (VarId u = 0; u < query.NumVars(); ++u) {
      if (vars.count(u) > 0) continue;
      replication *= static_cast<double>(
          u < out.shares.size() ? std::max<std::size_t>(out.shares[u], 1)
                                : 1);
    }
    tuples += atoms[a].effective * replication;
    bytes += atoms[a].effective * replication * atoms[a].fact_bytes;
  }
  out.predicted_tuples = tuples * shipped;
  out.predicted_wire_bytes = bytes * shipped;
  out.formula =
      "max(sum_e m_e/prod_{v in e} a_v, pinned-cell) * (p-1)/p; " +
      bound.formula;
  if (pinned > out.base_bound) {
    out.note = pinned_note;
    out.formula += ", pinned=" + Fmt(pinned);
  }
  return out;
}

StrategyPrediction CostSharesSkew(const ConjunctiveQuery& query,
                                  const Schema& schema,
                                  const Catalog& effective,
                                  const Estimator& estimator,
                                  const std::vector<AtomEstimate>& atoms,
                                  const PlanOptions& options) {
  StrategyPrediction out;
  out.strategy = Strategy::kSharesSkew;
  out.note = BinaryInfeasibility(query, /*needs_shared_var=*/true);
  if (!out.note.empty()) return out;
  out.feasible = true;

  const std::size_t p = options.p;
  // The guarantee SharesSkew audits against is the skew-independent
  // m/floor(sqrt p); the prediction models the implemented split
  // (mpc/shares_skew.cc): heavy values detected at threshold
  // m_max/sqrt(p), half the servers hash the light values, the rest
  // split into one g x g fragment-replicate sub-grid per heavy value.
  out.base_bound =
      obs::audit::SqrtPBound(query, schema, effective, p).tuples;

  const double m_max = std::max(atoms[0].effective, atoms[1].effective);
  const double m_total = atoms[0].effective + atoms[1].effective;
  double threshold =
      m_max / std::sqrt(static_cast<double>(std::max<std::size_t>(p, 1)));
  if (threshold < 1.0) threshold = 1.0;

  const std::optional<SharedVar> shared = SingleSharedVar(query);
  std::vector<SkewCandidate> heavy;
  std::vector<SkewCandidate> light;
  if (shared) {
    for (const SkewCandidate& c : JoinSkewCandidates(estimator, *shared)) {
      // Runtime detection compares exact per-column counts against the
      // threshold; the sketch count is its upper bound, so detection
      // here errs toward treating borderline values as heavy.
      if (std::max(c.left, c.right) >= threshold) {
        heavy.push_back(c);
      } else {
        light.push_back(c);
      }
    }
  }

  const std::size_t h = heavy.size();
  const std::size_t p_light =
      h == 0 ? p : std::max<std::size_t>(1, p / 2);
  const std::size_t p_b =
      h == 0 ? 0 : std::max<std::size_t>(1, (p - p_light) / h);
  const std::size_t g =
      h == 0 ? 1
             : std::max<std::size_t>(
                   1, static_cast<std::size_t>(std::floor(
                          std::sqrt(static_cast<double>(p_b)) + 1e-9)));

  double heavy_mass = 0.0;
  double heavy_load = 0.0;
  for (const SkewCandidate& c : heavy) {
    heavy_mass += c.left + c.right;
    heavy_load = std::max(heavy_load,
                          (c.left + c.right) / static_cast<double>(g));
  }
  const double m_light = std::max(0.0, m_total - heavy_mass);
  double light_load = m_light / static_cast<double>(p_light);
  for (const SkewCandidate& c : light) {
    const double group = c.left + c.right;
    light_load = std::max(
        light_load, group + std::max(0.0, m_light - group) /
                                static_cast<double>(p_light));
  }

  const double shipped = ShippedFraction(p);
  out.predicted_max_load = std::max(light_load, heavy_load) * shipped;
  out.predicted_tuples =
      (m_light + heavy_mass * static_cast<double>(g)) * shipped;
  // Bytes: split the shipped tuples between the two relations in
  // proportion to their effective sizes (the sketches do not say which
  // side a heavy group's replicas come from precisely enough to matter).
  const double avg_bytes =
      m_total > 0.0 ? (atoms[0].effective * atoms[0].fact_bytes +
                       atoms[1].effective * atoms[1].fact_bytes) /
                          m_total
                    : 0.0;
  out.predicted_wire_bytes = out.predicted_tuples * avg_bytes;
  out.formula = "max(m_light/p_light, f_heavy/g) * (p-1)/p; h=" +
                std::to_string(h) + ", p_light=" + std::to_string(p_light) +
                ", g=" + std::to_string(g) +
                ", threshold=" + Fmt(threshold);
  if (h > 0) {
    out.note = std::to_string(h) +
               " heavy join value(s) over threshold ~" + Fmt(threshold) +
               "; heaviest group ~" + Fmt(heavy_mass) + " tuples";
  }
  return out;
}

}  // namespace

std::vector<StrategyPrediction> CostStrategies(
    const ConjunctiveQuery& query, const Schema& schema,
    const obs::audit::Catalog& catalog, const Estimator& estimator,
    const std::vector<AtomEstimate>& atoms, const PlanOptions& options) {
  const Catalog effective = EffectiveCatalog(catalog, atoms);
  std::vector<StrategyPrediction> out;
  out.push_back(CostRepartition(query, schema, effective, estimator, atoms,
                                options));
  out.push_back(
      CostHyperCube(query, schema, effective, estimator, atoms, options));
  out.push_back(CostSharesSkew(query, schema, effective, estimator, atoms,
                               options));
  out.push_back(
      CostFragmentReplicate(query, schema, effective, atoms, options));
  return out;
}

}  // namespace lamp::sa::plan
