#ifndef LAMP_SA_PLAN_COST_H_
#define LAMP_SA_PLAN_COST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "distribution/hypercube.h"
#include "obs/audit/bounds.h"
#include "sa/plan/estimate.h"

/// \file
/// The strategy cost model (stage three of the planner). Every strategy
/// the repo implements is scored on the *same* closed forms the audit
/// layer checks measured runs against (obs/audit/bounds.h):
///
///   repartition        base m/p       (RepartitionBound)
///   fragment-replicate base m/floor(sqrt p)  (SqrtPBound; skew-free AND
///                      skewed — replication is blind to values)
///   hypercube          base sum_e m_e / prod_{v in e} a_v
///                      (HyperCubeBound at the chosen shares)
///   shares_skew        modeled on the implemented algorithm
///                      (mpc/shares_skew.cc): light hash region p/2 plus
///                      per-heavy-value g x g fragment-replicate grids
///
/// On top of each base the model adds the *skew correction* the bounds
/// deliberately omit: a heavy join value pins one server/cell, which
/// receives the whole heavy group plus its hash share of the rest. Heavy
/// frequencies come from the catalog's Space-Saving sketches — the
/// upper-bound counts, because failing to predict a pinned server is the
/// expensive mistake (the audit layer then measures it).
///
/// predicted_max_load is a *prediction* (compare to the measured max:
/// the planner-agreement gate), while base_bound is the audit *pass
/// threshold* — the same number bounds.h computes.

namespace lamp::sa::plan {

struct PlanOptions {
  std::size_t p = 4;            // Server budget.
  /// Heavy-hitter fraction for hazard notes (matches
  /// RelationStats::HasHeavyHitter).
  double heavy_fraction = 0.05;
  /// Extra share vectors to consider for hypercube, tried before the
  /// uniform fallback; benches pass the shares they actually run so the
  /// prediction and the measurement use the same grid.
  std::vector<Shares> share_candidates;
  /// Relative predicted-cost gap under which two strategies count as a
  /// tie (the verdict is "either"; see agreement.h).
  double tie_margin = 0.02;
};

/// One strategy's score.
struct StrategyPrediction {
  obs::audit::Strategy strategy = obs::audit::Strategy::kNone;
  bool feasible = false;
  std::string note;                // Why infeasible, or skew commentary.
  double base_bound = 0.0;         // Exact bounds.h closed form.
  double predicted_max_load = 0.0; // Base + heavy-hitter correction.
  double predicted_tuples = 0.0;   // Total shipped tuples (communication).
  double predicted_wire_bytes = 0.0;  // Payload bytes (framing excluded).
  Shares shares;                   // HyperCube only.
  std::string formula;             // How predicted_max_load was derived.
};

/// Scores all four one-round strategies for \p query over the (already
/// rewritten) \p atoms. Infeasible strategies are returned with
/// feasible=false and a reason. The effective sizes in \p atoms are fed
/// through the bounds.h formulas by building a shadow catalog whose
/// cardinalities are the effective ones, so base_bound equals the exact
/// closed form whenever no rewrite fired.
std::vector<StrategyPrediction> CostStrategies(
    const ConjunctiveQuery& query, const Schema& schema,
    const obs::audit::Catalog& catalog, const Estimator& estimator,
    const std::vector<AtomEstimate>& atoms, const PlanOptions& options);

}  // namespace lamp::sa::plan

#endif  // LAMP_SA_PLAN_COST_H_
