#ifndef LAMP_SA_PLAN_ESTIMATE_H_
#define LAMP_SA_PLAN_ESTIMATE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/cq.h"
#include "obs/audit/catalog.h"
#include "relational/schema.h"

/// \file
/// Cardinality estimation over the statistics catalog ("lamp.catalog.v1",
/// obs/audit/catalog.h) — the first stage of the static planner
/// (sa/plan/plan.h). Estimates follow the System-R independence
/// assumption, corrected by the Space-Saving heavy-hitter profiles the
/// catalog carries: a join column with a heavy value contributes its
/// sketched frequency product instead of the uniform m/d average, which
/// is exactly the regime where the independence assumption collapses
/// (and where the one-round strategies diverge — see cost.h).

namespace lamp::sa::plan {

/// One positive body atom with its catalog statistics resolved.
struct AtomEstimate {
  std::size_t atom_index = 0;  // Index into query.body().
  std::string relation;        // Relation name (schema).
  std::size_t arity = 0;
  bool in_catalog = false;     // Catalog has an entry for the relation.
  double cardinality = 0.0;    // Raw catalog cardinality.
  double effective = 0.0;      // After rewrites (starts == cardinality).
  double fact_bytes = 0.0;     // Predicted wire bytes of one encoded fact.
};

/// Read-only estimator bound to one (query, schema, catalog) triple.
/// Column lookups are positional: atom \p a, term position \p pos.
class Estimator {
 public:
  Estimator(const ConjunctiveQuery& query, const Schema& schema,
            const obs::audit::Catalog& catalog);

  /// Per-atom statistics with effective == cardinality (pre-rewrite).
  /// Atoms over relations the catalog does not know get in_catalog=false
  /// and size 0 — a hazard the lint pass also flags.
  std::vector<AtomEstimate> InitialAtoms() const;

  /// Catalog column stats of body atom \p a at position \p pos; nullptr
  /// when the relation is unknown or the position is out of range.
  const obs::audit::ColumnStats* ColumnAt(std::size_t a,
                                          std::size_t pos) const;

  /// Distinct-value count at (atom, pos); 0 when unknown.
  double DistinctAt(std::size_t a, std::size_t pos) const;

  /// Sketch frequency of \p value at (atom, pos): the Space-Saving count
  /// (an upper bound on the true frequency) when the value is among the
  /// catalog's top-k entries, otherwise the uniform average m/d. 0 when
  /// the column is unknown or empty.
  double FrequencyAt(std::size_t a, std::size_t pos, Value value) const;

  /// Sketch entries of (atom, pos) that are *demonstrably* heavy: the
  /// guaranteed lower bound (count - error) strictly exceeds the column's
  /// uniform average m/d. On a uniform column the sketch still carries
  /// top-k entries, but their counts are almost pure overestimation error
  /// (~m/capacity each) — treating those as skew candidates would add a
  /// phantom pinned-server correction to every strategy. Empty when the
  /// column is unknown.
  std::vector<obs::audit::SketchEntry> HeavyEntries(std::size_t a,
                                                    std::size_t pos) const;

  /// Estimated output cardinality of the query over \p atoms (their
  /// `effective` sizes): independence-assumption product divided by
  /// (max distinct)^(occurrences-1) per shared variable, with the
  /// heavy-hitter product correction on binary single-variable joins.
  double EstimateOutput(const std::vector<AtomEstimate>& atoms) const;

  const ConjunctiveQuery& query() const { return query_; }
  const Schema& schema() const { return schema_; }
  const obs::audit::Catalog& catalog() const { return catalog_; }

 private:
  const ConjunctiveQuery& query_;
  const Schema& schema_;
  const obs::audit::Catalog& catalog_;
  /// relations_[a] = catalog entry of body atom a (nullptr if unknown).
  std::vector<const obs::audit::RelationStats*> relations_;
};

}  // namespace lamp::sa::plan

#endif  // LAMP_SA_PLAN_ESTIMATE_H_
