#ifndef LAMP_SA_PLAN_REWRITE_H_
#define LAMP_SA_PLAN_REWRITE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "cq/cq.h"
#include "sa/plan/estimate.h"

/// \file
/// Logical rewrites the planner applies before costing (stage two of
/// estimates -> rewrites -> cost -> certificate). Rewrites never change
/// the query object — they adjust the *effective* atom cardinalities the
/// cost model sees and record what execution would have to do to realize
/// them:
///
///  * filter pushdown: a constant (or repeated variable) in an atom
///    filters the relation before the shuffle, so routing moves only the
///    selected tuples;
///  * semi-join reducer: when one side of a join is much larger than the
///    domain of the other, shipping the small side's join keys first
///    (a Bloom/IN-list pre-pass) shrinks the big side before the shuffle;
///  * cross-product detection: disconnected body components have no join
///    key to route on — every one-round strategy degenerates to
///    broadcast. Detected here, surfaced as a certificate hazard, and
///    warned on by the lamp_lint cross-product pass.

namespace lamp::sa::plan {

enum class RewriteKind {
  kFilterPushdown,
  kSemiJoinReducer,
  kCrossProduct,
};

std::string_view RewriteKindName(RewriteKind kind);

/// One applied rewrite. For kCrossProduct, `atom` is the first atom of
/// the second component and before/after are both the query's total size
/// (nothing shrinks; it is a hazard marker).
struct Rewrite {
  RewriteKind kind = RewriteKind::kFilterPushdown;
  std::size_t atom = 0;        // Target body atom index.
  std::string description;
  double before = 0.0;         // Effective cardinality before.
  double after = 0.0;          // Effective cardinality after.
};

/// Connected components of the positive body atoms under shared
/// variables: result[a] = component id of atom a (ids are dense, in
/// first-occurrence order). Constants never connect atoms.
std::vector<std::size_t> JoinComponents(const ConjunctiveQuery& query);

/// Applies all rewrites in a fixed order (pushdowns, then reducers, then
/// cross-product detection), mutating the atoms' `effective` sizes and
/// returning the applied list.
std::vector<Rewrite> ApplyRewrites(const ConjunctiveQuery& query,
                                   const Estimator& estimator,
                                   std::vector<AtomEstimate>& atoms);

}  // namespace lamp::sa::plan

#endif  // LAMP_SA_PLAN_REWRITE_H_
