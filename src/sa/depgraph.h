#ifndef LAMP_SA_DEPGRAPH_H_
#define LAMP_SA_DEPGRAPH_H_

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "datalog/program.h"
#include "relational/schema.h"

/// \file
/// The predicate dependency graph of a Datalog program: one node per
/// relation, one edge head -> body-relation per body (or negated) atom,
/// labeled positive/negative and carrying the rule that induced it.
///
/// Everything the static analyzer certifies syntactically reduces to
/// questions about this graph: stratifiability is the absence of a
/// negative edge inside a strongly connected component, the stratum
/// assignment is a longest-path computation over the SCC condensation,
/// and dead derivations are condensation nodes unreachable from the
/// declared outputs. Unlike DatalogProgram::Stratify() — which only
/// answers yes/no plus a rule grouping — the graph produces *witnesses*:
/// the concrete negation cycle (relations, rule, atom) refuting
/// stratifiability, suitable for machine-readable diagnostics.

namespace lamp::sa {

/// One dependency: the head of rule \p rule_index reads \p body.
struct DepEdge {
  RelationId head = 0;
  RelationId body = 0;
  bool negative = false;
  std::size_t rule_index = 0;
  /// Index into rule.body() (positive) or rule.negated() (negative).
  std::size_t atom_index = 0;
};

/// Witness that a program does not stratify: a dependency cycle
/// `relations[0] -> relations[1] -> ... -> relations[0]` whose first step
/// is the negative edge contributed by rule \p rule_index (negated atom
/// \p atom_index).
struct NegationCycle {
  std::vector<RelationId> relations;
  std::size_t rule_index = 0;
  std::size_t atom_index = 0;
};

/// Renders "WIN -!-> WIN (rule 0)" style summaries for diagnostics.
std::string DescribeNegationCycle(const Schema& schema,
                                  const NegationCycle& cycle);

/// A successful stratification, both by relation and by rule.
struct StratumAssignment {
  /// Stratum per relation (EDB relations sit at stratum 0). Only
  /// relations used by the program are present.
  std::map<RelationId, std::size_t> relation_stratum;
  /// Rule indices grouped by stratum, bottom-up, densely numbered —
  /// the same shape (and, by least-fixpoint uniqueness, the same
  /// grouping) as DatalogProgram::Stratify().
  Stratification rule_strata;
  std::size_t num_strata = 0;
};

class DependencyGraph {
 public:
  explicit DependencyGraph(const DatalogProgram& program);

  const std::vector<DepEdge>& edges() const { return edges_; }
  const std::set<RelationId>& idb() const { return idb_; }
  /// Every relation occurring in some rule (head or body).
  const std::set<RelationId>& used_relations() const { return used_; }

  /// Strongly connected components of the dependency graph, in reverse
  /// topological order: a component is listed before every component
  /// that depends on it. Relations within a component are ascending.
  const std::vector<std::vector<RelationId>>& Components() const {
    return components_;
  }
  std::size_t ComponentOf(RelationId rel) const;

  /// True iff no negative edge closes a cycle (both endpoints in one SCC).
  bool IsStratifiable() const;

  /// The least stratum assignment, or nullopt when a negation cycle
  /// exists (then FindNegationCycle() yields the witness).
  std::optional<StratumAssignment> Stratify() const;

  /// A concrete negation cycle, or nullopt when the program stratifies.
  std::optional<NegationCycle> FindNegationCycle() const;

  /// Rules whose head relation is not reachable from any relation in
  /// \p outputs along dependency edges — their derivations can never
  /// influence an output. Rules heading an output relation itself are
  /// reachable by definition.
  std::vector<std::size_t> UnreachableRules(
      const std::vector<RelationId>& outputs) const;

 private:
  const DatalogProgram& program_;
  std::vector<DepEdge> edges_;
  std::set<RelationId> idb_;
  std::set<RelationId> used_;
  // Dense SCC structures over used_ relations.
  std::vector<std::vector<RelationId>> components_;
  std::map<RelationId, std::size_t> component_of_;
};

}  // namespace lamp::sa

#endif  // LAMP_SA_DEPGRAPH_H_
