#include "sa/analyzer.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/interner.h"
#include "cq/parser.h"

namespace lamp::sa {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string RenderTerm(const ConjunctiveQuery& rule, const Term& t) {
  return t.IsVar() ? rule.VarName(t.var) : std::to_string(t.constant.v);
}

std::string RenderAtom(const Schema& schema, const ConjunctiveQuery& rule,
                       const Atom& atom) {
  std::string out = schema.NameOf(atom.relation);
  out += "(";
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) out += ",";
    out += RenderTerm(rule, atom.terms[i]);
  }
  out += ")";
  return out;
}

std::string RenderRule(const Schema& schema, const ConjunctiveQuery& rule) {
  std::string out = RenderAtom(schema, rule, rule.head());
  out += " <- ";
  bool first = true;
  for (const Atom& atom : rule.body()) {
    if (!first) out += ", ";
    first = false;
    out += RenderAtom(schema, rule, atom);
  }
  for (const Atom& atom : rule.negated()) {
    if (!first) out += ", ";
    first = false;
    out += "!";
    out += RenderAtom(schema, rule, atom);
  }
  for (const auto& [a, b] : rule.inequalities()) {
    if (!first) out += ", ";
    first = false;
    out += RenderTerm(rule, a) + " != " + RenderTerm(rule, b);
  }
  return out;
}

void AddDiagnostic(ProgramAnalysis& analysis, LintSeverity severity,
                   std::string_view pass, int line, std::string message) {
  LintDiagnostic d;
  d.severity = severity;
  d.pass = std::string(pass);
  d.line = line;
  d.message = std::move(message);
  analysis.diagnostics.push_back(std::move(d));
}

/// Runs the graph, fragment and lint analyses over analysis.program and
/// appends the results (after any parse/pragma diagnostics already
/// present).
void RunCore(const Schema& schema, ProgramAnalysis& analysis,
             const AnalyzerOptions& options,
             std::vector<RelationId> declared_relations) {
  analysis.fragments = ClassifyFragments(schema, analysis.program);
  const DependencyGraph graph(analysis.program);
  analysis.strata = graph.Stratify();

  LintOptions lint;
  lint.subsumption = options.subsumption;
  lint.declared_relations = std::move(declared_relations);
  for (const std::string& name : options.outputs) {
    const RelationId id = schema.TryIdOf(name);
    if (id == Interner::kNotFound) {
      AddDiagnostic(analysis, LintSeverity::kWarning, "pragma", -1,
                    "output relation '" + name +
                        "' is not defined by any rule or declaration");
      continue;
    }
    lint.outputs.push_back(id);
  }
  lint.have_catalog = options.have_catalog;
  for (const std::string& name : options.catalog_relations) {
    // Catalog entries for relations the program never mentions are fine
    // (the catalog covers the whole database); only known ids matter.
    const RelationId id = schema.TryIdOf(name);
    if (id != Interner::kNotFound) lint.catalog_relations.push_back(id);
  }

  std::vector<LintDiagnostic> found =
      LintProgram(schema, analysis.program, lint);
  for (LintDiagnostic& d : found) {
    if (d.rule_index >= 0 &&
        static_cast<std::size_t>(d.rule_index) < analysis.rule_lines.size()) {
      d.line = analysis.rule_lines[static_cast<std::size_t>(d.rule_index)];
    }
    analysis.diagnostics.push_back(std::move(d));
  }
}

}  // namespace

std::size_t ProgramAnalysis::ErrorCount() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const LintDiagnostic& d) {
                      return d.severity == LintSeverity::kError;
                    }));
}

std::size_t ProgramAnalysis::WarningCount() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const LintDiagnostic& d) {
                      return d.severity == LintSeverity::kWarning;
                    }));
}

ProgramAnalysis AnalyzeProgram(const Schema& schema,
                               const DatalogProgram& program,
                               const AnalyzerOptions& options) {
  ProgramAnalysis analysis;
  analysis.program = program;
  RunCore(schema, analysis, options, {});
  return analysis;
}

ProgramAnalysis AnalyzeProgramText(Schema& schema, std::string_view text,
                                   const AnalyzerOptions& options) {
  ProgramAnalysis analysis;
  std::vector<RelationId> declared;
  std::vector<std::string> output_names = options.outputs;

  int line_no = 0;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t eol = rest.find('\n');
    std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 1);
    ++line_no;
    line = Trim(line);
    if (line.empty()) continue;

    if (line.front() == '#' || line.front() == '%') {
      // Comments may carry pragmas: "# @edb NAME/ARITY", "# @output NAME".
      std::string_view body = Trim(line.substr(1));
      if (body.rfind("@edb ", 0) == 0) {
        const std::string_view spec = Trim(body.substr(5));
        const std::size_t slash = spec.find('/');
        std::size_t arity = 0;
        bool arity_ok = slash != std::string_view::npos &&
                        slash + 1 < spec.size();
        if (arity_ok) {
          for (char c : spec.substr(slash + 1)) {
            if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
              arity_ok = false;
              break;
            }
            arity = arity * 10 + static_cast<std::size_t>(c - '0');
          }
        }
        if (!arity_ok) {
          AddDiagnostic(analysis, LintSeverity::kError, "pragma", line_no,
                        "malformed @edb pragma (expected '@edb NAME/ARITY')");
          analysis.parse_ok = false;
          continue;
        }
        const std::string name(Trim(spec.substr(0, slash)));
        const RelationId existing = schema.TryIdOf(name);
        if (existing != Interner::kNotFound &&
            schema.ArityOf(existing) != arity) {
          AddDiagnostic(analysis, LintSeverity::kError, "pragma", line_no,
                        "@edb declares " + name + "/" +
                            std::to_string(arity) + " but " + name +
                            " is already registered with arity " +
                            std::to_string(schema.ArityOf(existing)));
          analysis.parse_ok = false;
          continue;
        }
        declared.push_back(schema.AddRelation(name, arity));
      } else if (body.rfind("@output ", 0) == 0) {
        output_names.emplace_back(Trim(body.substr(8)));
      }
      continue;
    }

    CqParseResult parsed = TryParseQuery(schema, line);
    if (!parsed.ok()) {
      AddDiagnostic(analysis, LintSeverity::kError, "parse", line_no,
                    parsed.error);
      analysis.parse_ok = false;
      continue;
    }
    analysis.program.AddRule(std::move(*parsed.query));
    analysis.rule_lines.push_back(line_no);
  }

  AnalyzerOptions core = options;
  core.outputs = std::move(output_names);
  RunCore(schema, analysis, core, std::move(declared));
  return analysis;
}

obs::JsonValue AnalysisToJson(const Schema& schema,
                              const ProgramAnalysis& analysis) {
  using obs::JsonValue;
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.sa.v1");
  doc.Set("program", analysis.name);
  doc.Set("parse_ok", analysis.parse_ok);

  JsonValue rules = JsonValue::Array();
  for (const ConjunctiveQuery& rule : analysis.program.rules()) {
    rules.PushBack(RenderRule(schema, rule));
  }
  doc.Set("num_rules", analysis.program.rules().size());
  doc.Set("rules", std::move(rules));

  JsonValue strat = JsonValue::Object();
  strat.Set("stratified", analysis.strata.has_value());
  if (analysis.strata.has_value()) {
    strat.Set("num_strata", analysis.strata->num_strata);
    JsonValue strata = JsonValue::Array();
    for (const std::vector<std::size_t>& stratum :
         analysis.strata->rule_strata) {
      JsonValue indices = JsonValue::Array();
      for (std::size_t k : stratum) indices.PushBack(k);
      strata.PushBack(std::move(indices));
    }
    strat.Set("rule_strata", std::move(strata));
    JsonValue per_relation = JsonValue::Object();
    for (const auto& [rel, s] : analysis.strata->relation_stratum) {
      per_relation.Set(schema.NameOf(rel), s);
    }
    strat.Set("relation_strata", std::move(per_relation));
  } else if (analysis.fragments.cycle.has_value()) {
    strat.Set("cycle",
              DescribeNegationCycle(schema, *analysis.fragments.cycle));
  }
  doc.Set("stratification", std::move(strat));

  JsonValue fragments = JsonValue::Object();
  for (Fragment fragment : kAllFragments) {
    const FragmentVerdict& verdict = analysis.fragments.Verdict(fragment);
    JsonValue v = JsonValue::Object();
    v.Set("class", FragmentClassName(fragment));
    v.Set("certified", verdict.certified);
    JsonValue refutations = JsonValue::Array();
    for (const FragmentRefutation& r : verdict.refutations) {
      JsonValue rj = JsonValue::Object();
      rj.Set("rule", r.rule_index);
      rj.Set("atom", r.atom_index);
      rj.Set("negated", r.in_negated);
      rj.Set("reason", r.reason);
      refutations.PushBack(std::move(rj));
    }
    v.Set("refutations", std::move(refutations));
    fragments.Set(FragmentName(fragment), std::move(v));
  }
  doc.Set("fragments", std::move(fragments));
  doc.Set("strongest_fragment",
          analysis.fragments.strongest.has_value()
              ? JsonValue(FragmentName(*analysis.fragments.strongest))
              : JsonValue());
  doc.Set("monotonicity_class",
          analysis.fragments.strongest.has_value()
              ? JsonValue(FragmentClassName(*analysis.fragments.strongest))
              : JsonValue());

  JsonValue diagnostics = JsonValue::Array();
  for (const LintDiagnostic& d : analysis.diagnostics) {
    JsonValue dj = JsonValue::Object();
    dj.Set("severity", LintSeverityName(d.severity));
    dj.Set("pass", d.pass);
    dj.Set("rule", d.rule_index);
    dj.Set("line", d.line);
    dj.Set("message", d.message);
    diagnostics.PushBack(std::move(dj));
  }
  doc.Set("diagnostics", std::move(diagnostics));
  doc.Set("errors", analysis.ErrorCount());
  doc.Set("warnings", analysis.WarningCount());
  return doc;
}

std::string RenderAnalysisText(const Schema& schema,
                               const ProgramAnalysis& analysis) {
  std::string out = "program";
  if (!analysis.name.empty()) out += " '" + analysis.name + "'";
  out += ": " + std::to_string(analysis.program.rules().size()) + " rules";
  if (!analysis.parse_ok) out += " (with parse errors)";
  out += "\n";

  if (analysis.strata.has_value()) {
    out += "stratified: yes (" +
           std::to_string(analysis.strata->num_strata) + " strat" +
           (analysis.strata->num_strata == 1 ? "um" : "a") + ")\n";
  } else {
    out += "stratified: no";
    if (analysis.fragments.cycle.has_value()) {
      out += " — " +
             DescribeNegationCycle(schema, *analysis.fragments.cycle);
    }
    out += "\n";
  }

  for (Fragment fragment : kAllFragments) {
    const FragmentVerdict& verdict = analysis.fragments.Verdict(fragment);
    out += "  " + std::string(FragmentName(fragment)) + " (" +
           std::string(FragmentClassName(fragment)) + "): ";
    if (verdict.certified) {
      out += "certified\n";
    } else {
      out += "refuted\n";
      for (const FragmentRefutation& r : verdict.refutations) {
        out += "    - " + r.reason + "\n";
      }
    }
  }
  if (analysis.fragments.strongest.has_value()) {
    out += "strongest certificate: " +
           std::string(FragmentName(*analysis.fragments.strongest)) +
           " => class " +
           std::string(FragmentClassName(*analysis.fragments.strongest)) +
           "\n";
  } else {
    out += "strongest certificate: none (outside every fragment)\n";
  }

  out += "diagnostics: " + std::to_string(analysis.ErrorCount()) +
         " error(s), " + std::to_string(analysis.WarningCount()) +
         " warning(s)\n";
  for (const LintDiagnostic& d : analysis.diagnostics) {
    out += "  " + std::string(LintSeverityName(d.severity)) + "[" + d.pass +
           "]";
    if (d.rule_index >= 0) out += " rule " + std::to_string(d.rule_index);
    if (d.line >= 0) out += " (line " + std::to_string(d.line) + ")";
    out += ": " + d.message + "\n";
  }
  return out;
}

}  // namespace lamp::sa
