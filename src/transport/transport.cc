#include "transport/transport.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"

namespace lamp::transport {

namespace {

/// Read chunk size of the relay loop and the endpoint receive path.
constexpr std::size_t kReadChunk = 1 << 16;

void EmitConnect(TransportKind kind, std::size_t endpoints, std::size_t fds) {
  obs::Emit(obs::EventKind::kTransportConnect,
            static_cast<std::uint32_t>(endpoints),
            static_cast<std::uint32_t>(kind), fds);
}

void EmitSend(const WireFrame& frame, std::size_t bytes) {
  obs::Emit(obs::EventKind::kTransportSend, frame.from, frame.to, bytes);
}

void EmitRecv(const WireFrame& frame, std::size_t bytes) {
  obs::Emit(obs::EventKind::kTransportRecv, frame.to, frame.from, bytes);
}

/// The default backend: one FIFO deque per (from, to) channel. Frames are
/// never serialized, but wire bytes are accounted with FrameWireSize so
/// the in-process numbers match what the socket backends measure.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(std::size_t num_endpoints)
      : n_(num_endpoints), channels_(num_endpoints * num_endpoints) {
    EmitConnect(TransportKind::kInProcess, n_, 0);
  }

  TransportKind kind() const override { return TransportKind::kInProcess; }
  std::size_t num_endpoints() const override { return n_; }

  void Send(WireFrame frame) override {
    LAMP_CHECK(frame.from < n_ && frame.to < n_);
    const std::size_t bytes = FrameWireSize(frame);
    EmitSend(frame, bytes);
    Channel& ch = channels_[frame.from * n_ + frame.to];
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      ch.frames.push_back(std::move(frame));
    }
    ch.cv.notify_one();
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  }

  WireFrame Recv(std::uint32_t to, std::uint32_t from) override {
    LAMP_CHECK(from < n_ && to < n_);
    Channel& ch = channels_[static_cast<std::size_t>(from) * n_ + to];
    std::unique_lock<std::mutex> lock(ch.mu);
    ch.cv.wait(lock, [&ch] { return !ch.frames.empty(); });
    WireFrame frame = std::move(ch.frames.front());
    ch.frames.pop_front();
    lock.unlock();
    const std::size_t bytes = FrameWireSize(frame);
    EmitRecv(frame, bytes);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
    return frame;
  }

  void Shutdown() override {}

  WireStats stats() const override {
    return WireStats{frames_sent_.load(std::memory_order_relaxed),
                     bytes_sent_.load(std::memory_order_relaxed),
                     frames_received_.load(std::memory_order_relaxed),
                     bytes_received_.load(std::memory_order_relaxed)};
  }

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<WireFrame> frames;
  };

  std::size_t n_;
  std::vector<Channel> channels_;
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

void WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      LAMP_CHECK_MSG(false, "transport: socket write failed");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Socket backends: every endpoint holds one stream socket whose peer end
/// belongs to a relay thread that forwards frames to their destination
/// endpoint. The relay polls, never blocks on writes (pending bytes queue
/// in userspace), so senders cannot deadlock against receivers that have
/// not started draining — the shape of an MPC communication phase.
class SocketRelayTransport final : public Transport {
 public:
  SocketRelayTransport(TransportKind kind, std::size_t num_endpoints)
      : kind_(kind), n_(num_endpoints), endpoints_(num_endpoints) {
    std::vector<int> relay_fds;
    if (kind_ == TransportKind::kUds) {
      relay_fds = ConnectUds();
    } else {
      relay_fds = ConnectTcp();
    }
    EmitConnect(kind_, n_, 2 * n_);
    relay_ = std::thread([this, relay_fds] { RelayLoop(relay_fds); });
  }

  ~SocketRelayTransport() override { Shutdown(); }

  TransportKind kind() const override { return kind_; }
  std::size_t num_endpoints() const override { return n_; }

  void Send(WireFrame frame) override {
    LAMP_CHECK(frame.from < n_ && frame.to < n_);
    Endpoint& ep = endpoints_[frame.from];
    std::vector<std::uint8_t> bytes;
    bytes.reserve(FrameWireSize(frame));
    AppendFrame(bytes, frame);
    EmitSend(frame, bytes.size());
    {
      std::lock_guard<std::mutex> lock(ep.send_mu);
      WriteAll(ep.fd, bytes.data(), bytes.size());
    }
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
  }

  WireFrame Recv(std::uint32_t to, std::uint32_t from) override {
    LAMP_CHECK(from < n_ && to < n_);
    Endpoint& ep = endpoints_[to];
    std::lock_guard<std::mutex> lock(ep.recv_mu);
    while (ep.inbox[from].empty()) {
      // Drain the endpoint socket; frames for other channels of `to` are
      // buffered in their inbox, preserving per-channel FIFO.
      std::uint8_t buf[kReadChunk];
      const ssize_t n = ::read(ep.fd, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;
      LAMP_CHECK_MSG(n > 0, "transport: socket closed while receiving");
      ep.decoder.Feed(buf, static_cast<std::size_t>(n));
      while (std::optional<WireFrame> frame = ep.decoder.Next()) {
        LAMP_CHECK_MSG(frame->to == to && frame->from < n_,
                       "transport: misrouted frame");
        ep.inbox[frame->from].push_back(*std::move(frame));
      }
      LAMP_CHECK_MSG(!ep.decoder.error(), "transport: corrupt frame stream");
    }
    WireFrame frame = std::move(ep.inbox[from].front());
    ep.inbox[from].pop_front();
    const std::size_t bytes = FrameWireSize(frame);
    EmitRecv(frame, bytes);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
    return frame;
  }

  void Shutdown() override {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    // Wake the relay: one byte down the self-pipe, then join.
    const std::uint8_t byte = 0;
    WriteAll(wake_pipe_[1], &byte, 1);
    if (relay_.joinable()) relay_.join();
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    for (Endpoint& ep : endpoints_) {
      if (ep.fd >= 0) ::close(ep.fd);
      ep.fd = -1;
    }
  }

  WireStats stats() const override {
    return WireStats{frames_sent_.load(std::memory_order_relaxed),
                     bytes_sent_.load(std::memory_order_relaxed),
                     frames_received_.load(std::memory_order_relaxed),
                     bytes_received_.load(std::memory_order_relaxed)};
  }

 private:
  struct Endpoint {
    int fd = -1;
    std::mutex send_mu;
    std::mutex recv_mu;
    FrameDecoder decoder;
    std::vector<std::deque<WireFrame>> inbox;
  };

  /// One socketpair per endpoint: [0] stays with the endpoint, [1] goes to
  /// the relay. Rank mapping is positional — no handshake needed.
  std::vector<int> ConnectUds() {
    std::vector<int> relay_fds(n_, -1);
    for (std::size_t i = 0; i < n_; ++i) {
      int sv[2];
      LAMP_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                     "transport: socketpair failed");
      endpoints_[i].fd = sv[0];
      endpoints_[i].inbox.resize(n_);
      relay_fds[i] = sv[1];
    }
    InitWakePipe();
    return relay_fds;
  }

  /// One listener on an ephemeral 127.0.0.1 port; every endpoint connects
  /// and identifies itself with a kHello frame (accept order on loopback
  /// is not a rank order).
  std::vector<int> ConnectTcp() {
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    LAMP_CHECK_MSG(listener >= 0, "transport: socket failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    LAMP_CHECK_MSG(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0,
                   "transport: bind failed");
    socklen_t len = sizeof addr;
    LAMP_CHECK(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0);
    LAMP_CHECK_MSG(::listen(listener, static_cast<int>(n_)) == 0,
                   "transport: listen failed");

    std::vector<int> relay_fds(n_, -1);
    for (std::size_t i = 0; i < n_; ++i) {
      const int client = ::socket(AF_INET, SOCK_STREAM, 0);
      LAMP_CHECK_MSG(client >= 0, "transport: socket failed");
      LAMP_CHECK_MSG(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                               sizeof addr) == 0,
                     "transport: connect failed");
      const int accepted = ::accept(listener, nullptr, nullptr);
      LAMP_CHECK_MSG(accepted >= 0, "transport: accept failed");
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      ::setsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      endpoints_[i].fd = client;
      endpoints_[i].inbox.resize(n_);
      // Identify the accepted connection: the endpoint sends hello(rank).
      std::vector<std::uint8_t> hello;
      WireFrame frame;
      frame.type = FrameType::kHello;
      frame.from = static_cast<std::uint32_t>(i);
      frame.to = static_cast<std::uint32_t>(i);
      frame.payload = EncodeHelloPayload(i, 0);
      AppendFrame(hello, frame);
      WriteAll(client, hello.data(), hello.size());
      FrameDecoder decoder;
      std::optional<WireFrame> got;
      while (!got) {
        std::uint8_t buf[64];
        const ssize_t r = ::read(accepted, buf, sizeof buf);
        LAMP_CHECK_MSG(r > 0, "transport: handshake read failed");
        decoder.Feed(buf, static_cast<std::size_t>(r));
        got = decoder.Next();
        LAMP_CHECK_MSG(!decoder.error(), "transport: handshake corrupt");
      }
      LAMP_CHECK(got->type == FrameType::kHello);
      const auto hello_payload = DecodeHelloPayload(got->payload);
      LAMP_CHECK(hello_payload.has_value() && hello_payload->rank < n_);
      LAMP_CHECK_MSG(relay_fds[hello_payload->rank] == -1,
                     "transport: duplicate rank in handshake");
      relay_fds[hello_payload->rank] = accepted;
    }
    ::close(listener);
    InitWakePipe();
    return relay_fds;
  }

  void InitWakePipe() {
    LAMP_CHECK_MSG(::pipe(wake_pipe_) == 0, "transport: pipe failed");
  }

  /// Forwards frames between endpoint sockets. Reads are level-triggered
  /// poll; writes are non-blocking with per-destination userspace queues.
  void RelayLoop(std::vector<int> fds) {
    std::vector<FrameDecoder> decoders(n_);
    // Pending output per destination: raw frame bytes plus a head cursor.
    std::vector<std::vector<std::uint8_t>> pending(n_);
    std::vector<std::size_t> head(n_, 0);
    std::vector<pollfd> poll_set(n_ + 1);

    for (std::size_t i = 0; i < n_; ++i) {
      const int flags = ::fcntl(fds[i], F_GETFL, 0);
      ::fcntl(fds[i], F_SETFL, flags | O_NONBLOCK);
    }

    while (true) {
      for (std::size_t i = 0; i < n_; ++i) {
        poll_set[i].fd = fds[i];
        poll_set[i].events = POLLIN;
        if (head[i] < pending[i].size()) poll_set[i].events |= POLLOUT;
        poll_set[i].revents = 0;
      }
      poll_set[n_] = {wake_pipe_[0], POLLIN, 0};
      const int rc = ::poll(poll_set.data(), poll_set.size(), -1);
      if (rc < 0 && errno == EINTR) continue;
      LAMP_CHECK_MSG(rc >= 0, "transport: poll failed");
      if ((poll_set[n_].revents & POLLIN) != 0) break;  // Shutdown.

      for (std::size_t i = 0; i < n_; ++i) {
        if ((poll_set[i].revents & (POLLIN | POLLHUP)) != 0) {
          std::uint8_t buf[kReadChunk];
          while (true) {
            const ssize_t n = ::read(fds[i], buf, sizeof buf);
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) break;  // Peer gone; shutdown will follow.
            decoders[i].Feed(buf, static_cast<std::size_t>(n));
            while (std::optional<WireFrame> frame = decoders[i].Next()) {
              LAMP_CHECK_MSG(frame->to < n_, "transport: bad destination");
              AppendFrame(pending[frame->to], *frame);
            }
            LAMP_CHECK_MSG(!decoders[i].error(),
                           "transport: relay saw corrupt stream");
            if (static_cast<std::size_t>(n) < sizeof buf) break;
          }
        }
        if (head[i] < pending[i].size() &&
            (poll_set[i].revents & POLLOUT) != 0) {
          const ssize_t n = ::write(fds[i], pending[i].data() + head[i],
                                    pending[i].size() - head[i]);
          if (n > 0) head[i] += static_cast<std::size_t>(n);
          if (head[i] == pending[i].size()) {
            pending[i].clear();
            head[i] = 0;
          } else if (head[i] > (1u << 20) && head[i] * 2 > pending[i].size()) {
            pending[i].erase(pending[i].begin(),
                             pending[i].begin() +
                                 static_cast<std::ptrdiff_t>(head[i]));
            head[i] = 0;
          }
        }
      }
    }
    for (const int fd : fds) ::close(fd);
  }

  TransportKind kind_;
  std::size_t n_;
  std::vector<Endpoint> endpoints_;
  int wake_pipe_[2] = {-1, -1};
  std::thread relay_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

TransportKind g_active_kind = TransportKind::kInProcess;
bool g_active_kind_set = false;

}  // namespace

std::string_view TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return "inproc";
    case TransportKind::kTcp:
      return "tcp";
    case TransportKind::kUds:
      return "uds";
  }
  return "unknown";
}

bool ParseTransportKind(std::string_view name, TransportKind* out) {
  if (name == "inproc" || name == "inprocess" || name == "in-process") {
    *out = TransportKind::kInProcess;
    return true;
  }
  if (name == "tcp") {
    *out = TransportKind::kTcp;
    return true;
  }
  if (name == "uds" || name == "unix") {
    *out = TransportKind::kUds;
    return true;
  }
  return false;
}

std::unique_ptr<Transport> MakeLoopbackTransport(TransportKind kind,
                                                 std::size_t num_endpoints) {
  LAMP_CHECK(num_endpoints > 0);
  if (kind == TransportKind::kInProcess) {
    return std::make_unique<InProcessTransport>(num_endpoints);
  }
  return std::make_unique<SocketRelayTransport>(kind, num_endpoints);
}

TransportKind ActiveKind() {
  if (!g_active_kind_set) {
    g_active_kind_set = true;
    const char* env = std::getenv("LAMP_TRANSPORT");
    if (env != nullptr && env[0] != '\0') {
      TransportKind kind;
      if (ParseTransportKind(env, &kind)) {
        g_active_kind = kind;
      } else {
        std::fprintf(stderr, "transport: unknown LAMP_TRANSPORT '%s'\n", env);
      }
    }
  }
  return g_active_kind;
}

void SetActiveKind(TransportKind kind) {
  g_active_kind = kind;
  g_active_kind_set = true;
}

void ConfigureFromCommandLine(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--transport=", 12) == 0) {
      value = arg + 12;
    } else if (std::strcmp(arg, "--transport") == 0 && i + 1 < *argc) {
      value = argv[++i];
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    TransportKind kind;
    if (!ParseTransportKind(value, &kind)) {
      std::fprintf(stderr,
                   "usage: --transport {inproc,tcp,uds} (got '%s')\n", value);
      std::exit(2);
    }
    SetActiveKind(kind);
  }
  argv[out] = nullptr;
  *argc = out;
}

}  // namespace lamp::transport
