#ifndef LAMP_TRANSPORT_WIRE_H_
#define LAMP_TRANSPORT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "relational/fact.h"
#include "relational/instance.h"

/// \file
/// The lamp wire format ("lamp.wire.v1"): compact length-prefixed frames
/// carrying facts and transducer messages between MPC servers / network
/// nodes.
///
/// A frame on the wire is
///
///   [u32 LE body length] [u8 version] [u8 type] [varint from] [varint to]
///   [payload bytes]
///
/// where the length prefix counts everything after itself. Integers inside
/// payloads are LEB128 varints; signed domain values are zigzag-encoded
/// first, so small magnitudes of either sign stay short. The format is
/// versioned in-band: every frame repeats the version byte, and decoders
/// reject frames from the future instead of misparsing them. A committed
/// golden dump (tests/golden/wire_frames.bin) pins the byte layout.
///
/// Payload conventions per frame type:
///  * kHello      — varint rank, varint seed (handshake; the multi-process
///                  runner's ring seed exchange reuses it).
///  * kFactBatch  — varint round, varint count, then `count` facts. One
///                  batch is everything `from` routes to `to` in one MPC
///                  communication phase (batched sends, possibly empty).
///  * kMessage    — varint seq, varint causal depth, varint parent
///                  transition (+1), varint count, then `count` facts: one
///                  transducer broadcast copy addressed to `to`.
///  * kStats      — varint round, varint received, varint wire bytes
///                  (a worker reporting measured loads upstream).
///  * kShutdown   — empty payload; orderly channel teardown.
///  * kTraceCtx   — varint trace id, varint sender span id, varint logical
///                  round: the distributed-tracing context a sender
///                  piggybacks immediately before a data frame on the same
///                  channel, so the receiver can correlate its recv event
///                  with the sender's send event across process
///                  boundaries. Optional: senders emit it only after the
///                  Hello handshake negotiated the kHelloFeatureTraceCtx
///                  feature bit with every peer (see HelloPayload), and
///                  decoders that predate the type skip it (see
///                  FrameDecoder::unknown_skipped).
///
/// A fact is encoded as varint relation, varint arity, then zigzag varint
/// per argument.

namespace lamp::transport {

/// In-band format version. Bump on any *layout* change and regenerate the
/// golden frame dump. Adding a frame type is additive, not a layout
/// change: unknown types are skipped by decoders, and negotiation keeps
/// them off channels to peers that never advertised them.
inline constexpr std::uint8_t kWireVersion = 1;

/// Hard cap on a frame body; a decoder seeing a larger length prefix is
/// looking at a corrupt or foreign stream.
inline constexpr std::uint32_t kMaxFrameBody = 1u << 30;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kFactBatch = 2,
  kMessage = 3,
  kStats = 4,
  kShutdown = 5,
  kTraceCtx = 6,
};

/// A decoded frame. `from`/`to` are endpoint ranks (MPC servers, network
/// nodes or process ranks depending on who is talking).
struct WireFrame {
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::kFactBatch;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::vector<std::uint8_t> payload;
};

// --- primitive encoders -------------------------------------------------

/// Appends a LEB128 varint.
void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Appends a zigzag-encoded signed varint.
void PutZigzag(std::vector<std::uint8_t>& out, std::int64_t v);

/// Bytes PutVarint would append for \p v.
std::size_t VarintSize(std::uint64_t v);

/// Bytes PutZigzag would append for \p v.
std::size_t ZigzagSize(std::int64_t v);

/// Cursor over an encoded payload. Reads return nullopt on truncation or
/// malformed varints (> 10 bytes).
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  std::optional<std::uint64_t> ReadVarint();
  std::optional<std::int64_t> ReadZigzag();

  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- facts --------------------------------------------------------------

/// Appends one encoded fact to \p out.
void PutFact(std::vector<std::uint8_t>& out, const Fact& fact);

/// Bytes PutFact would append for \p fact.
std::size_t EncodedFactSize(const Fact& fact);

/// A borrowed reference to one fact in columnar storage: the relation plus
/// \p arity values at \p row. Valid while the owning instance is not
/// mutated. Encodes byte-identically to the Fact it denotes.
struct RowRef {
  RelationId relation = 0;
  const Value* row = nullptr;
  std::uint32_t arity = 0;
};

/// Appends one encoded fact given as a columnar row (same encoding as
/// PutFact).
void PutRow(std::vector<std::uint8_t>& out, const RowRef& row);

/// Bytes PutRow would append for \p row.
std::size_t EncodedRowSize(const RowRef& row);

/// Decodes one fact; nullopt on malformed input.
std::optional<Fact> ReadFact(WireReader& reader);

// --- payload builders ---------------------------------------------------

/// Feature bits a Hello advertises in its optional trailing varint.
/// A capability is active on a channel only when *both* ends advertised
/// it — a peer that never sends the bit never receives the corresponding
/// optional frames.
inline constexpr std::uint64_t kHelloFeatureTraceCtx = 1;

/// Hello payload: varint rank, varint seed, then an *optional* varint of
/// feature bits. The features varint is encoded only when nonzero, so a
/// featureless Hello is byte-identical to the pre-feature encoding, and
/// decoders treat a two-varint payload as features = 0.
std::vector<std::uint8_t> EncodeHelloPayload(std::uint64_t rank,
                                             std::uint64_t seed,
                                             std::uint64_t features = 0);
struct HelloPayload {
  std::uint64_t rank = 0;
  std::uint64_t seed = 0;
  std::uint64_t features = 0;
};
std::optional<HelloPayload> DecodeHelloPayload(
    const std::vector<std::uint8_t>& payload);

/// kTraceCtx payload: the distributed trace context stamped onto the next
/// data frame of the same channel. `span` is the sender's per-process send
/// sequence number — (sender rank, span) is globally unique, which is the
/// join key shard mergers use to pair send and recv events.
std::vector<std::uint8_t> EncodeTraceCtxPayload(std::uint64_t trace_id,
                                                std::uint64_t span,
                                                std::uint64_t round);
struct TraceCtxPayload {
  std::uint64_t trace_id = 0;
  std::uint64_t span = 0;
  std::uint64_t round = 0;
};
std::optional<TraceCtxPayload> DecodeTraceCtxPayload(
    const std::vector<std::uint8_t>& payload);

/// kFactBatch payload: \p facts routed in one round. The fact list may
/// contain duplicates; receivers dedup on insert exactly like the
/// in-process merge.
std::vector<std::uint8_t> EncodeFactBatchPayload(
    std::uint64_t round, const std::vector<const Fact*>& facts);

/// Row-based overload: same payload bytes for the facts the rows denote.
std::vector<std::uint8_t> EncodeFactBatchPayload(
    std::uint64_t round, const std::vector<RowRef>& rows);
struct FactBatchPayload {
  std::uint64_t round = 0;
  std::vector<Fact> facts;
};
std::optional<FactBatchPayload> DecodeFactBatchPayload(
    const std::vector<std::uint8_t>& payload);

/// kMessage payload: one transducer broadcast copy plus its causal
/// bookkeeping (depth, parent transition + 1; see net/network.cc).
std::vector<std::uint8_t> EncodeMessagePayload(std::uint64_t seq,
                                               std::uint64_t depth,
                                               std::uint32_t parent,
                                               const std::vector<Fact>& facts);
struct MessagePayload {
  std::uint64_t seq = 0;
  std::uint64_t depth = 0;
  std::uint32_t parent = 0;
  std::vector<Fact> facts;
};
std::optional<MessagePayload> DecodeMessagePayload(
    const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> EncodeStatsPayload(std::uint64_t round,
                                             std::uint64_t received,
                                             std::uint64_t wire_bytes);
struct StatsPayload {
  std::uint64_t round = 0;
  std::uint64_t received = 0;
  std::uint64_t wire_bytes = 0;
};
std::optional<StatsPayload> DecodeStatsPayload(
    const std::vector<std::uint8_t>& payload);

// --- framing ------------------------------------------------------------

/// Appends the full on-wire encoding of \p frame (length prefix included).
void AppendFrame(std::vector<std::uint8_t>& out, const WireFrame& frame);

/// Total on-wire bytes AppendFrame would produce for \p frame.
std::size_t FrameWireSize(const WireFrame& frame);

/// On-wire bytes of a kFactBatch frame carrying \p payload_bytes of
/// payload between \p from and \p to — the closed form the in-process
/// backend uses to account wire bytes without encoding anything.
std::size_t FactBatchFrameSize(std::uint32_t from, std::uint32_t to,
                               std::size_t payload_bytes);

/// Incremental frame decoder for a byte stream: Feed() arbitrary chunks,
/// Next() yields completed frames in order. Malformed input (bad version,
/// oversized length, truncated header varints) puts the decoder into a
/// sticky error state. A well-framed frame of an *unknown type* — one this
/// build does not know but a future peer might send — is skipped, counted
/// in unknown_skipped(), and decoding continues with the next frame:
/// forward compatibility for optional frame types such as kTraceCtx.
/// Callers surface the count as a warning; the framing (length prefix +
/// version byte) is still validated, so a corrupt stream cannot hide
/// behind the skip path.
class FrameDecoder {
 public:
  void Feed(const std::uint8_t* data, std::size_t size);

  /// Next completed frame of a known type, or nullopt when more bytes are
  /// needed (or the stream is in error). Unknown-type frames are consumed
  /// silently along the way.
  std::optional<WireFrame> Next();

  bool error() const { return error_; }

  /// Well-framed frames of unknown type skipped so far.
  std::uint64_t unknown_skipped() const { return unknown_skipped_; }
  /// Type byte of the most recently skipped frame (0 when none).
  std::uint8_t last_unknown_type() const { return last_unknown_type_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool error_ = false;
  std::uint64_t unknown_skipped_ = 0;
  std::uint8_t last_unknown_type_ = 0;
};

}  // namespace lamp::transport

#endif  // LAMP_TRANSPORT_WIRE_H_
