#ifndef LAMP_TRANSPORT_TRANSPORT_H_
#define LAMP_TRANSPORT_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "transport/wire.h"

/// \file
/// Pluggable transports for MPC communication phases and transducer
/// message delivery.
///
/// A Transport connects `num_endpoints()` ranks with framed, per-channel
/// FIFO delivery: a frame sent from A to B is received by B, after every
/// frame A previously sent to B, via Recv(B, A). Nothing else is promised
/// — no ordering across channels, no delivery scheduling. That split is
/// the determinism contract (DESIGN.md §lamp::transport): the *runtime*
/// (MpcSimulator's merge phase, TransducerNetwork's Scheduler) decides
/// the order in which channels are drained, and because per-channel FIFO
/// is all it relies on, the same decisions replay on every backend. The
/// seeded Scheduler is therefore a delivery-order policy the transport
/// honors, and golden digests stay byte-identical across backends.
///
/// Three backends:
///  * InProcessTransport — mutex/condvar deques per channel; the default
///    and the zero-copy fast path.
///  * TcpTransport       — real TCP sockets over 127.0.0.1.
///  * UdsTransport       — AF_UNIX stream socketpairs.
///
/// The socket backends connect every endpoint to a relay thread that owns
/// the peer side of all endpoint sockets and forwards each frame to its
/// destination endpoint (O(p) file descriptors instead of a p^2 mesh; the
/// multi-process runner tools/mpc_procs builds the true mesh instead).
/// The relay never blocks on writes — forwarded bytes queue in userspace
/// when a destination's socket buffer is full — so a round may send its
/// entire frame volume before any receiver starts draining, exactly what
/// MpcSimulator's route phase does.
///
/// Every backend counts wire traffic (WireStats) and emits
/// kTransportSend/kTransportRecv/kTransportConnect trace events, so
/// serialization overhead is measured, not modelled, even in-process.

namespace lamp::transport {

enum class TransportKind : std::uint8_t {
  kInProcess = 0,
  kTcp,
  kUds,
};

/// Stable names: "inproc", "tcp", "uds".
std::string_view TransportKindName(TransportKind kind);

/// Parses a TransportKindName; returns false on unknown names.
bool ParseTransportKind(std::string_view name, TransportKind* out);

/// Wire traffic counters, aggregated over all endpoints.
struct WireStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
};

/// A connected clique of endpoints. Send/Recv are safe to call from
/// different threads for different endpoints (and from lamp::par workers);
/// per-endpoint calls are internally serialized.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  virtual std::size_t num_endpoints() const = 0;

  /// Enqueues \p frame from endpoint `frame.from` to endpoint `frame.to`.
  /// Never blocks indefinitely: the backend buffers as much as the round
  /// requires.
  virtual void Send(WireFrame frame) = 0;

  /// Blocks until a frame from \p from addressed to \p to is available and
  /// returns it, preserving per-channel FIFO order. Frames arriving on
  /// other channels of \p to are buffered, not lost.
  virtual WireFrame Recv(std::uint32_t to, std::uint32_t from) = 0;

  /// Releases sockets/threads. Idempotent; the destructor calls it.
  virtual void Shutdown() = 0;

  /// Traffic so far. For socket backends these are measured socket bytes;
  /// the in-process backend counts FrameWireSize of every frame, so all
  /// backends report identical totals for identical traffic.
  virtual WireStats stats() const = 0;
};

/// Builds a connected loopback transport of \p kind with \p num_endpoints
/// endpoints. Aborts (LAMP_CHECK) if socket setup fails.
std::unique_ptr<Transport> MakeLoopbackTransport(TransportKind kind,
                                                 std::size_t num_endpoints);

/// The process-wide backend selection honored by MpcSimulator and
/// TransducerNetwork. Defaults to kInProcess; the LAMP_TRANSPORT
/// environment variable ("inproc"/"tcp"/"uds") overrides the default, and
/// SetActiveKind / --transport override both.
TransportKind ActiveKind();
void SetActiveKind(TransportKind kind);

/// Strips a `--transport <kind>` / `--transport=<kind>` flag from argv
/// (mirroring par::ConfigureFromCommandLine) and applies it via
/// SetActiveKind. Unknown kinds abort with a usage message.
void ConfigureFromCommandLine(int* argc, char** argv);

}  // namespace lamp::transport

#endif  // LAMP_TRANSPORT_TRANSPORT_H_
