#include "transport/wire.h"

#include <cstring>

namespace lamp::transport {

namespace {

constexpr std::size_t kMaxVarintBytes = 10;

std::uint64_t ZigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

void PutU32Le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

}  // namespace

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void PutZigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  PutVarint(out, ZigzagEncode(v));
}

std::size_t VarintSize(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::size_t ZigzagSize(std::int64_t v) { return VarintSize(ZigzagEncode(v)); }

std::optional<std::uint64_t> WireReader::ReadVarint() {
  std::uint64_t v = 0;
  std::size_t shift = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (pos_ >= size_) return std::nullopt;
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;  // Varint longer than 10 bytes: malformed.
}

std::optional<std::int64_t> WireReader::ReadZigzag() {
  const std::optional<std::uint64_t> z = ReadVarint();
  if (!z) return std::nullopt;
  return ZigzagDecode(*z);
}

void PutFact(std::vector<std::uint8_t>& out, const Fact& fact) {
  PutVarint(out, fact.relation);
  PutVarint(out, fact.args.size());
  for (const Value arg : fact.args) PutZigzag(out, arg.v);
}

std::size_t EncodedFactSize(const Fact& fact) {
  std::size_t n = VarintSize(fact.relation) + VarintSize(fact.args.size());
  for (const Value arg : fact.args) n += ZigzagSize(arg.v);
  return n;
}

void PutRow(std::vector<std::uint8_t>& out, const RowRef& row) {
  PutVarint(out, row.relation);
  PutVarint(out, row.arity);
  for (std::uint32_t i = 0; i < row.arity; ++i) {
    PutZigzag(out, row.row[i].v);
  }
}

std::size_t EncodedRowSize(const RowRef& row) {
  std::size_t n = VarintSize(row.relation) + VarintSize(row.arity);
  for (std::uint32_t i = 0; i < row.arity; ++i) {
    n += ZigzagSize(row.row[i].v);
  }
  return n;
}

std::optional<Fact> ReadFact(WireReader& reader) {
  const std::optional<std::uint64_t> relation = reader.ReadVarint();
  const std::optional<std::uint64_t> arity = reader.ReadVarint();
  if (!relation || !arity) return std::nullopt;
  // An arity beyond the remaining bytes cannot be satisfied (each argument
  // takes at least one byte); bail before reserving absurd capacities.
  if (*arity > reader.remaining()) return std::nullopt;
  Fact fact;
  fact.relation = static_cast<RelationId>(*relation);
  fact.args.reserve(*arity);
  for (std::uint64_t i = 0; i < *arity; ++i) {
    const std::optional<std::int64_t> arg = reader.ReadZigzag();
    if (!arg) return std::nullopt;
    fact.args.emplace_back(*arg);
  }
  return fact;
}

std::vector<std::uint8_t> EncodeHelloPayload(std::uint64_t rank,
                                             std::uint64_t seed,
                                             std::uint64_t features) {
  std::vector<std::uint8_t> payload;
  PutVarint(payload, rank);
  PutVarint(payload, seed);
  if (features != 0) PutVarint(payload, features);
  return payload;
}

std::optional<HelloPayload> DecodeHelloPayload(
    const std::vector<std::uint8_t>& payload) {
  WireReader reader(payload);
  const auto rank = reader.ReadVarint();
  const auto seed = reader.ReadVarint();
  if (!rank || !seed) return std::nullopt;
  HelloPayload hello{*rank, *seed, 0};
  if (!reader.AtEnd()) {
    const auto features = reader.ReadVarint();
    if (!features || !reader.AtEnd()) return std::nullopt;
    hello.features = *features;
  }
  return hello;
}

std::vector<std::uint8_t> EncodeTraceCtxPayload(std::uint64_t trace_id,
                                                std::uint64_t span,
                                                std::uint64_t round) {
  std::vector<std::uint8_t> payload;
  PutVarint(payload, trace_id);
  PutVarint(payload, span);
  PutVarint(payload, round);
  return payload;
}

std::optional<TraceCtxPayload> DecodeTraceCtxPayload(
    const std::vector<std::uint8_t>& payload) {
  WireReader reader(payload);
  const auto trace_id = reader.ReadVarint();
  const auto span = reader.ReadVarint();
  const auto round = reader.ReadVarint();
  if (!trace_id || !span || !round || !reader.AtEnd()) return std::nullopt;
  return TraceCtxPayload{*trace_id, *span, *round};
}

std::vector<std::uint8_t> EncodeFactBatchPayload(
    std::uint64_t round, const std::vector<const Fact*>& facts) {
  std::vector<std::uint8_t> payload;
  PutVarint(payload, round);
  PutVarint(payload, facts.size());
  for (const Fact* fact : facts) PutFact(payload, *fact);
  return payload;
}

std::vector<std::uint8_t> EncodeFactBatchPayload(
    std::uint64_t round, const std::vector<RowRef>& rows) {
  std::vector<std::uint8_t> payload;
  PutVarint(payload, round);
  PutVarint(payload, rows.size());
  for (const RowRef& row : rows) PutRow(payload, row);
  return payload;
}

std::optional<FactBatchPayload> DecodeFactBatchPayload(
    const std::vector<std::uint8_t>& payload) {
  WireReader reader(payload);
  const auto round = reader.ReadVarint();
  const auto count = reader.ReadVarint();
  if (!round || !count || *count > payload.size()) return std::nullopt;
  FactBatchPayload batch;
  batch.round = *round;
  batch.facts.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    std::optional<Fact> fact = ReadFact(reader);
    if (!fact) return std::nullopt;
    batch.facts.push_back(*std::move(fact));
  }
  if (!reader.AtEnd()) return std::nullopt;
  return batch;
}

std::vector<std::uint8_t> EncodeMessagePayload(
    std::uint64_t seq, std::uint64_t depth, std::uint32_t parent,
    const std::vector<Fact>& facts) {
  std::vector<std::uint8_t> payload;
  PutVarint(payload, seq);
  PutVarint(payload, depth);
  PutVarint(payload, parent);
  PutVarint(payload, facts.size());
  for (const Fact& fact : facts) PutFact(payload, fact);
  return payload;
}

std::optional<MessagePayload> DecodeMessagePayload(
    const std::vector<std::uint8_t>& payload) {
  WireReader reader(payload);
  const auto seq = reader.ReadVarint();
  const auto depth = reader.ReadVarint();
  const auto parent = reader.ReadVarint();
  const auto count = reader.ReadVarint();
  if (!seq || !depth || !parent || !count || *count > payload.size()) {
    return std::nullopt;
  }
  MessagePayload msg;
  msg.seq = *seq;
  msg.depth = *depth;
  msg.parent = static_cast<std::uint32_t>(*parent);
  msg.facts.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    std::optional<Fact> fact = ReadFact(reader);
    if (!fact) return std::nullopt;
    msg.facts.push_back(*std::move(fact));
  }
  if (!reader.AtEnd()) return std::nullopt;
  return msg;
}

std::vector<std::uint8_t> EncodeStatsPayload(std::uint64_t round,
                                             std::uint64_t received,
                                             std::uint64_t wire_bytes) {
  std::vector<std::uint8_t> payload;
  PutVarint(payload, round);
  PutVarint(payload, received);
  PutVarint(payload, wire_bytes);
  return payload;
}

std::optional<StatsPayload> DecodeStatsPayload(
    const std::vector<std::uint8_t>& payload) {
  WireReader reader(payload);
  const auto round = reader.ReadVarint();
  const auto received = reader.ReadVarint();
  const auto wire_bytes = reader.ReadVarint();
  if (!round || !received || !wire_bytes || !reader.AtEnd()) {
    return std::nullopt;
  }
  return StatsPayload{*round, *received, *wire_bytes};
}

void AppendFrame(std::vector<std::uint8_t>& out, const WireFrame& frame) {
  const std::size_t body = 2 + VarintSize(frame.from) + VarintSize(frame.to) +
                           frame.payload.size();
  PutU32Le(out, static_cast<std::uint32_t>(body));
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  PutVarint(out, frame.from);
  PutVarint(out, frame.to);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::size_t FrameWireSize(const WireFrame& frame) {
  return 4 + 2 + VarintSize(frame.from) + VarintSize(frame.to) +
         frame.payload.size();
}

std::size_t FactBatchFrameSize(std::uint32_t from, std::uint32_t to,
                               std::size_t payload_bytes) {
  return 4 + 2 + VarintSize(from) + VarintSize(to) + payload_bytes;
}

void FrameDecoder::Feed(const std::uint8_t* data, std::size_t size) {
  if (error_) return;
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<WireFrame> FrameDecoder::Next() {
  while (!error_) {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < 4) return std::nullopt;
    const std::uint8_t* p = buffer_.data() + consumed_;
    const std::uint32_t body = static_cast<std::uint32_t>(p[0]) |
                               (static_cast<std::uint32_t>(p[1]) << 8) |
                               (static_cast<std::uint32_t>(p[2]) << 16) |
                               (static_cast<std::uint32_t>(p[3]) << 24);
    if (body < 2 || body > kMaxFrameBody) {
      error_ = true;
      return std::nullopt;
    }
    if (available < 4 + static_cast<std::size_t>(body)) return std::nullopt;
    WireFrame frame;
    frame.version = p[4];
    const std::uint8_t type = p[5];
    if (frame.version == 0 || frame.version > kWireVersion || type == 0) {
      error_ = true;
      return std::nullopt;
    }
    if (type > static_cast<std::uint8_t>(FrameType::kTraceCtx)) {
      // Well-framed frame of a type this build does not know (a newer
      // peer's optional extension): skip the whole frame and keep
      // decoding. The length prefix and version byte were validated, so
      // resynchronisation is exact.
      ++unknown_skipped_;
      last_unknown_type_ = type;
      consumed_ += 4 + body;
      continue;
    }
    frame.type = static_cast<FrameType>(type);
    WireReader reader(p + 6, body - 2);
    const auto from = reader.ReadVarint();
    const auto to = reader.ReadVarint();
    if (!from || !to) {
      error_ = true;
      return std::nullopt;
    }
    frame.from = static_cast<std::uint32_t>(*from);
    frame.to = static_cast<std::uint32_t>(*to);
    frame.payload.assign(p + 4 + body - reader.remaining(), p + 4 + body);
    consumed_ += 4 + body;
    return frame;
  }
  return std::nullopt;
}

}  // namespace lamp::transport
