#ifndef LAMP_DATALOG_PROGRAM_H_
#define LAMP_DATALOG_PROGRAM_H_

#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "cq/cq.h"
#include "relational/schema.h"

/// \file
/// Datalog programs with stratified negation and inequalities
/// (Section 5.3 of the paper). A rule is a ConjunctiveQuery whose head
/// relation is intensional; rules may negate atoms and use !=.
///
/// The structural analyses implemented here are the ones Figure 2 of the
/// paper is built from:
///  * stratification (and its failure for programs like win-move);
///  * semi-positivity — negation applied to extensional relations only
///    (SP-Datalog, contained in Mdistinct);
///  * per-rule connectedness — the graph formed by the positive atoms is
///    connected — and semi-connectedness: every stratum except possibly
///    the last is connected (captures Mdisjoint together with value
///    invention).

namespace lamp {

/// A stratification: strata[k] lists the indices of the rules evaluated in
/// stratum k (bottom-up order).
using Stratification = std::vector<std::vector<std::size_t>>;

/// A Datalog program over some shared Schema.
class DatalogProgram {
 public:
  /// Appends a rule. The rule must be safe (Validate()d by the parser).
  void AddRule(ConjunctiveQuery rule);

  const std::vector<ConjunctiveQuery>& rules() const { return rules_; }

  /// Relations appearing in some rule head.
  std::set<RelationId> IdbRelations() const;

  /// Relations appearing in bodies but never in a head.
  std::set<RelationId> EdbRelations() const;

  /// Computes a stratification, or nullopt if the program has negative
  /// recursion (e.g. win-move).
  std::optional<Stratification> Stratify() const;

  /// True when some rule has a negated atom.
  bool HasNegation() const;

  /// True when every negated atom refers to an extensional relation.
  bool IsSemiPositive() const;

  /// True when the positive body atoms of \p rule form a connected
  /// hypergraph on variables (rules with <= 1 positive atom are connected).
  static bool IsConnectedRule(const ConjunctiveQuery& rule);

  /// True when every rule is connected.
  bool IsConnected() const;

  /// True when the program stratifies and every stratum except possibly
  /// the last consists of connected rules only (the effective syntax for
  /// queries distributing over components / class Mdisjoint).
  bool IsSemiConnected() const;

 private:
  std::vector<ConjunctiveQuery> rules_;
};

/// Parses a multi-line program: one rule per non-empty line (lines starting
/// with '#' or '%' are comments). Uses the rule syntax of cq/parser.h.
DatalogProgram ParseProgram(Schema& schema, std::string_view text);

}  // namespace lamp

#endif  // LAMP_DATALOG_PROGRAM_H_
