#include "datalog/program.h"

#include <map>
#include <numeric>
#include <string>

#include "common/check.h"
#include "cq/parser.h"

namespace lamp {

void DatalogProgram::AddRule(ConjunctiveQuery rule) {
  rules_.push_back(std::move(rule));
}

std::set<RelationId> DatalogProgram::IdbRelations() const {
  std::set<RelationId> idb;
  for (const ConjunctiveQuery& rule : rules_) {
    idb.insert(rule.head().relation);
  }
  return idb;
}

std::set<RelationId> DatalogProgram::EdbRelations() const {
  const std::set<RelationId> idb = IdbRelations();
  std::set<RelationId> edb;
  for (const ConjunctiveQuery& rule : rules_) {
    for (const Atom& atom : rule.body()) {
      if (idb.count(atom.relation) == 0) edb.insert(atom.relation);
    }
    for (const Atom& atom : rule.negated()) {
      if (idb.count(atom.relation) == 0) edb.insert(atom.relation);
    }
  }
  return edb;
}

std::optional<Stratification> DatalogProgram::Stratify() const {
  const std::set<RelationId> idb = IdbRelations();

  // stratum[] per IDB relation, relaxed to a fixpoint. A valid
  // stratification needs at most |idb| distinct strata; exceeding that
  // bound means a negative cycle.
  std::map<RelationId, std::size_t> stratum;
  for (RelationId rel : idb) stratum[rel] = 0;

  const std::size_t limit = idb.size() + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ConjunctiveQuery& rule : rules_) {
      std::size_t& head_stratum = stratum[rule.head().relation];
      for (const Atom& atom : rule.body()) {
        if (idb.count(atom.relation) == 0) continue;
        if (head_stratum < stratum[atom.relation]) {
          head_stratum = stratum[atom.relation];
          changed = true;
        }
      }
      for (const Atom& atom : rule.negated()) {
        if (idb.count(atom.relation) == 0) continue;
        if (head_stratum < stratum[atom.relation] + 1) {
          head_stratum = stratum[atom.relation] + 1;
          changed = true;
          if (head_stratum >= limit) return std::nullopt;  // Negative cycle.
        }
      }
    }
  }

  // Group rules by their head's stratum, densely renumbered.
  std::set<std::size_t> used;
  for (const auto& [rel, s] : stratum) used.insert(s);
  std::map<std::size_t, std::size_t> dense;
  std::size_t next = 0;
  for (std::size_t s : used) dense[s] = next++;

  Stratification strata(next == 0 ? 1 : next);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    strata[dense[stratum[rules_[i].head().relation]]].push_back(i);
  }
  return strata;
}

bool DatalogProgram::HasNegation() const {
  for (const ConjunctiveQuery& rule : rules_) {
    if (!rule.negated().empty()) return true;
  }
  return false;
}

bool DatalogProgram::IsSemiPositive() const {
  const std::set<RelationId> idb = IdbRelations();
  for (const ConjunctiveQuery& rule : rules_) {
    for (const Atom& atom : rule.negated()) {
      if (idb.count(atom.relation) > 0) return false;
    }
  }
  return true;
}

bool DatalogProgram::IsConnectedRule(const ConjunctiveQuery& rule) {
  const std::vector<Atom>& body = rule.body();
  if (body.size() <= 1) return true;

  // Union-find over atoms, merged via shared variables.
  std::vector<std::size_t> parent(body.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::map<VarId, std::size_t> owner;
  for (std::size_t i = 0; i < body.size(); ++i) {
    for (const Term& t : body[i].terms) {
      if (!t.IsVar()) continue;
      auto [it, inserted] = owner.emplace(t.var, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  const std::size_t root = find(0);
  for (std::size_t i = 1; i < body.size(); ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

bool DatalogProgram::IsConnected() const {
  for (const ConjunctiveQuery& rule : rules_) {
    if (!IsConnectedRule(rule)) return false;
  }
  return true;
}

bool DatalogProgram::IsSemiConnected() const {
  const std::optional<Stratification> strata = Stratify();
  if (!strata.has_value()) return false;
  for (std::size_t k = 0; k + 1 < strata->size(); ++k) {
    for (std::size_t rule_idx : (*strata)[k]) {
      if (!IsConnectedRule(rules_[rule_idx])) return false;
    }
  }
  return true;
}

DatalogProgram ParseProgram(Schema& schema, std::string_view text) {
  DatalogProgram program;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    // Trim whitespace.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (!line.empty() && line.front() != '#' && line.front() != '%') {
      program.AddRule(ParseQuery(schema, line));
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return program;
}

}  // namespace lamp
