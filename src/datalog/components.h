#ifndef LAMP_DATALOG_COMPONENTS_H_
#define LAMP_DATALOG_COMPONENTS_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "datalog/monotone.h"
#include "relational/instance.h"
#include "relational/schema.h"

/// \file
/// Queries distributing over components (Ameloot-Ketsman-Neven-Zinn,
/// discussed at the end of Section 5.3): Q distributes over components
/// when Q(I) is the union of Q(J) over the connected components J of I.
/// Connected (stratified) Datalog is an effective syntax for this class;
/// the checkers below test the semantic property on bounded / random
/// instance families.

namespace lamp {

/// True when Q(I) == union over components J of Q(J).
bool DistributesOverComponentsOn(const QueryFunction& query,
                                 const Instance& instance);

/// Exhaustive falsifier over instances built from the given EDB
/// \p relations with at most \p max_facts facts over \p domain_size
/// values. Returns a witness instance where distribution fails.
std::optional<Instance> FindComponentDistributionViolation(
    const Schema& schema, const std::vector<RelationId>& relations,
    const QueryFunction& query, std::size_t domain_size,
    std::size_t max_facts);

/// Randomized falsifier: \p trials random instances that are forced to
/// have at least two components (two disjoint value ranges).
std::optional<Instance> RandomComponentDistributionViolation(
    const Schema& schema, const std::vector<RelationId>& relations,
    const QueryFunction& query, std::size_t domain_size,
    std::size_t facts_per_relation, std::size_t trials, Rng& rng);

}  // namespace lamp

#endif  // LAMP_DATALOG_COMPONENTS_H_
