#include "datalog/eval.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "cq/eval.h"
#include "obs/trace.h"

namespace lamp {

namespace {

/// Adds ADom(v) for every active-domain value of \p edb when the program
/// uses the ADom predicate.
void PopulateADom(const Schema& schema, const Instance& edb, Instance& out) {
  const RelationId adom_rel = schema.TryIdOf(kADomRelationName);
  if (adom_rel == Interner::kNotFound) return;
  LAMP_CHECK(schema.ArityOf(adom_rel) == 1);
  for (Value v : edb.ActiveDomain()) {
    out.InsertRow(adom_rel, &v, 1);
  }
}

/// One semi-naive/naive iteration's bookkeeping: trace event + histogram.
void RecordIteration(std::size_t stratum, std::size_t iteration,
                     std::size_t delta_size, obs::MetricsRegistry* metrics) {
  obs::Emit(obs::EventKind::kDatalogIteration,
            static_cast<std::uint32_t>(stratum),
            static_cast<std::uint32_t>(iteration), delta_size);
  if (metrics != nullptr) {
    metrics->GetHistogram(obs::kDatalogDeltaSize)
        .Observe(static_cast<double>(delta_size));
  }
}

}  // namespace

void DatalogStats::ToMetrics(obs::MetricsRegistry& registry) const {
  registry.GetCounter(obs::kDatalogIterations).Add(iterations);
  registry.GetCounter(obs::kDatalogFactsDerived).Add(facts_derived);
  registry.GetCounter(obs::kDatalogDeltaIndexHits).Add(delta_index_hits);
  registry.GetCounter(obs::kRelationalRowsScanned).Add(rows_scanned);
}

Instance EvaluateProgram(Schema& schema, const DatalogProgram& program,
                         const Instance& edb, DatalogStats* stats,
                         obs::MetricsRegistry* metrics) {
  const auto strata = program.Stratify();
  LAMP_CHECK_MSG(strata.has_value(),
                 "program does not stratify; use well-founded evaluation");

  Instance current = edb;
  PopulateADom(schema, edb, current);

  DatalogStats local_stats;
  CqEvalStats cq_stats;

  for (const std::vector<std::size_t>& stratum : *strata) {
    const std::size_t stratum_idx =
        static_cast<std::size_t>(&stratum - &(*strata)[0]);
    std::size_t iteration_idx = 0;
    // Recursive predicates of this stratum (sorted, deduped) and their
    // delta relations, kept in a flat RelationId-indexed vector so the
    // inner loop never pays a map lookup.
    std::vector<RelationId> recursive;
    for (std::size_t idx : stratum) {
      recursive.push_back(program.rules()[idx].head().relation);
    }
    std::sort(recursive.begin(), recursive.end());
    recursive.erase(std::unique(recursive.begin(), recursive.end()),
                    recursive.end());

    constexpr RelationId kNoDelta = static_cast<RelationId>(-1);
    std::vector<RelationId> delta_of(schema.NumRelations(), kNoDelta);
    for (RelationId rel : recursive) {
      delta_of[rel] = schema.AddRelation(
          "__delta_" + schema.NameOf(rel) + "_s" +
              std::to_string(stratum_idx),
          schema.ArityOf(rel));
    }

    // Delta versions of each rule: one per occurrence of a recursive atom,
    // in original rule order, each remembering which predicate's delta it
    // consumes so empty-delta rounds can skip it.
    struct DeltaRule {
      ConjunctiveQuery query;
      RelationId delta_source;  // The (original) recursive predicate.
    };
    std::vector<DeltaRule> delta_rules;
    for (std::size_t idx : stratum) {
      const ConjunctiveQuery& rule = program.rules()[idx];
      for (std::size_t a = 0; a < rule.body().size(); ++a) {
        const RelationId body_rel = rule.body()[a].relation;
        if (body_rel >= delta_of.size() || delta_of[body_rel] == kNoDelta) {
          continue;
        }
        ConjunctiveQuery rewritten = rule;
        rewritten.SetBodyRelation(a, delta_of[body_rel]);
        delta_rules.push_back({std::move(rewritten), body_rel});
      }
    }

    // Round 0: evaluate every rule on `current` (recursive predicates are
    // still empty, so this derives the base facts of the stratum).
    Instance delta;
    const RowBatchSink into_delta = [&current, &delta](RelationId rel,
                                                       const Value* rows,
                                                       std::size_t count,
                                                       std::size_t arity) {
      for (std::size_t t = 0; t < count; ++t) {
        const Value* row = rows + t * arity;
        if (!current.ContainsRow(rel, row, arity)) {
          delta.InsertRow(rel, row, arity);
        }
      }
    };
    for (std::size_t idx : stratum) {
      EvaluateIntoBatches(program.rules()[idx], current, into_delta,
                          &cq_stats);
    }
    ++local_stats.iterations;
    RecordIteration(stratum_idx, iteration_idx++, delta.Size(), metrics);

    // The working instance (current + delta re-tagged under the delta
    // relations) is copied once per stratum and maintained incrementally:
    // each round appends the new facts — the same insert sequence
    // `current` sees, so row order stays identical — and re-tags the delta
    // relations in place instead of rebuilding the whole instance.
    Instance working = current;
    Instance next_delta;
    // Fused containment + insert: rules evaluate over `working`, so the
    // sink may mutate `current` directly. A successful insert is exactly
    // "not seen before", so next_delta receives the same rows in the same
    // order the old ContainsRow-filter-then-merge scheme produced, with
    // one hash probe instead of two.
    const RowBatchSink into_next_delta =
        [&current, &next_delta](RelationId rel, const Value* rows,
                                std::size_t count, std::size_t arity) {
          current.InsertRowsInto(rel, rows, count, arity, next_delta);
        };

    // Only the round-0 delta is not yet in `current`; later deltas are
    // merged at emission time by the fused sink above.
    bool merge_round0 = true;
    while (!delta.Empty()) {
      local_stats.facts_derived += delta.Size();
      if (merge_round0) {
        current.InsertAll(delta);
        merge_round0 = false;
      }
      working.InsertAll(delta);
      for (RelationId rel : recursive) working.ClearRelation(delta_of[rel]);
      for (RelationId rel : recursive) {
        const RowsView rows = delta.RowsOf(rel);
        for (std::size_t i = 0; i < rows.num_rows; ++i) {
          working.InsertRow(delta_of[rel], rows.Row(i), rows.arity);
        }
      }

      next_delta = Instance();
      for (const DeltaRule& dr : delta_rules) {
        // Delta-index skip: a rule whose delta relation is empty this
        // round derives nothing.
        if (delta.NumRows(dr.delta_source) == 0) continue;
        ++local_stats.delta_index_hits;
        EvaluateIntoBatches(dr.query, working, into_next_delta, &cq_stats);
      }
      delta = std::move(next_delta);
      next_delta = Instance();
      ++local_stats.iterations;
      RecordIteration(stratum_idx, iteration_idx++, delta.Size(), metrics);
    }
  }

  local_stats.rows_scanned = cq_stats.rows_scanned;
  if (stats != nullptr) *stats = local_stats;
  if (metrics != nullptr) local_stats.ToMetrics(*metrics);
  return current;
}

Instance EvaluateProgramNaive(Schema& schema, const DatalogProgram& program,
                              const Instance& edb, DatalogStats* stats,
                              obs::MetricsRegistry* metrics) {
  const auto strata = program.Stratify();
  LAMP_CHECK_MSG(strata.has_value(),
                 "program does not stratify; use well-founded evaluation");

  Instance current = edb;
  PopulateADom(schema, edb, current);

  DatalogStats local_stats;
  CqEvalStats cq_stats;

  // Flat row buffer reused across rounds: derived heads are staged here
  // (the join pipeline must not see its own output mid-evaluation), then
  // inserted; `current` dedups, so staging duplicates is harmless and the
  // insert order equals the old materialise-then-copy order.
  std::vector<Value> buffer;

  for (const std::vector<std::size_t>& stratum : *strata) {
    const std::size_t stratum_idx =
        static_cast<std::size_t>(&stratum - &(*strata)[0]);
    std::size_t iteration_idx = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      ++local_stats.iterations;
      std::size_t derived_this_round = 0;
      for (std::size_t idx : stratum) {
        const ConjunctiveQuery& rule = program.rules()[idx];
        const std::size_t arity = rule.head().terms.size();
        const RelationId head_rel = rule.head().relation;
        buffer.clear();
        bool fired = false;
        EvaluateIntoBatches(
            rule, current,
            [&buffer, &fired](RelationId, const Value* rows,
                              std::size_t count, std::size_t n) {
              fired = true;
              buffer.insert(buffer.end(), rows, rows + count * n);
            },
            &cq_stats);
        if (arity == 0) {  // Nullary head: at most one distinct fact.
          if (fired && current.InsertRow(head_rel, nullptr, 0)) {
            changed = true;
            ++derived_this_round;
          }
          continue;
        }
        const std::size_t added = current.InsertRows(
            head_rel, buffer.data(), buffer.size() / arity, arity);
        if (added > 0) {
          changed = true;
          derived_this_round += added;
        }
      }
      local_stats.facts_derived += derived_this_round;
      RecordIteration(stratum_idx, iteration_idx++, derived_this_round,
                      metrics);
    }
  }

  local_stats.rows_scanned = cq_stats.rows_scanned;
  if (stats != nullptr) *stats = local_stats;
  if (metrics != nullptr) local_stats.ToMetrics(*metrics);
  return current;
}

}  // namespace lamp
