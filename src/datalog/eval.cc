#include "datalog/eval.h"

#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "cq/eval.h"
#include "obs/trace.h"

namespace lamp {

namespace {

/// Adds ADom(v) for every active-domain value of \p edb when the program
/// uses the ADom predicate.
void PopulateADom(const Schema& schema, const Instance& edb, Instance& out) {
  const RelationId adom_rel = schema.TryIdOf(kADomRelationName);
  if (adom_rel == Interner::kNotFound) return;
  LAMP_CHECK(schema.ArityOf(adom_rel) == 1);
  for (Value v : edb.ActiveDomain()) {
    out.Insert(Fact(adom_rel, {v.v}));
  }
}

/// One semi-naive/naive iteration's bookkeeping: trace event + histogram.
void RecordIteration(std::size_t stratum, std::size_t iteration,
                     std::size_t delta_size, obs::MetricsRegistry* metrics) {
  obs::Emit(obs::EventKind::kDatalogIteration,
            static_cast<std::uint32_t>(stratum),
            static_cast<std::uint32_t>(iteration), delta_size);
  if (metrics != nullptr) {
    metrics->GetHistogram(obs::kDatalogDeltaSize)
        .Observe(static_cast<double>(delta_size));
  }
}

}  // namespace

void DatalogStats::ToMetrics(obs::MetricsRegistry& registry) const {
  registry.GetCounter(obs::kDatalogIterations).Add(iterations);
  registry.GetCounter(obs::kDatalogFactsDerived).Add(facts_derived);
}

Instance EvaluateProgram(Schema& schema, const DatalogProgram& program,
                         const Instance& edb, DatalogStats* stats,
                         obs::MetricsRegistry* metrics) {
  const auto strata = program.Stratify();
  LAMP_CHECK_MSG(strata.has_value(),
                 "program does not stratify; use well-founded evaluation");

  Instance current = edb;
  PopulateADom(schema, edb, current);

  DatalogStats local_stats;

  for (const std::vector<std::size_t>& stratum : *strata) {
    const std::size_t stratum_idx =
        static_cast<std::size_t>(&stratum - &(*strata)[0]);
    std::size_t iteration_idx = 0;
    // Recursive predicates of this stratum and their delta relations.
    std::set<RelationId> recursive;
    for (std::size_t idx : stratum) {
      recursive.insert(program.rules()[idx].head().relation);
    }
    std::map<RelationId, RelationId> delta_rel;
    for (RelationId rel : recursive) {
      delta_rel[rel] = schema.AddRelation(
          "__delta_" + schema.NameOf(rel) + "_s" +
              std::to_string(&stratum - &(*strata)[0]),
          schema.ArityOf(rel));
    }

    // Delta versions of each rule: one per occurrence of a recursive atom.
    struct DeltaRule {
      ConjunctiveQuery query;
    };
    std::vector<DeltaRule> delta_rules;
    for (std::size_t idx : stratum) {
      const ConjunctiveQuery& rule = program.rules()[idx];
      for (std::size_t a = 0; a < rule.body().size(); ++a) {
        auto it = delta_rel.find(rule.body()[a].relation);
        if (it == delta_rel.end()) continue;
        ConjunctiveQuery rewritten = rule;
        rewritten.SetBodyRelation(a, it->second);
        delta_rules.push_back({std::move(rewritten)});
      }
    }

    // Round 0: evaluate every rule on `current` (recursive predicates are
    // still empty, so this derives the base facts of the stratum).
    Instance delta;
    for (std::size_t idx : stratum) {
      Evaluate(program.rules()[idx], current)
          .ForEachFact([&current, &delta](const Fact& f) {
            if (!current.Contains(f)) delta.Insert(f);
          });
    }
    ++local_stats.iterations;
    RecordIteration(stratum_idx, iteration_idx++, delta.Size(), metrics);

    while (!delta.Empty()) {
      local_stats.facts_derived += delta.Size();
      current.InsertAll(delta);

      // Working instance: current + delta re-tagged under delta relations.
      Instance working = current;
      delta.ForEachFact([&delta_rel, &working](const Fact& f) {
        working.Insert(Fact(delta_rel.at(f.relation), f.args));
      });

      Instance next_delta;
      for (const DeltaRule& dr : delta_rules) {
        Evaluate(dr.query, working)
            .ForEachFact([&current, &next_delta](const Fact& f) {
              if (!current.Contains(f)) next_delta.Insert(f);
            });
      }
      delta = std::move(next_delta);
      ++local_stats.iterations;
      RecordIteration(stratum_idx, iteration_idx++, delta.Size(), metrics);
    }
  }

  if (stats != nullptr) *stats = local_stats;
  if (metrics != nullptr) local_stats.ToMetrics(*metrics);
  return current;
}

Instance EvaluateProgramNaive(Schema& schema, const DatalogProgram& program,
                              const Instance& edb, DatalogStats* stats,
                              obs::MetricsRegistry* metrics) {
  const auto strata = program.Stratify();
  LAMP_CHECK_MSG(strata.has_value(),
                 "program does not stratify; use well-founded evaluation");

  Instance current = edb;
  PopulateADom(schema, edb, current);

  DatalogStats local_stats;

  for (const std::vector<std::size_t>& stratum : *strata) {
    const std::size_t stratum_idx =
        static_cast<std::size_t>(&stratum - &(*strata)[0]);
    std::size_t iteration_idx = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      ++local_stats.iterations;
      std::size_t derived_this_round = 0;
      for (std::size_t idx : stratum) {
        Evaluate(program.rules()[idx], current)
            .ForEachFact([&current, &changed, &derived_this_round](
                             const Fact& f) {
              if (current.Insert(f)) {
                changed = true;
                ++derived_this_round;
              }
            });
      }
      local_stats.facts_derived += derived_this_round;
      RecordIteration(stratum_idx, iteration_idx++, derived_this_round,
                      metrics);
    }
  }

  if (stats != nullptr) *stats = local_stats;
  if (metrics != nullptr) local_stats.ToMetrics(*metrics);
  return current;
}

}  // namespace lamp
