#include "datalog/monotone.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/check.h"

namespace lamp {

namespace {

/// All facts of the given relations with arguments from \p universe.
std::vector<Fact> FactPool(const Schema& schema,
                           const std::vector<RelationId>& relations,
                           const std::vector<Value>& universe) {
  std::vector<Fact> pool;
  for (RelationId rel : relations) {
    const std::size_t arity = schema.ArityOf(rel);
    std::vector<std::size_t> idx(arity, 0);
    if (universe.empty() && arity > 0) continue;
    while (true) {
      std::vector<Value> args;
      args.reserve(arity);
      for (std::size_t i = 0; i < arity; ++i) args.push_back(universe[idx[i]]);
      pool.emplace_back(rel, std::move(args));
      std::size_t pos = 0;
      while (pos < arity) {
        if (++idx[pos] < universe.size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == arity) break;
    }
  }
  return pool;
}

bool ViolationAt(const QueryFunction& query, const Instance& base,
                 const Instance& addition) {
  const Instance before = query(base);
  Instance merged = base;
  merged.InsertAll(addition);
  const Instance after = query(merged);
  for (const Fact& f : before.AllFacts()) {
    if (!after.Contains(f)) return true;
  }
  return false;
}

/// Enumerates subsets of `pool` of size <= max_facts, invoking fn on each;
/// fn returning false stops the walk.
template <typename Fn>
void ForEachBoundedSubset(const std::vector<Fact>& pool,
                          std::size_t max_facts, Fn&& fn) {
  Instance current;
  bool stop = false;
  std::function<void(std::size_t)> descend = [&](std::size_t start) {
    if (stop) return;
    if (!fn(static_cast<const Instance&>(current))) {
      stop = true;
      return;
    }
    if (current.Size() >= max_facts) return;
    for (std::size_t i = start; i < pool.size() && !stop; ++i) {
      Instance next = current;
      next.Insert(pool[i]);
      std::swap(current, next);
      descend(i + 1);
      std::swap(current, next);
    }
  };
  descend(0);
}

}  // namespace

bool SatisfiesAdditionConstraint(const Instance& base,
                                 const Instance& addition,
                                 MonotonicityKind kind) {
  if (kind == MonotonicityKind::kPlain) return true;
  // ActiveDomain is sorted, so membership is a binary search.
  const std::vector<Value> adom = base.ActiveDomain();
  const auto in_adom = [&adom](Value v) {
    return std::binary_search(adom.begin(), adom.end(), v);
  };
  for (const Fact& f : addition.AllFacts()) {
    if (kind == MonotonicityKind::kDomainDistinct) {
      // Some value of f must lie outside adom(base).
      const bool has_fresh =
          std::any_of(f.args.begin(), f.args.end(),
                      [&in_adom](Value v) { return !in_adom(v); });
      if (!has_fresh) return false;
      // Nullary facts have no fresh value: not domain distinct.
      if (f.args.empty()) return false;
    } else {  // kDomainDisjoint.
      const bool all_fresh =
          std::all_of(f.args.begin(), f.args.end(),
                      [&in_adom](Value v) { return !in_adom(v); });
      if (!all_fresh || f.args.empty()) return false;
    }
  }
  return true;
}

std::optional<MonotonicityViolation> FindMonotonicityViolation(
    const Schema& schema, const std::vector<RelationId>& relations,
    const QueryFunction& query, MonotonicityKind kind,
    std::size_t domain_size, std::size_t extra_values,
    std::size_t max_facts) {
  std::vector<Value> base_universe;
  for (std::size_t i = 0; i < domain_size; ++i) {
    base_universe.emplace_back(static_cast<std::int64_t>(i));
  }
  std::vector<Value> extended = base_universe;
  for (std::size_t i = 0; i < extra_values; ++i) {
    extended.emplace_back(static_cast<std::int64_t>(domain_size + i));
  }

  const std::vector<Fact> base_pool =
      FactPool(schema, relations, base_universe);
  const std::vector<Fact> add_pool = FactPool(schema, relations, extended);

  std::optional<MonotonicityViolation> found;
  ForEachBoundedSubset(base_pool, max_facts, [&](const Instance& base) {
    ForEachBoundedSubset(add_pool, max_facts, [&](const Instance& addition) {
      if (addition.Empty()) return true;
      if (!SatisfiesAdditionConstraint(base, addition, kind)) return true;
      if (ViolationAt(query, base, addition)) {
        found = std::make_pair(base, addition);
        return false;
      }
      return true;
    });
    return !found.has_value();
  });
  return found;
}

std::optional<MonotonicityViolation> RandomMonotonicityViolation(
    const Schema& schema, const std::vector<RelationId>& relations,
    const QueryFunction& query, MonotonicityKind kind,
    std::size_t domain_size, std::size_t facts_per_relation,
    std::size_t trials, Rng& rng) {
  LAMP_CHECK(domain_size >= 2);
  for (std::size_t t = 0; t < trials; ++t) {
    // Base over the lower half of the domain, addition values drawn from
    // the full domain but filtered by the constraint.
    Instance base;
    Instance addition;
    for (RelationId rel : relations) {
      const std::size_t arity = schema.ArityOf(rel);
      for (std::size_t k = 0; k < facts_per_relation; ++k) {
        std::vector<Value> args;
        for (std::size_t i = 0; i < arity; ++i) {
          args.emplace_back(
              static_cast<std::int64_t>(rng.Uniform(domain_size / 2)));
        }
        base.Insert(Fact(rel, std::move(args)));
      }
    }
    for (RelationId rel : relations) {
      const std::size_t arity = schema.ArityOf(rel);
      if (arity == 0) continue;
      for (std::size_t k = 0; k < facts_per_relation; ++k) {
        std::vector<Value> args;
        for (std::size_t i = 0; i < arity; ++i) {
          args.emplace_back(static_cast<std::int64_t>(
              rng.Uniform(domain_size)));
        }
        Fact f(rel, std::move(args));
        Instance single;
        single.Insert(f);
        if (SatisfiesAdditionConstraint(base, single, kind)) {
          addition.Insert(f);
        }
      }
    }
    if (addition.Empty()) continue;
    if (ViolationAt(query, base, addition)) {
      return std::make_pair(base, addition);
    }
  }
  return std::nullopt;
}

}  // namespace lamp
