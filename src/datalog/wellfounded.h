#ifndef LAMP_DATALOG_WELLFOUNDED_H_
#define LAMP_DATALOG_WELLFOUNDED_H_

#include <cstddef>

#include "datalog/program.h"
#include "relational/instance.h"

/// \file
/// Well-founded semantics via the alternating fixpoint.
///
/// Programs with negative recursion (win-move: win(x) <- move(x,y),
/// !win(y)) have no stratification; the paper's Section 5.3 cites the
/// result that semi-connected programs under the well-founded semantics
/// remain domain-disjoint-monotone (Zinn-Green-Ludaescher: "win-move is
/// coordination-free (sometimes)"). The alternating fixpoint computes the
/// three-valued model: facts true, false, or undefined.

namespace lamp {

/// The three-valued well-founded model restricted to IDB facts.
struct WellFoundedModel {
  Instance true_facts;       // Facts true in the well-founded model.
  Instance undefined_facts;  // Facts neither true nor false (e.g. draws).
  std::size_t gamma_applications = 0;  // Iterations of the operator.
};

/// Computes the well-founded model of \p program over \p edb. The
/// Gamma operator evaluates negation against a fixed "assumed" set; the
/// alternating sequence of under- and over-estimates converges because
/// Gamma is antimonotone. EDB facts are always true and excluded from the
/// result instances.
WellFoundedModel EvaluateWellFounded(Schema& schema,
                                     const DatalogProgram& program,
                                     const Instance& edb);

}  // namespace lamp

#endif  // LAMP_DATALOG_WELLFOUNDED_H_
