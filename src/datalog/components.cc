#include "datalog/components.h"

#include <functional>

#include "common/check.h"

namespace lamp {

namespace {

/// All facts of the given relations with arguments from \p universe.
std::vector<Fact> FactPool(const Schema& schema,
                           const std::vector<RelationId>& relations,
                           const std::vector<Value>& universe) {
  std::vector<Fact> pool;
  for (RelationId rel : relations) {
    const std::size_t arity = schema.ArityOf(rel);
    if (universe.empty() && arity > 0) continue;
    std::vector<std::size_t> idx(arity, 0);
    while (true) {
      std::vector<Value> args;
      args.reserve(arity);
      for (std::size_t i = 0; i < arity; ++i) args.push_back(universe[idx[i]]);
      pool.emplace_back(rel, std::move(args));
      std::size_t pos = 0;
      while (pos < arity) {
        if (++idx[pos] < universe.size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == arity) break;
    }
  }
  return pool;
}

}  // namespace

bool DistributesOverComponentsOn(const QueryFunction& query,
                                 const Instance& instance) {
  const Instance global = query(instance);
  Instance per_component;
  for (const Instance& component : instance.Components()) {
    per_component.InsertAll(query(component));
  }
  return global == per_component;
}

std::optional<Instance> FindComponentDistributionViolation(
    const Schema& schema, const std::vector<RelationId>& relations,
    const QueryFunction& query, std::size_t domain_size,
    std::size_t max_facts) {
  std::vector<Value> universe;
  for (std::size_t i = 0; i < domain_size; ++i) {
    universe.emplace_back(static_cast<std::int64_t>(i));
  }
  const std::vector<Fact> pool = FactPool(schema, relations, universe);

  Instance current;
  std::optional<Instance> found;
  std::function<void(std::size_t)> descend = [&](std::size_t start) {
    if (found.has_value()) return;
    if (!DistributesOverComponentsOn(query, current)) {
      found = current;
      return;
    }
    if (current.Size() >= max_facts) return;
    for (std::size_t i = start; i < pool.size() && !found.has_value(); ++i) {
      Instance next = current;
      next.Insert(pool[i]);
      std::swap(current, next);
      descend(i + 1);
      std::swap(current, next);
    }
  };
  descend(0);
  return found;
}

std::optional<Instance> RandomComponentDistributionViolation(
    const Schema& schema, const std::vector<RelationId>& relations,
    const QueryFunction& query, std::size_t domain_size,
    std::size_t facts_per_relation, std::size_t trials, Rng& rng) {
  LAMP_CHECK(domain_size >= 4);
  for (std::size_t t = 0; t < trials; ++t) {
    Instance instance;
    for (RelationId rel : relations) {
      const std::size_t arity = schema.ArityOf(rel);
      for (std::size_t k = 0; k < facts_per_relation; ++k) {
        // Half the facts in the low value range, half in a disjoint high
        // range, so the instance has at least two components.
        const bool high = k % 2 == 1;
        std::vector<Value> args;
        for (std::size_t i = 0; i < arity; ++i) {
          const std::int64_t base =
              high ? static_cast<std::int64_t>(10 * domain_size) : 0;
          args.emplace_back(base +
                            static_cast<std::int64_t>(
                                rng.Uniform(domain_size / 2)));
        }
        instance.Insert(Fact(rel, std::move(args)));
      }
    }
    if (!DistributesOverComponentsOn(query, instance)) return instance;
  }
  return std::nullopt;
}

}  // namespace lamp
