#include "datalog/wellfounded.h"

#include <map>
#include <string>

#include "common/check.h"
#include "datalog/eval.h"

namespace lamp {

namespace {

/// Keeps only facts of the given relations.
Instance FilterRelations(const Instance& instance,
                         const std::set<RelationId>& keep) {
  Instance out;
  for (const Fact& f : instance.AllFacts()) {
    if (keep.count(f.relation) > 0) out.Insert(f);
  }
  return out;
}

}  // namespace

WellFoundedModel EvaluateWellFounded(Schema& schema,
                                     const DatalogProgram& program,
                                     const Instance& edb) {
  const std::set<RelationId> idb = program.IdbRelations();

  // Shadow relations for IDB predicates that occur negated; negation in
  // the rewritten program points at the shadow, which holds the current
  // assumed set. Negated EDB atoms keep their meaning (the EDB is total).
  std::map<RelationId, RelationId> shadow;
  DatalogProgram rewritten;
  for (const ConjunctiveQuery& rule : program.rules()) {
    ConjunctiveQuery copy = rule;
    for (std::size_t i = 0; i < rule.negated().size(); ++i) {
      const RelationId rel = rule.negated()[i].relation;
      if (idb.count(rel) == 0) continue;
      auto it = shadow.find(rel);
      if (it == shadow.end()) {
        it = shadow
                 .emplace(rel, schema.AddRelation(
                                   "__assumed_" + schema.NameOf(rel),
                                   schema.ArityOf(rel)))
                 .first;
      }
      copy.SetNegatedRelation(i, it->second);
    }
    rewritten.AddRule(std::move(copy));
  }
  LAMP_CHECK_MSG(rewritten.Stratify().has_value(),
                 "rewritten program must stratify (negation now on shadows)");

  // Gamma(X): least model with negation evaluated against the fixed X.
  auto gamma = [&](const Instance& assumed) -> Instance {
    Instance working = edb;
    for (const Fact& f : assumed.AllFacts()) {
      auto it = shadow.find(f.relation);
      if (it != shadow.end()) working.Insert(Fact(it->second, f.args));
    }
    return FilterRelations(EvaluateProgram(schema, rewritten, working), idb);
  };

  // Alternating fixpoint: A0 = empty, A_{i+1} = Gamma(A_i). Evens ascend
  // to the true set, odds descend to the possible set.
  WellFoundedModel model;
  Instance even;             // A_0.
  Instance odd = gamma(even);  // A_1.
  ++model.gamma_applications;
  while (true) {
    Instance next_even = gamma(odd);
    ++model.gamma_applications;
    if (next_even == even) break;
    even = std::move(next_even);
    odd = gamma(even);
    ++model.gamma_applications;
  }

  model.true_facts = even;
  for (const Fact& f : odd.AllFacts()) {
    if (!even.Contains(f)) model.undefined_facts.Insert(f);
  }
  return model;
}

}  // namespace lamp
