#ifndef LAMP_DATALOG_EVAL_H_
#define LAMP_DATALOG_EVAL_H_

#include <cstddef>
#include <string_view>

#include "datalog/program.h"
#include "obs/metrics.h"
#include "relational/instance.h"

/// \file
/// Stratified Datalog evaluation.
///
/// Strata are evaluated bottom-up; within a stratum the engine runs
/// *semi-naive* iteration: each round, every occurrence of a
/// same-stratum recursive predicate is in turn restricted to the previous
/// round's delta, so no derivation is recomputed. Negated atoms refer to
/// lower strata (or EDB) and are therefore fully known when used —
/// the standard stratified semantics.
///
/// The distinguished relation name "ADom" (arity 1), if used by the
/// program, is automatically populated with the active domain of the EDB
/// (as in the paper's Example 5.13).

namespace lamp {

/// Evaluation statistics (for the D1 benchmark and the audit layer).
struct DatalogStats {
  std::size_t iterations = 0;       // Total semi-naive rounds.
  std::size_t facts_derived = 0;    // IDB facts (excluding EDB).
  std::size_t rows_scanned = 0;     // Rows touched by CQ evaluation.
  std::size_t delta_index_hits = 0;  // Delta rules selected (nonempty delta).

  /// Exports as datalog.iterations / datalog.facts_derived /
  /// datalog.delta_index_hits / relational.rows_scanned counters
  /// (accumulating into whatever the registry already holds).
  void ToMetrics(obs::MetricsRegistry& registry) const;
};

/// Evaluates \p program on \p edb and returns EDB + all derived IDB facts.
/// \p schema is extended with synthetic delta relations (names starting
/// with "__"). Aborts if the program does not stratify; use
/// wellfounded.h for programs with negative recursion.
///
/// When \p metrics is non-null the run additionally records the
/// datalog.* schema of obs/metrics.h, including the per-iteration
/// datalog.delta_size histogram; with a tracer installed (obs/trace.h)
/// every iteration emits a kDatalogIteration event carrying the delta
/// cardinality.
Instance EvaluateProgram(Schema& schema, const DatalogProgram& program,
                         const Instance& edb, DatalogStats* stats = nullptr,
                         obs::MetricsRegistry* metrics = nullptr);

/// Naive (recompute-everything) fixpoint — the ablation baseline for the
/// semi-naive engine. Same semantics, more work per iteration.
Instance EvaluateProgramNaive(Schema& schema, const DatalogProgram& program,
                              const Instance& edb,
                              DatalogStats* stats = nullptr,
                              obs::MetricsRegistry* metrics = nullptr);

/// Name of the built-in active-domain predicate.
inline constexpr std::string_view kADomRelationName = "ADom";

}  // namespace lamp

#endif  // LAMP_DATALOG_EVAL_H_
