#include "mapreduce/relational_jobs.h"

#include <memory>
#include <set>

#include "common/check.h"
#include "common/hash.h"
#include "cq/eval.h"
#include "distribution/policies.h"
#include "mpc/simulator.h"

namespace lamp {

namespace {

/// Shared reduce stage: evaluate the query over the group's facts.
MapReduceJob::ReduceFn EvaluateReducer(const ConjunctiveQuery& query) {
  // The query is captured by value via a shared_ptr so the job remains
  // valid independently of the caller's lifetime.
  auto owned = std::make_shared<ConjunctiveQuery>(query);
  return [owned](std::uint64_t, const std::vector<Fact>& group) {
    Instance local;
    for (const Fact& f : group) local.Insert(f);
    std::vector<KeyValue> out;
    for (const Fact& f : Evaluate(*owned, local).AllFacts()) {
      out.push_back({0, f});
    }
    return out;
  };
}

}  // namespace

MapReduceJob RepartitionJoinJob(const ConjunctiveQuery& query,
                                std::size_t num_reducers,
                                std::uint64_t seed) {
  LAMP_CHECK_MSG(query.body().size() == 2 && !query.HasSelfJoin(),
                 "repartition job needs a two-atom join without self-joins");
  LAMP_CHECK(num_reducers > 0);

  // Join key positions per atom: first occurrence of each shared variable.
  auto owned = std::make_shared<ConjunctiveQuery>(query);
  MapReduceJob job;
  job.map = [owned, num_reducers, seed](const Fact& f) {
    std::vector<KeyValue> out;
    const Atom* atom = nullptr;
    const Atom* other = nullptr;
    if (f.relation == owned->body()[0].relation) {
      atom = &owned->body()[0];
      other = &owned->body()[1];
    } else if (f.relation == owned->body()[1].relation) {
      atom = &owned->body()[1];
      other = &owned->body()[0];
    } else {
      return out;
    }
    // Hash the values at the positions of variables shared with the other
    // atom (in VarId order for determinism).
    std::set<VarId> other_vars;
    for (const Term& t : other->terms) {
      if (t.IsVar()) other_vars.insert(t.var);
    }
    std::uint64_t h = HashMix(seed);
    std::set<VarId> used;
    for (VarId v = 0; v < owned->NumVars(); ++v) {
      if (other_vars.count(v) == 0) continue;
      for (std::size_t i = 0; i < atom->terms.size(); ++i) {
        const Term& t = atom->terms[i];
        if (t.IsVar() && t.var == v && used.insert(v).second) {
          h = HashCombine(h, static_cast<std::uint64_t>(f.args[i].v));
        }
      }
    }
    if (used.empty()) return out;  // Fact has no join variable: drop.
    out.push_back({h % num_reducers, f});
    return out;
  };
  job.reduce = EvaluateReducer(query);
  return job;
}

MapReduceJob SharesJob(const ConjunctiveQuery& query, const Shares& shares,
                       std::uint64_t seed) {
  auto policy = std::make_shared<HypercubePolicy>(query, shares,
                                                  MakeUniverse(1), seed);
  MapReduceJob job;
  job.map = [policy](const Fact& f) {
    std::vector<KeyValue> out;
    for (NodeId node : policy->ResponsibleNodes(f)) {
      out.push_back({node, f});
    }
    return out;
  };
  job.reduce = EvaluateReducer(query);
  return job;
}

MpcRunResult RunJobOnMpc(const MapReduceJob& job, const Instance& input,
                         std::size_t num_servers) {
  MpcSimulator sim(num_servers);
  sim.LoadInput(input);
  sim.RunRound(
      [&job, num_servers](NodeId, const Fact& f) {
        std::vector<NodeId> targets;
        for (const KeyValue& kv : job.map(f)) {
          targets.push_back(static_cast<NodeId>(kv.key % num_servers));
        }
        return targets;
      },
      [&job, num_servers](NodeId me,
                          const Instance& received) -> MpcSimulator::ComputeResult {
        // Re-derive each fact's keys locally and reduce the groups this
        // server owns (key mod p == me).
        std::map<std::uint64_t, std::vector<Fact>> groups;
        for (const Fact& f : received.AllFacts()) {
          for (KeyValue& kv : job.map(f)) {
            if (kv.key % num_servers == me) {
              groups[kv.key].push_back(std::move(kv.value));
            }
          }
        }
        Instance output;
        for (const auto& [key, values] : groups) {
          for (const KeyValue& kv : job.reduce(key, values)) {
            output.Insert(kv.value);
          }
        }
        return {Instance(), std::move(output)};
      });
  return {sim.output(), sim.stats()};
}

}  // namespace lamp
