#include "mapreduce/recursive.h"

#include <algorithm>

#include "common/check.h"

namespace lamp {

namespace {

/// One join job over binary relations: joins `left` facts (on their second
/// column) with `right` facts (on their first column), emitting `out`
/// facts. Keys are the raw join values, so grouping is exact.
MapReduceJob JoinSecondWithFirst(RelationId left, RelationId right,
                                 RelationId out) {
  MapReduceJob job;
  job.map = [left, right](const Fact& f) {
    std::vector<KeyValue> kvs;
    if (f.relation == left) {
      kvs.push_back({static_cast<std::uint64_t>(f.args[1].v), f});
    }
    if (f.relation == right) {
      kvs.push_back({static_cast<std::uint64_t>(f.args[0].v), f});
    }
    return kvs;
  };
  job.reduce = [left, right, out](std::uint64_t key,
                                  const std::vector<Fact>& group) {
    std::vector<KeyValue> kvs;
    for (const Fact& l : group) {
      if (l.relation != left ||
          static_cast<std::uint64_t>(l.args[1].v) != key) {
        continue;
      }
      for (const Fact& r : group) {
        if (r.relation != right ||
            static_cast<std::uint64_t>(r.args[0].v) != key) {
          continue;
        }
        kvs.push_back({0, Fact(out, {l.args[0].v, r.args[1].v})});
      }
    }
    return kvs;
  };
  return job;
}

void Accumulate(const MapReduceStats& stats, RecursiveTcResult& result) {
  result.pairs_shuffled += stats.pairs_shuffled;
  result.max_group = std::max(result.max_group, stats.MaxGroupSize());
}

}  // namespace

RecursiveTcResult TransitiveClosureLinear(const Schema& schema,
                                          RelationId edge, RelationId tc,
                                          const Instance& edges) {
  LAMP_CHECK(schema.ArityOf(edge) == 2 && schema.ArityOf(tc) == 2);
  RecursiveTcResult result;
  // TC starts as a copy of the edges.
  for (const Fact& f : edges.FactsOf(edge)) {
    result.closure.Insert(Fact(tc, f.args));
  }

  const MapReduceJob step = JoinSecondWithFirst(tc, edge, tc);
  while (true) {
    Instance input = edges;
    input.InsertAll(result.closure);
    MapReduceStats stats;
    const Instance derived = RunJob(step, input, &stats);
    ++result.jobs;
    Accumulate(stats, result);
    if (result.closure.InsertAll(derived) == 0) break;
  }
  return result;
}

RecursiveTcResult TransitiveClosureDoubling(const Schema& schema,
                                            RelationId edge, RelationId tc,
                                            const Instance& edges) {
  LAMP_CHECK(schema.ArityOf(edge) == 2 && schema.ArityOf(tc) == 2);
  RecursiveTcResult result;
  for (const Fact& f : edges.FactsOf(edge)) {
    result.closure.Insert(Fact(tc, f.args));
  }

  const MapReduceJob step = JoinSecondWithFirst(tc, tc, tc);
  while (true) {
    MapReduceStats stats;
    const Instance derived = RunJob(step, result.closure, &stats);
    ++result.jobs;
    Accumulate(stats, result);
    if (result.closure.InsertAll(derived) == 0) break;
  }
  return result;
}

}  // namespace lamp
