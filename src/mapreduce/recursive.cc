#include "mapreduce/recursive.h"

#include <algorithm>

#include "common/check.h"

namespace lamp {

namespace {

/// One join job over binary relations: joins `left` facts (on their second
/// column) with `right` facts (on their first column), emitting `out`
/// facts. Keys are the raw join values, so grouping is exact.
MapReduceJob JoinSecondWithFirst(RelationId left, RelationId right,
                                 RelationId out) {
  MapReduceJob job;
  job.map = [left, right](const Fact& f) {
    std::vector<KeyValue> kvs;
    if (f.relation == left) {
      kvs.push_back({static_cast<std::uint64_t>(f.args[1].v), f});
    }
    if (f.relation == right) {
      kvs.push_back({static_cast<std::uint64_t>(f.args[0].v), f});
    }
    return kvs;
  };
  job.reduce = [left, right, out](std::uint64_t key,
                                  const std::vector<Fact>& group) {
    std::vector<KeyValue> kvs;
    for (const Fact& l : group) {
      if (l.relation != left ||
          static_cast<std::uint64_t>(l.args[1].v) != key) {
        continue;
      }
      for (const Fact& r : group) {
        if (r.relation != right ||
            static_cast<std::uint64_t>(r.args[0].v) != key) {
          continue;
        }
        kvs.push_back({0, Fact(out, {l.args[0].v, r.args[1].v})});
      }
    }
    return kvs;
  };

  // Columnar twins of the two closures above: same pairs, same per-group
  // emission order. The reduce pre-partitions the group into join sides
  // once — O(lefts × rights) emissions instead of the fact path's
  // O(group²) filter sweeps — which preserves the nested-loop order
  // because both sides keep the group's own order.
  job.map_rows = [left, right](RelationId rel, const Value* row,
                               std::size_t arity,
                               std::vector<RowEntry>& out_entries) {
    if (rel == left) {
      out_entries.push_back({static_cast<std::uint64_t>(row[1].v), rel,
                             static_cast<std::uint32_t>(arity), row});
    }
    if (rel == right) {
      out_entries.push_back({static_cast<std::uint64_t>(row[0].v), rel,
                             static_cast<std::uint32_t>(arity), row});
    }
  };
  // The scratch vectors live in the closure so their capacity is reused
  // across groups (std::function invokes the callable non-const).
  job.reduce_rows = [left, right, out, lefts = std::vector<const Value*>(),
                     rights = std::vector<const Value*>(),
                     derived = std::vector<Value>()](
                        std::uint64_t key, const RowEntry* group,
                        std::size_t count, Instance& output) mutable {
    lefts.clear();
    rights.clear();
    for (std::size_t i = 0; i < count; ++i) {
      const Value* row = group[i].row;
      if (group[i].relation == left &&
          static_cast<std::uint64_t>(row[1].v) == key) {
        lefts.push_back(row);
      }
      if (group[i].relation == right &&
          static_cast<std::uint64_t>(row[0].v) == key) {
        rights.push_back(row);
      }
    }
    if (lefts.empty() || rights.empty()) return;
    derived.clear();
    for (const Value* l : lefts) {
      for (const Value* r : rights) {
        derived.push_back(l[0]);
        derived.push_back(r[1]);
      }
    }
    output.InsertRows(out, derived.data(), derived.size() / 2, 2);
  };
  return job;
}

void Accumulate(const MapReduceStats& stats, RecursiveTcResult& result) {
  result.pairs_shuffled += stats.pairs_shuffled;
  result.max_group = std::max(result.max_group, stats.MaxGroupSize());
}

}  // namespace

RecursiveTcResult TransitiveClosureLinear(const Schema& schema,
                                          RelationId edge, RelationId tc,
                                          const Instance& edges) {
  LAMP_CHECK(schema.ArityOf(edge) == 2 && schema.ArityOf(tc) == 2);
  RecursiveTcResult result;
  // TC starts as a copy of the edges.
  const RowsView edge_rows = edges.RowsOf(edge);
  result.closure.InsertRows(tc, edge_rows.data, edge_rows.num_rows,
                            edge_rows.arity);

  const MapReduceJob step = JoinSecondWithFirst(tc, edge, tc);
  // One persistent job input, extended with each round's new closure rows
  // — the same rows InsertAll appends to the closure, in the same order —
  // instead of re-copying edges + closure every round.
  Instance input = edges;
  input.InsertAll(result.closure);
  while (true) {
    MapReduceStats stats;
    const Instance derived = RunJob(step, input, &stats);
    ++result.jobs;
    Accumulate(stats, result);
    // Each closure row that is new is also new for (and mirrored into)
    // the job input — `input` is edges ∪ closure with closure rows in
    // closure insertion order.
    const RowsView dv = derived.RowsOf(tc);
    if (result.closure.InsertRowsInto(tc, dv.data, dv.num_rows, dv.arity,
                                      input) == 0) {
      break;
    }
  }
  return result;
}

RecursiveTcResult TransitiveClosureDoubling(const Schema& schema,
                                            RelationId edge, RelationId tc,
                                            const Instance& edges) {
  LAMP_CHECK(schema.ArityOf(edge) == 2 && schema.ArityOf(tc) == 2);
  RecursiveTcResult result;
  const RowsView edge_rows = edges.RowsOf(edge);
  result.closure.InsertRows(tc, edge_rows.data, edge_rows.num_rows,
                            edge_rows.arity);

  const MapReduceJob step = JoinSecondWithFirst(tc, tc, tc);
  while (true) {
    MapReduceStats stats;
    const Instance derived = RunJob(step, result.closure, &stats);
    ++result.jobs;
    Accumulate(stats, result);
    const RowsView dv = derived.RowsOf(tc);
    if (result.closure.InsertRows(tc, dv.data, dv.num_rows, dv.arity) == 0) {
      break;
    }
  }
  return result;
}

}  // namespace lamp
