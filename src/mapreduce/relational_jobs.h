#ifndef LAMP_MAPREDUCE_RELATIONAL_JOBS_H_
#define LAMP_MAPREDUCE_RELATIONAL_JOBS_H_

#include "cq/cq.h"
#include "distribution/hypercube.h"
#include "mapreduce/mapreduce.h"
#include "mpc/join_strategies.h"

/// \file
/// The canonical relational MapReduce jobs the paper refers to, plus the
/// MapReduce -> MPC translation it sketches ("the map phase and reducer
/// phase readily translate to the communication and computation phase").

namespace lamp {

/// The repartition join (Example 3.1(1a)) as one MapReduce job:
/// mu hashes each fact on its join-variable values to one of
/// \p num_reducers keys; rho evaluates \p query on its group. \p query
/// must be a two-atom join without self-joins.
MapReduceJob RepartitionJoinJob(const ConjunctiveQuery& query,
                                std::size_t num_reducers,
                                std::uint64_t seed = 0);

/// The Shares/HyperCube algorithm (Section 3.1, Afrati-Ullman) as one
/// MapReduce job: mu replicates each fact to every grid cell the
/// HyperCube policy makes responsible; rho evaluates the query. The
/// returned job owns a HypercubePolicy built from \p shares.
MapReduceJob SharesJob(const ConjunctiveQuery& query, const Shares& shares,
                       std::uint64_t seed = 0);

/// Executes \p job as a one-round MPC algorithm on \p num_servers servers:
/// reducer keys are assigned to servers round-robin (key mod p), the map
/// phase becomes the communication phase and the reduce phase runs
/// per-server over its keys — the paper's MapReduce-to-MPC translation.
MpcRunResult RunJobOnMpc(const MapReduceJob& job, const Instance& input,
                         std::size_t num_servers);

}  // namespace lamp

#endif  // LAMP_MAPREDUCE_RELATIONAL_JOBS_H_
