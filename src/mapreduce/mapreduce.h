#ifndef LAMP_MAPREDUCE_MAPREDUCE_H_
#define LAMP_MAPREDUCE_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "relational/instance.h"

/// \file
/// The MapReduce formalism of Section 3 of the paper.
///
/// A job is a pair (mu, rho): the map function mu turns each input fact
/// into key-value pairs; pairs are grouped by key; the reduce function rho
/// turns each group into output pairs. A MapReduce *program* is a sequence
/// of jobs. The paper observes that every MapReduce program is an MPC
/// algorithm — the map phase is the communication phase (the key is the
/// server) and the reduce phase the computation phase; ToMpc() makes the
/// translation executable and the tests check both sides compute the same
/// result with the same load profile.
///
/// Values are facts (the natural choice for relational jobs); keys are
/// 64-bit integers.

namespace lamp {

/// One key-value pair.
struct KeyValue {
  std::uint64_t key = 0;
  Fact value;
};

/// A MapReduce job.
struct MapReduceJob {
  /// mu: fact -> collection of key-value pairs.
  using MapFn = std::function<std::vector<KeyValue>(const Fact&)>;
  /// rho: (key, values) -> collection of key-value pairs.
  using ReduceFn = std::function<std::vector<KeyValue>(
      std::uint64_t key, const std::vector<Fact>& group)>;

  MapFn map;
  ReduceFn reduce;
};

/// Load statistics of one job execution: number of values each reducer
/// (key group) received — the "reducer size" of Das Sarma et al. [27] —
/// and the total number of key-value pairs shuffled (the communication
/// cost of Afrati-Ullman).
struct MapReduceStats {
  std::vector<std::size_t> group_sizes;
  std::size_t pairs_shuffled = 0;

  std::size_t MaxGroupSize() const;
  std::size_t NumGroups() const { return group_sizes.size(); }
};

/// Executes one job on \p input; all produced values are collected into an
/// Instance (duplicate facts merge).
Instance RunJob(const MapReduceJob& job, const Instance& input,
                MapReduceStats* stats = nullptr);

/// A program: jobs executed in sequence, the output of one feeding the
/// next.
struct MapReduceProgram {
  std::vector<MapReduceJob> jobs;
};

/// Runs a whole program; per-job stats are appended to \p stats.
Instance RunProgram(const MapReduceProgram& program, const Instance& input,
                    std::vector<MapReduceStats>* stats = nullptr);

}  // namespace lamp

#endif  // LAMP_MAPREDUCE_MAPREDUCE_H_
