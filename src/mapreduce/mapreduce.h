#ifndef LAMP_MAPREDUCE_MAPREDUCE_H_
#define LAMP_MAPREDUCE_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "relational/instance.h"

/// \file
/// The MapReduce formalism of Section 3 of the paper.
///
/// A job is a pair (mu, rho): the map function mu turns each input fact
/// into key-value pairs; pairs are grouped by key; the reduce function rho
/// turns each group into output pairs. A MapReduce *program* is a sequence
/// of jobs. The paper observes that every MapReduce program is an MPC
/// algorithm — the map phase is the communication phase (the key is the
/// server) and the reduce phase the computation phase; ToMpc() makes the
/// translation executable and the tests check both sides compute the same
/// result with the same load profile.
///
/// Values are facts (the natural choice for relational jobs); keys are
/// 64-bit integers.

namespace lamp {

/// One key-value pair.
struct KeyValue {
  std::uint64_t key = 0;
  Fact value;
};

/// One shuffled pair of the columnar fast path: a key plus a borrowed
/// reference to the mapped input row (no per-pair fact allocation). The
/// row pointer stays valid for the duration of the job — RunJob never
/// mutates its input.
struct RowEntry {
  std::uint64_t key = 0;
  RelationId relation = 0;
  std::uint32_t arity = 0;
  const Value* row = nullptr;
};

/// A MapReduce job.
struct MapReduceJob {
  /// mu: fact -> collection of key-value pairs.
  using MapFn = std::function<std::vector<KeyValue>(const Fact&)>;
  /// rho: (key, values) -> collection of key-value pairs.
  using ReduceFn = std::function<std::vector<KeyValue>(
      std::uint64_t key, const std::vector<Fact>& group)>;

  /// Row-level mu of the columnar fast path: append the pairs of one input
  /// row to \p out (pairs reference the row, they do not copy it).
  using MapRowsFn = std::function<void(RelationId relation, const Value* row,
                                       std::size_t arity,
                                       std::vector<RowEntry>& out)>;
  /// Row-level rho: consume one key group (a contiguous run of entries in
  /// shuffle order) and insert the output rows into \p out.
  using ReduceRowsFn = std::function<void(std::uint64_t key,
                                          const RowEntry* group,
                                          std::size_t count, Instance& out)>;

  MapFn map;
  ReduceFn reduce;

  /// Optional columnar fast path. When both hooks are set, RunJob shuffles
  /// borrowed row references through a flat sorted vector instead of
  /// materialising facts in a std::map — the hooks must be semantically
  /// identical to map/reduce (same pairs, same per-group output order), so
  /// stats and the output instance are byte-identical either way. The
  /// fact-level functions stay mandatory: MPC translation (RunJobOnMpc)
  /// and the equivalence tests run those.
  MapRowsFn map_rows;
  ReduceRowsFn reduce_rows;
};

/// Load statistics of one job execution: number of values each reducer
/// (key group) received — the "reducer size" of Das Sarma et al. [27] —
/// and the total number of key-value pairs shuffled (the communication
/// cost of Afrati-Ullman).
struct MapReduceStats {
  std::vector<std::size_t> group_sizes;
  std::size_t pairs_shuffled = 0;

  std::size_t MaxGroupSize() const;
  std::size_t NumGroups() const { return group_sizes.size(); }
};

/// Executes one job on \p input; all produced values are collected into an
/// Instance (duplicate facts merge).
Instance RunJob(const MapReduceJob& job, const Instance& input,
                MapReduceStats* stats = nullptr);

/// A program: jobs executed in sequence, the output of one feeding the
/// next.
struct MapReduceProgram {
  std::vector<MapReduceJob> jobs;
};

/// Runs a whole program; per-job stats are appended to \p stats.
Instance RunProgram(const MapReduceProgram& program, const Instance& input,
                    std::vector<MapReduceStats>* stats = nullptr);

}  // namespace lamp

#endif  // LAMP_MAPREDUCE_MAPREDUCE_H_
