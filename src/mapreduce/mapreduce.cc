#include "mapreduce/mapreduce.h"

#include <algorithm>

namespace lamp {

std::size_t MapReduceStats::MaxGroupSize() const {
  if (group_sizes.empty()) return 0;
  return *std::max_element(group_sizes.begin(), group_sizes.end());
}

Instance RunJob(const MapReduceJob& job, const Instance& input,
                MapReduceStats* stats) {
  // Map stage: apply mu to every input fact, group by key. Groups use an
  // ordered map so the execution is deterministic.
  std::map<std::uint64_t, std::vector<Fact>> groups;
  std::size_t shuffled = 0;
  input.ForEachFact([&job, &groups, &shuffled](const Fact& f) {
    for (KeyValue& kv : job.map(f)) {
      groups[kv.key].push_back(std::move(kv.value));
      ++shuffled;
    }
  });

  // Reduce stage: apply rho per group.
  Instance output;
  MapReduceStats local;
  local.pairs_shuffled = shuffled;
  for (const auto& [key, values] : groups) {
    local.group_sizes.push_back(values.size());
    for (const KeyValue& kv : job.reduce(key, values)) {
      output.Insert(kv.value);
    }
  }
  if (stats != nullptr) *stats = std::move(local);
  return output;
}

Instance RunProgram(const MapReduceProgram& program, const Instance& input,
                    std::vector<MapReduceStats>* stats) {
  Instance current = input;
  for (const MapReduceJob& job : program.jobs) {
    MapReduceStats job_stats;
    current = RunJob(job, current, &job_stats);
    if (stats != nullptr) stats->push_back(std::move(job_stats));
  }
  return current;
}

}  // namespace lamp
