#include "mapreduce/mapreduce.h"

#include <algorithm>

namespace lamp {

std::size_t MapReduceStats::MaxGroupSize() const {
  if (group_sizes.empty()) return 0;
  return *std::max_element(group_sizes.begin(), group_sizes.end());
}

namespace {

/// Columnar execution: shuffle borrowed row references through one flat
/// vector, stable-sorted by key. Stable sort keeps within-key entries in
/// emission order and sorts groups ascending — exactly the grouping the
/// std::map path produces — so stats and output are byte-identical.
Instance RunJobColumnar(const MapReduceJob& job, const Instance& input,
                        MapReduceStats* stats) {
  std::vector<RowEntry> entries;
  for (RelationId r = 0; r < input.RelationBound(); ++r) {
    const RowsView rows = input.RowsOf(r);
    const Value* row = rows.data;
    for (std::size_t i = 0; i < rows.num_rows; ++i, row += rows.arity) {
      job.map_rows(r, row, rows.arity, entries);
    }
  }
  // Group by key, ascending, keeping within-key entries in emission order
  // — the grouping the std::map path produces. Dense keys (the common case
  // for join keys drawn from a small active domain) take a counting sort,
  // which is stable by construction; sparse keys fall back to stable_sort.
  std::uint64_t max_key = 0;
  for (const RowEntry& e : entries) max_key = std::max(max_key, e.key);
  if (!entries.empty() && max_key <= entries.size() * 4 + 1024) {
    std::vector<std::size_t> offsets(max_key + 2, 0);
    for (const RowEntry& e : entries) ++offsets[e.key + 1];
    for (std::size_t k = 1; k < offsets.size(); ++k) {
      offsets[k] += offsets[k - 1];
    }
    std::vector<RowEntry> sorted(entries.size());
    for (const RowEntry& e : entries) sorted[offsets[e.key]++] = e;
    entries.swap(sorted);
  } else {
    std::stable_sort(entries.begin(), entries.end(),
                     [](const RowEntry& a, const RowEntry& b) {
                       return a.key < b.key;
                     });
  }

  Instance output;
  MapReduceStats local;
  local.pairs_shuffled = entries.size();
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    while (j < entries.size() && entries[j].key == entries[i].key) ++j;
    local.group_sizes.push_back(j - i);
    job.reduce_rows(entries[i].key, entries.data() + i, j - i, output);
    i = j;
  }
  if (stats != nullptr) *stats = std::move(local);
  return output;
}

}  // namespace

Instance RunJob(const MapReduceJob& job, const Instance& input,
                MapReduceStats* stats) {
  if (job.map_rows && job.reduce_rows) {
    return RunJobColumnar(job, input, stats);
  }
  // Map stage: apply mu to every input fact, group by key. Groups use an
  // ordered map so the execution is deterministic.
  std::map<std::uint64_t, std::vector<Fact>> groups;
  std::size_t shuffled = 0;
  input.ForEachFact([&job, &groups, &shuffled](const Fact& f) {
    for (KeyValue& kv : job.map(f)) {
      groups[kv.key].push_back(std::move(kv.value));
      ++shuffled;
    }
  });

  // Reduce stage: apply rho per group.
  Instance output;
  MapReduceStats local;
  local.pairs_shuffled = shuffled;
  for (const auto& [key, values] : groups) {
    local.group_sizes.push_back(values.size());
    for (const KeyValue& kv : job.reduce(key, values)) {
      output.Insert(kv.value);
    }
  }
  if (stats != nullptr) *stats = std::move(local);
  return output;
}

Instance RunProgram(const MapReduceProgram& program, const Instance& input,
                    std::vector<MapReduceStats>* stats) {
  Instance current = input;
  for (const MapReduceJob& job : program.jobs) {
    MapReduceStats job_stats;
    current = RunJob(job, current, &job_stats);
    if (stats != nullptr) stats->push_back(std::move(job_stats));
  }
  return current;
}

}  // namespace lamp
