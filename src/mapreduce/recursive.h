#ifndef LAMP_MAPREDUCE_RECURSIVE_H_
#define LAMP_MAPREDUCE_RECURSIVE_H_

#include <cstdint>

#include "mapreduce/mapreduce.h"
#include "relational/schema.h"

/// \file
/// Transitive closure and recursive Datalog on clusters (Afrati-Ullman,
/// discussed in Section 3.2 of the paper): each fixpoint iteration is one
/// MapReduce job, and the *number of jobs* is the number of
/// synchronization barriers. The two classic strategies trade rounds for
/// communication:
///
///  * linear iteration  TC := TC u (TC |><| E)  — diameter-many jobs,
///    each shuffling O(|TC| + |E|) pairs;
///  * recursive doubling  TC := TC u (TC |><| TC)  — log(diameter) jobs,
///    each shuffling O(|TC|) pairs twice (every closure fact plays both
///    the left and the right role).

namespace lamp {

/// Outcome of an iterative MapReduce transitive-closure computation.
struct RecursiveTcResult {
  Instance closure;               // Facts of the `tc` relation.
  std::size_t jobs = 0;           // MapReduce jobs (= barriers) executed.
  std::size_t pairs_shuffled = 0; // Total key-value pairs over all jobs.
  std::size_t max_group = 0;      // Largest reducer group seen.
};

/// Linear iteration. \p edge facts are the input graph; results are
/// emitted as \p tc facts (both relations must be binary).
RecursiveTcResult TransitiveClosureLinear(const Schema& schema,
                                          RelationId edge, RelationId tc,
                                          const Instance& edges);

/// Recursive doubling (the "smart" TC of Afrati-Ullman).
RecursiveTcResult TransitiveClosureDoubling(const Schema& schema,
                                            RelationId edge, RelationId tc,
                                            const Instance& edges);

}  // namespace lamp

#endif  // LAMP_MAPREDUCE_RECURSIVE_H_
