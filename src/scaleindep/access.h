#ifndef LAMP_SCALEINDEP_ACCESS_H_
#define LAMP_SCALEINDEP_ACCESS_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "cq/cq.h"
#include "relational/instance.h"

/// \file
/// Scale independence / bounded query evaluation (Fan-Geerts-Libkin and
/// follow-ups, discussed in Section 6 of the paper): some queries "require
/// only a relatively small subset of the data whose size is determined by
/// the structure of the query and the access methods rather than by the
/// size of the data".
///
/// An *access constraint* R(P -> N) promises that for any fixed values of
/// the positions in P, at most N tuples of R match, and that they can be
/// retrieved by an index lookup. A CQ is *boundedly evaluable* under an
/// access schema when a plan exists that starts from the query's
/// constants (and parameters) and reaches every atom through constrained
/// accesses only — then the number of tuples ever touched is bounded by a
/// product of the constraints' bounds, independent of |I|.

namespace lamp {

/// R(P -> N).
struct AccessConstraint {
  RelationId relation = 0;
  std::vector<std::size_t> input_positions;  // Sorted, may be empty (scan
                                             // of a relation of size <= N).
  std::size_t bound = 0;
};

/// A set of access constraints.
class AccessSchema {
 public:
  void Add(AccessConstraint constraint);
  const std::vector<AccessConstraint>& constraints() const {
    return constraints_;
  }

  /// Constraints on \p relation.
  std::vector<const AccessConstraint*> For(RelationId relation) const;

 private:
  std::vector<AccessConstraint> constraints_;
};

/// One step of a bounded plan: fetch \p atom_index via the (copied)
/// constraint, whose input positions are bound at that point.
struct PlanStep {
  std::size_t atom_index = 0;
  AccessConstraint constraint;
};

/// The result of boundedness analysis.
struct BoundedPlan {
  bool bounded = false;
  std::vector<PlanStep> steps;       // In execution order.
  /// Upper bound on tuples fetched: sum over steps of the product of
  /// the bounds up to and including that step (each step runs once per
  /// partial binding of the earlier steps).
  double worst_case_fetches = 0.0;
};

/// Greedy plan construction: variables bound so far start with the
/// query's constants (every constant position counts as bound); a step is
/// possible when some constraint's input positions are all bound for an
/// unplanned atom; each step binds the atom's remaining variables. The
/// greedy strategy is complete for this notion of plan (binding more
/// variables never hurts).
BoundedPlan PlanBoundedEvaluation(const ConjunctiveQuery& query,
                                  const AccessSchema& schema);

/// Executes a bounded plan, counting every tuple fetched. Aborts if the
/// instance violates a constraint used by the plan (the access schema is
/// a data promise). The query's inequalities are applied; negation is not
/// supported.
struct BoundedEvalResult {
  Instance output;
  std::size_t tuples_fetched = 0;
};
BoundedEvalResult BoundedEvaluate(const ConjunctiveQuery& query,
                                  const BoundedPlan& plan,
                                  const Instance& instance);

}  // namespace lamp

#endif  // LAMP_SCALEINDEP_ACCESS_H_
