#include "scaleindep/access.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/check.h"
#include "cq/valuation.h"

namespace lamp {

namespace {

/// True when every input position of \p constraint is a constant or a
/// bound variable in \p atom.
bool InputsCovered(const Atom& atom, const AccessConstraint& constraint,
                   const std::set<VarId>& bound) {
  for (std::size_t pos : constraint.input_positions) {
    if (pos >= atom.terms.size()) return false;
    const Term& t = atom.terms[pos];
    if (t.IsVar() && bound.count(t.var) == 0) return false;
  }
  return true;
}

}  // namespace

void AccessSchema::Add(AccessConstraint constraint) {
  std::sort(constraint.input_positions.begin(),
            constraint.input_positions.end());
  constraints_.push_back(std::move(constraint));
}

std::vector<const AccessConstraint*> AccessSchema::For(
    RelationId relation) const {
  std::vector<const AccessConstraint*> out;
  for (const AccessConstraint& c : constraints_) {
    if (c.relation == relation) out.push_back(&c);
  }
  return out;
}

BoundedPlan PlanBoundedEvaluation(const ConjunctiveQuery& query,
                                  const AccessSchema& schema) {
  BoundedPlan plan;
  plan.worst_case_fetches = 0.0;
  double running_product = 1.0;

  std::set<VarId> bound;  // Starts empty: only constants are free inputs.
  std::vector<bool> planned(query.body().size(), false);

  for (std::size_t step = 0; step < query.body().size(); ++step) {
    // Among the accessible (atom, constraint) pairs, pick the one with
    // the smallest fan-out bound (greedy; completeness follows because
    // binding more variables never disables an access).
    std::size_t best_atom = query.body().size();
    const AccessConstraint* best_constraint = nullptr;
    for (std::size_t a = 0; a < query.body().size(); ++a) {
      if (planned[a]) continue;
      const Atom& atom = query.body()[a];
      for (const AccessConstraint& constraint : schema.constraints()) {
        if (constraint.relation != atom.relation) continue;
        if (!InputsCovered(atom, constraint, bound)) continue;
        if (best_constraint == nullptr ||
            constraint.bound < best_constraint->bound) {
          best_atom = a;
          best_constraint = &constraint;
        }
      }
    }
    if (best_constraint == nullptr) {
      plan.bounded = false;
      plan.steps.clear();
      return plan;  // Some atom is unreachable through constrained access.
    }
    planned[best_atom] = true;
    plan.steps.push_back({best_atom, *best_constraint});
    running_product *= static_cast<double>(best_constraint->bound);
    plan.worst_case_fetches += running_product;
    for (const Term& t : query.body()[best_atom].terms) {
      if (t.IsVar()) bound.insert(t.var);
    }
  }
  plan.bounded = true;
  return plan;
}

BoundedEvalResult BoundedEvaluate(const ConjunctiveQuery& query,
                                  const BoundedPlan& plan,
                                  const Instance& instance) {
  LAMP_CHECK_MSG(plan.bounded, "query is not boundedly evaluable");
  LAMP_CHECK_MSG(query.negated().empty(),
                 "bounded evaluation does not support negation");

  BoundedEvalResult result;

  // Per-step index: constraint input-position values -> matching rows
  // (borrowed pointers into the instance's columnar storage). Lazily
  // built; models the index structure the access constraint promises.
  struct StepIndex {
    std::map<std::vector<std::int64_t>, std::vector<const Value*>> buckets;
  };
  std::vector<std::optional<StepIndex>> indexes(plan.steps.size());

  Valuation valuation(query.NumVars());

  std::function<void(std::size_t)> descend = [&](std::size_t depth) {
    if (depth == plan.steps.size()) {
      if (valuation.SatisfiesInequalities(query)) {
        result.output.Insert(valuation.ApplyToAtom(query.head()));
      }
      return;
    }
    const PlanStep& step = plan.steps[depth];
    const Atom& atom = query.body()[step.atom_index];
    const std::vector<std::size_t>& inputs = step.constraint.input_positions;

    if (!indexes[depth].has_value()) {
      StepIndex index;
      instance.ForEachRow(atom.relation, [&](const Value* row) {
        std::vector<std::int64_t> key;
        key.reserve(inputs.size());
        for (std::size_t pos : inputs) key.push_back(row[pos].v);
        index.buckets[std::move(key)].push_back(row);
      });
      indexes[depth] = std::move(index);
    }

    std::vector<std::int64_t> key;
    key.reserve(inputs.size());
    for (std::size_t pos : inputs) {
      key.push_back(valuation.Apply(atom.terms[pos]).v);
    }
    auto it = indexes[depth]->buckets.find(key);
    if (it == indexes[depth]->buckets.end()) return;

    LAMP_CHECK_MSG(it->second.size() <= step.constraint.bound,
                   "instance violates an access constraint");
    for (const Value* row : it->second) {
      ++result.tuples_fetched;
      std::vector<VarId> newly_bound;
      bool ok = true;
      for (std::size_t i = 0; i < atom.terms.size() && ok; ++i) {
        const Term& t = atom.terms[i];
        if (t.IsConst()) {
          ok = t.constant == row[i];
        } else if (valuation.IsBound(t.var)) {
          ok = valuation.Get(t.var) == row[i];
        } else {
          valuation.Bind(t.var, row[i]);
          newly_bound.push_back(t.var);
        }
      }
      if (ok) descend(depth + 1);
      for (VarId v : newly_bound) valuation.Unbind(v);
    }
  };

  descend(0);
  return result;
}

}  // namespace lamp
