#include "cq/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/interner.h"

namespace lamp {

namespace {

/// Internal signal for syntax errors; caught at the TryParseQuery boundary
/// so untrusted input (lint files) reports instead of aborting.
struct ParseError {
  std::string message;
};

/// Hand-rolled recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(Schema& schema, std::string_view text)
      : schema_(schema), text_(text) {}

  ConjunctiveQuery Parse() {
    query_.SetHead(ParseAtom());
    SkipSpace();
    if (!Consume("<-")) {
      Require(Consume(":-"), "expected '<-' or ':-' after head");
    }
    ParseItem();
    SkipSpace();
    while (Consume(",")) {
      ParseItem();
      SkipSpace();
    }
    Require(pos_ == text_.size(), "trailing input after query");
    return std::move(query_);
  }

 private:
  static void Require(bool cond, std::string message) {
    if (!cond) throw ParseError{std::move(message)};
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  bool PeekChar(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string ParseName() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    Require(pos_ > start, "expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  Term ParseTerm() {
    SkipSpace();
    Require(pos_ < text_.size(), "expected a term");
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      const std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      const std::string digits(text_.substr(start, pos_ - start));
      return Term::Const(Value(std::strtoll(digits.c_str(), nullptr, 10)));
    }
    return Term::Var(query_.VarIdOf(ParseName()));
  }

  Atom ParseAtom() {
    const std::string name = ParseName();
    Require(Consume("("), "expected '(' after relation name");
    std::vector<Term> terms;
    if (!PeekChar(')')) {
      terms.push_back(ParseTerm());
      while (Consume(",")) terms.push_back(ParseTerm());
    }
    Require(Consume(")"), "expected ')'");
    // Pre-check the arity so an inconsistent use is a parse error instead
    // of the checked abort inside Schema::AddRelation.
    const RelationId existing = schema_.TryIdOf(name);
    if (existing != Interner::kNotFound &&
        schema_.ArityOf(existing) != terms.size()) {
      Require(false, "relation '" + name + "' used with arity " +
                         std::to_string(terms.size()) +
                         " but registered with arity " +
                         std::to_string(schema_.ArityOf(existing)));
    }
    const RelationId rel = schema_.AddRelation(name, terms.size());
    return Atom(rel, std::move(terms));
  }

  void ParseItem() {
    SkipSpace();
    Require(pos_ < text_.size(), "expected a body item");
    if (Consume("!") && !PeekEquals()) {
      query_.AddNegatedAtom(ParseAtom());
      return;
    }
    // Either an atom or the left side of an inequality.
    const std::size_t save = pos_;
    if (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
        text_[pos_] == '_') {
      const std::string name = ParseName();
      if (PeekChar('(')) {
        pos_ = save;
        query_.AddBodyAtom(ParseAtom());
        return;
      }
      pos_ = save;
    }
    const Term lhs = ParseTerm();
    Require(Consume("!="), "expected '!=' in comparison");
    const Term rhs = ParseTerm();
    query_.AddInequality(lhs, rhs);
  }

  // After consuming '!', detects the "!=" case ('!' belonged to an
  // inequality whose left term was already consumed — which our grammar
  // forbids, so '!' followed by '=' is a syntax error we surface clearly).
  bool PeekEquals() {
    if (pos_ < text_.size() && text_[pos_] == '=') {
      Require(false, "'!=' must be preceded by a term");
    }
    return false;
  }

  Schema& schema_;
  std::string_view text_;
  std::size_t pos_ = 0;
  ConjunctiveQuery query_;
};

}  // namespace

ConjunctiveQuery ParseQuery(Schema& schema, std::string_view text) {
  CqParseResult result = TryParseQuery(schema, text);
  if (!result.ok()) {
    LAMP_CHECK_MSG(false, result.error.c_str());
  }
  result.query->Validate();
  return std::move(*result.query);
}

CqParseResult TryParseQuery(Schema& schema, std::string_view text) {
  CqParseResult result;
  try {
    result.query = Parser(schema, text).Parse();
  } catch (const ParseError& e) {
    result.error = e.message;
  }
  return result;
}

}  // namespace lamp
