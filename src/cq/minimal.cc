#include "cq/minimal.h"

#include "common/check.h"

namespace lamp {

bool IsMinimalValuation(const ConjunctiveQuery& query,
                        const Valuation& valuation) {
  LAMP_CHECK_MSG(query.negated().empty(),
                 "minimal valuations are defined for CQs without negation");
  LAMP_CHECK(valuation.IsTotal());
  LAMP_CHECK(valuation.SatisfiesInequalities(query));

  const Instance required = valuation.RequiredFacts(query);
  const Fact head = valuation.ApplyToAtom(query.head());

  // Any competitor V' with V'(body) subseteq required is a satisfying
  // valuation of Q on the instance `required`; V'(body) is a strict subset
  // exactly when it has fewer facts (a subset of equal size is equal).
  bool minimal = true;
  ForEachSatisfyingValuation(
      query, required,
      [&query, &required, &head, &minimal](const Valuation& candidate) {
        if (candidate.ApplyToAtom(query.head()) == head &&
            candidate.RequiredFacts(query).Size() < required.Size()) {
          minimal = false;
          return false;  // Stop: found a strictly smaller derivation.
        }
        return true;
      });
  return minimal;
}

bool ForEachMinimalValuation(const ConjunctiveQuery& query,
                             const std::vector<Value>& universe,
                             const ValuationVisitor& visit) {
  return ForEachValuationOverUniverse(
      query, universe, [&query, &visit](const Valuation& v) {
        if (!v.SatisfiesInequalities(query)) return true;
        if (!IsMinimalValuation(query, v)) return true;
        return visit(v);
      });
}

}  // namespace lamp
