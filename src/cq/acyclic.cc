#include "cq/acyclic.h"

#include <algorithm>
#include <set>

namespace lamp {

namespace {

std::set<VarId> AtomVars(const Atom& atom) {
  std::set<VarId> vars;
  for (const Term& t : atom.terms) {
    if (t.IsVar()) vars.insert(t.var);
  }
  return vars;
}

}  // namespace

JoinTree BuildJoinTree(const ConjunctiveQuery& query) {
  const std::size_t n = query.body().size();
  JoinTree tree;
  tree.parent.assign(n, JoinTree::kRoot);

  std::vector<std::set<VarId>> vars(n);
  for (std::size_t i = 0; i < n; ++i) vars[i] = AtomVars(query.body()[i]);

  std::vector<bool> removed(n, false);
  std::size_t remaining = n;

  while (remaining > 1) {
    bool progressed = false;
    for (std::size_t e = 0; e < n && !progressed; ++e) {
      if (removed[e]) continue;
      // Vars of e shared with any other remaining atom.
      std::set<VarId> shared;
      for (VarId v : vars[e]) {
        for (std::size_t other = 0; other < n; ++other) {
          if (other == e || removed[other]) continue;
          if (vars[other].count(v) > 0) {
            shared.insert(v);
            break;
          }
        }
      }
      // e is an ear when its shared vars all sit inside one witness atom.
      for (std::size_t w = 0; w < n; ++w) {
        if (w == e || removed[w]) continue;
        const bool covered =
            std::all_of(shared.begin(), shared.end(),
                        [&vars, w](VarId v) { return vars[w].count(v) > 0; });
        if (covered) {
          removed[e] = true;
          tree.parent[e] = static_cast<std::ptrdiff_t>(w);
          tree.removal_order.push_back(e);
          --remaining;
          progressed = true;
          break;
        }
      }
    }
    if (!progressed) {
      tree.acyclic = false;
      return tree;
    }
  }

  // The last remaining atom is the root.
  for (std::size_t i = 0; i < n; ++i) {
    if (!removed[i]) tree.removal_order.push_back(i);
  }
  tree.acyclic = true;
  return tree;
}

bool IsAcyclic(const ConjunctiveQuery& query) {
  return BuildJoinTree(query).acyclic;
}

}  // namespace lamp
