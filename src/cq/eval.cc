#include "cq/eval.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/hash.h"

namespace lamp {

namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(HashRange(key.begin(), key.end()));
  }
};

struct RelMaskHash {
  std::size_t operator()(
      const std::pair<RelationId, std::uint64_t>& k) const {
    return static_cast<std::size_t>(HashCombine(HashMix(k.first), k.second));
  }
};

/// Lazily built hash indexes over one instance: for a (relation, set of
/// bound positions) pair, maps the bound values to the matching facts.
class IndexCache {
 public:
  explicit IndexCache(const Instance& instance) : instance_(instance) {}

  /// Facts of \p relation whose values at the positions in \p mask equal
  /// \p key (in ascending position order). Returns nullptr when empty.
  const std::vector<const Fact*>* Lookup(RelationId relation,
                                         std::uint64_t mask,
                                         const std::vector<std::int64_t>& key) {
    auto& index = indexes_[{relation, mask}];
    if (!index.built) {
      for (const Fact& f : instance_.FactsOf(relation)) {
        build_key_.clear();
        for (std::size_t pos = 0; pos < f.args.size(); ++pos) {
          if ((mask >> pos) & 1) build_key_.push_back(f.args[pos].v);
        }
        auto it = index.buckets.find(build_key_);
        if (it == index.buckets.end()) {
          it = index.buckets.emplace(build_key_, std::vector<const Fact*>())
                   .first;
        }
        it->second.push_back(&f);
      }
      index.built = true;
    }
    auto it = index.buckets.find(key);
    return it == index.buckets.end() ? nullptr : &it->second;
  }

 private:
  struct Index {
    bool built = false;
    std::unordered_map<std::vector<std::int64_t>, std::vector<const Fact*>,
                       KeyHash>
        buckets;
  };

  const Instance& instance_;
  std::vector<std::int64_t> build_key_;  // Reused across index builds.
  std::unordered_map<std::pair<RelationId, std::uint64_t>, Index, RelMaskHash>
      indexes_;
};

/// Backtracking matcher for the positive body with greedy static atom
/// ordering, early inequality checks and final negation checks.
class Matcher {
 public:
  Matcher(const ConjunctiveQuery& query, const Instance& instance)
      : query_(query), instance_(instance), cache_(instance) {
    order_ = GreedyOrder();
    BuildPlans();
  }

  bool Run(const ValuationVisitor& visit) {
    Valuation valuation(query_.NumVars());
    return Descend(0, valuation, visit);
  }

 private:
  /// Orders body atoms: start from the atom over the smallest relation,
  /// then repeatedly pick the atom sharing the most already-bound variables
  /// (ties broken by relation size). Bound-variable overlap is what lets the
  /// index cache turn each step into a hash lookup.
  std::vector<std::size_t> GreedyOrder() const {
    const std::vector<Atom>& body = query_.body();
    std::vector<std::size_t> order;
    std::vector<bool> used(body.size(), false);
    std::vector<bool> bound_var(query_.NumVars(), false);

    auto atom_vars = [](const Atom& atom) {
      std::vector<VarId> vars;
      for (const Term& t : atom.terms) {
        if (t.IsVar()) vars.push_back(t.var);
      }
      return vars;
    };

    for (std::size_t step = 0; step < body.size(); ++step) {
      std::size_t best = body.size();
      std::size_t best_bound = 0;
      std::size_t best_size = 0;
      for (std::size_t i = 0; i < body.size(); ++i) {
        if (used[i]) continue;
        std::size_t bound = 0;
        for (VarId v : atom_vars(body[i])) {
          if (bound_var[v]) ++bound;
        }
        // Constants count as bound positions too.
        for (const Term& t : body[i].terms) {
          if (t.IsConst()) ++bound;
        }
        const std::size_t size = instance_.FactsOf(body[i].relation).size();
        if (best == body.size() || bound > best_bound ||
            (bound == best_bound && size < best_size)) {
          best = i;
          best_bound = bound;
          best_size = size;
        }
      }
      used[best] = true;
      order.push_back(best);
      for (VarId v : atom_vars(body[best])) bound_var[v] = true;
    }
    return order;
  }

  bool InequalitiesConsistent(const Valuation& valuation) const {
    for (const auto& [a, b] : query_.inequalities()) {
      const bool a_ready = a.IsConst() || valuation.IsBound(a.var);
      const bool b_ready = b.IsConst() || valuation.IsBound(b.var);
      if (a_ready && b_ready && valuation.Apply(a) == valuation.Apply(b)) {
        return false;
      }
    }
    return true;
  }

  bool NegationSatisfied(const Valuation& valuation) const {
    for (const Atom& atom : query_.negated()) {
      if (instance_.Contains(valuation.ApplyToAtom(atom))) return false;
    }
    return true;
  }

  /// A key-building step for one atom position, precomputed so Descend
  /// never re-inspects Term tags. Constant entries always contribute to
  /// the lookup key; variable entries contribute when currently bound.
  struct KeyEntry {
    bool is_const;
    std::uint64_t bit;          // 1 << position.
    std::int64_t const_value;   // Valid when is_const.
    VarId var;                  // Valid when !is_const.
  };

  /// Evaluation plan of one ordered body atom: the constant part of the
  /// index mask/key (fixed per query, computed once in the constructor)
  /// plus the variable positions the per-fact unify loop has to touch.
  struct AtomPlan {
    RelationId relation;
    std::uint64_t const_mask;
    std::vector<KeyEntry> key_entries;  // Ascending position order.
    std::vector<std::pair<std::size_t, VarId>> var_slots;  // Non-const.
  };

  void BuildPlans() {
    plans_.reserve(order_.size());
    for (std::size_t idx : order_) {
      const Atom& atom = query_.body()[idx];
      AtomPlan plan;
      plan.relation = atom.relation;
      plan.const_mask = 0;
      for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
        const Term& t = atom.terms[pos];
        KeyEntry entry;
        entry.is_const = t.IsConst();
        entry.bit = std::uint64_t{1} << pos;
        if (t.IsConst()) {
          entry.const_value = t.constant.v;
          entry.var = 0;
          plan.const_mask |= entry.bit;
        } else {
          entry.const_value = 0;
          entry.var = t.var;
          plan.var_slots.emplace_back(pos, t.var);
        }
        plan.key_entries.push_back(entry);
      }
      plans_.push_back(std::move(plan));
    }
    // Per-depth scratch, reused across every Descend at that depth.
    key_scratch_.resize(plans_.size());
    newly_bound_scratch_.resize(plans_.size());
  }

  bool Descend(std::size_t depth, Valuation& valuation,
               const ValuationVisitor& visit) {
    if (depth == plans_.size()) {
      if (!NegationSatisfied(valuation)) return true;
      return visit(valuation);
    }
    const AtomPlan& plan = plans_[depth];

    // Assemble the lookup key: constants (precomputed) interleaved with
    // the currently bound variables, in ascending position order.
    std::uint64_t mask = plan.const_mask;
    std::vector<std::int64_t>& key = key_scratch_[depth];
    key.clear();
    for (const KeyEntry& e : plan.key_entries) {
      if (e.is_const) {
        key.push_back(e.const_value);
      } else if (valuation.IsBound(e.var)) {
        mask |= e.bit;
        key.push_back(valuation.Get(e.var).v);
      }
    }

    const std::vector<const Fact*>* bucket =
        cache_.Lookup(plan.relation, mask, key);
    if (bucket == nullptr) return true;

    std::vector<VarId>& newly_bound = newly_bound_scratch_[depth];
    for (const Fact* fact : *bucket) {
      // Unify free positions; also verify repeated free variables match
      // (a variable repeated inside this atom: later positions see it
      // bound and verify equality here).
      newly_bound.clear();
      bool ok = true;
      for (const auto& [pos, var] : plan.var_slots) {
        if (valuation.IsBound(var)) {
          if (!(valuation.Get(var) == fact->args[pos])) {
            ok = false;
            break;
          }
        } else {
          valuation.Bind(var, fact->args[pos]);
          newly_bound.push_back(var);
        }
      }
      if (ok && InequalitiesConsistent(valuation)) {
        if (!Descend(depth + 1, valuation, visit)) {
          for (VarId v : newly_bound) valuation.Unbind(v);
          return false;
        }
      }
      for (VarId v : newly_bound) valuation.Unbind(v);
    }
    return true;
  }

  const ConjunctiveQuery& query_;
  const Instance& instance_;
  IndexCache cache_;
  std::vector<std::size_t> order_;
  std::vector<AtomPlan> plans_;
  std::vector<std::vector<std::int64_t>> key_scratch_;
  std::vector<std::vector<VarId>> newly_bound_scratch_;
};

}  // namespace

bool ForEachSatisfyingValuation(const ConjunctiveQuery& query,
                                const Instance& instance,
                                const ValuationVisitor& visit) {
  LAMP_CHECK_MSG(!query.body().empty(),
                 "queries must have a nonempty positive body");
  return Matcher(query, instance).Run(visit);
}

Instance Evaluate(const ConjunctiveQuery& query, const Instance& instance) {
  Instance result;
  ForEachSatisfyingValuation(query, instance,
                             [&query, &result](const Valuation& v) {
                               result.Insert(v.ApplyToAtom(query.head()));
                               return true;
                             });
  return result;
}

Instance EvaluateUnion(const std::vector<ConjunctiveQuery>& queries,
                       const Instance& instance) {
  Instance result;
  for (const ConjunctiveQuery& q : queries) {
    result.InsertAll(Evaluate(q, instance));
  }
  return result;
}

bool ForEachValuationOverUniverse(const ConjunctiveQuery& query,
                                  const std::vector<Value>& universe,
                                  const ValuationVisitor& visit) {
  const std::size_t n = query.NumVars();
  std::vector<std::size_t> idx(n, 0);
  if (universe.empty()) {
    if (n == 0) {
      return visit(Valuation(0));
    }
    return true;  // No valuations exist.
  }
  while (true) {
    Valuation v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.Bind(static_cast<VarId>(i), universe[idx[i]]);
    }
    if (!visit(v)) return false;
    std::size_t pos = 0;
    while (pos < n) {
      if (++idx[pos] < universe.size()) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == n) return true;
  }
}

}  // namespace lamp
