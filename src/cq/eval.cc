#include "cq/eval.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/check.h"
#include "common/hash.h"

namespace lamp {

namespace {

/// Batch (vectorized) matcher for the positive body with greedy static
/// atom ordering. Partial valuations live in a flat batch — one Value per
/// bound variable per tuple, in binding order — and each body atom is one
/// hash-join level probed with the whole batch against the instance's
/// persistent JoinIndex for that (relation, mask). Emission order is the
/// depth-first order of the previous tuple-at-a-time matcher: tuples
/// expand in batch order and each probe enumerates matching rows in
/// ascending row id (= insertion) order.
class BatchMatcher {
 public:
  static constexpr std::uint32_t kNoCol = 0xffffffffu;

  BatchMatcher(const ConjunctiveQuery& query, const Instance& instance)
      : query_(query), instance_(instance) {
    order_ = GreedyOrder();
    BuildPlans();
  }

  /// Batch column of each variable (kNoCol when the variable never occurs
  /// in the positive body).
  const std::vector<std::uint32_t>& ColOfVar() const { return col_of_var_; }

  /// Width of a final tuple: the number of distinct positive-body
  /// variables.
  std::size_t FinalWidth() const { return width_; }

  std::size_t RowsScanned() const { return rows_scanned_; }

  /// Enumerates blocks of final tuples (negation already applied) in
  /// depth-first order. \p sink receives a contiguous run of
  /// count * FinalWidth() values, valid only during the call; returning
  /// false stops the enumeration. Returns false iff the sink stopped.
  template <typename BlockSink>
  bool RunBlocks(BlockSink&& sink) {
    // Expand level 0 from the single empty tuple, then run each block of
    // level-0 matches through the remaining levels. Blocks bound batch
    // memory and keep early-exit visitors from paying for the whole join.
    static const Value kEmptyTuple[1] = {};
    std::vector<Value> base;
    const std::size_t n0 = ExpandLevel(0, kEmptyTuple, 0, 1, base);
    const std::size_t w0 = widths_[0];

    constexpr std::size_t kBlock = 256;
    std::vector<Value> cur;
    std::vector<Value> next;
    for (std::size_t lo = 0; lo < n0; lo += kBlock) {
      const std::size_t hi = std::min(n0, lo + kBlock);
      cur.assign(base.begin() + static_cast<std::ptrdiff_t>(lo * w0),
                 base.begin() + static_cast<std::ptrdiff_t>(hi * w0));
      std::size_t count = hi - lo;
      std::size_t width = w0;
      for (std::size_t level = 1; level < plans_.size() && count > 0;
           ++level) {
        next.clear();
        count = ExpandLevel(level, cur.data(), width, count, next);
        width = widths_[level];
        cur.swap(next);
      }
      if (count == 0) continue;
      if (!EmitBlock(cur.data(), width, count, sink)) return false;
    }
    return true;
  }

  /// Per-tuple enumeration on top of RunBlocks. \p sink receives a pointer
  /// to FinalWidth() values, valid only during the call.
  template <typename TupleSink>
  bool Run(TupleSink&& sink) {
    const std::size_t width = width_;
    return RunBlocks([&sink, width](const Value* tuples, std::size_t count) {
      for (std::size_t t = 0; t < count; ++t) {
        if (!sink(tuples + t * width)) return false;
      }
      return true;
    });
  }

 private:
  /// One key-building step for a masked atom position: a constant, or the
  /// batch column of an already-bound variable.
  struct KeyEntry {
    bool is_const;
    std::int64_t const_value;  // Valid when is_const.
    std::uint32_t col;         // Valid when !is_const.
  };

  /// An inequality filter, applied at the first level where both sides
  /// are bound. Each side is a constant or a batch column.
  struct IneqCheck {
    bool a_const;
    bool b_const;
    std::int64_t a_val;
    std::int64_t b_val;
    std::uint32_t a_col;
    std::uint32_t b_col;
  };

  /// Evaluation plan of one ordered body atom — one hash-join level.
  struct LevelPlan {
    RelationId relation;
    std::uint64_t mask;  // Constant + previously-bound positions.
    std::size_t atom_arity;
    std::vector<KeyEntry> key_entries;  // Masked positions, ascending.
    // (position, batch column) of each newly bound variable.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> bind_slots;
    // (position, earlier position) for a variable repeated *within* this
    // atom: the later position must equal its first occurrence.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> dup_checks;
    std::vector<IneqCheck> ineqs;  // Inequalities first ready here.
  };

  /// Negated-atom filter over final tuples.
  struct NegPlan {
    RelationId relation;
    std::vector<KeyEntry> entries;  // One per position, in order.
  };

  /// Orders body atoms: start from the atom over the smallest relation,
  /// then repeatedly pick the atom sharing the most already-bound variables
  /// (ties broken by relation size). Bound-variable overlap is what turns
  /// each level into a selective hash probe.
  std::vector<std::size_t> GreedyOrder() const {
    const std::vector<Atom>& body = query_.body();
    std::vector<std::size_t> order;
    std::vector<bool> used(body.size(), false);
    std::vector<bool> bound_var(query_.NumVars(), false);

    auto atom_vars = [](const Atom& atom) {
      std::vector<VarId> vars;
      for (const Term& t : atom.terms) {
        if (t.IsVar()) vars.push_back(t.var);
      }
      return vars;
    };

    for (std::size_t step = 0; step < body.size(); ++step) {
      std::size_t best = body.size();
      std::size_t best_bound = 0;
      std::size_t best_size = 0;
      for (std::size_t i = 0; i < body.size(); ++i) {
        if (used[i]) continue;
        std::size_t bound = 0;
        for (VarId v : atom_vars(body[i])) {
          if (bound_var[v]) ++bound;
        }
        // Constants count as bound positions too.
        for (const Term& t : body[i].terms) {
          if (t.IsConst()) ++bound;
        }
        const std::size_t size = instance_.NumRows(body[i].relation);
        if (best == body.size() || bound > best_bound ||
            (bound == best_bound && size < best_size)) {
          best = i;
          best_bound = bound;
          best_size = size;
        }
      }
      used[best] = true;
      order.push_back(best);
      for (VarId v : atom_vars(body[best])) bound_var[v] = true;
    }
    return order;
  }

  void BuildPlans() {
    col_of_var_.assign(query_.NumVars(), kNoCol);
    std::vector<std::size_t> bind_level(query_.NumVars(), 0);
    width_ = 0;

    plans_.reserve(order_.size());
    widths_.reserve(order_.size());
    for (std::size_t level = 0; level < order_.size(); ++level) {
      const Atom& atom = query_.body()[order_[level]];
      LevelPlan plan;
      plan.relation = atom.relation;
      plan.mask = 0;
      plan.atom_arity = atom.terms.size();
      // First occurrence of each free variable *within this atom*.
      std::vector<std::pair<VarId, std::uint32_t>> first_pos;
      for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
        const Term& t = atom.terms[pos];
        if (t.IsConst()) {
          plan.mask |= std::uint64_t{1} << pos;
          plan.key_entries.push_back(KeyEntry{true, t.constant.v, 0});
          continue;
        }
        if (col_of_var_[t.var] != kNoCol && bind_level[t.var] < level) {
          // Bound by an earlier level: part of the join key.
          plan.mask |= std::uint64_t{1} << pos;
          plan.key_entries.push_back(KeyEntry{false, 0, col_of_var_[t.var]});
          continue;
        }
        // Free at this level: first occurrence binds, repeats must match.
        std::uint32_t first = kNoCol;
        for (const auto& [v, p] : first_pos) {
          if (v == t.var) {
            first = p;
            break;
          }
        }
        if (first != kNoCol) {
          plan.dup_checks.emplace_back(static_cast<std::uint32_t>(pos),
                                       first);
        } else {
          first_pos.emplace_back(t.var, static_cast<std::uint32_t>(pos));
          plan.bind_slots.emplace_back(static_cast<std::uint32_t>(pos),
                                       static_cast<std::uint32_t>(width_));
          col_of_var_[t.var] = static_cast<std::uint32_t>(width_);
          bind_level[t.var] = level;
          ++width_;
        }
      }
      plans_.push_back(std::move(plan));
      widths_.push_back(width_);
    }

    // Assign each inequality to the first level where both sides are
    // bound. A side over a variable that never occurs in the positive
    // body is never ready — the previous matcher never checked those
    // inequalities either.
    for (const auto& [a, b] : query_.inequalities()) {
      IneqCheck check;
      std::size_t level = 0;
      bool ready = true;
      auto side = [&](const Term& t, bool& is_const, std::int64_t& val,
                      std::uint32_t& col) {
        if (t.IsConst()) {
          is_const = true;
          val = t.constant.v;
          col = 0;
          return;
        }
        is_const = false;
        val = 0;
        col = col_of_var_[t.var];
        if (col == kNoCol) {
          ready = false;
          return;
        }
        level = std::max(level, bind_level[t.var]);
      };
      side(a, check.a_const, check.a_val, check.a_col);
      side(b, check.b_const, check.b_val, check.b_col);
      if (!ready) continue;
      plans_[level].ineqs.push_back(check);
    }

    for (const Atom& atom : query_.negated()) {
      NegPlan plan;
      plan.relation = atom.relation;
      for (const Term& t : atom.terms) {
        if (t.IsConst()) {
          plan.entries.push_back(KeyEntry{true, t.constant.v, 0});
        } else {
          LAMP_CHECK_MSG(col_of_var_[t.var] != kNoCol,
                         "negated atom over a variable the positive body "
                         "never binds");
          plan.entries.push_back(KeyEntry{false, 0, col_of_var_[t.var]});
        }
      }
      neg_plans_.push_back(std::move(plan));
    }
  }

  /// Expands one level: probes the level's join index with every input
  /// tuple, appending (input ++ new bindings) for every matching row in
  /// ascending row order. Inequalities assigned to this level filter the
  /// appended tuples. Returns the number of output tuples (tracked
  /// explicitly: a level that binds nothing widens tuples by zero).
  std::size_t ExpandLevel(std::size_t level, const Value* in,
                          std::size_t in_width, std::size_t in_count,
                          std::vector<Value>& out) {
    const LevelPlan& plan = plans_[level];
    const RowsView rows = instance_.RowsOf(plan.relation);
    if (rows.num_rows == 0 || rows.arity != plan.atom_arity) return 0;

    const bool scan_all = plan.mask == 0;
    const JoinIndex* index = nullptr;
    std::size_t slot_mask = 0;
    if (!scan_all) {
      index = &instance_.IndexOn(plan.relation, plan.mask, &rows_scanned_);
      slot_mask = index->SlotMask();
    }

    std::size_t out_count = 0;
    for (std::size_t t = 0; t < in_count; ++t) {
      const Value* tup = in + t * in_width;

      auto try_row = [&](std::size_t row_id) {
        const Value* row = rows.Row(row_id);
        ++rows_scanned_;
        for (const auto& [pos, first] : plan.dup_checks) {
          if (row[pos] != row[first]) return;
        }
        const std::size_t before = out.size();
        out.insert(out.end(), tup, tup + in_width);
        for (const auto& [pos, col] : plan.bind_slots) {
          out.push_back(row[pos]);
        }
        const Value* appended = out.data() + before;
        for (const IneqCheck& iq : plan.ineqs) {
          const std::int64_t av =
              iq.a_const ? iq.a_val : appended[iq.a_col].v;
          const std::int64_t bv =
              iq.b_const ? iq.b_val : appended[iq.b_col].v;
          if (av == bv) {
            out.resize(before);
            return;
          }
        }
        ++out_count;
      };

      if (scan_all) {
        for (std::size_t row_id = 0; row_id < rows.num_rows; ++row_id) {
          try_row(row_id);
        }
        continue;
      }

      // Assemble the probe key (constants interleaved with bound batch
      // columns, ascending position order) and walk the bucket chain.
      key_scratch_.clear();
      std::uint64_t h = 1469598103934665603ull;
      for (const KeyEntry& e : plan.key_entries) {
        const std::int64_t v = e.is_const ? e.const_value : tup[e.col].v;
        key_scratch_.push_back(v);
        h = HashCombine(h, static_cast<std::uint64_t>(v));
      }
      const std::size_t slot = static_cast<std::size_t>(h) & slot_mask;
      for (std::uint32_t link = index->head[slot]; link != 0;
           link = index->next[link - 1]) {
        const std::size_t row_id = link - 1;
        const Value* row = rows.Row(row_id);
        bool match = true;
        for (std::size_t k = 0; k < index->key_pos.size(); ++k) {
          if (row[index->key_pos[k]].v != key_scratch_[k]) {
            match = false;
            break;
          }
        }
        if (!match) {
          ++rows_scanned_;  // Hash-collision visit.
          continue;
        }
        try_row(row_id);
      }
    }
    return out_count;
  }

  /// Applies negation to a block of final tuples and feeds the surviving
  /// run to the sink in one call. Returns false iff the sink stopped.
  template <typename BlockSink>
  bool EmitBlock(const Value* tuples, std::size_t width, std::size_t count,
                 BlockSink&& sink) {
    if (neg_plans_.empty()) return sink(tuples, count);
    neg_filtered_.clear();
    std::size_t kept = 0;
    for (std::size_t t = 0; t < count; ++t) {
      const Value* tup = tuples + t * width;
      bool negated = false;
      for (const NegPlan& plan : neg_plans_) {
        neg_scratch_.clear();
        for (const KeyEntry& e : plan.entries) {
          neg_scratch_.push_back(e.is_const ? Value(e.const_value)
                                            : tup[e.col]);
        }
        if (instance_.ContainsRow(plan.relation, neg_scratch_.data(),
                                  neg_scratch_.size())) {
          negated = true;
          break;
        }
      }
      if (negated) continue;
      neg_filtered_.insert(neg_filtered_.end(), tup, tup + width);
      ++kept;
    }
    if (kept == 0) return true;
    return sink(neg_filtered_.data(), kept);
  }

  const ConjunctiveQuery& query_;
  const Instance& instance_;
  std::vector<std::size_t> order_;
  std::vector<LevelPlan> plans_;
  std::vector<std::size_t> widths_;  // Batch width after each level.
  std::vector<NegPlan> neg_plans_;
  std::vector<std::uint32_t> col_of_var_;
  std::size_t width_ = 0;
  std::vector<std::int64_t> key_scratch_;
  std::vector<Value> neg_scratch_;
  std::vector<Value> neg_filtered_;
  std::size_t rows_scanned_ = 0;
};

/// Head projection plan: each head position is a constant or a batch
/// column of the matcher's final tuples.
struct HeadEntry {
  bool is_const;
  Value const_value;
  std::uint32_t col;
};

std::vector<HeadEntry> BuildHeadPlan(const ConjunctiveQuery& query,
                                     const BatchMatcher& matcher) {
  const std::vector<std::uint32_t>& col_of_var = matcher.ColOfVar();
  std::vector<HeadEntry> plan;
  plan.reserve(query.head().terms.size());
  for (const Term& t : query.head().terms) {
    if (t.IsConst()) {
      plan.push_back(HeadEntry{true, t.constant, 0});
    } else {
      LAMP_CHECK_MSG(col_of_var[t.var] != BatchMatcher::kNoCol,
                     "head variable the positive body never binds");
      plan.push_back(HeadEntry{false, Value(), col_of_var[t.var]});
    }
  }
  return plan;
}

template <typename BatchSink>
void EvaluateIntoBatchesImpl(const ConjunctiveQuery& query,
                             const Instance& instance, BatchSink&& sink,
                             CqEvalStats* stats) {
  LAMP_CHECK_MSG(!query.body().empty(),
                 "queries must have a nonempty positive body");
  BatchMatcher matcher(query, instance);
  const std::vector<HeadEntry> head_plan = BuildHeadPlan(query, matcher);
  const std::size_t head_arity = head_plan.size();
  const std::size_t width = matcher.FinalWidth();
  const RelationId head_rel = query.head().relation;

  std::vector<Value> rows_scratch;
  matcher.RunBlocks([&](const Value* tuples, std::size_t count) {
    rows_scratch.resize(count * head_arity);
    Value* out = rows_scratch.data();
    const Value* tup = tuples;
    for (std::size_t t = 0; t < count; ++t, tup += width) {
      for (std::size_t i = 0; i < head_arity; ++i) {
        out[i] = head_plan[i].is_const ? head_plan[i].const_value
                                       : tup[head_plan[i].col];
      }
      out += head_arity;
    }
    sink(head_rel, rows_scratch.data(), count, head_arity);
    return true;
  });
  if (stats != nullptr) stats->rows_scanned += matcher.RowsScanned();
}

}  // namespace

bool ForEachSatisfyingValuation(const ConjunctiveQuery& query,
                                const Instance& instance,
                                const ValuationVisitor& visit,
                                CqEvalStats* stats) {
  LAMP_CHECK_MSG(!query.body().empty(),
                 "queries must have a nonempty positive body");
  BatchMatcher matcher(query, instance);
  const std::vector<std::uint32_t>& col_of_var = matcher.ColOfVar();
  Valuation valuation(query.NumVars());
  const bool completed = matcher.Run([&](const Value* tup) {
    for (VarId v = 0; v < query.NumVars(); ++v) {
      if (col_of_var[v] != BatchMatcher::kNoCol) {
        valuation.Bind(v, tup[col_of_var[v]]);
      }
    }
    return visit(valuation);
  });
  if (stats != nullptr) stats->rows_scanned += matcher.RowsScanned();
  return completed;
}

void EvaluateInto(const ConjunctiveQuery& query, const Instance& instance,
                  const RowSink& sink, CqEvalStats* stats) {
  EvaluateIntoBatchesImpl(
      query, instance,
      [&sink](RelationId relation, const Value* rows, std::size_t count,
              std::size_t arity) {
        for (std::size_t t = 0; t < count; ++t) {
          sink(relation, rows + t * arity, arity);
        }
      },
      stats);
}

void EvaluateIntoBatches(const ConjunctiveQuery& query,
                         const Instance& instance, const RowBatchSink& sink,
                         CqEvalStats* stats) {
  EvaluateIntoBatchesImpl(query, instance, sink, stats);
}

Instance Evaluate(const ConjunctiveQuery& query, const Instance& instance,
                  CqEvalStats* stats) {
  Instance result;
  EvaluateIntoBatchesImpl(
      query, instance,
      [&result](RelationId relation, const Value* rows, std::size_t count,
                std::size_t arity) {
        result.InsertRows(relation, rows, count, arity);
      },
      stats);
  return result;
}

Instance EvaluateUnion(const std::vector<ConjunctiveQuery>& queries,
                       const Instance& instance) {
  Instance result;
  for (const ConjunctiveQuery& q : queries) {
    EvaluateIntoBatchesImpl(
        q, instance,
        [&result](RelationId relation, const Value* rows, std::size_t count,
                  std::size_t arity) {
          result.InsertRows(relation, rows, count, arity);
        },
        nullptr);
  }
  return result;
}

bool ForEachValuationOverUniverse(const ConjunctiveQuery& query,
                                  const std::vector<Value>& universe,
                                  const ValuationVisitor& visit) {
  const std::size_t n = query.NumVars();
  std::vector<std::size_t> idx(n, 0);
  if (universe.empty()) {
    if (n == 0) {
      return visit(Valuation(0));
    }
    return true;  // No valuations exist.
  }
  while (true) {
    Valuation v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.Bind(static_cast<VarId>(i), universe[idx[i]]);
    }
    if (!visit(v)) return false;
    std::size_t pos = 0;
    while (pos < n) {
      if (++idx[pos] < universe.size()) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == n) return true;
  }
}

}  // namespace lamp
