#ifndef LAMP_CQ_CONTAINMENT_H_
#define LAMP_CQ_CONTAINMENT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "cq/cq.h"
#include "relational/instance.h"

/// \file
/// Query containment Q subseteq Q' (Section 4.2, and the reduction route
/// of Theorem 4.9). Three deciders with increasing generality:
///
///  * plain CQs — the classical canonical-database / homomorphism test
///    (Chandra-Merkurjev; NP-complete);
///  * CQs with inequalities — canonical databases for every identification
///    pattern (partition) of the variables consistent with the left query's
///    inequalities (Pi^p_2 flavor);
///  * CQ-not — exact containment is coNEXPTIME-complete (Theorem 4.9), so
///    we provide a bounded exhaustive counterexample search plus a
///    randomized falsifier, both explicitly sound-for-"no" only.

namespace lamp {

/// Exact containment test for queries without negation (inequalities on
/// either side are supported). Requires the two queries to share \p schema.
bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Pairwise containment matrix over a query family, the n*n independent
/// IsContainedIn cells fanned across the lamp::par global pool.
/// result[i * n + j] == 1 iff queries[i] is contained in queries[j]; the
/// matrix is identical at every thread count.
std::vector<std::uint8_t> ContainmentMatrix(
    const std::vector<ConjunctiveQuery>& queries);

/// Searches exhaustively for an instance I over a domain of
/// \p domain_size fresh values with Q1(I) not subseteq Q2(I). All
/// instances built from at most \p max_facts facts over that domain are
/// tried. Returns a counterexample instance, or nullopt if none exists in
/// the searched space. Sound for "not contained"; completeness holds only
/// relative to the bound.
std::optional<Instance> FindContainmentCounterexample(
    const Schema& schema, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2, std::size_t domain_size,
    std::size_t max_facts);

/// Randomized falsifier: \p trials random instances over \p domain_size
/// values with about \p facts_per_relation facts per relation. Returns a
/// counterexample or nullopt.
std::optional<Instance> RandomContainmentCounterexample(
    const Schema& schema, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2, std::size_t domain_size,
    std::size_t facts_per_relation, std::size_t trials, Rng& rng);

/// Enumerates the canonical databases of \p query: one per partition of its
/// variables that respects the query's inequalities (variables forced
/// unequal stay in different blocks; constants are kept distinct). For each,
/// calls \p visit with the canonical instance and the frozen head fact.
/// Returns false iff the visitor stopped.
bool ForEachCanonicalDatabase(
    const ConjunctiveQuery& query,
    const std::function<bool(const Instance&, const Fact&)>& visit);

}  // namespace lamp

#endif  // LAMP_CQ_CONTAINMENT_H_
