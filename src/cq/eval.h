#ifndef LAMP_CQ_EVAL_H_
#define LAMP_CQ_EVAL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "cq/cq.h"
#include "cq/valuation.h"
#include "relational/instance.h"

/// \file
/// Conjunctive-query evaluation.
///
/// Q(I) is the set of facts derivable by satisfying valuations (Section 2).
/// Evaluation is batch-at-a-time over the columnar storage: body atoms are
/// ordered greedily, each atom becomes one vectorized hash-join level
/// (build-once hash tables keyed on flat column slices of the instance,
/// probed with the whole batch of partial tuples), inequalities filter at
/// the first level where both sides are bound and negated atoms filter the
/// final batch. Enumeration order is the depth-first order the previous
/// tuple-at-a-time matcher produced, so result instances — and every golden
/// digest derived from them — stay byte-identical.

namespace lamp {

/// Visitor for satisfying valuations; return false to stop enumeration.
using ValuationVisitor = std::function<bool(const Valuation&)>;

/// Observability counters of one evaluation (the audit loop relates scan
/// volume to the closed-form load bounds).
struct CqEvalStats {
  /// Rows touched: every row swept into a hash index build plus every
  /// candidate row visited while probing (including hash-collision
  /// mismatches).
  std::size_t rows_scanned = 0;

  CqEvalStats& operator+=(const CqEvalStats& o) {
    rows_scanned += o.rows_scanned;
    return *this;
  }
};

/// Calls \p visit for every total valuation V of \p query with
/// V(body) subseteq \p instance that also satisfies the query's
/// inequalities and negated atoms (negation evaluated against
/// \p instance). Returns false iff the visitor stopped the enumeration.
bool ForEachSatisfyingValuation(const ConjunctiveQuery& query,
                                const Instance& instance,
                                const ValuationVisitor& visit,
                                CqEvalStats* stats = nullptr);

/// Q(I): all facts derived by satisfying valuations.
Instance Evaluate(const ConjunctiveQuery& query, const Instance& instance,
                  CqEvalStats* stats = nullptr);

/// Row sink for EvaluateInto: one derived head row per satisfying
/// valuation (duplicates included, in enumeration order).
using RowSink = std::function<void(RelationId relation, const Value* row,
                                   std::size_t arity)>;

/// Streams the derived head rows of Q(I) into \p sink without
/// materialising an intermediate Instance. The sink must not mutate
/// \p instance (the join pipeline holds borrowed views into its storage).
void EvaluateInto(const ConjunctiveQuery& query, const Instance& instance,
                  const RowSink& sink, CqEvalStats* stats = nullptr);

/// Batch sink for EvaluateIntoBatches: \p rows holds \p count derived head
/// rows of \p arity values each, row-major and contiguous, valid only for
/// the duration of the call.
using RowBatchSink = std::function<void(RelationId relation,
                                        const Value* rows, std::size_t count,
                                        std::size_t arity)>;

/// Like EvaluateInto but delivers derived head rows in blocks (currently up
/// to 256 rows per call), amortising the sink indirection over whole
/// batches. Same enumeration order and the same no-mutation contract.
void EvaluateIntoBatches(const ConjunctiveQuery& query,
                         const Instance& instance, const RowBatchSink& sink,
                         CqEvalStats* stats = nullptr);

/// Union of Q(I) over the queries of a UCQ (all must share one schema; the
/// caller guarantees compatible head relations if it needs them).
Instance EvaluateUnion(const std::vector<ConjunctiveQuery>& queries,
                       const Instance& instance);

/// Calls \p visit for every *total* valuation of \p query over
/// \p universe — |universe|^#vars assignments; used by the exact deciders
/// of Section 4. Returns false iff the visitor stopped.
bool ForEachValuationOverUniverse(const ConjunctiveQuery& query,
                                  const std::vector<Value>& universe,
                                  const ValuationVisitor& visit);

}  // namespace lamp

#endif  // LAMP_CQ_EVAL_H_
