#ifndef LAMP_CQ_EVAL_H_
#define LAMP_CQ_EVAL_H_

#include <functional>
#include <vector>

#include "cq/cq.h"
#include "cq/valuation.h"
#include "relational/instance.h"

/// \file
/// Conjunctive-query evaluation.
///
/// Q(I) is the set of facts derivable by satisfying valuations (Section 2).
/// Evaluation is backtracking search over body atoms with greedy atom
/// ordering and lazily built hash indexes, so that per-server computation
/// phases in the MPC simulator stay near-linear for the paper's queries.

namespace lamp {

/// Visitor for satisfying valuations; return false to stop enumeration.
using ValuationVisitor = std::function<bool(const Valuation&)>;

/// Calls \p visit for every total valuation V of \p query with
/// V(body) subseteq \p instance that also satisfies the query's
/// inequalities and negated atoms (negation evaluated against
/// \p instance). Returns false iff the visitor stopped the enumeration.
bool ForEachSatisfyingValuation(const ConjunctiveQuery& query,
                                const Instance& instance,
                                const ValuationVisitor& visit);

/// Q(I): all facts derived by satisfying valuations.
Instance Evaluate(const ConjunctiveQuery& query, const Instance& instance);

/// Union of Q(I) over the queries of a UCQ (all must share one schema; the
/// caller guarantees compatible head relations if it needs them).
Instance EvaluateUnion(const std::vector<ConjunctiveQuery>& queries,
                       const Instance& instance);

/// Calls \p visit for every *total* valuation of \p query over
/// \p universe — |universe|^#vars assignments; used by the exact deciders
/// of Section 4. Returns false iff the visitor stopped.
bool ForEachValuationOverUniverse(const ConjunctiveQuery& query,
                                  const std::vector<Value>& universe,
                                  const ValuationVisitor& visit);

}  // namespace lamp

#endif  // LAMP_CQ_EVAL_H_
