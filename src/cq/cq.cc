#include "cq/cq.h"

#include <sstream>

#include "common/check.h"

namespace lamp {

namespace {

void CollectVars(const Atom& atom, std::set<VarId>& vars) {
  for (const Term& t : atom.terms) {
    if (t.IsVar()) vars.insert(t.var);
  }
}

void AppendAtom(const Schema& schema, const ConjunctiveQuery& query,
                const Atom& atom, std::ostringstream& os) {
  os << schema.NameOf(atom.relation) << "(";
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) os << ",";
    const Term& t = atom.terms[i];
    if (t.IsVar()) {
      os << query.VarName(t.var);
    } else {
      os << t.constant.v;
    }
  }
  os << ")";
}

}  // namespace

VarId ConjunctiveQuery::VarIdOf(std::string_view name) {
  return var_names_.Intern(name);
}

VarId ConjunctiveQuery::FindVar(std::string_view name) const {
  const VarId id = var_names_.Find(name);
  LAMP_CHECK_MSG(id != Interner::kNotFound, "unknown variable");
  return id;
}

void ConjunctiveQuery::SetBodyRelation(std::size_t index,
                                       RelationId relation) {
  LAMP_CHECK(index < body_.size());
  body_[index].relation = relation;
}

void ConjunctiveQuery::SetNegatedRelation(std::size_t index,
                                          RelationId relation) {
  LAMP_CHECK(index < negated_.size());
  negated_[index].relation = relation;
}

std::optional<std::string> ConjunctiveQuery::SafetyViolation() const {
  const std::set<VarId> body_vars = BodyVars();
  for (const Term& t : head_.terms) {
    if (t.IsVar() && body_vars.count(t.var) == 0) {
      return "head variable '" + VarName(t.var) +
             "' does not occur in a positive body atom";
    }
  }
  for (const Atom& atom : negated_) {
    for (const Term& t : atom.terms) {
      if (t.IsVar() && body_vars.count(t.var) == 0) {
        return "variable '" + VarName(t.var) +
               "' of a negated atom does not occur in a positive body atom";
      }
    }
  }
  for (const auto& [a, b] : inequalities_) {
    for (const Term& t : {a, b}) {
      if (t.IsVar() && body_vars.count(t.var) == 0) {
        return "variable '" + VarName(t.var) +
               "' of an inequality does not occur in a positive body atom";
      }
    }
  }
  return std::nullopt;
}

void ConjunctiveQuery::Validate() const {
  const std::optional<std::string> violation = SafetyViolation();
  if (violation.has_value()) {
    const std::string message = "unsafe query: " + *violation;
    LAMP_CHECK_MSG(false, message.c_str());
  }
}

std::set<VarId> ConjunctiveQuery::BodyVars() const {
  std::set<VarId> vars;
  for (const Atom& atom : body_) CollectVars(atom, vars);
  return vars;
}

std::set<VarId> ConjunctiveQuery::HeadVars() const {
  std::set<VarId> vars;
  CollectVars(head_, vars);
  return vars;
}

std::set<Value> ConjunctiveQuery::Constants() const {
  std::set<Value> consts;
  auto collect = [&consts](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.IsConst()) consts.insert(t.constant);
    }
  };
  collect(head_);
  for (const Atom& atom : body_) collect(atom);
  for (const Atom& atom : negated_) collect(atom);
  for (const auto& [a, b] : inequalities_) {
    if (a.IsConst()) consts.insert(a.constant);
    if (b.IsConst()) consts.insert(b.constant);
  }
  return consts;
}

bool ConjunctiveQuery::IsFull() const {
  const std::set<VarId> head_vars = HeadVars();
  for (VarId v : BodyVars()) {
    if (head_vars.count(v) == 0) return false;
  }
  return true;
}

bool ConjunctiveQuery::HasSelfJoin() const {
  std::set<RelationId> seen;
  for (const Atom& atom : body_) {
    if (!seen.insert(atom.relation).second) return true;
  }
  return false;
}

std::string ConjunctiveQuery::ToString(const Schema& schema) const {
  std::ostringstream os;
  AppendAtom(schema, *this, head_, os);
  os << " <- ";
  bool first = true;
  for (const Atom& atom : body_) {
    if (!first) os << ", ";
    first = false;
    AppendAtom(schema, *this, atom, os);
  }
  for (const Atom& atom : negated_) {
    if (!first) os << ", ";
    first = false;
    os << "!";
    AppendAtom(schema, *this, atom, os);
  }
  for (const auto& [a, b] : inequalities_) {
    if (!first) os << ", ";
    first = false;
    auto term_str = [this](const Term& t) {
      return t.IsVar() ? VarName(t.var) : std::to_string(t.constant.v);
    };
    os << term_str(a) << " != " << term_str(b);
  }
  return os.str();
}

}  // namespace lamp
