#ifndef LAMP_CQ_TERM_H_
#define LAMP_CQ_TERM_H_

#include <cstdint>

#include "relational/value.h"

/// \file
/// Terms: the arguments of query atoms, either variables or constants.

namespace lamp {

/// Dense identifier of a variable within one query.
using VarId = std::uint32_t;

/// A variable or a domain constant.
struct Term {
  enum class Kind : std::uint8_t { kVar, kConst };

  Kind kind = Kind::kVar;
  VarId var = 0;          // Valid when kind == kVar.
  Value constant;         // Valid when kind == kConst.

  static Term Var(VarId v) {
    Term t;
    t.kind = Kind::kVar;
    t.var = v;
    return t;
  }
  static Term Const(Value c) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = c;
    return t;
  }

  bool IsVar() const { return kind == Kind::kVar; }
  bool IsConst() const { return kind == Kind::kConst; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.kind != b.kind) return false;
    return a.IsVar() ? a.var == b.var : a.constant == b.constant;
  }
};

}  // namespace lamp

#endif  // LAMP_CQ_TERM_H_
