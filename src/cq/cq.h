#ifndef LAMP_CQ_CQ_H_
#define LAMP_CQ_CQ_H_

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "cq/atom.h"

/// \file
/// Conjunctive queries (Section 2 of the paper), with the extensions the
/// surveyed results need: inequalities between terms (CQ with !=) and
/// negated body atoms (CQ-not), plus unions (UCQ) in ucq.h.

namespace lamp {

/// A conjunctive query H(x) <- R1(y1), ..., Rm(ym) with optional inequality
/// conditions and negated atoms.
///
/// Safety requirements (checked by Validate):
///  * every head variable occurs in some positive body atom;
///  * every variable of a negated atom occurs in some positive body atom;
///  * every variable of an inequality occurs in some positive body atom.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  // -- Construction ---------------------------------------------------------

  /// Interns a variable name, returning its dense id.
  VarId VarIdOf(std::string_view name);

  /// Returns the id of an already-interned variable; checked error if the
  /// query has no such variable.
  VarId FindVar(std::string_view name) const;

  /// Sets the head atom.
  void SetHead(Atom head) { head_ = std::move(head); }

  /// Appends a positive body atom.
  void AddBodyAtom(Atom atom) { body_.push_back(std::move(atom)); }

  /// Appends a negated body atom (CQ-not).
  void AddNegatedAtom(Atom atom) { negated_.push_back(std::move(atom)); }

  /// Adds the condition a != b.
  void AddInequality(Term a, Term b) { inequalities_.emplace_back(a, b); }

  /// Rebinds body atom \p index to relation \p relation (same arity).
  /// Used by the semi-naive Datalog evaluator to point one occurrence of a
  /// recursive predicate at its delta relation.
  void SetBodyRelation(std::size_t index, RelationId relation);

  /// Rebinds negated atom \p index to relation \p relation (same arity).
  /// Used by the well-founded evaluator to point negation at the shadow
  /// relation holding the current assumed set.
  void SetNegatedRelation(std::size_t index, RelationId relation);

  /// First safety violation as a human-readable message (naming the
  /// variable and where it occurs), or nullopt when the query is safe.
  /// The non-aborting core of Validate(), used by the static analyzer
  /// (src/sa) to lint unvalidated rules.
  std::optional<std::string> SafetyViolation() const;

  /// Aborts if the query violates the safety requirements above.
  void Validate() const;

  // -- Accessors -------------------------------------------------------------

  const Atom& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Atom>& negated() const { return negated_; }
  const std::vector<std::pair<Term, Term>>& inequalities() const {
    return inequalities_;
  }

  /// Number of distinct variables.
  std::size_t NumVars() const { return var_names_.size(); }

  /// Name of variable \p v.
  const std::string& VarName(VarId v) const { return var_names_.NameOf(v); }

  /// The set of variables occurring in the positive body.
  std::set<VarId> BodyVars() const;

  /// The set of variables occurring in the head.
  std::set<VarId> HeadVars() const;

  /// Constants occurring anywhere in the query.
  std::set<Value> Constants() const;

  // -- Structural properties -------------------------------------------------

  /// True when the query has neither negated atoms nor inequalities.
  bool IsPlain() const { return negated_.empty() && inequalities_.empty(); }

  /// True when every body variable occurs in the head ("full" CQ; the class
  /// HyperCube is analyzed for).
  bool IsFull() const;

  /// True when some relation occurs in two different positive atoms.
  bool HasSelfJoin() const;

  /// True when the query is boolean (nullary head).
  bool IsBoolean() const { return head_.terms.empty(); }

  /// Renders the query in rule syntax using \p schema for relation names.
  std::string ToString(const Schema& schema) const;

 private:
  Atom head_;
  std::vector<Atom> body_;
  std::vector<Atom> negated_;
  std::vector<std::pair<Term, Term>> inequalities_;
  Interner var_names_;
};

}  // namespace lamp

#endif  // LAMP_CQ_CQ_H_
