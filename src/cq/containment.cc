#include "cq/containment.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "cq/eval.h"
#include "cq/valuation.h"
#include "par/thread_pool.h"

namespace lamp {

namespace {

/// Enumerates all partitions of {0,...,n-1} as restricted growth strings:
/// block[i] is the block index of element i, block[0] == 0 and
/// block[i] <= max(block[0..i-1]) + 1. Stops early if fn returns false.
template <typename Fn>
bool ForEachPartition(std::size_t n, Fn&& fn) {
  std::vector<std::size_t> block(n, 0);
  if (n == 0) return fn(block);
  while (true) {
    if (!fn(static_cast<const std::vector<std::size_t>&>(block))) return false;
    // Advance to the next restricted growth string.
    std::size_t i = n;
    while (i-- > 1) {
      std::size_t max_prefix = 0;
      for (std::size_t j = 0; j < i; ++j) max_prefix = std::max(max_prefix, block[j]);
      if (block[i] <= max_prefix) {
        ++block[i];
        std::fill(block.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  block.end(), 0);
        break;
      }
      if (i == 1) return true;  // Exhausted.
    }
    if (n == 1) return true;
  }
}

/// All facts over \p schema with arguments drawn from \p universe.
std::vector<Fact> AllFactsOver(const Schema& schema,
                               const std::vector<Value>& universe) {
  std::vector<Fact> all;
  for (RelationId rel = 0; rel < schema.NumRelations(); ++rel) {
    const std::size_t arity = schema.ArityOf(rel);
    std::vector<std::size_t> idx(arity, 0);
    while (true) {
      std::vector<Value> args;
      args.reserve(arity);
      for (std::size_t i = 0; i < arity; ++i) args.push_back(universe[idx[i]]);
      all.emplace_back(rel, std::move(args));
      std::size_t pos = 0;
      while (pos < arity) {
        if (++idx[pos] < universe.size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == arity) break;
      if (arity == 0) break;
    }
    if (arity == 0) continue;
  }
  return all;
}

bool ViolatesContainmentOn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, const Instance& inst) {
  const Instance r1 = Evaluate(q1, inst);
  const Instance r2 = Evaluate(q2, inst);
  bool violates = false;
  r1.ForEachFact([&r2, &violates](const Fact& f) {
    if (!r2.Contains(f)) violates = true;
  });
  return violates;
}

}  // namespace

bool ForEachCanonicalDatabase(
    const ConjunctiveQuery& query,
    const std::function<bool(const Instance&, const Fact&)>& visit) {
  LAMP_CHECK_MSG(query.negated().empty(),
                 "canonical databases are defined for CQs without negation");
  const std::size_t n = query.NumVars();
  const std::set<Value> const_set = query.Constants();
  const std::vector<Value> consts(const_set.begin(), const_set.end());

  // Fresh values guaranteed distinct from all constants.
  std::int64_t fresh_base = 1;
  for (Value c : consts) fresh_base = std::max(fresh_base, c.v + 1);

  return ForEachPartition(n, [&](const std::vector<std::size_t>& block) {
    const std::size_t num_blocks =
        n == 0 ? 0 : 1 + *std::max_element(block.begin(), block.end());
    // Each block is assigned either its own fresh value or one of the
    // query's constants (a valuation may identify a variable with a
    // constant). Enumerate all (1 + #consts)^num_blocks choices.
    std::vector<std::size_t> choice(num_blocks, 0);  // 0 = fresh, k = consts[k-1]
    while (true) {
      Valuation v(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = choice[block[i]];
        const Value value = c == 0
                                ? Value(fresh_base + static_cast<std::int64_t>(
                                                         block[i]))
                                : consts[c - 1];
        v.Bind(static_cast<VarId>(i), value);
      }
      if (v.SatisfiesInequalities(query)) {
        const Instance canonical = v.RequiredFacts(query);
        const Fact head = v.ApplyToAtom(query.head());
        if (!visit(canonical, head)) return false;
      }
      std::size_t pos = 0;
      while (pos < num_blocks) {
        if (++choice[pos] <= consts.size()) break;
        choice[pos] = 0;
        ++pos;
      }
      if (pos == num_blocks) break;
    }
    return true;
  });
}

bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  LAMP_CHECK_MSG(q1.negated().empty() && q2.negated().empty(),
                 "exact containment supports CQs without negation only");
  // Fast path: both plain and constant-free. Then the single *injective*
  // canonical database decides containment (classical homomorphism test) —
  // non-injective valuations factor through the injective one by
  // monotonicity of plain CQs.
  if (q1.IsPlain() && q2.IsPlain() && q1.Constants().empty() &&
      q2.Constants().empty()) {
    Valuation frozen(q1.NumVars());
    for (VarId v = 0; v < q1.NumVars(); ++v) {
      frozen.Bind(v, Value(static_cast<std::int64_t>(v) + 1));
    }
    return Evaluate(q2, frozen.RequiredFacts(q1))
        .Contains(frozen.ApplyToAtom(q1.head()));
  }

  bool contained = true;
  ForEachCanonicalDatabase(
      q1, [&q2, &contained](const Instance& canonical, const Fact& head) {
        if (!Evaluate(q2, canonical).Contains(head)) {
          contained = false;
          return false;
        }
        return true;
      });
  return contained;
}

std::vector<std::uint8_t> ContainmentMatrix(
    const std::vector<ConjunctiveQuery>& queries) {
  const std::size_t n = queries.size();
  std::vector<std::uint8_t> matrix(n * n, 0);
  par::GlobalPool().ParallelFor(0, n * n, [&queries, &matrix,
                                           n](std::size_t cell) {
    matrix[cell] = IsContainedIn(queries[cell / n], queries[cell % n]) ? 1 : 0;
  });
  return matrix;
}

std::optional<Instance> FindContainmentCounterexample(
    const Schema& schema, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2, std::size_t domain_size,
    std::size_t max_facts) {
  std::vector<Value> universe;
  universe.reserve(domain_size);
  for (std::size_t i = 0; i < domain_size; ++i) {
    universe.emplace_back(static_cast<std::int64_t>(i + 1));
  }
  const std::vector<Fact> pool = AllFactsOver(schema, universe);

  // Depth-first enumeration of subsets of `pool` with at most max_facts
  // elements; every subset is tested as soon as it is formed, so small
  // counterexamples are found early.
  Instance current;
  std::optional<Instance> found;
  std::function<void(std::size_t)> descend = [&](std::size_t start) {
    if (found.has_value()) return;
    if (ViolatesContainmentOn(q1, q2, current)) {
      found = current;
      return;
    }
    if (current.Size() >= max_facts) return;
    for (std::size_t i = start; i < pool.size() && !found.has_value(); ++i) {
      Instance next = current;
      next.Insert(pool[i]);
      std::swap(current, next);
      descend(i + 1);
      std::swap(current, next);
    }
  };
  descend(0);
  return found;
}

std::optional<Instance> RandomContainmentCounterexample(
    const Schema& schema, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2, std::size_t domain_size,
    std::size_t facts_per_relation, std::size_t trials, Rng& rng) {
  for (std::size_t t = 0; t < trials; ++t) {
    Instance inst;
    for (RelationId rel = 0; rel < schema.NumRelations(); ++rel) {
      const std::size_t arity = schema.ArityOf(rel);
      for (std::size_t k = 0; k < facts_per_relation; ++k) {
        std::vector<Value> args;
        args.reserve(arity);
        for (std::size_t i = 0; i < arity; ++i) {
          args.emplace_back(
              static_cast<std::int64_t>(rng.Uniform(domain_size) + 1));
        }
        inst.Insert(Fact(rel, std::move(args)));
      }
    }
    if (ViolatesContainmentOn(q1, q2, inst)) return inst;
  }
  return std::nullopt;
}

}  // namespace lamp
