#ifndef LAMP_CQ_VALUATION_H_
#define LAMP_CQ_VALUATION_H_

#include <optional>
#include <string>
#include <vector>

#include "cq/cq.h"
#include "relational/instance.h"

/// \file
/// Valuations: total functions from query variables to domain values
/// (Section 2 of the paper), and their application to atoms and bodies.

namespace lamp {

/// A (possibly partial) assignment of values to the variables of one query.
/// Partiality exists only during backtracking evaluation; the paper's
/// valuations are the total ones (IsTotal()).
class Valuation {
 public:
  /// Creates the empty assignment for a query with \p num_vars variables.
  explicit Valuation(std::size_t num_vars) : slots_(num_vars) {}

  /// Creates a total valuation from explicit values (one per variable).
  static Valuation Total(const std::vector<Value>& values);

  bool IsBound(VarId v) const { return slots_[v].has_value(); }
  Value Get(VarId v) const;
  void Bind(VarId v, Value value) { slots_[v] = value; }
  void Unbind(VarId v) { slots_[v].reset(); }

  /// True when every variable is bound.
  bool IsTotal() const;

  std::size_t NumVars() const { return slots_.size(); }

  /// Applies the valuation to a term. Requires variables to be bound.
  Value Apply(const Term& term) const;

  /// Applies the valuation to an atom, producing a fact. Requires all of
  /// the atom's variables to be bound.
  Fact ApplyToAtom(const Atom& atom) const;

  /// V(body_Q): the facts required by this valuation (Section 2).
  /// Requires the valuation to bind every variable of the body.
  Instance RequiredFacts(const ConjunctiveQuery& query) const;

  /// True when all required facts are in \p instance and all inequalities
  /// and negated atoms of \p query are satisfied w.r.t. \p instance.
  bool Satisfies(const ConjunctiveQuery& query, const Instance& instance) const;

  /// True when the inequalities of \p query hold under this valuation.
  bool SatisfiesInequalities(const ConjunctiveQuery& query) const;

  friend bool operator==(const Valuation& a, const Valuation& b) {
    return a.slots_ == b.slots_;
  }

  /// Renders as "{x->1, y->2}" using \p query for variable names.
  std::string ToString(const ConjunctiveQuery& query) const;

 private:
  std::vector<std::optional<Value>> slots_;
};

}  // namespace lamp

#endif  // LAMP_CQ_VALUATION_H_
