#ifndef LAMP_CQ_UCQ_H_
#define LAMP_CQ_UCQ_H_

#include <string>
#include <vector>

#include "cq/cq.h"
#include "relational/instance.h"

/// \file
/// Unions of conjunctive queries. Both Section 4 extensions ([33]: PC for
/// UCQ via union-aware minimal valuations, already in
/// distribution/parallel_correctness.h) and the containment theory use
/// them; this header gives the union a first-class type with evaluation
/// and the Sagiv-Yannakakis containment test.

namespace lamp {

/// A union of CQs. All disjuncts share the caller's Schema; heads may use
/// different relations (the output is simply the union of head facts).
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  void AddDisjunct(ConjunctiveQuery q) { disjuncts_.push_back(std::move(q)); }

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  std::size_t size() const { return disjuncts_.size(); }
  bool Empty() const { return disjuncts_.empty(); }

  /// Union of the disjuncts' answers.
  Instance Evaluate(const Instance& instance) const;

  /// True when every disjunct is negation-free.
  bool IsNegationFree() const;

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

/// Exact containment for negation-free UCQs (inequalities allowed): by the
/// Sagiv-Yannakakis argument, U1 subseteq U2 iff for every disjunct Q of
/// U1 and every canonical database D of Q, the frozen head is in U2(D).
bool IsContainedIn(const UnionQuery& u1, const UnionQuery& u2);

/// Convenience overloads mixing CQs and unions.
bool IsContainedIn(const ConjunctiveQuery& q, const UnionQuery& u);
bool IsContainedIn(const UnionQuery& u, const ConjunctiveQuery& q);

}  // namespace lamp

#endif  // LAMP_CQ_UCQ_H_
