#ifndef LAMP_CQ_PARSER_H_
#define LAMP_CQ_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "cq/cq.h"
#include "relational/schema.h"

/// \file
/// A small rule-syntax parser so that tests, examples and benchmarks can
/// state queries exactly as the paper writes them.
///
/// Grammar:
///   query  := atom ("<-" | ":-") item ("," item)*
///   item   := atom | "!" atom | term "!=" term
///   atom   := NAME "(" [term ("," term)*] ")"
///   term   := NAME (a variable) | INTEGER (a constant)
///
/// Example: ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)").
/// Relations are registered in \p schema on first use (arity inferred);
/// using a known relation with a different arity is a checked error.

namespace lamp {

/// Parses \p text into a validated ConjunctiveQuery. Aborts with a message
/// on syntax errors (the parser is for trusted, in-repo query literals).
ConjunctiveQuery ParseQuery(Schema& schema, std::string_view text);

/// Outcome of the non-aborting parse: either a query (parsed but NOT
/// safety-validated — the caller runs its own checks, e.g. the sa lint's
/// safety pass) or an error message.
struct CqParseResult {
  std::optional<ConjunctiveQuery> query;
  std::string error;  // Non-empty iff !query.

  bool ok() const { return query.has_value(); }
};

/// Error-returning variant of ParseQuery for untrusted input (lint
/// fixtures, lamp_lint command-line files). Never aborts on syntax or
/// arity errors and does not Validate() the result; new relation names
/// encountered before the error are still registered in \p schema.
CqParseResult TryParseQuery(Schema& schema, std::string_view text);

}  // namespace lamp

#endif  // LAMP_CQ_PARSER_H_
