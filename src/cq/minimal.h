#ifndef LAMP_CQ_MINIMAL_H_
#define LAMP_CQ_MINIMAL_H_

#include <vector>

#include "cq/cq.h"
#include "cq/eval.h"
#include "cq/valuation.h"

/// \file
/// Minimal valuations (Definition 4.4 of the paper): a valuation V for Q is
/// minimal when no valuation V' derives the same head fact from a strict
/// subset of V's required facts. Minimal valuations are the semantic core
/// of parallel-correctness (Proposition 4.6) and of transfer
/// (Proposition 4.13).
///
/// Supported for CQs with inequalities; negated atoms are rejected (the
/// paper's Section 4.1 machinery for CQ-not does not go through minimal
/// valuations).

namespace lamp {

/// True iff \p valuation (total, satisfying the query's inequalities) is
/// minimal for \p query.
bool IsMinimalValuation(const ConjunctiveQuery& query,
                        const Valuation& valuation);

/// Calls \p visit for every *minimal* valuation of \p query whose values
/// are drawn from \p universe. Enumeration cost is
/// |universe|^#vars * (minimality check); this is the paper's Pi^p_2
/// quantifier structure made executable. Returns false iff stopped.
bool ForEachMinimalValuation(const ConjunctiveQuery& query,
                             const std::vector<Value>& universe,
                             const ValuationVisitor& visit);

}  // namespace lamp

#endif  // LAMP_CQ_MINIMAL_H_
