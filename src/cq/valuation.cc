#include "cq/valuation.h"

#include <sstream>

#include "common/check.h"

namespace lamp {

Valuation Valuation::Total(const std::vector<Value>& values) {
  Valuation v(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    v.Bind(static_cast<VarId>(i), values[i]);
  }
  return v;
}

Value Valuation::Get(VarId v) const {
  LAMP_CHECK(v < slots_.size() && slots_[v].has_value());
  return *slots_[v];
}

bool Valuation::IsTotal() const {
  for (const auto& s : slots_) {
    if (!s.has_value()) return false;
  }
  return true;
}

Value Valuation::Apply(const Term& term) const {
  return term.IsConst() ? term.constant : Get(term.var);
}

Fact Valuation::ApplyToAtom(const Atom& atom) const {
  std::vector<Value> args;
  args.reserve(atom.terms.size());
  for (const Term& t : atom.terms) args.push_back(Apply(t));
  return Fact(atom.relation, std::move(args));
}

Instance Valuation::RequiredFacts(const ConjunctiveQuery& query) const {
  Instance required;
  for (const Atom& atom : query.body()) {
    required.Insert(ApplyToAtom(atom));
  }
  return required;
}

bool Valuation::SatisfiesInequalities(const ConjunctiveQuery& query) const {
  for (const auto& [a, b] : query.inequalities()) {
    if (Apply(a) == Apply(b)) return false;
  }
  return true;
}

bool Valuation::Satisfies(const ConjunctiveQuery& query,
                          const Instance& instance) const {
  for (const Atom& atom : query.body()) {
    if (!instance.Contains(ApplyToAtom(atom))) return false;
  }
  if (!SatisfiesInequalities(query)) return false;
  for (const Atom& atom : query.negated()) {
    if (instance.Contains(ApplyToAtom(atom))) return false;
  }
  return true;
}

std::string Valuation::ToString(const ConjunctiveQuery& query) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (VarId v = 0; v < slots_.size(); ++v) {
    if (!slots_[v].has_value()) continue;
    if (!first) os << ", ";
    first = false;
    os << query.VarName(v) << "->" << slots_[v]->v;
  }
  os << "}";
  return os.str();
}

}  // namespace lamp
