#ifndef LAMP_CQ_ATOM_H_
#define LAMP_CQ_ATOM_H_

#include <vector>

#include "cq/term.h"
#include "relational/schema.h"

/// \file
/// Atoms: a relation name applied to terms, e.g. R(x, y) or S(x, 3).

namespace lamp {

/// One atom of a query body or head.
struct Atom {
  RelationId relation = 0;
  std::vector<Term> terms;

  Atom() = default;
  Atom(RelationId rel, std::vector<Term> atom_terms)
      : relation(rel), terms(std::move(atom_terms)) {}

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }
};

}  // namespace lamp

#endif  // LAMP_CQ_ATOM_H_
