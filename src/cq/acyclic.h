#ifndef LAMP_CQ_ACYCLIC_H_
#define LAMP_CQ_ACYCLIC_H_

#include <cstddef>
#include <vector>

#include "cq/cq.h"

/// \file
/// Hypergraph acyclicity (GYO reduction) and join trees.
///
/// Yannakakis' algorithm (Section 3.2: the semi-join phase of GYM) operates
/// over a join tree of an acyclic query; this module decides acyclicity and
/// produces such a tree.

namespace lamp {

/// A join tree over the body atoms of a query. parent[i] is the index of
/// the parent atom of atom i, or kRoot for the root. removal_order lists
/// atom indices in GYO ear-removal order (leaves first); processing it
/// forward gives the upward semi-join sweep, backward the downward sweep.
struct JoinTree {
  static constexpr std::ptrdiff_t kRoot = -1;

  bool acyclic = false;
  std::vector<std::ptrdiff_t> parent;
  std::vector<std::size_t> removal_order;
};

/// Runs the GYO reduction on the positive body of \p query. The result's
/// acyclic flag is false for cyclic queries (triangle, longer cycles), in
/// which case parent/removal_order are meaningless.
JoinTree BuildJoinTree(const ConjunctiveQuery& query);

/// Convenience wrapper: true iff the query's body hypergraph is acyclic.
bool IsAcyclic(const ConjunctiveQuery& query);

}  // namespace lamp

#endif  // LAMP_CQ_ACYCLIC_H_
