#include "cq/ucq.h"

#include <sstream>

#include "common/check.h"
#include "cq/containment.h"
#include "cq/eval.h"

namespace lamp {

Instance UnionQuery::Evaluate(const Instance& instance) const {
  return EvaluateUnion(disjuncts_, instance);
}

bool UnionQuery::IsNegationFree() const {
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (!q.negated().empty()) return false;
  }
  return true;
}

std::string UnionQuery::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) os << "  |  ";
    os << disjuncts_[i].ToString(schema);
  }
  return os.str();
}

bool IsContainedIn(const UnionQuery& u1, const UnionQuery& u2) {
  LAMP_CHECK_MSG(u1.IsNegationFree() && u2.IsNegationFree(),
                 "UCQ containment supports negation-free queries only");
  for (const ConjunctiveQuery& q : u1.disjuncts()) {
    bool contained = true;
    ForEachCanonicalDatabase(
        q, [&u2, &contained](const Instance& canonical, const Fact& head) {
          if (!u2.Evaluate(canonical).Contains(head)) {
            contained = false;
            return false;
          }
          return true;
        });
    if (!contained) return false;
  }
  return true;
}

bool IsContainedIn(const ConjunctiveQuery& q, const UnionQuery& u) {
  return IsContainedIn(UnionQuery({q}), u);
}

bool IsContainedIn(const UnionQuery& u, const ConjunctiveQuery& q) {
  return IsContainedIn(u, UnionQuery({q}));
}

}  // namespace lamp
