#ifndef LAMP_RELATIONAL_FACT_H_
#define LAMP_RELATIONAL_FACT_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/hash.h"
#include "relational/schema.h"
#include "relational/value.h"

/// \file
/// Facts: a relation name applied to domain values, e.g. R(a, b)
/// (Section 2 of the paper).

namespace lamp {

/// A single fact R(a1, ..., ak).
struct Fact {
  RelationId relation = 0;
  std::vector<Value> args;

  Fact() = default;
  Fact(RelationId rel, std::vector<Value> arguments)
      : relation(rel), args(std::move(arguments)) {}
  Fact(RelationId rel, std::initializer_list<std::int64_t> arguments)
      : relation(rel) {
    args.reserve(arguments.size());
    for (std::int64_t a : arguments) args.emplace_back(a);
  }

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.args == b.args;
  }
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.args < b.args;
  }
};

struct FactHash {
  std::size_t operator()(const Fact& f) const {
    std::uint64_t h = HashMix(f.relation);
    for (Value v : f.args) {
      h = HashCombine(h, static_cast<std::uint64_t>(v.v));
    }
    return static_cast<std::size_t>(h);
  }
};

/// Renders a fact as "R(1,2)" using \p schema for the relation name.
std::string FactToString(const Schema& schema, const Fact& fact);

}  // namespace lamp

#endif  // LAMP_RELATIONAL_FACT_H_
