#ifndef LAMP_RELATIONAL_IO_H_
#define LAMP_RELATIONAL_IO_H_

#include <iosfwd>
#include <string>

#include "relational/instance.h"
#include "relational/schema.h"

/// \file
/// Plain-text (de)serialization of instances: one fact per line in the
/// same syntax the query parser uses ("R(1,2)"), '#'/'%' comments and
/// blank lines ignored. Lets examples and downstream users ship datasets
/// as files and replay experiment inputs exactly.

namespace lamp {

/// Writes every fact of \p instance, sorted, one per line.
void WriteInstance(std::ostream& os, const Schema& schema,
                   const Instance& instance);

/// Parses facts from \p is. Unknown relations are registered in \p schema
/// with the arity of their first occurrence; later occurrences must agree
/// (checked error). Aborts on malformed lines.
Instance ReadInstance(std::istream& is, Schema& schema);

/// Convenience: parse from a string.
Instance ReadInstanceFromString(const std::string& text, Schema& schema);

}  // namespace lamp

#endif  // LAMP_RELATIONAL_IO_H_
