#ifndef LAMP_RELATIONAL_INSTANCE_H_
#define LAMP_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "relational/fact.h"
#include "relational/value.h"

/// \file
/// Database instances: finite sets of facts (Section 2 of the paper), with
/// the instance-level operations the surveyed results need — active domain,
/// restriction to a value set (I|C, Lemma 5.7), and connected components
/// (Lemma 5.11).
///
/// Storage layout (DESIGN.md "Storage layout"): instances are *column
/// major*. Each relation owns one flat arity-strided `std::vector<Value>`
/// of rows plus an open-addressing hash index of row ids — no per-fact
/// heap allocation and no duplicate fact storage. `Fact`-shaped accessors
/// (`FactsOf`, `AllFacts`, `ForEachFact`) are compatibility views that
/// materialise facts on the fly; hot paths use the row API (`RowsOf`,
/// `InsertRow`, `ContainsRow`, `ForEachRow`) and touch the flat storage
/// directly. Iteration order within a relation is insertion order, which
/// keeps runs deterministic and digests byte-identical to the row-oriented
/// predecessor.

namespace lamp {

/// A borrowed, read-only view of one relation's rows: `num_rows` rows of
/// `arity` values each, row-major in one contiguous buffer. Valid while
/// the owning instance is not mutated.
struct RowsView {
  RelationId relation = 0;
  std::size_t arity = 0;
  std::size_t num_rows = 0;
  const Value* data = nullptr;

  const Value* Row(std::size_t i) const { return data + i * arity; }
  std::size_t size() const { return num_rows; }
  bool empty() const { return num_rows == 0; }
};

/// A compatibility view over one relation that yields `Fact`s. Iteration
/// materialises each fact on the fly (one heap allocation per yielded
/// fact) — hot loops iterate rows via RowsView / ForEachRow instead.
class FactsView {
 public:
  class Iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Fact;
    using difference_type = std::ptrdiff_t;
    using pointer = const Fact*;
    using reference = Fact;

    Iterator(const FactsView* view, std::size_t i) : view_(view), i_(i) {}
    Fact operator*() const { return (*view_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    const FactsView* view_;
    std::size_t i_;
  };

  FactsView() = default;
  explicit FactsView(RowsView rows) : rows_(rows) {}

  std::size_t size() const { return rows_.num_rows; }
  bool empty() const { return rows_.num_rows == 0; }
  Fact operator[](std::size_t i) const {
    const Value* row = rows_.Row(i);
    return Fact(rows_.relation, std::vector<Value>(row, row + rows_.arity));
  }
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, rows_.num_rows); }
  const RowsView& rows() const { return rows_; }

 private:
  RowsView rows_;
};

/// A persistent hash index of one relation's rows keyed on a subset of
/// column positions (bit p of the position mask selects position p).
/// Bucket chains are threaded through `head`/`next` in ascending row id
/// order (head[slot] and next[row] hold row id + 1; 0 terminates), so a
/// probe enumerates matching rows in insertion order. The slot of a key is
/// `hash & (head.size() - 1)` where hash folds the key values (ascending
/// position order) into the FNV-1a offset basis via HashCombine — rows
/// with different keys may share a chain, so probes compare key positions.
struct JoinIndex {
  std::vector<std::uint32_t> key_pos;  // Masked positions, ascending.
  std::vector<std::uint32_t> head;     // slot -> first row id + 1.
  std::vector<std::uint32_t> tail;     // slot -> last row id + 1.
  std::vector<std::uint32_t> next;     // row id -> next row id + 1.
  std::size_t built_rows = 0;          // Rows covered so far.

  std::size_t SlotMask() const { return head.size() - 1; }
};

/// A finite set of facts grouped by relation. Duplicate inserts are ignored
/// (set semantics). Iteration order within a relation is insertion order,
/// which keeps runs deterministic.
class Instance {
 public:
  Instance() = default;

  /// Copies carry the column data but start with a cold join-index cache;
  /// moves carry the cache along.
  Instance(const Instance& other)
      : by_relation_(other.by_relation_), size_(other.size_) {}
  Instance& operator=(const Instance& other) {
    by_relation_ = other.by_relation_;
    size_ = other.size_;
    indexes_.clear();
    return *this;
  }
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  /// Inserts a fact; returns true if it was new.
  bool Insert(const Fact& fact) {
    return InsertRow(fact.relation, fact.args.data(), fact.args.size());
  }

  /// Inserts the row R(row[0..arity)) for relation \p relation; returns
  /// true if it was new. All rows of one relation must share one arity
  /// (checked).
  bool InsertRow(RelationId relation, const Value* row, std::size_t arity);

  /// Inserts every fact of \p other; returns the number of new facts.
  std::size_t InsertAll(const Instance& other);

  /// Batch insert of \p count rows of \p arity values each (row-major,
  /// contiguous). Behaves exactly like \p count InsertRow calls — same
  /// dedup, same growth trajectory, same resulting row order — but hoists
  /// the per-call relation lookup out of the loop. Returns the number of
  /// rows that were new.
  std::size_t InsertRows(RelationId relation, const Value* rows,
                         std::size_t count, std::size_t arity);

  /// Like InsertRows, but every row that was new here is also inserted
  /// into \p mirror under the same relation (the semi-naive fused
  /// containment+insert sink: `mirror` collects the next delta).
  std::size_t InsertRowsInto(RelationId relation, const Value* rows,
                             std::size_t count, std::size_t arity,
                             Instance& mirror);

  /// Membership test.
  bool Contains(const Fact& fact) const {
    return ContainsRow(fact.relation, fact.args.data(), fact.args.size());
  }

  /// Row-level membership test. Rows of a different arity than the
  /// relation's are never members.
  bool ContainsRow(RelationId relation, const Value* row,
                   std::size_t arity) const;

  /// Total number of facts.
  std::size_t Size() const { return size_; }

  bool Empty() const { return size_ == 0; }

  /// Rows of one relation as a borrowed columnar view (empty view if the
  /// relation never occurred). Valid while the instance is not mutated.
  RowsView RowsOf(RelationId relation) const {
    if (relation >= by_relation_.size()) return RowsView{relation, 0, 0,
                                                         nullptr};
    const Column& c = by_relation_[relation];
    return RowsView{relation, c.arity, c.num_rows, c.data.data()};
  }

  /// One past the largest relation id this instance has storage for;
  /// relation ids at or beyond the bound are empty. Lets callers sweep all
  /// relations with RowsOf in ascending (= ForEachFact) order.
  RelationId RelationBound() const {
    return static_cast<RelationId>(by_relation_.size());
  }

  /// Number of rows of one relation.
  std::size_t NumRows(RelationId relation) const {
    return relation < by_relation_.size() ? by_relation_[relation].num_rows
                                          : 0;
  }

  /// Arity of one relation's rows (0 when the relation has no rows).
  std::size_t ArityOf(RelationId relation) const {
    return relation < by_relation_.size() ? by_relation_[relation].arity : 0;
  }

  /// Facts of one relation (empty if the relation never occurred), as a
  /// materialising compatibility view: `for (const Fact& f : FactsOf(r))`
  /// works unchanged but allocates one fact per iteration. Hot loops use
  /// RowsOf / ForEachRow.
  FactsView FactsOf(RelationId relation) const {
    return FactsView(RowsOf(relation));
  }

  /// All facts, in (relation, insertion) order. Materialises a copy —
  /// hot paths iterate with ForEachFact / ForEachRow instead.
  std::vector<Fact> AllFacts() const;

  /// Calls visit(fact) for every fact in (relation, insertion) order —
  /// the AllFacts order — without allocating per fact (one scratch fact is
  /// reused across the whole sweep). The reference passed to the visitor
  /// is only valid for the duration of that visit call; visitors that
  /// retain facts must copy them.
  template <typename Visitor>
  void ForEachFact(Visitor&& visit) const {
    Fact scratch;
    for (RelationId r = 0; r < by_relation_.size(); ++r) {
      const Column& c = by_relation_[r];
      if (c.num_rows == 0) continue;
      scratch.relation = r;
      scratch.args.resize(c.arity);
      const Value* row = c.data.data();
      for (std::size_t i = 0; i < c.num_rows; ++i, row += c.arity) {
        if (c.arity != 0) {
          std::memcpy(scratch.args.data(), row, c.arity * sizeof(Value));
        }
        visit(const_cast<const Fact&>(scratch));
      }
    }
  }

  /// Calls visit(fact) for every fact of \p relation in insertion order,
  /// reusing one scratch fact (same lifetime contract as ForEachFact).
  template <typename Visitor>
  void ForEachFactOf(RelationId relation, Visitor&& visit) const {
    const RowsView rows = RowsOf(relation);
    if (rows.num_rows == 0) return;
    Fact scratch;
    scratch.relation = relation;
    scratch.args.resize(rows.arity);
    const Value* row = rows.data;
    for (std::size_t i = 0; i < rows.num_rows; ++i, row += rows.arity) {
      if (rows.arity != 0) {
        std::memcpy(scratch.args.data(), row, rows.arity * sizeof(Value));
      }
      visit(const_cast<const Fact&>(scratch));
    }
  }

  /// Calls visit(row) — row a `const Value*` of the relation's arity — for
  /// every row of \p relation in insertion order, straight off the flat
  /// storage.
  template <typename Visitor>
  void ForEachRow(RelationId relation, Visitor&& visit) const {
    const RowsView rows = RowsOf(relation);
    const Value* row = rows.data;
    for (std::size_t i = 0; i < rows.num_rows; ++i, row += rows.arity) {
      visit(row);
    }
  }

  /// Removes every row of \p relation (its arity is forgotten too). Used
  /// by the semi-naive evaluator to re-tag delta relations in place.
  void ClearRelation(RelationId relation);

  /// The join index of \p relation keyed on the positions of \p mask,
  /// built on first use and extended incrementally as rows are appended —
  /// repeated evaluations over a growing relation pay for each row once,
  /// not once per evaluation. When \p rows_indexed is non-null it is
  /// incremented by the number of rows swept into the index by this call.
  ///
  /// The returned reference is valid until the next call that mutates this
  /// instance. The cache is NOT thread-safe: concurrent evaluation must
  /// use distinct Instance objects (as the parallel callers in
  /// distribution/ and cq/ do — each lane evaluates its own copy).
  const JoinIndex& IndexOn(RelationId relation, std::uint64_t mask,
                           std::size_t* rows_indexed = nullptr) const;

  /// One past the largest RelationId ever inserted (the FactsOf range a
  /// per-relation sweep has to cover).
  RelationId NumRelationIds() const {
    return static_cast<RelationId>(by_relation_.size());
  }

  /// adom(I): the values occurring in some fact, sorted ascending and
  /// deduplicated.
  std::vector<Value> ActiveDomain() const;

  /// I|C = { f in I : adom(f) subseteq C } (Lemma 5.7 of the paper).
  /// \p values need not be sorted; membership is decided by binary search
  /// over a sorted copy (made only when the input is unsorted).
  Instance RestrictTo(const std::vector<Value>& values) const;

  /// Facts whose argument set intersects \p values (same contract as
  /// RestrictTo).
  Instance Touching(const std::vector<Value>& values) const;

  /// The connected components of I: J is a component when J is a minimal
  /// nonempty subset with adom(J) disjoint from adom(I \ J)
  /// (Section 5.2.2 of the paper). Facts with no arguments (nullary facts)
  /// each form their own component.
  std::vector<Instance> Components() const;

  /// Set equality (independent of insertion order).
  friend bool operator==(const Instance& a, const Instance& b);

  /// Renders the instance as "{R(1,2), S(3)}" sorted for stable output.
  std::string ToString(const Schema& schema) const;

 private:
  /// Column-major storage of one relation: `num_rows` rows of `arity`
  /// values each in `data` (row-major, contiguous) and an open-addressing
  /// hash table of row ids (`slots` holds row_id + 1; 0 = empty slot;
  /// capacity is a power of two).
  struct Column {
    std::uint32_t arity = 0;
    std::size_t num_rows = 0;
    std::vector<Value> data;
    std::vector<std::uint32_t> slots;
  };

  static std::uint64_t HashRow(const Value* row, std::size_t arity);
  static void Rehash(Column& c, std::size_t new_slots);
  std::size_t InsertRowsImpl(RelationId relation, const Value* rows,
                             std::size_t count, std::size_t arity,
                             Instance* mirror);

  std::vector<Column> by_relation_;
  std::size_t size_ = 0;

  /// Lazily built join indexes per (relation, position mask). unique_ptr
  /// keeps returned references stable while the per-relation list grows.
  /// Mutable: indexes are a cache over logically-const data, built and
  /// extended on demand from const evaluation paths.
  mutable std::vector<std::vector<
      std::pair<std::uint64_t, std::unique_ptr<JoinIndex>>>>
      indexes_;
};

}  // namespace lamp

#endif  // LAMP_RELATIONAL_INSTANCE_H_
