#ifndef LAMP_RELATIONAL_INSTANCE_H_
#define LAMP_RELATIONAL_INSTANCE_H_

#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "relational/fact.h"
#include "relational/value.h"

/// \file
/// Database instances: finite sets of facts (Section 2 of the paper), with
/// the instance-level operations the surveyed results need — active domain,
/// restriction to a value set (I|C, Lemma 5.7), and connected components
/// (Lemma 5.11).

namespace lamp {

/// A finite set of facts grouped by relation. Duplicate inserts are ignored
/// (set semantics). Iteration order within a relation is insertion order,
/// which keeps runs deterministic.
class Instance {
 public:
  Instance() = default;

  /// Inserts a fact; returns true if it was new.
  bool Insert(const Fact& fact);

  /// Inserts every fact of \p other; returns the number of new facts.
  std::size_t InsertAll(const Instance& other);

  /// Membership test.
  bool Contains(const Fact& fact) const;

  /// Total number of facts.
  std::size_t Size() const { return size_; }

  bool Empty() const { return size_ == 0; }

  /// Facts of one relation (empty if the relation never occurred).
  const std::vector<Fact>& FactsOf(RelationId relation) const;

  /// All facts, in (relation, insertion) order. Materialises a copy —
  /// hot paths iterate with ForEachFact instead.
  std::vector<Fact> AllFacts() const;

  /// Calls visit(fact) for every fact in (relation, insertion) order —
  /// the AllFacts order — without copying. References passed to the
  /// visitor stay valid while the instance is not mutated.
  template <typename Visitor>
  void ForEachFact(Visitor&& visit) const {
    for (const auto& facts : by_relation_) {
      for (const Fact& f : facts) visit(f);
    }
  }

  /// One past the largest RelationId ever inserted (the FactsOf range a
  /// per-relation sweep has to cover).
  RelationId NumRelationIds() const {
    return static_cast<RelationId>(by_relation_.size());
  }

  /// adom(I): the set of values occurring in some fact.
  std::set<Value> ActiveDomain() const;

  /// I|C = { f in I : adom(f) subseteq C } (Lemma 5.7 of the paper).
  Instance RestrictTo(const std::set<Value>& values) const;

  /// Facts whose argument set intersects \p values.
  Instance Touching(const std::set<Value>& values) const;

  /// The connected components of I: J is a component when J is a minimal
  /// nonempty subset with adom(J) disjoint from adom(I \ J)
  /// (Section 5.2.2 of the paper). Facts with no arguments (nullary facts)
  /// each form their own component.
  std::vector<Instance> Components() const;

  /// Set equality (independent of insertion order).
  friend bool operator==(const Instance& a, const Instance& b);

  /// Renders the instance as "{R(1,2), S(3)}" sorted for stable output.
  std::string ToString(const Schema& schema) const;

 private:
  std::unordered_set<Fact, FactHash> index_;
  std::vector<std::vector<Fact>> by_relation_;
  std::size_t size_ = 0;
};

}  // namespace lamp

#endif  // LAMP_RELATIONAL_INSTANCE_H_
