#include "relational/generators.h"

#include <numeric>
#include <vector>

#include "common/check.h"

namespace lamp {

void AddUniformRelation(const Schema& schema, RelationId rel, std::size_t m,
                        std::size_t domain_size, Rng& rng, Instance& out) {
  const std::size_t arity = schema.ArityOf(rel);
  LAMP_CHECK(domain_size > 0);
  // Distinctness via rejection; fine as long as m is well below
  // domain_size^arity.
  std::size_t inserted = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 64 * m + 1024;
  while (inserted < m) {
    LAMP_CHECK_MSG(++attempts < max_attempts,
                   "domain too small for requested relation size");
    std::vector<Value> args;
    args.reserve(arity);
    for (std::size_t i = 0; i < arity; ++i) {
      args.emplace_back(static_cast<std::int64_t>(rng.Uniform(domain_size)));
    }
    if (out.Insert(Fact(rel, std::move(args)))) ++inserted;
  }
}

void AddZipfRelation(const Schema& schema, RelationId rel, std::size_t m,
                     std::size_t domain_size, double zipf_s,
                     int skewed_column, Rng& rng, Instance& out) {
  LAMP_CHECK(schema.ArityOf(rel) == 2);
  LAMP_CHECK(skewed_column == 0 || skewed_column == 1);
  const ZipfSampler zipf(domain_size, zipf_s);
  std::size_t inserted = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 256 * m + 1024;
  while (inserted < m) {
    LAMP_CHECK_MSG(++attempts < max_attempts,
                   "domain too small for requested skewed relation");
    const auto hot =
        static_cast<std::int64_t>(zipf.Sample(rng));
    const auto cold =
        static_cast<std::int64_t>(rng.Uniform(domain_size));
    Fact f = skewed_column == 0 ? Fact(rel, {hot, cold})
                                : Fact(rel, {cold, hot});
    if (out.Insert(f)) ++inserted;
  }
}

void AddMatchingRelation(const Schema& schema, RelationId rel, std::size_t m,
                         std::int64_t value_base, Rng& rng, Instance& out) {
  const std::size_t arity = schema.ArityOf(rel);
  // One random permutation of [0, m) per column; column i draws from the
  // disjoint range starting at value_base + i*m, so no value repeats within
  // any column (or across columns).
  std::vector<std::vector<std::size_t>> perms(arity);
  for (auto& perm : perms) {
    perm.resize(m);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.Shuffle(perm);
  }
  for (std::size_t row = 0; row < m; ++row) {
    std::vector<Value> args;
    args.reserve(arity);
    for (std::size_t col = 0; col < arity; ++col) {
      args.emplace_back(value_base + static_cast<std::int64_t>(col * m) +
                        static_cast<std::int64_t>(perms[col][row]));
    }
    out.Insert(Fact(rel, std::move(args)));
  }
}

void AddRandomGraph(const Schema& schema, RelationId rel, std::size_t m,
                    std::size_t n, Rng& rng, Instance& out) {
  LAMP_CHECK(schema.ArityOf(rel) == 2);
  LAMP_CHECK(n >= 2);
  LAMP_CHECK(m <= n * (n - 1));
  std::size_t inserted = 0;
  while (inserted < m) {
    const auto a = static_cast<std::int64_t>(rng.Uniform(n));
    const auto b = static_cast<std::int64_t>(rng.Uniform(n));
    if (a == b) continue;
    if (out.Insert(Fact(rel, {a, b}))) ++inserted;
  }
}

void AddPathGraph(const Schema& schema, RelationId rel, std::size_t n,
                  Instance& out) {
  LAMP_CHECK(schema.ArityOf(rel) == 2);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    out.Insert(Fact(rel, {static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i + 1)}));
  }
}

void AddCycleGraph(const Schema& schema, RelationId rel, std::size_t n,
                   Instance& out) {
  LAMP_CHECK(schema.ArityOf(rel) == 2);
  LAMP_CHECK(n >= 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.Insert(Fact(rel, {static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>((i + 1) % n)}));
  }
}

void AddTriangleClusters(const Schema& schema, RelationId rel,
                         std::size_t triangles, std::int64_t value_base,
                         Instance& out) {
  LAMP_CHECK(schema.ArityOf(rel) == 2);
  for (std::size_t t = 0; t < triangles; ++t) {
    const std::int64_t a = value_base + static_cast<std::int64_t>(3 * t);
    out.Insert(Fact(rel, {a, a + 1}));
    out.Insert(Fact(rel, {a + 1, a + 2}));
    out.Insert(Fact(rel, {a + 2, a}));
  }
}

}  // namespace lamp
