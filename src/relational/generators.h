#ifndef LAMP_RELATIONAL_GENERATORS_H_
#define LAMP_RELATIONAL_GENERATORS_H_

#include <cstddef>

#include "common/rng.h"
#include "relational/instance.h"
#include "relational/schema.h"

/// \file
/// Synthetic workload generators.
///
/// The paper's load statements are parameterized by relation size m, server
/// count p and the presence of *skew* (heavy hitters). These generators
/// produce the three database families the surveyed results distinguish:
/// skew-free relations (every value bounded frequency), Zipf-skewed
/// relations (heavy hitters), and matching databases (the lower-bound family
/// of Beame-Koutris-Suciu, where every value occurs at most once per
/// column).

namespace lamp {

/// Adds \p m distinct uniformly random tuples over domain [0, domain_size)
/// to relation \p rel of \p schema. Requires domain_size^arity >= m.
void AddUniformRelation(const Schema& schema, RelationId rel, std::size_t m,
                        std::size_t domain_size, Rng& rng, Instance& out);

/// Adds \p m distinct tuples to binary relation \p rel where the column
/// \p skewed_column (0 or 1) is drawn Zipf(s) over [0, domain_size) — so for
/// s around 1 or larger a few heavy hitters absorb a large fraction of the
/// tuples — and the other column is uniform.
void AddZipfRelation(const Schema& schema, RelationId rel, std::size_t m,
                     std::size_t domain_size, double zipf_s,
                     int skewed_column, Rng& rng, Instance& out);

/// Adds a *matching* relation of \p m tuples to \p rel: every domain value
/// occurs at most once in every column (the skew-free extreme; Section 3.2
/// "matching databases"). Column i uses the disjoint value range
/// [base + i*m, base + (i+1)*m) permuted randomly.
void AddMatchingRelation(const Schema& schema, RelationId rel, std::size_t m,
                         std::int64_t value_base, Rng& rng, Instance& out);

/// Adds \p m distinct random directed edges over [0, n) to binary relation
/// \p rel (no self-loops). Requires m <= n*(n-1).
void AddRandomGraph(const Schema& schema, RelationId rel, std::size_t m,
                    std::size_t n, Rng& rng, Instance& out);

/// Adds the directed path 0 -> 1 -> ... -> n-1 to \p rel.
void AddPathGraph(const Schema& schema, RelationId rel, std::size_t n,
                  Instance& out);

/// Adds the directed cycle over [0, n) to \p rel.
void AddCycleGraph(const Schema& schema, RelationId rel, std::size_t n,
                   Instance& out);

/// Adds a graph guaranteed to contain many triangles: \p triangles vertex
/// triples (3t fresh vertices starting at value_base), each wired as a
/// directed triangle.
void AddTriangleClusters(const Schema& schema, RelationId rel,
                         std::size_t triangles, std::int64_t value_base,
                         Instance& out);

}  // namespace lamp

#endif  // LAMP_RELATIONAL_GENERATORS_H_
