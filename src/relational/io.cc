#include "relational/io.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.h"

namespace lamp {

namespace {

/// Parses one "R(1,2)" line into a fact, registering the relation.
Fact ParseFactLine(const std::string& line, Schema& schema) {
  std::size_t pos = 0;
  auto skip_space = [&] {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  };

  skip_space();
  const std::size_t name_start = pos;
  while (pos < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[pos])) ||
          line[pos] == '_')) {
    ++pos;
  }
  LAMP_CHECK_MSG(pos > name_start, "expected a relation name");
  const std::string name = line.substr(name_start, pos - name_start);

  skip_space();
  LAMP_CHECK_MSG(pos < line.size() && line[pos] == '(', "expected '('");
  ++pos;

  std::vector<Value> args;
  skip_space();
  if (pos < line.size() && line[pos] != ')') {
    while (true) {
      skip_space();
      const std::size_t num_start = pos;
      if (pos < line.size() && line[pos] == '-') ++pos;
      while (pos < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
      LAMP_CHECK_MSG(pos > num_start, "expected an integer argument");
      args.emplace_back(
          std::strtoll(line.substr(num_start, pos - num_start).c_str(),
                       nullptr, 10));
      skip_space();
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
  }
  LAMP_CHECK_MSG(pos < line.size() && line[pos] == ')', "expected ')'");
  ++pos;
  skip_space();
  LAMP_CHECK_MSG(pos == line.size(), "trailing characters after fact");

  const RelationId rel = schema.AddRelation(name, args.size());
  LAMP_CHECK_MSG(schema.ArityOf(rel) == args.size(),
                 "fact arity disagrees with relation");
  return Fact(rel, std::move(args));
}

}  // namespace

void WriteInstance(std::ostream& os, const Schema& schema,
                   const Instance& instance) {
  std::vector<Fact> facts = instance.AllFacts();
  std::sort(facts.begin(), facts.end());
  for (const Fact& f : facts) {
    os << FactToString(schema, f) << "\n";
  }
}

Instance ReadInstance(std::istream& is, Schema& schema) {
  Instance instance;
  std::string line;
  while (std::getline(is, line)) {
    // Trim and skip blanks/comments.
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#' || line[start] == '%') continue;
    std::size_t end = line.find_last_not_of(" \t\r");
    instance.Insert(
        ParseFactLine(line.substr(start, end - start + 1), schema));
  }
  return instance;
}

Instance ReadInstanceFromString(const std::string& text, Schema& schema) {
  std::istringstream is(text);
  return ReadInstance(is, schema);
}

}  // namespace lamp
