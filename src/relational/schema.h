#ifndef LAMP_RELATIONAL_SCHEMA_H_
#define LAMP_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"

/// \file
/// Database schemas: relation names with associated arities (Section 2 of
/// the paper).

namespace lamp {

/// Dense identifier of a relation within a Schema.
using RelationId = std::uint32_t;

/// A database schema. Relations are registered once and then referred to by
/// RelationId everywhere; the schema owns the name <-> id mapping.
class Schema {
 public:
  /// Registers relation \p name with the given arity and returns its id.
  /// Registering an existing name with the same arity returns the existing
  /// id; re-registering with a different arity is a checked error.
  RelationId AddRelation(std::string_view name, std::size_t arity);

  /// Returns the id of \p name; checked error if unknown.
  RelationId IdOf(std::string_view name) const;

  /// Returns the id of \p name, or Interner::kNotFound if unknown.
  RelationId TryIdOf(std::string_view name) const;

  /// Arity of relation \p id.
  std::size_t ArityOf(RelationId id) const;

  /// Name of relation \p id.
  const std::string& NameOf(RelationId id) const;

  /// Number of registered relations.
  std::size_t NumRelations() const { return arities_.size(); }

 private:
  Interner names_;
  std::vector<std::size_t> arities_;
};

}  // namespace lamp

#endif  // LAMP_RELATIONAL_SCHEMA_H_
