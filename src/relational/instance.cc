#include "relational/instance.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace lamp {

namespace {

const std::vector<Fact>& EmptyFactVector() {
  static const auto* empty = new std::vector<Fact>();
  return *empty;
}

}  // namespace

bool Instance::Insert(const Fact& fact) {
  if (!index_.insert(fact).second) return false;
  if (fact.relation >= by_relation_.size()) {
    by_relation_.resize(fact.relation + 1);
  }
  by_relation_[fact.relation].push_back(fact);
  ++size_;
  return true;
}

std::size_t Instance::InsertAll(const Instance& other) {
  std::size_t added = 0;
  for (const auto& facts : other.by_relation_) {
    for (const Fact& f : facts) {
      if (Insert(f)) ++added;
    }
  }
  return added;
}

bool Instance::Contains(const Fact& fact) const {
  return index_.count(fact) > 0;
}

const std::vector<Fact>& Instance::FactsOf(RelationId relation) const {
  if (relation >= by_relation_.size()) return EmptyFactVector();
  return by_relation_[relation];
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(size_);
  for (const auto& facts : by_relation_) {
    out.insert(out.end(), facts.begin(), facts.end());
  }
  return out;
}

std::set<Value> Instance::ActiveDomain() const {
  std::set<Value> dom;
  for (const auto& facts : by_relation_) {
    for (const Fact& f : facts) {
      dom.insert(f.args.begin(), f.args.end());
    }
  }
  return dom;
}

Instance Instance::RestrictTo(const std::set<Value>& values) const {
  Instance out;
  for (const auto& facts : by_relation_) {
    for (const Fact& f : facts) {
      const bool inside = std::all_of(
          f.args.begin(), f.args.end(),
          [&values](Value v) { return values.count(v) > 0; });
      if (inside) out.Insert(f);
    }
  }
  return out;
}

Instance Instance::Touching(const std::set<Value>& values) const {
  Instance out;
  for (const auto& facts : by_relation_) {
    for (const Fact& f : facts) {
      const bool touches = std::any_of(
          f.args.begin(), f.args.end(),
          [&values](Value v) { return values.count(v) > 0; });
      if (touches) out.Insert(f);
    }
  }
  return out;
}

std::vector<Instance> Instance::Components() const {
  // Union-find over facts, merging facts that share a value.
  const std::vector<Fact> facts = AllFacts();
  std::vector<std::size_t> parent(facts.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});

  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&parent, &find](std::size_t a, std::size_t b) {
    parent[find(a)] = find(b);
  };

  std::map<Value, std::size_t> first_owner;
  for (std::size_t i = 0; i < facts.size(); ++i) {
    for (Value v : facts[i].args) {
      auto [it, inserted] = first_owner.emplace(v, i);
      if (!inserted) unite(i, it->second);
    }
  }

  std::map<std::size_t, Instance> groups;
  for (std::size_t i = 0; i < facts.size(); ++i) {
    groups[find(i)].Insert(facts[i]);
  }
  std::vector<Instance> out;
  out.reserve(groups.size());
  for (auto& [root, inst] : groups) out.push_back(std::move(inst));
  return out;
}

bool operator==(const Instance& a, const Instance& b) {
  if (a.size_ != b.size_) return false;
  for (const auto& facts : a.by_relation_) {
    for (const Fact& f : facts) {
      if (!b.Contains(f)) return false;
    }
  }
  return true;
}

std::string Instance::ToString(const Schema& schema) const {
  std::vector<Fact> facts = AllFacts();
  std::sort(facts.begin(), facts.end());
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < facts.size(); ++i) {
    if (i > 0) os << ", ";
    os << FactToString(schema, facts[i]);
  }
  os << "}";
  return os.str();
}

}  // namespace lamp
