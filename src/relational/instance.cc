#include "relational/instance.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/hash.h"

namespace lamp {

namespace {

static_assert(sizeof(Value) == sizeof(std::int64_t),
              "rows are compared with memcmp; Value must be a bare int64");

/// Returns \p values if already sorted, otherwise a sorted+deduped copy in
/// \p scratch. Lets RestrictTo/Touching accept unsorted literals while the
/// common caller (ActiveDomain output) pays no copy.
const std::vector<Value>& SortedView(const std::vector<Value>& values,
                                     std::vector<Value>& scratch) {
  if (std::is_sorted(values.begin(), values.end())) return values;
  scratch = values;
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  return scratch;
}

bool SortedContains(const std::vector<Value>& sorted, Value v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

}  // namespace

std::uint64_t Instance::HashRow(const Value* row, std::size_t arity) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < arity; ++i) {
    h = HashCombine(h, static_cast<std::uint64_t>(row[i].v));
  }
  return h;
}

void Instance::Rehash(Column& c, std::size_t new_slots) {
  c.slots.assign(new_slots, 0);
  const std::size_t mask = new_slots - 1;
  const Value* row = c.data.data();
  for (std::size_t id = 0; id < c.num_rows; ++id, row += c.arity) {
    std::size_t i = static_cast<std::size_t>(HashRow(row, c.arity)) & mask;
    while (c.slots[i] != 0) i = (i + 1) & mask;
    c.slots[i] = static_cast<std::uint32_t>(id) + 1;
  }
}

bool Instance::InsertRow(RelationId relation, const Value* row,
                         std::size_t arity) {
  if (relation >= by_relation_.size()) by_relation_.resize(relation + 1);
  Column& c = by_relation_[relation];
  if (c.num_rows == 0) {
    c.arity = static_cast<std::uint32_t>(arity);
  } else {
    LAMP_CHECK_MSG(arity == c.arity,
                   "all rows of a relation must share one arity");
  }

  // Grow to keep the load factor below 7/8.
  if ((c.num_rows + 1) * 8 > c.slots.size() * 7) {
    Rehash(c, std::max<std::size_t>(16, c.slots.size() * 2));
  }

  const std::size_t mask = c.slots.size() - 1;
  const std::size_t row_bytes = arity * sizeof(Value);
  std::size_t i = static_cast<std::size_t>(HashRow(row, arity)) & mask;
  while (c.slots[i] != 0) {
    const std::size_t id = c.slots[i] - 1;
    if (row_bytes == 0 ||
        std::memcmp(c.data.data() + id * arity, row, row_bytes) == 0) {
      return false;  // Duplicate (set semantics).
    }
    i = (i + 1) & mask;
  }
  c.slots[i] = static_cast<std::uint32_t>(c.num_rows) + 1;
  c.data.insert(c.data.end(), row, row + arity);
  ++c.num_rows;
  ++size_;
  return true;
}

bool Instance::ContainsRow(RelationId relation, const Value* row,
                           std::size_t arity) const {
  if (relation >= by_relation_.size()) return false;
  const Column& c = by_relation_[relation];
  if (c.num_rows == 0 || arity != c.arity) return false;
  const std::size_t mask = c.slots.size() - 1;
  const std::size_t row_bytes = arity * sizeof(Value);
  std::size_t i = static_cast<std::size_t>(HashRow(row, arity)) & mask;
  while (c.slots[i] != 0) {
    const std::size_t id = c.slots[i] - 1;
    if (row_bytes == 0 ||
        std::memcmp(c.data.data() + id * arity, row, row_bytes) == 0) {
      return true;
    }
    i = (i + 1) & mask;
  }
  return false;
}

std::size_t Instance::InsertAll(const Instance& other) {
  std::size_t added = 0;
  for (RelationId r = 0; r < other.by_relation_.size(); ++r) {
    const Column& c = other.by_relation_[r];
    if (c.num_rows == 0) continue;
    added += InsertRowsImpl(r, c.data.data(), c.num_rows, c.arity, nullptr);
  }
  return added;
}

std::size_t Instance::InsertRows(RelationId relation, const Value* rows,
                                 std::size_t count, std::size_t arity) {
  return InsertRowsImpl(relation, rows, count, arity, nullptr);
}

std::size_t Instance::InsertRowsInto(RelationId relation, const Value* rows,
                                     std::size_t count, std::size_t arity,
                                     Instance& mirror) {
  return InsertRowsImpl(relation, rows, count, arity, &mirror);
}

std::size_t Instance::InsertRowsImpl(RelationId relation, const Value* rows,
                                     std::size_t count, std::size_t arity,
                                     Instance* mirror) {
  if (count == 0) return 0;
  if (relation >= by_relation_.size()) by_relation_.resize(relation + 1);
  Column& c = by_relation_[relation];
  if (c.num_rows == 0) {
    c.arity = static_cast<std::uint32_t>(arity);
  } else {
    LAMP_CHECK_MSG(arity == c.arity,
                   "all rows of a relation must share one arity");
  }

  // Same per-insert growth trigger as InsertRow (so the probe-table growth
  // trajectory is identical to repeated single inserts); only the relation
  // lookup and arity check are hoisted out of the loop.
  const std::size_t row_bytes = arity * sizeof(Value);
  std::size_t mask = c.slots.empty() ? 0 : c.slots.size() - 1;
  std::size_t added = 0;
  const Value* row = rows;
  for (std::size_t t = 0; t < count; ++t, row += arity) {
    if ((c.num_rows + 1) * 8 > c.slots.size() * 7) {
      Rehash(c, std::max<std::size_t>(16, c.slots.size() * 2));
      mask = c.slots.size() - 1;
    }
    std::size_t i = static_cast<std::size_t>(HashRow(row, arity)) & mask;
    bool duplicate = false;
    while (c.slots[i] != 0) {
      const std::size_t id = c.slots[i] - 1;
      if (row_bytes == 0 ||
          std::memcmp(c.data.data() + id * arity, row, row_bytes) == 0) {
        duplicate = true;
        break;
      }
      i = (i + 1) & mask;
    }
    if (duplicate) continue;
    c.slots[i] = static_cast<std::uint32_t>(c.num_rows) + 1;
    c.data.insert(c.data.end(), row, row + arity);
    ++c.num_rows;
    ++added;
    if (mirror != nullptr) mirror->InsertRow(relation, row, arity);
  }
  size_ += added;
  return added;
}

void Instance::ClearRelation(RelationId relation) {
  if (relation >= by_relation_.size()) return;
  Column& c = by_relation_[relation];
  size_ -= c.num_rows;
  c.num_rows = 0;
  c.arity = 0;
  c.data.clear();
  std::fill(c.slots.begin(), c.slots.end(), 0);
  if (relation < indexes_.size()) indexes_[relation].clear();
}

const JoinIndex& Instance::IndexOn(RelationId relation, std::uint64_t mask,
                                   std::size_t* rows_indexed) const {
  if (indexes_.size() < by_relation_.size()) {
    indexes_.resize(by_relation_.size());
  }
  LAMP_CHECK(relation < by_relation_.size());
  auto& per_relation = indexes_[relation];
  JoinIndex* index = nullptr;
  for (auto& [m, idx] : per_relation) {
    if (m == mask) {
      index = idx.get();
      break;
    }
  }
  if (index == nullptr) {
    per_relation.emplace_back(mask, std::make_unique<JoinIndex>());
    index = per_relation.back().second.get();
    for (std::size_t pos = 0; pos < 64; ++pos) {
      if ((mask >> pos) & 1) {
        index->key_pos.push_back(static_cast<std::uint32_t>(pos));
      }
    }
  }

  const Column& c = by_relation_[relation];
  if (index->built_rows == c.num_rows) return *index;

  std::size_t slots = index->head.empty() ? 16 : index->head.size();
  while (slots < c.num_rows * 2) slots *= 2;
  if (slots != index->head.size()) {
    // Grown past the table's load limit: rebuild from row 0. The rebuild
    // cost amortises over the appends that caused it.
    index->head.assign(slots, 0);
    index->tail.assign(slots, 0);
    index->next.assign(c.num_rows, 0);
    index->built_rows = 0;
  } else {
    index->next.resize(c.num_rows, 0);
  }

  const std::size_t slot_mask = slots - 1;
  const Value* row = c.data.data() + index->built_rows * c.arity;
  for (std::size_t id = index->built_rows; id < c.num_rows;
       ++id, row += c.arity) {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint32_t pos : index->key_pos) {
      h = HashCombine(h, static_cast<std::uint64_t>(row[pos].v));
    }
    const std::size_t slot = static_cast<std::size_t>(h) & slot_mask;
    const std::uint32_t link = static_cast<std::uint32_t>(id) + 1;
    if (index->head[slot] == 0) {
      index->head[slot] = link;
    } else {
      index->next[index->tail[slot] - 1] = link;
    }
    index->tail[slot] = link;
  }
  if (rows_indexed != nullptr) {
    *rows_indexed += c.num_rows - index->built_rows;
  }
  index->built_rows = c.num_rows;
  return *index;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(size_);
  ForEachFact([&out](const Fact& f) { out.push_back(f); });
  return out;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::vector<Value> dom;
  for (const Column& c : by_relation_) {
    dom.insert(dom.end(), c.data.begin(),
               c.data.begin() +
                   static_cast<std::ptrdiff_t>(c.num_rows * c.arity));
  }
  std::sort(dom.begin(), dom.end());
  dom.erase(std::unique(dom.begin(), dom.end()), dom.end());
  return dom;
}

Instance Instance::RestrictTo(const std::vector<Value>& values) const {
  std::vector<Value> scratch;
  const std::vector<Value>& sorted = SortedView(values, scratch);
  Instance out;
  for (RelationId r = 0; r < by_relation_.size(); ++r) {
    const Column& c = by_relation_[r];
    const Value* row = c.data.data();
    for (std::size_t i = 0; i < c.num_rows; ++i, row += c.arity) {
      bool inside = true;
      for (std::size_t j = 0; j < c.arity; ++j) {
        if (!SortedContains(sorted, row[j])) {
          inside = false;
          break;
        }
      }
      if (inside) out.InsertRow(r, row, c.arity);
    }
  }
  return out;
}

Instance Instance::Touching(const std::vector<Value>& values) const {
  std::vector<Value> scratch;
  const std::vector<Value>& sorted = SortedView(values, scratch);
  Instance out;
  for (RelationId r = 0; r < by_relation_.size(); ++r) {
    const Column& c = by_relation_[r];
    const Value* row = c.data.data();
    for (std::size_t i = 0; i < c.num_rows; ++i, row += c.arity) {
      bool touches = false;
      for (std::size_t j = 0; j < c.arity; ++j) {
        if (SortedContains(sorted, row[j])) {
          touches = true;
          break;
        }
      }
      if (touches) out.InsertRow(r, row, c.arity);
    }
  }
  return out;
}

std::vector<Instance> Instance::Components() const {
  // Union-find over facts (global row ids in AllFacts order), merging
  // facts that share a value.
  struct RowRef {
    RelationId relation;
    const Value* row;
    std::uint32_t arity;
  };
  std::vector<RowRef> rows;
  rows.reserve(size_);
  for (RelationId r = 0; r < by_relation_.size(); ++r) {
    const Column& c = by_relation_[r];
    const Value* row = c.data.data();
    for (std::size_t i = 0; i < c.num_rows; ++i, row += c.arity) {
      rows.push_back(RowRef{r, row, c.arity});
    }
  }

  std::vector<std::size_t> parent(rows.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});

  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&parent, &find](std::size_t a, std::size_t b) {
    parent[find(a)] = find(b);
  };

  std::map<Value, std::size_t> first_owner;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::uint32_t j = 0; j < rows[i].arity; ++j) {
      auto [it, inserted] = first_owner.emplace(rows[i].row[j], i);
      if (!inserted) unite(i, it->second);
    }
  }

  std::map<std::size_t, Instance> groups;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    groups[find(i)].InsertRow(rows[i].relation, rows[i].row, rows[i].arity);
  }
  std::vector<Instance> out;
  out.reserve(groups.size());
  for (auto& [root, inst] : groups) out.push_back(std::move(inst));
  return out;
}

bool operator==(const Instance& a, const Instance& b) {
  if (a.size_ != b.size_) return false;
  for (RelationId r = 0; r < a.by_relation_.size(); ++r) {
    const Instance::Column& c = a.by_relation_[r];
    const Value* row = c.data.data();
    for (std::size_t i = 0; i < c.num_rows; ++i, row += c.arity) {
      if (!b.ContainsRow(r, row, c.arity)) return false;
    }
  }
  return true;
}

std::string Instance::ToString(const Schema& schema) const {
  std::vector<Fact> facts = AllFacts();
  std::sort(facts.begin(), facts.end());
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < facts.size(); ++i) {
    if (i > 0) os << ", ";
    os << FactToString(schema, facts[i]);
  }
  os << "}";
  return os.str();
}

}  // namespace lamp
