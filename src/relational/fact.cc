#include "relational/fact.h"

#include <sstream>

namespace lamp {

std::string FactToString(const Schema& schema, const Fact& fact) {
  std::ostringstream os;
  os << schema.NameOf(fact.relation) << "(";
  for (std::size_t i = 0; i < fact.args.size(); ++i) {
    if (i > 0) os << ",";
    os << fact.args[i].v;
  }
  os << ")";
  return os.str();
}

}  // namespace lamp
