#include "relational/schema.h"

#include "common/check.h"

namespace lamp {

RelationId Schema::AddRelation(std::string_view name, std::size_t arity) {
  const std::uint32_t existing = names_.Find(name);
  if (existing != Interner::kNotFound) {
    LAMP_CHECK_MSG(arities_[existing] == arity,
                   "relation re-registered with different arity");
    return existing;
  }
  const RelationId id = names_.Intern(name);
  LAMP_CHECK(id == arities_.size());
  arities_.push_back(arity);
  return id;
}

RelationId Schema::IdOf(std::string_view name) const {
  const RelationId id = names_.Find(name);
  LAMP_CHECK_MSG(id != Interner::kNotFound, "unknown relation");
  return id;
}

RelationId Schema::TryIdOf(std::string_view name) const {
  return names_.Find(name);
}

std::size_t Schema::ArityOf(RelationId id) const {
  LAMP_CHECK(id < arities_.size());
  return arities_[id];
}

const std::string& Schema::NameOf(RelationId id) const {
  LAMP_CHECK(id < arities_.size());
  return names_.NameOf(id);
}

}  // namespace lamp
