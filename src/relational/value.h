#ifndef LAMP_RELATIONAL_VALUE_H_
#define LAMP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>

#include "common/hash.h"

/// \file
/// Domain values.
///
/// The paper works over an abstract infinite domain **dom**; every result it
/// surveys is *generic* (invariant under permutations of dom), so a concrete
/// countable domain is enough. We use 64-bit integers. Symbolic constants in
/// examples (a, b, c, ...) are interned to integers at the edge.

namespace lamp {

/// A single domain value. Strong struct (not a typedef) so that values,
/// node ids and plain sizes cannot be mixed up silently.
struct Value {
  std::int64_t v = 0;

  constexpr Value() = default;
  constexpr explicit Value(std::int64_t value) : v(value) {}

  friend constexpr bool operator==(Value a, Value b) { return a.v == b.v; }
  friend constexpr bool operator!=(Value a, Value b) { return a.v != b.v; }
  friend constexpr bool operator<(Value a, Value b) { return a.v < b.v; }
};

struct ValueHash {
  std::size_t operator()(Value x) const {
    return static_cast<std::size_t>(HashMix(static_cast<std::uint64_t>(x.v)));
  }
};

}  // namespace lamp

#endif  // LAMP_RELATIONAL_VALUE_H_
