#ifndef LAMP_NET_PROGRAMS_H_
#define LAMP_NET_PROGRAMS_H_

#include <functional>
#include <vector>

#include "cq/cq.h"
#include "net/transducer.h"
#include "relational/schema.h"

/// \file
/// The coordination-free evaluation strategies of Section 5.2, as concrete
/// transducer programs:
///
///  * MonotoneBroadcastProgram — Example 5.1(1): broadcast everything,
///    output new answers as they become derivable. Correct exactly for
///    monotone queries (class M = F0 = A0).
///  * DistinctCompleteProgram — the Theorem 5.8 strategy for Mdistinct:
///    policy-aware nodes output Q(state) once the local active domain C is
///    *distinct-complete* — every possible fact over C is either received
///    or one the node is responsible for (so its absence is meaningful).
///  * ComponentProgram — the Theorem 5.12 strategy for Mdisjoint under
///    domain-guided policies: nodes announce per-value completeness and
///    evaluate Q on the union of the components whose values are all
///    complete (every disjoint-complete subset is such a union).
///  * EconomicalBroadcastProgram — the Ketsman-Neven refinement
///    (Section 6): broadcast only facts that unify with some body atom of
///    the query, instead of the whole local database.

namespace lamp {

/// A query as a black box over instances.
using NetQueryFunction = std::function<Instance(const Instance&)>;

/// Example 5.1(1): the naive broadcast strategy for monotone queries.
class MonotoneBroadcastProgram : public TransducerProgram {
 public:
  explicit MonotoneBroadcastProgram(NetQueryFunction query)
      : query_(std::move(query)) {}

  void OnStart(NodeContext& ctx) override;
  void OnReceive(NodeContext& ctx, const Message& message) override;

 private:
  void EvaluateAndOutput(NodeContext& ctx);

  NetQueryFunction query_;
};

/// Theorem 5.8: policy-aware strategy for domain-distinct-monotone
/// queries. Requires the network to pass a policy; the EDB \p relations
/// bound the fact space enumerated in the completeness test (cost
/// |C|^arity per check — suitable for the moderate domains the
/// experiments use).
class DistinctCompleteProgram : public TransducerProgram {
 public:
  DistinctCompleteProgram(NetQueryFunction query, const Schema& schema,
                          std::vector<RelationId> relations)
      : query_(std::move(query)),
        schema_(schema),
        relations_(std::move(relations)) {}

  void OnStart(NodeContext& ctx) override;
  void OnReceive(NodeContext& ctx, const Message& message) override;

 private:
  /// Outputs Q(state) if adom(state) is distinct-complete for this node.
  void TryOutput(NodeContext& ctx);

  NetQueryFunction query_;
  const Schema& schema_;
  std::vector<RelationId> relations_;
};

/// Theorem 5.12: per-component strategy for domain-disjoint-monotone
/// queries under a domain-guided policy. Uses a marker relation
/// (registered in the schema as "__complete"/1) to announce "all facts
/// containing value a have been sent", one atomic message per owned
/// value.
class ComponentProgram : public TransducerProgram {
 public:
  /// \p schema is extended with the marker relation.
  ComponentProgram(NetQueryFunction query, Schema& schema);

  void OnStart(NodeContext& ctx) override;
  void OnReceive(NodeContext& ctx, const Message& message) override;

  RelationId marker_relation() const { return marker_; }

 private:
  /// Evaluates Q on the union of complete components of the real state.
  void TryOutput(NodeContext& ctx);

  NetQueryFunction query_;
  RelationId marker_;
};

/// Example 5.4: the per-derivation policy-aware strategy for CQs with
/// negation. A node outputs a derivation as soon as the positive part
/// matches its state and each negated fact is *known absent*: not in the
/// state while the node is responsible for it (so it would have been in
/// the local database if it were in I). Sound for any policy whose
/// horizontal distribution is the induced one; complete when every
/// candidate negated fact has a responsible node (e.g. any domain-guided
/// policy) and the query negates at most one atom per derivation —
/// exactly the open-triangle setting of the paper.
class PolicyAwareNegationProgram : public TransducerProgram {
 public:
  explicit PolicyAwareNegationProgram(const ConjunctiveQuery& query)
      : query_(query) {}

  void OnStart(NodeContext& ctx) override;
  void OnReceive(NodeContext& ctx, const Message& message) override;

 private:
  void TryOutput(NodeContext& ctx);

  const ConjunctiveQuery& query_;
};

/// Example 5.1(2)'s *coordinating* strategy for non-monotone queries: each
/// node broadcasts its data followed by a "done" marker; a node evaluates
/// the query (negation included) only once it has collected the markers of
/// every other node — at that point its state is the full instance, so
/// negation is safe. The barrier requires knowing how many nodes exist:
/// this program reads |All| and therefore lives outside the oblivious
/// classes A_i — exactly the coordination the CALM theorem says
/// non-monotone queries cannot avoid.
class CoordinatedBarrierProgram : public TransducerProgram {
 public:
  /// \p schema is extended with the marker relation "__done"/1 (the value
  /// is the announcing node id).
  CoordinatedBarrierProgram(NetQueryFunction query, Schema& schema);

  void OnStart(NodeContext& ctx) override;
  void OnReceive(NodeContext& ctx, const Message& message) override;

 private:
  void TryOutput(NodeContext& ctx);

  NetQueryFunction query_;
  RelationId done_;
};

/// A deliberately fragile variant of CoordinatedBarrierProgram, used by
/// the fault-injection subsystem (src/fault) as a divergence target:
/// instead of collecting the *set* of done markers it counts received
/// barrier messages in a scratch relation ("__tick"/1). On an
/// exactly-once network the count equals the number of distinct peers, so
/// the program is correct on every fault-free schedule; but a duplicated
/// barrier message (or one retransmitted after a crash) inflates the
/// count and releases the barrier before the state is complete — the
/// canonical at-least-once-delivery bug, made observable: the query runs
/// on a partial instance and non-monotone queries emit wrong facts.
class FragileCountingBarrierProgram : public TransducerProgram {
 public:
  /// \p schema is extended with "__done"/1 and "__tick"/1.
  FragileCountingBarrierProgram(NetQueryFunction query, Schema& schema);

  void OnStart(NodeContext& ctx) override;
  void OnReceive(NodeContext& ctx, const Message& message) override;

 private:
  void TryOutput(NodeContext& ctx);

  NetQueryFunction query_;
  RelationId done_;
  RelationId tick_;
};

/// Ketsman-Neven-style economical broadcast for a CQ: like
/// MonotoneBroadcastProgram but only facts unifying with some body atom
/// of \p query are transmitted.
class EconomicalBroadcastProgram : public TransducerProgram {
 public:
  explicit EconomicalBroadcastProgram(const ConjunctiveQuery& query)
      : query_(query) {}

  void OnStart(NodeContext& ctx) override;
  void OnReceive(NodeContext& ctx, const Message& message) override;

  /// True when \p fact matches some positive body atom of the query
  /// (relation, constants and repeated-variable patterns).
  bool IsRelevant(const Fact& fact) const;

 private:
  void EvaluateAndOutput(NodeContext& ctx);

  const ConjunctiveQuery& query_;
};

}  // namespace lamp

#endif  // LAMP_NET_PROGRAMS_H_
