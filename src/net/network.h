#ifndef LAMP_NET_NETWORK_H_
#define LAMP_NET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/scheduler.h"
#include "net/transducer.h"
#include "obs/metrics.h"

/// \file
/// The asynchronous runner for transducer networks.
///
/// Computation is a transition system: at every step one node is active;
/// message delivery order is nondeterministic (modelling arbitrary delay).
/// Scheduling decisions are delegated to a Scheduler (net/scheduler.h):
/// Run(seed) uses RandomScheduler, one concrete uniform run per seed;
/// eventual-consistency checks sweep many seeds, and the fault-injection
/// subsystem (src/fault) substitutes adversarial schedulers that drop
/// (with retransmission), duplicate, partition and crash. A run ends at
/// *quiescence*: every channel empty and every node up (our programs are
/// inflationary, so no further output can appear after that). The
/// coordination-freeness probe runs the heartbeat transitions only and
/// never delivers messages — Section 5.1's definition requires some ideal
/// distribution on which that already computes the query.

namespace lamp {

/// Outcome of one run. Communication counters live in the metrics
/// registry (the single source of truth — net and MPC runs report
/// through one schema, see obs/metrics.h); the named accessors read the
/// canonical counters back out.
struct NetworkRunResult {
  Instance output;               // Union of all nodes' output relations.
  obs::MetricsRegistry metrics;  // net.* counters + histograms.

  /// Point-to-point message count (net.messages_sent).
  std::size_t messages_sent() const {
    return metrics.CounterValue(obs::kNetMessagesSent);
  }
  /// Sum of message sizes in facts (net.facts_transferred).
  std::size_t facts_transferred() const {
    return metrics.CounterValue(obs::kNetFactsTransferred);
  }
  /// Serialized bytes of every broadcast copy in lamp.wire.v1 framing
  /// (net.wire_bytes) — measured on socket backends, computed in closed
  /// form in-process; identical across backends by construction.
  std::size_t wire_bytes() const {
    return metrics.CounterValue(obs::kNetWireBytes);
  }
  /// Deliveries performed to quiescence (net.transitions).
  std::size_t transitions() const {
    return metrics.CounterValue(obs::kNetTransitions);
  }
  /// Causal depth at which the run produced its first output fact
  /// (net.coordination_depth). 0 = output appeared during a heartbeat,
  /// before any message was read — the coordination-free profile; also 0
  /// when the run produced no output at all. The paper's Section 5.1
  /// definition asks for *some* ideal distribution with this profile, so
  /// the certification probe evaluates it on DistributeReplicated locals.
  std::size_t coordination_depth() const {
    const obs::Gauge* g = metrics.FindGauge(obs::kNetCoordinationDepth);
    return g == nullptr ? 0 : static_cast<std::size_t>(g->value());
  }
  /// Deepest Lamport causal depth delivered (net.causal_max_depth).
  std::size_t causal_max_depth() const {
    const obs::Gauge* g = metrics.FindGauge(obs::kNetCausalMaxDepth);
    return g == nullptr ? 0 : static_cast<std::size_t>(g->value());
  }
};

/// One transducer network execution environment.
class TransducerNetwork {
 public:
  /// \p locals is the horizontal distribution H (one local database per
  /// node). \p policy may be nullptr (policy-unaware network). When
  /// \p aware is false the run aborts if the program queries NetworkSize
  /// (the class A_i of oblivious networks).
  TransducerNetwork(std::vector<Instance> locals, TransducerProgram& program,
                    const DistributionPolicy* policy = nullptr,
                    bool aware = true);

  /// Runs to quiescence with uniform random delivery driven by \p seed
  /// (byte-identical to the historical seeded runner, per seed).
  NetworkRunResult Run(std::uint64_t seed);

  /// Runs to quiescence with \p scheduler deciding every delivery, drop,
  /// duplication, crash and restart. Fault semantics:
  ///  * drop: the delivery attempt fails but the queued copy survives
  ///    (loss with retransmission — delivery is postponed, never lost);
  ///  * duplicate: the message is delivered now and a copy stays queued;
  ///  * crash (durable): the node stops being scheduled; its state and
  ///    channel survive; on restart OnStart fires again;
  ///  * crash (volatile): additionally the state resets to the initial
  ///    local database, and on restart every message the node had
  ///    already consumed is requeued (channel-level at-least-once
  ///    delivery), after which OnStart fires again.
  /// Outputs are external (already emitted to the environment) and are
  /// never rolled back by a crash.
  NetworkRunResult RunWith(Scheduler& scheduler);

  /// Heartbeat-only run: OnStart fires everywhere, but no message is ever
  /// read (they are sent and counted, then dropped).
  NetworkRunResult RunWithoutDelivery();

 private:
  std::vector<Instance> locals_;
  TransducerProgram& program_;
  const DistributionPolicy* policy_;
  bool aware_;
};

/// Builds the horizontal distribution induced by \p policy on
/// \p instance: locals[k] = the facts node k is responsible for.
std::vector<Instance> DistributeByPolicy(const Instance& instance,
                                         const DistributionPolicy& policy);

/// Round-robin distribution over \p num_nodes nodes.
std::vector<Instance> DistributeRoundRobin(const Instance& instance,
                                           std::size_t num_nodes);

/// The "ideal" distribution that replicates the full instance everywhere.
std::vector<Instance> DistributeReplicated(const Instance& instance,
                                           std::size_t num_nodes);

}  // namespace lamp

#endif  // LAMP_NET_NETWORK_H_
