#ifndef LAMP_NET_NETWORK_H_
#define LAMP_NET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/transducer.h"
#include "obs/metrics.h"

/// \file
/// The asynchronous runner for transducer networks.
///
/// Computation is a transition system: at every step one node is active;
/// message delivery order is nondeterministic (modelling arbitrary delay).
/// The runner draws scheduling decisions from a seeded Rng, so each seed
/// is one concrete run; eventual-consistency checks sweep many seeds.
/// A run ends at *quiescence*: every inbox empty (our programs are
/// inflationary, so no further output can appear after that). The
/// coordination-freeness probe runs the heartbeat transitions only and
/// never delivers messages — Section 5.1's definition requires some ideal
/// distribution on which that already computes the query.

namespace lamp {

/// Outcome of one run. Communication counters live in the metrics
/// registry (the single source of truth — net and MPC runs report
/// through one schema, see obs/metrics.h); the named accessors read the
/// canonical counters back out.
struct NetworkRunResult {
  Instance output;               // Union of all nodes' output relations.
  obs::MetricsRegistry metrics;  // net.* counters + histograms.

  /// Point-to-point message count (net.messages_sent).
  std::size_t messages_sent() const {
    return metrics.CounterValue(obs::kNetMessagesSent);
  }
  /// Sum of message sizes in facts (net.facts_transferred).
  std::size_t facts_transferred() const {
    return metrics.CounterValue(obs::kNetFactsTransferred);
  }
  /// Deliveries performed to quiescence (net.transitions).
  std::size_t transitions() const {
    return metrics.CounterValue(obs::kNetTransitions);
  }
};

/// One transducer network execution environment.
class TransducerNetwork {
 public:
  /// \p locals is the horizontal distribution H (one local database per
  /// node). \p policy may be nullptr (policy-unaware network). When
  /// \p aware is false the run aborts if the program queries NetworkSize
  /// (the class A_i of oblivious networks).
  TransducerNetwork(std::vector<Instance> locals, TransducerProgram& program,
                    const DistributionPolicy* policy = nullptr,
                    bool aware = true);

  /// Runs to quiescence with delivery order driven by \p seed.
  NetworkRunResult Run(std::uint64_t seed);

  /// Heartbeat-only run: OnStart fires everywhere, but no message is ever
  /// read (they are sent and counted, then dropped).
  NetworkRunResult RunWithoutDelivery();

 private:
  std::vector<Instance> locals_;
  TransducerProgram& program_;
  const DistributionPolicy* policy_;
  bool aware_;
};

/// Builds the horizontal distribution induced by \p policy on
/// \p instance: locals[k] = the facts node k is responsible for.
std::vector<Instance> DistributeByPolicy(const Instance& instance,
                                         const DistributionPolicy& policy);

/// Round-robin distribution over \p num_nodes nodes.
std::vector<Instance> DistributeRoundRobin(const Instance& instance,
                                           std::size_t num_nodes);

/// The "ideal" distribution that replicates the full instance everywhere.
std::vector<Instance> DistributeReplicated(const Instance& instance,
                                           std::size_t num_nodes);

}  // namespace lamp

#endif  // LAMP_NET_NETWORK_H_
