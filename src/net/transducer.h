#ifndef LAMP_NET_TRANSDUCER_H_
#define LAMP_NET_TRANSDUCER_H_

#include <cstdint>
#include <vector>

#include "distribution/policy.h"
#include "relational/instance.h"

/// \file
/// Relational transducer networks (Section 5.1 of the paper).
///
/// Every node runs the same program over its relational state: a local
/// database (its share of the horizontal distribution), auxiliary facts,
/// and a write-only output relation. Nodes communicate by broadcasting
/// *messages* — batches of facts — which can be arbitrarily delayed and
/// reordered but never lost. Policy-aware programs (Section 5.2.2) may
/// additionally query the distribution policy for facts over their local
/// active domain.

namespace lamp {

/// A message: one batch of facts broadcast atomically. (The formal model
/// allows arbitrary message content; batching lets a program send "all my
/// facts about value a" as one unit.)
using Message = std::vector<Fact>;

/// The interface a program uses during a transition. Provided by the
/// network runner; operations are recorded and applied after the
/// transition returns.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  /// This node's identity.
  virtual NodeId self() const = 0;

  /// |All|: the number of nodes. Programs in the classes A0/A1/A2 — the
  /// network-unaware ("oblivious") ones — must not call this; the runner
  /// aborts if an unaware run does (that is how obliviousness is audited).
  virtual std::size_t NetworkSize() const = 0;

  /// The node's current relational state.
  virtual const Instance& state() const = 0;

  /// Adds a fact to the relational state.
  virtual void InsertState(const Fact& fact) = 0;

  /// Emits a fact to the write-only output relation (never retracted).
  virtual void Output(const Fact& fact) = 0;

  /// Broadcasts a message to every *other* node.
  virtual void Broadcast(Message message) = 0;

  /// The distribution policy, or nullptr for policy-unaware networks.
  /// Policy-aware programs may only query facts over their local active
  /// domain (the runner does not enforce this; programs are ours).
  virtual const DistributionPolicy* policy() const = 0;
};

/// A transducer program: the transition function every node runs.
/// Implementations must be deterministic functions of (state, input);
/// any per-node scratch data belongs in the relational state.
class TransducerProgram {
 public:
  virtual ~TransducerProgram() = default;

  /// The initial (heartbeat) transition: the local database is already in
  /// the state.
  virtual void OnStart(NodeContext& ctx) = 0;

  /// Delivery of one message.
  virtual void OnReceive(NodeContext& ctx, const Message& message) = 0;
};

}  // namespace lamp

#endif  // LAMP_NET_TRANSDUCER_H_
