#ifndef LAMP_NET_SCHEDULER_H_
#define LAMP_NET_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/transducer.h"

/// \file
/// Scheduling policy for the asynchronous network runner.
///
/// The runner (net/network.h) is the *mechanism*: it owns node states,
/// channels and counters, and executes one SchedulerAction at a time. The
/// Scheduler is the *policy*: at every decision point it is shown the
/// channel contents and decides what happens next — which message is
/// delivered, whether a delivery attempt fails (the sender retransmits),
/// whether a message is duplicated, or whether a node crashes/restarts.
///
/// RandomScheduler reproduces the historical seeded behaviour exactly
/// (same Rng call sequence), so Run(seed) is byte-identical to the
/// pre-Scheduler runner for every seed. Adversarial and fault-injecting
/// schedulers live in src/fault and build on this interface.

namespace lamp {

/// What the runner shows the scheduler at each decision point. All spans
/// refer to runner-owned storage and are only valid during the Next call.
struct ChannelView {
  /// queued_from[node] lists the sender of every message waiting in that
  /// node's channel, oldest first; indices align with the runner's queue.
  const std::vector<std::vector<NodeId>>& queued_from;
  /// node_up[node] is false while the node is crashed.
  const std::vector<bool>& node_up;
  /// Scheduler decisions executed so far (monotone; includes non-delivery
  /// actions such as drops and crashes).
  std::size_t step;
};

/// One decision. The runner validates and executes it.
struct SchedulerAction {
  enum class Kind : std::uint8_t {
    kNone = 0,   // Nothing to do; the runner finishes if quiescent.
    kDeliver,    // Deliver queue[node][index] and consume it.
    kDrop,       // Fail this delivery attempt; the queued copy stays (the
                 // sender retransmits), so delivery is only postponed.
    kDuplicate,  // Deliver queue[node][index] but keep it queued: one
                 // duplicate copy remains in flight.
    kCrash,      // Take node down. `durable` selects whether its state
                 // survives the outage.
    kRestart,    // Bring node back up. OnStart fires again; after a
                 // volatile crash the state resets to the initial local
                 // database and everything the node had consumed is
                 // retransmitted by the channel.
  };

  Kind kind = Kind::kNone;
  NodeId node = 0;        // Receiver (deliveries) or crash/restart target.
  std::size_t index = 0;  // Message index within the node's queue.
  bool durable = false;   // Crash mode.

  static SchedulerAction Deliver(NodeId node, std::size_t index) {
    return {Kind::kDeliver, node, index, false};
  }
  static SchedulerAction Drop(NodeId node, std::size_t index) {
    return {Kind::kDrop, node, index, false};
  }
  static SchedulerAction Duplicate(NodeId node, std::size_t index) {
    return {Kind::kDuplicate, node, index, false};
  }
  static SchedulerAction Crash(NodeId node, bool durable) {
    return {Kind::kCrash, node, 0, durable};
  }
  static SchedulerAction Restart(NodeId node) {
    return {Kind::kRestart, node, 0, false};
  }
};

/// The scheduling-policy interface.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Order in which the heartbeat (OnStart) transitions fire.
  virtual std::vector<NodeId> StartOrder(std::size_t num_nodes) = 0;

  /// The next action. Returning kNone asserts the network is quiescent
  /// (every channel empty, every node up); the runner checks that.
  virtual SchedulerAction Next(const ChannelView& view) = 0;

  /// True when the runner must log consumed messages so a volatile
  /// restart can retransmit them. Off by default: fault-free runs pay
  /// nothing for the crash machinery.
  virtual bool WantsRedeliveryLog() const { return false; }
};

/// The historical seeded behaviour: heartbeats in shuffled order, then
/// repeatedly pick a uniform random nonempty channel and a uniform random
/// queued message (arbitrary delay + reordering, no faults).
class RandomScheduler : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  std::vector<NodeId> StartOrder(std::size_t num_nodes) override;
  SchedulerAction Next(const ChannelView& view) override;

 private:
  Rng rng_;
};

}  // namespace lamp

#endif  // LAMP_NET_SCHEDULER_H_
