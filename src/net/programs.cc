#include "net/programs.h"

#include <set>

#include "common/check.h"
#include "common/subset.h"
#include "cq/eval.h"

namespace lamp {

// ---------------------------------------------------------------------------
// MonotoneBroadcastProgram
// ---------------------------------------------------------------------------

void MonotoneBroadcastProgram::OnStart(NodeContext& ctx) {
  Message everything = ctx.state().AllFacts();
  if (!everything.empty()) ctx.Broadcast(std::move(everything));
  EvaluateAndOutput(ctx);
}

void MonotoneBroadcastProgram::OnReceive(NodeContext& ctx,
                                         const Message& message) {
  bool changed = false;
  for (const Fact& f : message) {
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      changed = true;
    }
  }
  if (changed) EvaluateAndOutput(ctx);
}

void MonotoneBroadcastProgram::EvaluateAndOutput(NodeContext& ctx) {
  for (const Fact& f : query_(ctx.state()).AllFacts()) {
    ctx.Output(f);
  }
}

// ---------------------------------------------------------------------------
// DistinctCompleteProgram
// ---------------------------------------------------------------------------

void DistinctCompleteProgram::OnStart(NodeContext& ctx) {
  Message everything = ctx.state().AllFacts();
  if (!everything.empty()) ctx.Broadcast(std::move(everything));
  TryOutput(ctx);
}

void DistinctCompleteProgram::OnReceive(NodeContext& ctx,
                                        const Message& message) {
  bool changed = false;
  for (const Fact& f : message) {
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      changed = true;
    }
  }
  if (changed) TryOutput(ctx);
}

void DistinctCompleteProgram::TryOutput(NodeContext& ctx) {
  const DistributionPolicy* policy = ctx.policy();
  LAMP_CHECK_MSG(policy != nullptr,
                 "DistinctCompleteProgram needs a policy-aware network");

  // C = adom(state). C is distinct-complete for this node when every
  // possible fact over C is in the state (it arrived / was local) or is
  // one we are responsible for (then its absence means it is not in I).
  const std::vector<Value> c = ctx.state().ActiveDomain();

  for (RelationId rel : relations_) {
    const std::size_t arity = schema_.ArityOf(rel);
    if (c.empty() && arity > 0) continue;
    const bool complete = ForEachTuple(
        arity, c.size(), [&](const std::vector<std::size_t>& idx) {
          std::vector<Value> args;
          args.reserve(arity);
          for (std::size_t i = 0; i < arity; ++i) args.push_back(c[idx[i]]);
          const Fact f(rel, std::move(args));
          return ctx.state().Contains(f) ||
                 policy->IsResponsible(ctx.self(), f);
        });
    if (!complete) return;  // Wait for more data.
  }
  // state|C == I|C (Lemma 5.7 applies): safe to output Q(state).
  for (const Fact& f : query_(ctx.state()).AllFacts()) {
    ctx.Output(f);
  }
}

// ---------------------------------------------------------------------------
// ComponentProgram
// ---------------------------------------------------------------------------

ComponentProgram::ComponentProgram(NetQueryFunction query, Schema& schema)
    : query_(std::move(query)),
      marker_(schema.AddRelation("__complete", 1)) {}

void ComponentProgram::OnStart(NodeContext& ctx) {
  const DistributionPolicy* policy = ctx.policy();
  LAMP_CHECK_MSG(policy != nullptr,
                 "ComponentProgram needs a policy-aware network");

  // For every value we own (we are responsible for *all* facts containing
  // it — the domain-guided guarantee), broadcast those facts together with
  // the completeness marker as one atomic message.
  const std::vector<Value> adom = ctx.state().ActiveDomain();
  for (Value a : adom) {
    // Ownership test: responsible for a witness fact containing only `a`.
    // Domain-guided policies decide by values, so any fact containing `a`
    // works; use the marker relation itself as the probe.
    if (!policy->IsResponsible(ctx.self(), Fact(marker_, {a.v}))) continue;
    Message batch;
    for (const Fact& f : ctx.state().Touching({a}).AllFacts()) {
      if (f.relation != marker_) batch.push_back(f);
    }
    batch.push_back(Fact(marker_, {a.v}));
    ctx.InsertState(Fact(marker_, {a.v}));
    ctx.Broadcast(std::move(batch));
  }
  TryOutput(ctx);
}

void ComponentProgram::OnReceive(NodeContext& ctx, const Message& message) {
  bool changed = false;
  for (const Fact& f : message) {
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      changed = true;
    }
  }
  if (changed) TryOutput(ctx);
}

void ComponentProgram::TryOutput(NodeContext& ctx) {
  // Split state into real facts and completeness markers.
  Instance real;
  std::set<Value> complete;
  for (const Fact& f : ctx.state().AllFacts()) {
    if (f.relation == marker_) {
      complete.insert(f.args[0]);
    } else {
      real.Insert(f);
    }
  }

  // Union of the components whose values are all marked complete; that
  // union is a disjoint-complete subset of I (a union of I-components).
  Instance union_of_complete;
  for (const Instance& component : real.Components()) {
    bool all_complete = true;
    for (Value a : component.ActiveDomain()) {
      if (complete.count(a) == 0) {
        all_complete = false;
        break;
      }
    }
    if (all_complete) union_of_complete.InsertAll(component);
  }
  for (const Fact& f : query_(union_of_complete).AllFacts()) {
    ctx.Output(f);
  }
}

// ---------------------------------------------------------------------------
// CoordinatedBarrierProgram
// ---------------------------------------------------------------------------

CoordinatedBarrierProgram::CoordinatedBarrierProgram(NetQueryFunction query,
                                                     Schema& schema)
    : query_(std::move(query)),
      done_(schema.AddRelation("__done", 1)) {}

void CoordinatedBarrierProgram::OnStart(NodeContext& ctx) {
  // One atomic message: all local data plus our "done" marker. Atomicity
  // makes the marker an honest promise ("you now have everything I had").
  Message batch = ctx.state().AllFacts();
  batch.push_back(Fact(done_, {static_cast<std::int64_t>(ctx.self())}));
  ctx.InsertState(Fact(done_, {static_cast<std::int64_t>(ctx.self())}));
  ctx.Broadcast(std::move(batch));
  TryOutput(ctx);
}

void CoordinatedBarrierProgram::OnReceive(NodeContext& ctx,
                                          const Message& message) {
  bool changed = false;
  for (const Fact& f : message) {
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      changed = true;
    }
  }
  if (changed) TryOutput(ctx);
}

void CoordinatedBarrierProgram::TryOutput(NodeContext& ctx) {
  // The barrier: markers from all nodes (the coordination step — this is
  // the call that makes the program non-oblivious).
  if (ctx.state().FactsOf(done_).size() < ctx.NetworkSize()) return;
  Instance data;
  for (const Fact& f : ctx.state().AllFacts()) {
    if (f.relation != done_) data.Insert(f);
  }
  for (const Fact& f : query_(data).AllFacts()) {
    ctx.Output(f);
  }
}

// ---------------------------------------------------------------------------
// FragileCountingBarrierProgram
// ---------------------------------------------------------------------------

FragileCountingBarrierProgram::FragileCountingBarrierProgram(
    NetQueryFunction query, Schema& schema)
    : query_(std::move(query)),
      done_(schema.AddRelation("__done", 1)),
      tick_(schema.AddRelation("__tick", 1)) {}

void FragileCountingBarrierProgram::OnStart(NodeContext& ctx) {
  Message batch = ctx.state().AllFacts();
  batch.push_back(Fact(done_, {static_cast<std::int64_t>(ctx.self())}));
  ctx.InsertState(Fact(done_, {static_cast<std::int64_t>(ctx.self())}));
  // Tick 0 stands for this node's own barrier message.
  ctx.InsertState(Fact(tick_, {0}));
  ctx.Broadcast(std::move(batch));
  TryOutput(ctx);
}

void FragileCountingBarrierProgram::OnReceive(NodeContext& ctx,
                                              const Message& message) {
  bool barrier_message = false;
  for (const Fact& f : message) {
    if (f.relation == done_) barrier_message = true;
    ctx.InsertState(f);
  }
  if (barrier_message) {
    // The bug: count *messages*, not distinct markers. Each fresh tick
    // index makes a new fact, so duplicates advance the counter.
    const std::int64_t count =
        static_cast<std::int64_t>(ctx.state().FactsOf(tick_).size());
    ctx.InsertState(Fact(tick_, {count}));
  }
  TryOutput(ctx);
}

void FragileCountingBarrierProgram::TryOutput(NodeContext& ctx) {
  if (ctx.state().FactsOf(tick_).size() < ctx.NetworkSize()) return;
  Instance data;
  for (const Fact& f : ctx.state().AllFacts()) {
    if (f.relation != done_ && f.relation != tick_) data.Insert(f);
  }
  for (const Fact& f : query_(data).AllFacts()) {
    ctx.Output(f);
  }
}

// ---------------------------------------------------------------------------
// PolicyAwareNegationProgram
// ---------------------------------------------------------------------------

void PolicyAwareNegationProgram::OnStart(NodeContext& ctx) {
  Message everything = ctx.state().AllFacts();
  if (!everything.empty()) ctx.Broadcast(std::move(everything));
  TryOutput(ctx);
}

void PolicyAwareNegationProgram::OnReceive(NodeContext& ctx,
                                           const Message& message) {
  bool changed = false;
  for (const Fact& f : message) {
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      changed = true;
    }
  }
  if (changed) TryOutput(ctx);
}

void PolicyAwareNegationProgram::TryOutput(NodeContext& ctx) {
  const DistributionPolicy* policy = ctx.policy();
  LAMP_CHECK_MSG(policy != nullptr,
                 "PolicyAwareNegationProgram needs a policy-aware network");

  // Match the whole query against the state: the matcher already verifies
  // that the negated facts are absent from the state (a fact in the state
  // is certainly in I); the responsibility test below upgrades absence
  // from "unknown" to "conclusively not in I".
  ForEachSatisfyingValuation(
      query_, ctx.state(), [this, &ctx, policy](const Valuation& v) {
        // The matcher guarantees the negated facts are absent from the
        // state; absence is conclusive only where we are responsible.
        for (const Atom& atom : query_.negated()) {
          const Fact f = v.ApplyToAtom(atom);
          if (!policy->IsResponsible(ctx.self(), f)) return true;
        }
        ctx.Output(v.ApplyToAtom(query_.head()));
        return true;
      });
}

// ---------------------------------------------------------------------------
// EconomicalBroadcastProgram
// ---------------------------------------------------------------------------

bool EconomicalBroadcastProgram::IsRelevant(const Fact& fact) const {
  for (const Atom& atom : query_.body()) {
    if (atom.relation != fact.relation ||
        atom.terms.size() != fact.args.size()) {
      continue;
    }
    bool match = true;
    std::vector<bool> bound(query_.NumVars(), false);
    std::vector<Value> binding(query_.NumVars());
    for (std::size_t i = 0; i < atom.terms.size() && match; ++i) {
      const Term& t = atom.terms[i];
      if (t.IsConst()) {
        match = t.constant == fact.args[i];
      } else if (bound[t.var]) {
        match = binding[t.var] == fact.args[i];
      } else {
        bound[t.var] = true;
        binding[t.var] = fact.args[i];
      }
    }
    if (match) return true;
  }
  return false;
}

void EconomicalBroadcastProgram::OnStart(NodeContext& ctx) {
  Message relevant;
  for (const Fact& f : ctx.state().AllFacts()) {
    if (IsRelevant(f)) relevant.push_back(f);
  }
  if (!relevant.empty()) ctx.Broadcast(std::move(relevant));
  EvaluateAndOutput(ctx);
}

void EconomicalBroadcastProgram::OnReceive(NodeContext& ctx,
                                           const Message& message) {
  bool changed = false;
  for (const Fact& f : message) {
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      changed = true;
    }
  }
  if (changed) EvaluateAndOutput(ctx);
}

void EconomicalBroadcastProgram::EvaluateAndOutput(NodeContext& ctx) {
  for (const Fact& f : Evaluate(query_, ctx.state()).AllFacts()) {
    ctx.Output(f);
  }
}

}  // namespace lamp
