#include "net/consistency.h"

#include <algorithm>
#include <limits>

namespace lamp {

ConsistencySweep CheckEventualConsistency(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, std::size_t num_seeds,
    const DistributionPolicy* policy, bool aware) {
  ConsistencySweep sweep;
  sweep.min_facts_transferred = std::numeric_limits<std::size_t>::max();

  for (const std::vector<Instance>& locals : distributions) {
    for (std::uint64_t seed = 0; seed < num_seeds; ++seed) {
      TransducerNetwork network(locals, program, policy, aware);
      const NetworkRunResult result = network.Run(seed);
      ++sweep.runs;
      if (!(result.output == expected)) sweep.all_runs_correct = false;
      sweep.min_facts_transferred =
          std::min(sweep.min_facts_transferred, result.facts_transferred());
      sweep.max_facts_transferred =
          std::max(sweep.max_facts_transferred, result.facts_transferred());
      sweep.total_facts_transferred += result.facts_transferred();
    }
  }
  if (sweep.runs == 0) sweep.min_facts_transferred = 0;
  return sweep;
}

bool ComputesWithoutCommunication(TransducerProgram& program,
                                  const std::vector<Instance>& ideal_locals,
                                  const Instance& expected,
                                  const DistributionPolicy* policy,
                                  bool aware) {
  TransducerNetwork network(ideal_locals, program, policy, aware);
  return network.RunWithoutDelivery().output == expected;
}

}  // namespace lamp
