#include "net/consistency.h"

#include <algorithm>
#include <limits>

namespace lamp {

namespace {

std::string RenderFact(const Fact& fact, const Schema* schema) {
  std::string out;
  out.reserve(32);
  if (schema != nullptr && fact.relation < schema->NumRelations()) {
    out.append(schema->NameOf(fact.relation));
  } else {
    out.push_back('R');
    out.append(std::to_string(fact.relation));
  }
  out.push_back('(');
  for (std::size_t i = 0; i < fact.args.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(std::to_string(fact.args[i].v));
  }
  out.push_back(')');
  return out;
}

}  // namespace

InstanceDiff DiffInstances(const Instance& actual, const Instance& expected,
                           const Schema* schema, std::size_t max_listed) {
  InstanceDiff diff;
  std::size_t listed_unexpected = 0;
  for (const Fact& f : actual.AllFacts()) {
    if (expected.Contains(f)) continue;
    ++diff.unexpected;
    if (listed_unexpected < max_listed) {
      if (!diff.summary.empty()) diff.summary += " ";
      diff.summary += "+";
      diff.summary += RenderFact(f, schema);
      ++listed_unexpected;
    }
  }
  std::size_t listed_missing = 0;
  for (const Fact& f : expected.AllFacts()) {
    if (actual.Contains(f)) continue;
    ++diff.missing;
    if (listed_missing < max_listed) {
      if (!diff.summary.empty()) diff.summary += " ";
      diff.summary += "-";
      diff.summary += RenderFact(f, schema);
      ++listed_missing;
    }
  }
  const std::size_t elided =
      (diff.unexpected - listed_unexpected) + (diff.missing - listed_missing);
  if (elided > 0) {
    diff.summary += " (+";
    diff.summary += std::to_string(elided);
    diff.summary += " more)";
  }
  return diff;
}

ConsistencySweep CheckEventualConsistency(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, std::size_t num_seeds,
    const DistributionPolicy* policy, bool aware, const Schema* schema) {
  ConsistencySweep sweep;
  sweep.min_facts_transferred = std::numeric_limits<std::size_t>::max();

  for (std::size_t d = 0; d < distributions.size(); ++d) {
    const std::vector<Instance>& locals = distributions[d];
    for (std::uint64_t seed = 0; seed < num_seeds; ++seed) {
      TransducerNetwork network(locals, program, policy, aware);
      const NetworkRunResult result = network.Run(seed);
      ++sweep.runs;
      if (!(result.output == expected)) {
        sweep.all_runs_correct = false;
        if (!sweep.first_failure.has_value()) {
          SweepFailure failure;
          failure.seed = seed;
          failure.distribution_index = d;
          failure.diff = DiffInstances(result.output, expected, schema);
          sweep.first_failure = std::move(failure);
        }
      }
      sweep.min_facts_transferred =
          std::min(sweep.min_facts_transferred, result.facts_transferred());
      sweep.max_facts_transferred =
          std::max(sweep.max_facts_transferred, result.facts_transferred());
      sweep.total_facts_transferred += result.facts_transferred();
    }
  }
  if (sweep.runs == 0) sweep.min_facts_transferred = 0;
  return sweep;
}

bool ComputesWithoutCommunication(TransducerProgram& program,
                                  const std::vector<Instance>& ideal_locals,
                                  const Instance& expected,
                                  const DistributionPolicy* policy,
                                  bool aware) {
  TransducerNetwork network(ideal_locals, program, policy, aware);
  return network.RunWithoutDelivery().output == expected;
}

}  // namespace lamp
