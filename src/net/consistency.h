#ifndef LAMP_NET_CONSISTENCY_H_
#define LAMP_NET_CONSISTENCY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/network.h"

/// \file
/// Eventual-consistency and coordination-freeness probes (Section 5.1).
///
/// A program computes a query Q when *every* run outputs Q(I), for every
/// network size and horizontal distribution. That is a universally
/// quantified statement; the checker samples it: many scheduler seeds x
/// many distributions, each run compared against the expected output.
/// The coordination-freeness probe implements the definition directly:
/// there must be a distribution (the "ideal" one) on which the program
/// computes Q without reading any message.

namespace lamp {

/// Symmetric difference of two instances, summarised for humans: how many
/// facts are missing/unexpected and a capped listing of examples.
struct InstanceDiff {
  std::size_t missing = 0;     // In expected, absent from actual.
  std::size_t unexpected = 0;  // In actual, absent from expected.
  std::string summary;         // "+R3(1,2) -R3(4,5) ..." (capped).

  bool Empty() const { return missing == 0 && unexpected == 0; }
};

/// Diffs \p actual against \p expected. '+' marks unexpected facts, '-'
/// missing ones; at most \p max_listed of each are rendered. \p schema
/// (optional) supplies relation names; without it relations print as
/// "R<id>".
InstanceDiff DiffInstances(const Instance& actual, const Instance& expected,
                           const Schema* schema = nullptr,
                           std::size_t max_listed = 4);

/// Context of the first failing run of a sweep, so a red sweep is
/// reproducible and debuggable instead of a bare boolean.
struct SweepFailure {
  std::uint64_t seed = 0;              // Scheduler seed of the failing run.
  std::size_t distribution_index = 0;  // Index into the sweep's input.
  InstanceDiff diff;                   // Actual vs expected output.
};

/// Aggregate of a consistency sweep.
struct ConsistencySweep {
  bool all_runs_correct = true;
  std::size_t runs = 0;
  std::size_t min_facts_transferred = 0;
  std::size_t max_facts_transferred = 0;
  std::size_t total_facts_transferred = 0;
  /// Set on the first incorrect run (subsequent failures are counted in
  /// all_runs_correct only).
  std::optional<SweepFailure> first_failure;
};

/// Runs \p program on every given distribution with every seed in
/// [0, num_seeds); each run's output is compared to \p expected.
/// \p schema, when given, is only used to render relation names in the
/// first-failure diff.
ConsistencySweep CheckEventualConsistency(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, std::size_t num_seeds,
    const DistributionPolicy* policy = nullptr, bool aware = true,
    const Schema* schema = nullptr);

/// The Section 5.1 probe: true when the heartbeat-only run on
/// \p ideal_locals already outputs \p expected (no message ever read).
bool ComputesWithoutCommunication(TransducerProgram& program,
                                  const std::vector<Instance>& ideal_locals,
                                  const Instance& expected,
                                  const DistributionPolicy* policy = nullptr,
                                  bool aware = true);

}  // namespace lamp

#endif  // LAMP_NET_CONSISTENCY_H_
