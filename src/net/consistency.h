#ifndef LAMP_NET_CONSISTENCY_H_
#define LAMP_NET_CONSISTENCY_H_

#include <cstdint>
#include <vector>

#include "net/network.h"

/// \file
/// Eventual-consistency and coordination-freeness probes (Section 5.1).
///
/// A program computes a query Q when *every* run outputs Q(I), for every
/// network size and horizontal distribution. That is a universally
/// quantified statement; the checker samples it: many scheduler seeds x
/// many distributions, each run compared against the expected output.
/// The coordination-freeness probe implements the definition directly:
/// there must be a distribution (the "ideal" one) on which the program
/// computes Q without reading any message.

namespace lamp {

/// Aggregate of a consistency sweep.
struct ConsistencySweep {
  bool all_runs_correct = true;
  std::size_t runs = 0;
  std::size_t min_facts_transferred = 0;
  std::size_t max_facts_transferred = 0;
  std::size_t total_facts_transferred = 0;
};

/// Runs \p program on every given distribution with every seed in
/// [0, num_seeds); each run's output is compared to \p expected.
ConsistencySweep CheckEventualConsistency(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, std::size_t num_seeds,
    const DistributionPolicy* policy = nullptr, bool aware = true);

/// The Section 5.1 probe: true when the heartbeat-only run on
/// \p ideal_locals already outputs \p expected (no message ever read).
bool ComputesWithoutCommunication(TransducerProgram& program,
                                  const std::vector<Instance>& ideal_locals,
                                  const Instance& expected,
                                  const DistributionPolicy* policy = nullptr,
                                  bool aware = true);

}  // namespace lamp

#endif  // LAMP_NET_CONSISTENCY_H_
