#ifndef LAMP_NET_DATALOG_PROGRAM_H_
#define LAMP_NET_DATALOG_PROGRAM_H_

#include <set>

#include "datalog/program.h"
#include "net/transducer.h"

/// \file
/// Declarative networking (the Section 5 motivation [13, 41]): running a
/// Datalog program itself as the node program of a transducer network.
///
/// Unlike MonotoneBroadcastProgram — which ships raw EDB facts and
/// re-evaluates the query from scratch — DistributedDatalogProgram
/// pipelines *derived* facts: each node runs semi-naive evaluation over
/// everything it knows and broadcasts only the facts that are new to it
/// (EDB and IDB alike). For monotone (semi-positive-free) programs this
/// is eventually consistent on every schedule, and IDB pipelining lets
/// nodes start from each other's conclusions instead of re-deriving them.

namespace lamp {

/// Runs \p program distributed. \p schema is the shared schema (extended
/// with the engine's delta relations).
///
/// Negation policy (checked at construction via sa/depgraph.h): an
/// unstratifiable program is rejected with its negation-cycle witness —
/// there is no stratified semantics to pipeline. A program with
/// *stratified* negation is accepted with a warning to stderr: the
/// eventual-consistency guarantee of IDB pipelining only covers the
/// monotone (negation-free) part.
class DistributedDatalogProgram : public TransducerProgram {
 public:
  DistributedDatalogProgram(Schema& schema, const DatalogProgram& program);

  void OnStart(NodeContext& ctx) override;
  void OnReceive(NodeContext& ctx, const Message& message) override;

 private:
  /// Derives everything derivable from the state, outputs IDB facts, and
  /// broadcasts facts not previously known to this node.
  void DeriveAndShare(NodeContext& ctx);

  Schema& schema_;
  const DatalogProgram& program_;
  std::set<RelationId> idb_;
};

}  // namespace lamp

#endif  // LAMP_NET_DATALOG_PROGRAM_H_
