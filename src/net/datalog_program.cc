#include "net/datalog_program.h"

#include "common/check.h"
#include "datalog/eval.h"

namespace lamp {

DistributedDatalogProgram::DistributedDatalogProgram(
    Schema& schema, const DatalogProgram& program)
    : schema_(schema), program_(program), idb_(program.IdbRelations()) {
  for (const ConjunctiveQuery& rule : program.rules()) {
    LAMP_CHECK_MSG(rule.negated().empty(),
                   "distributed pipelining requires a negation-free "
                   "(monotone) program");
  }
}

void DistributedDatalogProgram::OnStart(NodeContext& ctx) {
  // Share the local base facts, then derive and share conclusions.
  Message base = ctx.state().AllFacts();
  if (!base.empty()) ctx.Broadcast(std::move(base));
  DeriveAndShare(ctx);
}

void DistributedDatalogProgram::OnReceive(NodeContext& ctx,
                                          const Message& message) {
  bool changed = false;
  for (const Fact& f : message) {
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      changed = true;
    }
  }
  if (changed) DeriveAndShare(ctx);
}

void DistributedDatalogProgram::DeriveAndShare(NodeContext& ctx) {
  // The state is the node's knowledge: EDB shards plus facts (base or
  // derived) received from others. Monotonicity makes deriving from this
  // mixture sound.
  const Instance everything =
      EvaluateProgram(schema_, program_, ctx.state());
  Message fresh;
  for (const Fact& f : everything.AllFacts()) {
    const bool is_idb = idb_.count(f.relation) > 0;
    if (is_idb) ctx.Output(f);
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      fresh.push_back(f);
    }
  }
  if (!fresh.empty()) ctx.Broadcast(std::move(fresh));
}

}  // namespace lamp
