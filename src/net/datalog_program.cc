#include "net/datalog_program.h"

#include <cstdio>
#include <optional>
#include <string>

#include "common/check.h"
#include "datalog/eval.h"
#include "sa/depgraph.h"

namespace lamp {

DistributedDatalogProgram::DistributedDatalogProgram(
    Schema& schema, const DatalogProgram& program)
    : schema_(schema), program_(program), idb_(program.IdbRelations()) {
  if (!program.HasNegation()) return;
  // Negation is only meaningful under a stratification; without one the
  // evaluator has no semantics to pipeline at all, so refuse outright —
  // with the concrete cycle, courtesy of the static analyzer.
  const sa::DependencyGraph graph(program);
  const std::optional<sa::NegationCycle> cycle = graph.FindNegationCycle();
  if (cycle.has_value()) {
    const std::string message =
        "distributed pipelining requires a stratifiable program: " +
        sa::DescribeNegationCycle(schema, *cycle);
    LAMP_CHECK_MSG(false, message.c_str());
  }
  // Stratified negation is accepted but flagged: pipelining re-derives
  // from whatever subset of the instance has arrived, which is only
  // guaranteed eventually consistent for monotone (negation-free)
  // programs — a node may transiently output facts a later message
  // retracts the support of (CALM; see src/fault's confluence checker).
  std::fprintf(stderr,
               "[lamp.net] warning: program uses stratified negation; "
               "distributed pipelining is only eventually consistent for "
               "its monotone (negation-free) part\n");
}

void DistributedDatalogProgram::OnStart(NodeContext& ctx) {
  // Share the local base facts, then derive and share conclusions.
  Message base = ctx.state().AllFacts();
  if (!base.empty()) ctx.Broadcast(std::move(base));
  DeriveAndShare(ctx);
}

void DistributedDatalogProgram::OnReceive(NodeContext& ctx,
                                          const Message& message) {
  bool changed = false;
  for (const Fact& f : message) {
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      changed = true;
    }
  }
  if (changed) DeriveAndShare(ctx);
}

void DistributedDatalogProgram::DeriveAndShare(NodeContext& ctx) {
  // The state is the node's knowledge: EDB shards plus facts (base or
  // derived) received from others. Monotonicity makes deriving from this
  // mixture sound.
  const Instance everything =
      EvaluateProgram(schema_, program_, ctx.state());
  Message fresh;
  for (const Fact& f : everything.AllFacts()) {
    const bool is_idb = idb_.count(f.relation) > 0;
    if (is_idb) ctx.Output(f);
    if (!ctx.state().Contains(f)) {
      ctx.InsertState(f);
      fresh.push_back(f);
    }
  }
  if (!fresh.empty()) ctx.Broadcast(std::move(fresh));
}

}  // namespace lamp
