#include "net/scheduler.h"

namespace lamp {

std::vector<NodeId> RandomScheduler::StartOrder(std::size_t num_nodes) {
  std::vector<NodeId> order(num_nodes);
  for (NodeId i = 0; i < num_nodes; ++i) order[i] = i;
  rng_.Shuffle(order);
  return order;
}

SchedulerAction RandomScheduler::Next(const ChannelView& view) {
  // Exactly the historical Rng call sequence: one Uniform over the ready
  // nodes, one Uniform over the chosen node's queue. Byte-identical runs
  // per seed depend on this.
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < view.queued_from.size(); ++i) {
    if (!view.queued_from[i].empty()) ready.push_back(i);
  }
  if (ready.empty()) return {};
  const NodeId node = ready[rng_.Uniform(ready.size())];
  const std::size_t pick = rng_.Uniform(view.queued_from[node].size());
  return SchedulerAction::Deliver(node, pick);
}

}  // namespace lamp
