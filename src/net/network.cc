#include "net/network.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"
#include "transport/transport.h"

namespace lamp {

namespace {

/// The NodeContext implementation used by the runner. Broadcasts are
/// collected and dispatched by the runner after the transition returns.
class RunnerContext : public NodeContext {
 public:
  RunnerContext(NodeId self, std::size_t network_size, Instance& state,
                Instance& output, const DistributionPolicy* policy,
                bool aware)
      : self_(self),
        network_size_(network_size),
        state_(state),
        output_(output),
        policy_(policy),
        aware_(aware) {}

  NodeId self() const override { return self_; }

  std::size_t NetworkSize() const override {
    LAMP_CHECK_MSG(aware_,
                   "oblivious (A_i) program queried the All relation");
    return network_size_;
  }

  const Instance& state() const override { return state_; }
  void InsertState(const Fact& fact) override { state_.Insert(fact); }
  void Output(const Fact& fact) override { output_.Insert(fact); }
  void Broadcast(Message message) override {
    outgoing_.push_back(std::move(message));
  }
  const DistributionPolicy* policy() const override { return policy_; }

  std::vector<Message>& outgoing() { return outgoing_; }

 private:
  NodeId self_;
  std::size_t network_size_;
  Instance& state_;
  Instance& output_;
  const DistributionPolicy* policy_;
  bool aware_;
  std::vector<Message> outgoing_;
};

}  // namespace

TransducerNetwork::TransducerNetwork(std::vector<Instance> locals,
                                     TransducerProgram& program,
                                     const DistributionPolicy* policy,
                                     bool aware)
    : locals_(std::move(locals)),
      program_(program),
      policy_(policy),
      aware_(aware) {
  LAMP_CHECK(!locals_.empty());
}

NetworkRunResult TransducerNetwork::Run(std::uint64_t seed) {
  RandomScheduler scheduler(seed);
  return RunWith(scheduler);
}

NetworkRunResult TransducerNetwork::RunWith(Scheduler& scheduler) {
  const std::size_t n = locals_.size();

  // One queued message. The sender is tracked so schedulers can express
  // channel-level faults (partitions, starvation) and so a volatile
  // restart can requeue exactly what the node had consumed. Each message
  // also carries its Lamport causal depth (heartbeat broadcasts are depth
  // 1; a message sent while processing a delivery is one deeper than the
  // deepest message its sender had consumed) and the transition index of
  // that deepest consumed message (+1; 0 = heartbeat origin) — the parent
  // pointer obs/audit/causal.h walks to reconstruct critical paths.
  struct InFlight {
    NodeId from;
    Message payload;
    std::uint64_t depth = 1;
    std::uint32_t parent = 0;
  };

  std::vector<Instance> states = locals_;
  std::vector<Instance> outputs(n);
  std::vector<std::vector<InFlight>> queue(n);
  std::vector<std::vector<NodeId>> queued_from(n);
  std::vector<bool> up(n, true);
  std::vector<bool> down_durably(n, false);
  // Messages consumed per node, kept only when the scheduler can issue a
  // volatile restart (fault-free runs pay nothing).
  const bool keep_log = scheduler.WantsRedeliveryLog();
  std::vector<std::vector<InFlight>> consumed(n);

  // Backend selection (transport::ActiveKind): with a socket backend every
  // broadcast copy is framed (lamp.wire.v1 kMessage), shipped through the
  // transport and decoded back into the receiver's channel *at dispatch
  // time*. The channel state at every scheduler decision point is
  // therefore identical to the in-process run, which is what makes the
  // seeded Scheduler a pure delivery-order policy the transport honors:
  // the wire carries the bytes, the scheduler still picks the order (and
  // the faults), and digests cannot move. In-process runs account the
  // same wire bytes in closed form, so net.wire_bytes is backend-
  // invariant too.
  std::unique_ptr<transport::Transport> wire;
  if (transport::ActiveKind() != transport::TransportKind::kInProcess &&
      n > 1) {
    wire = transport::MakeLoopbackTransport(transport::ActiveKind(), n);
  }
  std::uint64_t wire_seq = 0;

  NetworkRunResult result;
  obs::Counter& messages_sent =
      result.metrics.GetCounter(obs::kNetMessagesSent);
  obs::Counter& wire_bytes = result.metrics.GetCounter(obs::kNetWireBytes);
  obs::Counter& facts_transferred =
      result.metrics.GetCounter(obs::kNetFactsTransferred);
  obs::Counter& transitions = result.metrics.GetCounter(obs::kNetTransitions);
  obs::Counter& broadcasts = result.metrics.GetCounter(obs::kNetBroadcasts);
  obs::Histogram& message_size =
      result.metrics.GetHistogram(obs::kNetMessageSize);
  obs::Histogram& causal_depth =
      result.metrics.GetHistogram(obs::kNetCausalDepth);

  // Lamport causal tracking: clock[v] = deepest message node v has
  // consumed (0 before any delivery); dominant[v] = transition index + 1
  // of the delivery that set it. Crash/restart leaves both untouched —
  // even a volatile restart only resets *state*, not what the channel
  // history already forced the node to have seen.
  std::vector<std::uint64_t> clock(n, 0);
  std::vector<std::uint32_t> dominant(n, 0);
  std::uint64_t max_depth = 0;
  bool has_output = false;
  std::uint64_t first_output_depth = 0;

  auto dispatch = [&](NodeId from, std::vector<Message>& outgoing) {
    for (Message& msg : outgoing) {
      facts_transferred.Add(msg.size() * (n - 1));
      messages_sent.Add(n - 1);
      broadcasts.Increment();
      message_size.Observe(static_cast<double>(msg.size()));
      obs::Emit(obs::EventKind::kNetBroadcast,
                static_cast<std::uint32_t>(from), 0, msg.size());
      for (NodeId to = 0; to < n; ++to) {
        if (to == from) continue;
        const std::uint64_t depth = clock[from] + 1;
        const std::uint32_t parent = dominant[from];
        const std::uint64_t seq = wire_seq++;
        if (wire != nullptr) {
          transport::WireFrame frame;
          frame.type = transport::FrameType::kMessage;
          frame.from = from;
          frame.to = to;
          frame.payload =
              transport::EncodeMessagePayload(seq, depth, parent, msg);
          wire_bytes.Add(transport::FrameWireSize(frame));
          wire->Send(std::move(frame));
          transport::WireFrame got = wire->Recv(to, from);
          LAMP_CHECK(got.type == transport::FrameType::kMessage &&
                     got.from == from);
          auto decoded = transport::DecodeMessagePayload(got.payload);
          LAMP_CHECK_MSG(decoded.has_value() && decoded->seq == seq,
                         "net: malformed message on the wire");
          queue[to].push_back({from, std::move(decoded->facts),
                               decoded->depth, decoded->parent});
        } else {
          std::size_t payload = transport::VarintSize(seq) +
                                transport::VarintSize(depth) +
                                transport::VarintSize(parent) +
                                transport::VarintSize(msg.size());
          for (const Fact& f : msg) payload += transport::EncodedFactSize(f);
          wire_bytes.Add(4 + 2 + transport::VarintSize(from) +
                         transport::VarintSize(to) + payload);
          queue[to].push_back({from, msg, depth, parent});
        }
        queued_from[to].push_back(from);
      }
    }
    outgoing.clear();
  };

  // Called after a transition of \p node that may have produced output;
  // records the causal depth of the first output and emits kNetOutput
  // (b = transition + 1, 0 for heartbeats) whenever output grew.
  auto note_output = [&](NodeId node, std::size_t before,
                         std::uint32_t transition_plus_1,
                         std::uint64_t depth) {
    if (outputs[node].Size() == before) return;
    if (!has_output) {
      has_output = true;
      first_output_depth = depth;
    }
    obs::Emit(obs::EventKind::kNetOutput, static_cast<std::uint32_t>(node),
              transition_plus_1, depth);
  };

  auto deliver = [&](NodeId node, const InFlight& msg) {
    const auto t = static_cast<std::uint32_t>(transitions.value());
    obs::Emit(obs::EventKind::kNetDeliver, static_cast<std::uint32_t>(node),
              t, msg.payload.size());
    obs::Emit(obs::EventKind::kNetCausalDeliver,
              static_cast<std::uint32_t>(node), t,
              (msg.depth << 32) | msg.parent);
    causal_depth.Observe(static_cast<double>(msg.depth));
    if (msg.depth > max_depth) max_depth = msg.depth;
    if (msg.depth > clock[node]) {
      clock[node] = msg.depth;
      dominant[node] = t + 1;
    }
    const std::size_t out_before = outputs[node].Size();
    RunnerContext ctx(node, n, states[node], outputs[node], policy_, aware_);
    program_.OnReceive(ctx, msg.payload);
    note_output(node, out_before, t + 1, msg.depth);
    dispatch(node, ctx.outgoing());
    transitions.Increment();
  };

  auto heartbeat = [&](NodeId node) {
    obs::Emit(obs::EventKind::kNetStart, static_cast<std::uint32_t>(node));
    const std::size_t out_before = outputs[node].Size();
    RunnerContext ctx(node, n, states[node], outputs[node], policy_, aware_);
    program_.OnStart(ctx);
    note_output(node, out_before, 0, clock[node]);
    dispatch(node, ctx.outgoing());
  };

  // Heartbeat transitions, in scheduler order (order must not matter; the
  // consistency checker sweeps seeds to probe that).
  for (NodeId node : scheduler.StartOrder(n)) {
    LAMP_CHECK(node < n);
    heartbeat(node);
  }

  // Decision loop: the scheduler picks one action per step until it
  // declares quiescence.
  std::size_t step = 0;
  while (true) {
    const ChannelView view{queued_from, up, step};
    const SchedulerAction action = scheduler.Next(view);
    if (action.kind == SchedulerAction::Kind::kNone) {
      bool quiescent = true;
      for (NodeId i = 0; i < n; ++i) {
        if (!queue[i].empty() || !up[i]) quiescent = false;
      }
      LAMP_CHECK_MSG(quiescent,
                     "scheduler returned kNone on a non-quiescent network");
      break;
    }
    const NodeId node = action.node;
    LAMP_CHECK(node < n);
    switch (action.kind) {
      case SchedulerAction::Kind::kDeliver: {
        LAMP_CHECK_MSG(up[node], "delivery to a crashed node");
        LAMP_CHECK(action.index < queue[node].size());
        InFlight msg = std::move(queue[node][action.index]);
        queue[node].erase(queue[node].begin() +
                          static_cast<std::ptrdiff_t>(action.index));
        queued_from[node].erase(queued_from[node].begin() +
                                static_cast<std::ptrdiff_t>(action.index));
        deliver(node, msg);
        if (keep_log) consumed[node].push_back(std::move(msg));
        break;
      }
      case SchedulerAction::Kind::kDrop: {
        LAMP_CHECK(action.index < queue[node].size());
        result.metrics.GetCounter(obs::kNetFaultDrops).Increment();
        obs::Emit(obs::EventKind::kNetDrop,
                  static_cast<std::uint32_t>(node), 0,
                  queue[node][action.index].payload.size());
        break;  // The queued copy stays: the sender retransmits.
      }
      case SchedulerAction::Kind::kDuplicate: {
        LAMP_CHECK_MSG(up[node], "delivery to a crashed node");
        LAMP_CHECK(action.index < queue[node].size());
        const InFlight msg = queue[node][action.index];  // Copy stays queued.
        result.metrics.GetCounter(obs::kNetFaultDuplicates).Increment();
        obs::Emit(obs::EventKind::kNetDuplicate,
                  static_cast<std::uint32_t>(node), 0, msg.payload.size());
        deliver(node, msg);
        if (keep_log) consumed[node].push_back(msg);
        break;
      }
      case SchedulerAction::Kind::kCrash: {
        LAMP_CHECK_MSG(up[node], "crash of an already-crashed node");
        up[node] = false;
        down_durably[node] = action.durable;
        result.metrics.GetCounter(obs::kNetFaultCrashes).Increment();
        obs::Emit(obs::EventKind::kNetCrash,
                  static_cast<std::uint32_t>(node), action.durable ? 1 : 0,
                  0);
        break;
      }
      case SchedulerAction::Kind::kRestart: {
        LAMP_CHECK_MSG(!up[node], "restart of a running node");
        up[node] = true;
        if (!down_durably[node]) {
          // Volatile outage: the state is lost; the channel retransmits
          // everything the node had consumed (at-least-once delivery).
          states[node] = locals_[node];
          LAMP_CHECK_MSG(keep_log || consumed[node].empty(),
                         "volatile restart without a redelivery log");
          result.metrics.GetCounter(obs::kNetFaultRetransmits)
              .Add(consumed[node].size());
          for (InFlight& msg : consumed[node]) {
            queued_from[node].push_back(msg.from);
            queue[node].push_back(std::move(msg));
          }
          consumed[node].clear();
        }
        result.metrics.GetCounter(obs::kNetFaultRestarts).Increment();
        obs::Emit(obs::EventKind::kNetRestart,
                  static_cast<std::uint32_t>(node),
                  down_durably[node] ? 1 : 0, 0);
        heartbeat(node);  // Recovery re-runs the start transition.
        break;
      }
      case SchedulerAction::Kind::kNone:
        break;  // Handled above.
    }
    ++step;
  }
  obs::Emit(obs::EventKind::kNetQuiescent, 0, 0, transitions.value());
  result.metrics.GetGauge(obs::kNetCausalMaxDepth)
      .Set(static_cast<double>(max_depth));
  result.metrics.GetGauge(obs::kNetCoordinationDepth)
      .Set(static_cast<double>(first_output_depth));

  for (const Instance& out : outputs) result.output.InsertAll(out);
  return result;
}

NetworkRunResult TransducerNetwork::RunWithoutDelivery() {
  const std::size_t n = locals_.size();
  std::vector<Instance> states = locals_;
  std::vector<Instance> outputs(n);
  NetworkRunResult result;

  for (NodeId node = 0; node < n; ++node) {
    obs::Emit(obs::EventKind::kNetStart, static_cast<std::uint32_t>(node));
    const std::size_t out_before = outputs[node].Size();
    RunnerContext ctx(node, n, states[node], outputs[node], policy_, aware_);
    program_.OnStart(ctx);
    if (outputs[node].Size() != out_before) {
      // Output during a heartbeat is causal depth 0 by definition: no
      // message was ever read.
      obs::Emit(obs::EventKind::kNetOutput, static_cast<std::uint32_t>(node),
                0, 0);
    }
    // Messages are sent into the void: counted, never delivered.
    for (const Message& msg : ctx.outgoing()) {
      result.metrics.GetCounter(obs::kNetMessagesSent).Add(n - 1);
      result.metrics.GetCounter(obs::kNetFactsTransferred)
          .Add(msg.size() * (n - 1));
      result.metrics.GetCounter(obs::kNetBroadcasts).Increment();
      result.metrics.GetHistogram(obs::kNetMessageSize)
          .Observe(static_cast<double>(msg.size()));
    }
  }
  result.metrics.GetGauge(obs::kNetCausalMaxDepth).Set(0.0);
  result.metrics.GetGauge(obs::kNetCoordinationDepth).Set(0.0);
  for (const Instance& out : outputs) result.output.InsertAll(out);
  return result;
}

std::vector<Instance> DistributeByPolicy(const Instance& instance,
                                         const DistributionPolicy& policy) {
  std::vector<Instance> locals(policy.NumNodes());
  for (NodeId node = 0; node < policy.NumNodes(); ++node) {
    locals[node] = policy.LocalInstance(instance, node);
  }
  return locals;
}

std::vector<Instance> DistributeRoundRobin(const Instance& instance,
                                           std::size_t num_nodes) {
  std::vector<Instance> locals(num_nodes);
  std::size_t i = 0;
  instance.ForEachFact([&locals, num_nodes, &i](const Fact& f) {
    locals[i % num_nodes].Insert(f);
    ++i;
  });
  return locals;
}

std::vector<Instance> DistributeReplicated(const Instance& instance,
                                           std::size_t num_nodes) {
  return std::vector<Instance>(num_nodes, instance);
}

}  // namespace lamp
