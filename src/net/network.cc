#include "net/network.h"

#include <deque>

#include "common/check.h"
#include "obs/trace.h"

namespace lamp {

namespace {

/// The NodeContext implementation used by the runner. Broadcasts are
/// collected and dispatched by the runner after the transition returns.
class RunnerContext : public NodeContext {
 public:
  RunnerContext(NodeId self, std::size_t network_size, Instance& state,
                Instance& output, const DistributionPolicy* policy,
                bool aware)
      : self_(self),
        network_size_(network_size),
        state_(state),
        output_(output),
        policy_(policy),
        aware_(aware) {}

  NodeId self() const override { return self_; }

  std::size_t NetworkSize() const override {
    LAMP_CHECK_MSG(aware_,
                   "oblivious (A_i) program queried the All relation");
    return network_size_;
  }

  const Instance& state() const override { return state_; }
  void InsertState(const Fact& fact) override { state_.Insert(fact); }
  void Output(const Fact& fact) override { output_.Insert(fact); }
  void Broadcast(Message message) override {
    outgoing_.push_back(std::move(message));
  }
  const DistributionPolicy* policy() const override { return policy_; }

  std::vector<Message>& outgoing() { return outgoing_; }

 private:
  NodeId self_;
  std::size_t network_size_;
  Instance& state_;
  Instance& output_;
  const DistributionPolicy* policy_;
  bool aware_;
  std::vector<Message> outgoing_;
};

}  // namespace

TransducerNetwork::TransducerNetwork(std::vector<Instance> locals,
                                     TransducerProgram& program,
                                     const DistributionPolicy* policy,
                                     bool aware)
    : locals_(std::move(locals)),
      program_(program),
      policy_(policy),
      aware_(aware) {
  LAMP_CHECK(!locals_.empty());
}

NetworkRunResult TransducerNetwork::Run(std::uint64_t seed) {
  const std::size_t n = locals_.size();
  Rng rng(seed);

  std::vector<Instance> states = locals_;
  std::vector<Instance> outputs(n);
  std::vector<std::deque<Message>> inbox(n);
  NetworkRunResult result;
  obs::Counter& messages_sent =
      result.metrics.GetCounter(obs::kNetMessagesSent);
  obs::Counter& facts_transferred =
      result.metrics.GetCounter(obs::kNetFactsTransferred);
  obs::Counter& transitions = result.metrics.GetCounter(obs::kNetTransitions);
  obs::Counter& broadcasts = result.metrics.GetCounter(obs::kNetBroadcasts);
  obs::Histogram& message_size =
      result.metrics.GetHistogram(obs::kNetMessageSize);

  auto dispatch = [&](NodeId from, std::vector<Message>& outgoing) {
    for (Message& msg : outgoing) {
      facts_transferred.Add(msg.size() * (n - 1));
      messages_sent.Add(n - 1);
      broadcasts.Increment();
      message_size.Observe(static_cast<double>(msg.size()));
      obs::Emit(obs::EventKind::kNetBroadcast,
                static_cast<std::uint32_t>(from), 0, msg.size());
      for (NodeId to = 0; to < n; ++to) {
        if (to == from) continue;
        inbox[to].push_back(msg);
      }
    }
    outgoing.clear();
  };

  // Heartbeat transitions, in random order (order must not matter; the
  // consistency checker sweeps seeds to probe that).
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  for (NodeId node : order) {
    obs::Emit(obs::EventKind::kNetStart, static_cast<std::uint32_t>(node));
    RunnerContext ctx(node, n, states[node], outputs[node], policy_, aware_);
    program_.OnStart(ctx);
    dispatch(node, ctx.outgoing());
  }

  // Delivery loop: pick a random nonempty inbox and a random queued
  // message (arbitrary delay/reordering), deliver, repeat to quiescence.
  while (true) {
    std::vector<NodeId> ready;
    for (NodeId i = 0; i < n; ++i) {
      if (!inbox[i].empty()) ready.push_back(i);
    }
    if (ready.empty()) break;
    const NodeId node = ready[rng.Uniform(ready.size())];
    const std::size_t pick = rng.Uniform(inbox[node].size());
    Message msg = std::move(inbox[node][pick]);
    inbox[node].erase(inbox[node].begin() +
                      static_cast<std::ptrdiff_t>(pick));

    obs::Emit(obs::EventKind::kNetDeliver, static_cast<std::uint32_t>(node),
              static_cast<std::uint32_t>(transitions.value()), msg.size());
    RunnerContext ctx(node, n, states[node], outputs[node], policy_, aware_);
    program_.OnReceive(ctx, msg);
    dispatch(node, ctx.outgoing());
    transitions.Increment();
  }
  obs::Emit(obs::EventKind::kNetQuiescent, 0, 0, transitions.value());

  for (const Instance& out : outputs) result.output.InsertAll(out);
  return result;
}

NetworkRunResult TransducerNetwork::RunWithoutDelivery() {
  const std::size_t n = locals_.size();
  std::vector<Instance> states = locals_;
  std::vector<Instance> outputs(n);
  NetworkRunResult result;

  for (NodeId node = 0; node < n; ++node) {
    obs::Emit(obs::EventKind::kNetStart, static_cast<std::uint32_t>(node));
    RunnerContext ctx(node, n, states[node], outputs[node], policy_, aware_);
    program_.OnStart(ctx);
    // Messages are sent into the void: counted, never delivered.
    for (const Message& msg : ctx.outgoing()) {
      result.metrics.GetCounter(obs::kNetMessagesSent).Add(n - 1);
      result.metrics.GetCounter(obs::kNetFactsTransferred)
          .Add(msg.size() * (n - 1));
      result.metrics.GetCounter(obs::kNetBroadcasts).Increment();
      result.metrics.GetHistogram(obs::kNetMessageSize)
          .Observe(static_cast<double>(msg.size()));
    }
  }
  for (const Instance& out : outputs) result.output.InsertAll(out);
  return result;
}

std::vector<Instance> DistributeByPolicy(const Instance& instance,
                                         const DistributionPolicy& policy) {
  std::vector<Instance> locals(policy.NumNodes());
  for (NodeId node = 0; node < policy.NumNodes(); ++node) {
    locals[node] = policy.LocalInstance(instance, node);
  }
  return locals;
}

std::vector<Instance> DistributeRoundRobin(const Instance& instance,
                                           std::size_t num_nodes) {
  std::vector<Instance> locals(num_nodes);
  std::size_t i = 0;
  for (const Fact& f : instance.AllFacts()) {
    locals[i % num_nodes].Insert(f);
    ++i;
  }
  return locals;
}

std::vector<Instance> DistributeReplicated(const Instance& instance,
                                           std::size_t num_nodes) {
  return std::vector<Instance>(num_nodes, instance);
}

}  // namespace lamp
