#include "par/thread_pool.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/check.h"

namespace lamp::par {

namespace {

/// Set for the lifetime of every pool worker; nested parallel entry points
/// consult it to run inline instead of enqueueing (which could deadlock a
/// fully busy fixed-size pool).
thread_local bool t_on_worker = false;

/// Book-keeping for one ParallelChunks call. Chunk tasks decrement
/// `remaining` as they finish; the caller waits for zero. Errors are kept
/// per chunk so the *lowest-indexed* failure is rethrown regardless of
/// which chunk happened to fail first in wall-clock order.
struct CallState {
  explicit CallState(std::size_t chunks)
      : remaining(chunks), errors(chunks) {}

  std::mutex m;
  std::condition_variable done;
  std::size_t remaining;
  std::vector<std::exception_ptr> errors;
};

void RethrowLowestChunkError(const std::vector<std::exception_ptr>& errors) {
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) : num_threads_(num_threads) {
  LAMP_CHECK(num_threads_ > 0);
  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

std::size_t ThreadPool::NumChunks(std::size_t n) const {
  return n < num_threads_ ? n : num_threads_;
}

bool ThreadPool::OnWorkerThread() { return t_on_worker; }

void ThreadPool::ParallelChunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = NumChunks(n);
  auto chunk_lo = [begin, n, chunks](std::size_t c) {
    return begin + (n * c) / chunks;
  };

  if (chunks == 1 || OnWorkerThread()) {
    // Inline path (serial pool, tiny range, or nested call from a worker):
    // same chunk boundaries, same ascending order, same error policy.
    std::vector<std::exception_ptr> errors(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      try {
        body(c, chunk_lo(c), chunk_lo(c + 1));
      } catch (...) {
        errors[c] = std::current_exception();
      }
    }
    RethrowLowestChunkError(errors);
    return;
  }

  CallState state(chunks);
  auto run_chunk = [&body, &state, &chunk_lo](std::size_t c) {
    try {
      body(c, chunk_lo(c), chunk_lo(c + 1));
    } catch (...) {
      state.errors[c] = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(state.m);
    if (--state.remaining == 0) state.done.notify_one();
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      tasks_.emplace_back([&run_chunk, c] { run_chunk(c); });
    }
  }
  work_ready_.notify_all();
  run_chunk(0);

  // Help drain the queue while waiting: on machines with fewer cores than
  // lanes the caller doing chunk work is what keeps wall-clock flat.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (!task) break;
    task();
  }
  {
    std::unique_lock<std::mutex> lock(state.m);
    state.done.wait(lock, [&state] { return state.remaining == 0; });
  }
  RethrowLowestChunkError(state.errors);
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body) {
  ParallelChunks(begin, end,
                 [&body](std::size_t, std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) body(i);
                 });
}

namespace {

std::mutex g_config_mu;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_default_threads = 0;  // 0 = unset; fall back to LAMP_THREADS.

std::size_t EnvThreads() {
  const char* env = std::getenv("LAMP_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* endp = nullptr;
  const long v = std::strtol(env, &endp, 10);
  return (endp == env || v < 1) ? 1 : static_cast<std::size_t>(v);
}

std::size_t DefaultThreadsLocked() {
  return g_default_threads != 0 ? g_default_threads : EnvThreads();
}

}  // namespace

std::size_t DefaultThreads() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return DefaultThreadsLocked();
}

void SetDefaultThreads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_default_threads = n < 1 ? 1 : n;
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  const std::size_t want = DefaultThreadsLocked();
  if (g_pool == nullptr || g_pool->num_threads() != want) {
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_pool;
}

void ConfigureFromCommandLine(int* argc, char** argv) {
  int out = 1;
  std::size_t threads = 0;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < *argc) {
      value = argv[++i];
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    char* endp = nullptr;
    const long v = std::strtol(value, &endp, 10);
    if (endp != value && v >= 1) threads = static_cast<std::size_t>(v);
  }
  argv[out] = nullptr;
  *argc = out;
  if (threads != 0) SetDefaultThreads(threads);
}

}  // namespace lamp::par
