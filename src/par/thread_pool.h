#ifndef LAMP_PAR_THREAD_POOL_H_
#define LAMP_PAR_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// lamp::par — deterministic parallel execution.
///
/// A fixed-size worker pool plus ParallelFor / ParallelChunks with *static*
/// chunking: the split of [begin, end) into contiguous chunks depends only
/// on the range size and the chunk count, never on timing or scheduling.
/// Callers that keep per-chunk results separate and merge them in ascending
/// chunk order therefore observe the same result bytes at every thread
/// count — the property the MPC simulator's communication phase leans on
/// (DESIGN.md §lamp::par).
///
/// Nested ParallelFor/ParallelChunks calls issued from inside a worker run
/// inline on the calling worker (no tasks are enqueued), so nesting cannot
/// deadlock the fixed-size pool. Exceptions thrown by chunk bodies are
/// captured and the one from the lowest-indexed failing chunk is rethrown
/// in the calling thread once every chunk has finished.

namespace lamp::par {

class ThreadPool {
 public:
  /// A pool with \p num_threads execution lanes. The caller participates,
  /// so only num_threads - 1 worker threads are started; 1 means fully
  /// inline execution (no threads at all).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Calls body(i) for every i in [begin, end), the range split into
  /// NumChunks(end - begin) contiguous chunks. Blocks until every call has
  /// returned; rethrows the lowest-chunk exception, if any.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body);

  /// Static chunking with explicit chunk identity: calls
  /// body(chunk, lo, hi) once per chunk, the chunks covering [begin, end)
  /// contiguously in ascending order. Chunk boundaries are a pure function
  /// of (end - begin, num_threads()).
  void ParallelChunks(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t chunk,
                                               std::size_t lo,
                                               std::size_t hi)>& body);

  /// Number of chunks ParallelChunks uses for a range of \p n items:
  /// min(num_threads(), n).
  std::size_t NumChunks(std::size_t n) const;

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). Parallel entry points use this to degrade to inline
  /// execution instead of deadlocking on nested use.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
};

/// Threads components use when the caller does not pass a pool explicitly:
/// the value set by SetDefaultThreads, else the LAMP_THREADS environment
/// variable, else 1 (serial). Parallel results are bit-identical to serial
/// runs, so this setting only affects wall-clock.
std::size_t DefaultThreads();

/// Overrides DefaultThreads (clamped to >= 1). Call before the first use
/// of GlobalPool in a parallel region; the global pool is rebuilt lazily.
void SetDefaultThreads(std::size_t n);

/// Process-wide pool sized at DefaultThreads(); lazily (re)built when the
/// default changes. Not meant to be reconfigured concurrently with use.
ThreadPool& GlobalPool();

/// Strips "--threads N" / "--threads=N" from argv (so downstream flag
/// parsers such as google-benchmark never see it) and applies the value via
/// SetDefaultThreads. Without the flag, LAMP_THREADS decides (the
/// DefaultThreads fallback). Every binary under bench/ calls this first.
void ConfigureFromCommandLine(int* argc, char** argv);

}  // namespace lamp::par

#endif  // LAMP_PAR_THREAD_POOL_H_
