#include "automata/streaming_ops.h"

#include <algorithm>

#include "common/check.h"

namespace lamp {

namespace {

/// Maps a fact of \p rel to the key at \p column (raw value as key);
/// other relations are dropped.
void MapByColumn(std::vector<KeyValue>& out, const Fact& f, RelationId rel,
                 std::size_t column) {
  if (f.relation != rel) return;
  LAMP_CHECK(column < f.args.size());
  out.push_back({static_cast<std::uint64_t>(f.args[column].v), f});
}

/// Identity output action for the matched fact.
void EmitWholeFact(Transition& t, const Schema& schema, RelationId rel) {
  t.output_relation = rel;
  for (std::size_t i = 0; i < schema.ArityOf(rel); ++i) {
    t.output_terms.push_back(OutputTerm::Position(i));
  }
}

}  // namespace

MapReduceJob::ReduceFn AutomatonReducer(RegisterAutomaton automaton) {
  return [automaton = std::move(automaton)](
             std::uint64_t, const std::vector<Fact>& group) {
    std::vector<Fact> sorted = group;
    std::sort(sorted.begin(), sorted.end());
    std::vector<KeyValue> out;
    for (Fact& f : automaton.Run(sorted)) {
      out.push_back({0, std::move(f)});
    }
    return out;
  };
}

MapReduceJob StreamingSemijoin(const Schema& schema, RelationId r,
                               std::size_t r_column, RelationId s,
                               std::size_t s_column) {
  LAMP_CHECK_MSG(s < r,
                 "streaming semijoin needs the probe relation sorted first");
  // States: 0 = no S seen, 1 = S seen. Zero registers: within one key
  // group every fact already agrees on the join value.
  RegisterAutomaton automaton(2, 0, 0);
  {
    Transition probe;  // S fact: remember its presence.
    probe.from_state = 0;
    probe.guard.relation = s;
    probe.to_state = 1;
    automaton.AddTransition(probe);
  }
  {
    Transition hit;  // R fact after an S fact: emit.
    hit.from_state = 1;
    hit.guard.relation = r;
    hit.to_state = 1;
    EmitWholeFact(hit, schema, r);
    automaton.AddTransition(hit);
  }

  MapReduceJob job;
  job.map = [r, r_column, s, s_column](const Fact& f) {
    std::vector<KeyValue> out;
    MapByColumn(out, f, r, r_column);
    MapByColumn(out, f, s, s_column);
    return out;
  };
  job.reduce = AutomatonReducer(std::move(automaton));
  return job;
}

MapReduceJob StreamingAntiSemijoin(const Schema& schema, RelationId r,
                                   std::size_t r_column, RelationId s,
                                   std::size_t s_column) {
  LAMP_CHECK_MSG(
      s < r, "streaming anti-semijoin needs the probe relation sorted first");
  RegisterAutomaton automaton(2, 0, 0);
  {
    Transition probe;
    probe.from_state = 0;
    probe.guard.relation = s;
    probe.to_state = 1;
    automaton.AddTransition(probe);
  }
  {
    Transition miss;  // R fact with no preceding S: emit.
    miss.from_state = 0;
    miss.guard.relation = r;
    miss.to_state = 0;
    EmitWholeFact(miss, schema, r);
    automaton.AddTransition(miss);
  }

  MapReduceJob job;
  job.map = [r, r_column, s, s_column](const Fact& f) {
    std::vector<KeyValue> out;
    MapByColumn(out, f, r, r_column);
    MapByColumn(out, f, s, s_column);
    return out;
  };
  job.reduce = AutomatonReducer(std::move(automaton));
  return job;
}

MapReduceJob StreamingSelection(const Schema& schema, RelationId r,
                                std::size_t column, Value value) {
  RegisterAutomaton automaton(1, 0, 0);
  Transition match;
  match.from_state = 0;
  match.guard.relation = r;
  match.guard.equals_constant.resize(schema.ArityOf(r));
  LAMP_CHECK(column < schema.ArityOf(r));
  match.guard.equals_constant[column] = value;
  match.to_state = 0;
  EmitWholeFact(match, schema, r);
  automaton.AddTransition(match);

  MapReduceJob job;
  job.map = [r](const Fact& f) {
    std::vector<KeyValue> out;
    if (f.relation == r) out.push_back({0, f});
    return out;
  };
  job.reduce = AutomatonReducer(std::move(automaton));
  return job;
}

MapReduceJob StreamingProjection(const Schema& schema, RelationId r,
                                 const std::vector<std::size_t>& columns,
                                 RelationId out_rel) {
  LAMP_CHECK(schema.ArityOf(out_rel) == columns.size());
  RegisterAutomaton automaton(1, 0, 0);
  Transition project;
  project.from_state = 0;
  project.guard.relation = r;
  project.to_state = 0;
  project.output_relation = out_rel;
  for (std::size_t col : columns) {
    LAMP_CHECK(col < schema.ArityOf(r));
    project.output_terms.push_back(OutputTerm::Position(col));
  }
  automaton.AddTransition(project);

  MapReduceJob job;
  job.map = [r](const Fact& f) {
    std::vector<KeyValue> out;
    if (f.relation == r) out.push_back({0, f});
    return out;
  };
  job.reduce = AutomatonReducer(std::move(automaton));
  return job;
}

}  // namespace lamp
