#ifndef LAMP_AUTOMATA_REGISTER_AUTOMATON_H_
#define LAMP_AUTOMATA_REGISTER_AUTOMATON_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "relational/fact.h"

/// \file
/// Register automata over streams of facts (Kaminski-Francez /
/// Neven-Schwentick-Vianu), the machine model behind "Distributed
/// streaming with finite memory" (Neven et al., cited in Section 3.2 of
/// the paper): reducers modelled as finite-state devices with a constant
/// number of value registers. The streaming operators built from them
/// (streaming_ops.h) realize the semi-join algebra fragment the paper
/// mentions.
///
/// The automaton is deterministic-by-priority: on each input fact the
/// first transition (in insertion order) whose guard matches fires; if
/// none matches, the fact is skipped (state unchanged). Guards test the
/// fact's relation plus equality of argument positions against registers
/// or constants; actions store argument values into registers and may
/// emit an output fact assembled from positions and registers.

namespace lamp {

/// Where an output term comes from.
struct OutputTerm {
  enum class Kind { kPosition, kRegister, kConstant };
  Kind kind = Kind::kPosition;
  std::size_t index = 0;  // Position or register index.
  Value constant;         // For kConstant.

  static OutputTerm Position(std::size_t pos) {
    return {Kind::kPosition, pos, Value()};
  }
  static OutputTerm Register(std::size_t reg) {
    return {Kind::kRegister, reg, Value()};
  }
  static OutputTerm Constant(Value v) {
    return {Kind::kConstant, 0, v};
  }
};

/// Guard of one transition.
struct TransitionGuard {
  RelationId relation = 0;
  /// Per argument position: must equal the given register (which must be
  /// loaded), if set.
  std::vector<std::optional<std::size_t>> equals_register;
  /// Per argument position: must equal the constant, if set.
  std::vector<std::optional<Value>> equals_constant;
};

/// One transition.
struct Transition {
  std::size_t from_state = 0;
  TransitionGuard guard;
  std::size_t to_state = 0;
  /// Register stores: register <- fact argument at position.
  std::vector<std::pair<std::size_t, std::size_t>> stores;
  /// Output to emit (relation + terms), if any.
  std::optional<RelationId> output_relation;
  std::vector<OutputTerm> output_terms;
};

/// A deterministic-by-priority register automaton.
class RegisterAutomaton {
 public:
  RegisterAutomaton(std::size_t num_states, std::size_t num_registers,
                    std::size_t start_state);

  /// Appends a transition (earlier transitions have higher priority).
  void AddTransition(Transition transition);

  /// Runs the automaton over \p stream from the start state with empty
  /// registers; returns all emitted facts in order.
  std::vector<Fact> Run(const std::vector<Fact>& stream) const;

  std::size_t num_states() const { return num_states_; }
  std::size_t num_registers() const { return num_registers_; }

 private:
  bool GuardMatches(const TransitionGuard& guard, const Fact& fact,
                    const std::vector<std::optional<Value>>& regs) const;

  std::size_t num_states_;
  std::size_t num_registers_;
  std::size_t start_state_;
  std::vector<Transition> transitions_;
};

}  // namespace lamp

#endif  // LAMP_AUTOMATA_REGISTER_AUTOMATON_H_
