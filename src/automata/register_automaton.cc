#include "automata/register_automaton.h"

#include "common/check.h"

namespace lamp {

RegisterAutomaton::RegisterAutomaton(std::size_t num_states,
                                     std::size_t num_registers,
                                     std::size_t start_state)
    : num_states_(num_states),
      num_registers_(num_registers),
      start_state_(start_state) {
  LAMP_CHECK(start_state_ < num_states_);
}

void RegisterAutomaton::AddTransition(Transition transition) {
  LAMP_CHECK(transition.from_state < num_states_);
  LAMP_CHECK(transition.to_state < num_states_);
  for (const auto& [reg, pos] : transition.stores) {
    LAMP_CHECK(reg < num_registers_);
    (void)pos;
  }
  for (const auto& maybe_reg : transition.guard.equals_register) {
    if (maybe_reg.has_value()) LAMP_CHECK(*maybe_reg < num_registers_);
  }
  transitions_.push_back(std::move(transition));
}

bool RegisterAutomaton::GuardMatches(
    const TransitionGuard& guard, const Fact& fact,
    const std::vector<std::optional<Value>>& regs) const {
  if (guard.relation != fact.relation) return false;
  for (std::size_t i = 0; i < guard.equals_register.size(); ++i) {
    if (!guard.equals_register[i].has_value()) continue;
    if (i >= fact.args.size()) return false;
    const auto& reg = regs[*guard.equals_register[i]];
    if (!reg.has_value() || !(*reg == fact.args[i])) return false;
  }
  for (std::size_t i = 0; i < guard.equals_constant.size(); ++i) {
    if (!guard.equals_constant[i].has_value()) continue;
    if (i >= fact.args.size()) return false;
    if (!(*guard.equals_constant[i] == fact.args[i])) return false;
  }
  return true;
}

std::vector<Fact> RegisterAutomaton::Run(
    const std::vector<Fact>& stream) const {
  std::size_t state = start_state_;
  std::vector<std::optional<Value>> regs(num_registers_);
  std::vector<Fact> output;

  for (const Fact& fact : stream) {
    for (const Transition& t : transitions_) {
      if (t.from_state != state) continue;
      if (!GuardMatches(t.guard, fact, regs)) continue;

      for (const auto& [reg, pos] : t.stores) {
        LAMP_CHECK(pos < fact.args.size());
        regs[reg] = fact.args[pos];
      }
      if (t.output_relation.has_value()) {
        std::vector<Value> args;
        args.reserve(t.output_terms.size());
        for (const OutputTerm& term : t.output_terms) {
          switch (term.kind) {
            case OutputTerm::Kind::kPosition:
              LAMP_CHECK(term.index < fact.args.size());
              args.push_back(fact.args[term.index]);
              break;
            case OutputTerm::Kind::kRegister: {
              const auto& reg = regs[term.index];
              LAMP_CHECK_MSG(reg.has_value(), "output from empty register");
              args.push_back(*reg);
              break;
            }
            case OutputTerm::Kind::kConstant:
              args.push_back(term.constant);
              break;
          }
        }
        output.emplace_back(*t.output_relation, std::move(args));
      }
      state = t.to_state;
      break;  // Deterministic by priority: first match fires.
    }
  }
  return output;
}

}  // namespace lamp
