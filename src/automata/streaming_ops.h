#ifndef LAMP_AUTOMATA_STREAMING_OPS_H_
#define LAMP_AUTOMATA_STREAMING_OPS_H_

#include "automata/register_automaton.h"
#include "mapreduce/mapreduce.h"
#include "relational/schema.h"

/// \file
/// The semi-join algebra as constant-memory streaming reducers
/// (the expressible fragment of "Distributed streaming with finite
/// memory", Section 3.2).
///
/// Each operator is a MapReduce job whose reducer is a register automaton
/// run once over the key group, *sorted by relation id then arguments* —
/// the sortedness the construction relies on (e.g. the semijoin probe
/// relation arrives before the probed one). Memory per reducer is the
/// automaton's O(1) registers plus the finite state, independent of the
/// group size: that is the model's point, and tests assert the register
/// counts.

namespace lamp {

/// Semijoin R |>< S on R.column == S.column: emits the R facts that have
/// an S partner with the same key. Requires s < r as relation ids (the
/// sorted stream must deliver the S probe before the R facts); the
/// builder checks this.
MapReduceJob StreamingSemijoin(const Schema& schema, RelationId r,
                               std::size_t r_column, RelationId s,
                               std::size_t s_column);

/// Anti-semijoin R |> S: emits the R facts with *no* S partner.
MapReduceJob StreamingAntiSemijoin(const Schema& schema, RelationId r,
                                   std::size_t r_column, RelationId s,
                                   std::size_t s_column);

/// Selection sigma_{column = value}(R) as a single-state automaton (a
/// degenerate job: everything maps to one key).
MapReduceJob StreamingSelection(const Schema& schema, RelationId r,
                                std::size_t column, Value value);

/// Projection pi_{columns}(R) into \p out (duplicates merged by the
/// output Instance).
MapReduceJob StreamingProjection(const Schema& schema, RelationId r,
                                 const std::vector<std::size_t>& columns,
                                 RelationId out);

/// Runs one automaton over each key group of the job input (sorted by
/// relation then arguments). Exposed for building custom operators.
MapReduceJob::ReduceFn AutomatonReducer(RegisterAutomaton automaton);

}  // namespace lamp

#endif  // LAMP_AUTOMATA_STREAMING_OPS_H_
