#include "lp/edge_packing.h"

#include <set>

#include "common/check.h"

namespace lamp {

namespace {

/// Variable occurrence structure of the body hypergraph: vars[e] is the set
/// of variables of body atom e; all_vars the (dense re-indexed) vertex set.
struct Hypergraph {
  std::vector<std::set<VarId>> edges;
  std::vector<VarId> vertices;  // Sorted distinct VarIds.

  std::size_t IndexOf(VarId v) const {
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      if (vertices[i] == v) return i;
    }
    LAMP_CHECK_MSG(false, "unknown variable");
    return 0;
  }
};

Hypergraph BuildHypergraph(const ConjunctiveQuery& query) {
  Hypergraph h;
  std::set<VarId> all;
  for (const Atom& atom : query.body()) {
    std::set<VarId> vars;
    for (const Term& t : atom.terms) {
      if (t.IsVar()) {
        vars.insert(t.var);
        all.insert(t.var);
      }
    }
    h.edges.push_back(std::move(vars));
  }
  h.vertices.assign(all.begin(), all.end());
  return h;
}

}  // namespace

double FractionalEdgePackingValue(const ConjunctiveQuery& query) {
  const Hypergraph h = BuildHypergraph(query);
  LAMP_CHECK(!h.edges.empty());

  LinearProgram lp;
  lp.num_vars = h.edges.size();
  lp.objective.assign(lp.num_vars, 1.0);
  for (VarId v : h.vertices) {
    LinearProgram::Constraint row;
    row.coeffs.assign(lp.num_vars, 0.0);
    for (std::size_t e = 0; e < h.edges.size(); ++e) {
      if (h.edges[e].count(v) > 0) row.coeffs[e] = 1.0;
    }
    row.type = ConstraintType::kLe;
    row.rhs = 1.0;
    lp.constraints.push_back(std::move(row));
  }
  const LpSolution sol = SolveLp(lp);
  LAMP_CHECK(sol.status == LpSolution::Status::kOptimal);
  return sol.objective_value;
}

double FractionalEdgeCoverValue(const ConjunctiveQuery& query) {
  const Hypergraph h = BuildHypergraph(query);
  LAMP_CHECK(!h.edges.empty());

  // minimize sum u_e == maximize -sum u_e.
  LinearProgram lp;
  lp.num_vars = h.edges.size();
  lp.objective.assign(lp.num_vars, -1.0);
  for (VarId v : h.vertices) {
    LinearProgram::Constraint row;
    row.coeffs.assign(lp.num_vars, 0.0);
    for (std::size_t e = 0; e < h.edges.size(); ++e) {
      if (h.edges[e].count(v) > 0) row.coeffs[e] = 1.0;
    }
    row.type = ConstraintType::kGe;
    row.rhs = 1.0;
    lp.constraints.push_back(std::move(row));
  }
  const LpSolution sol = SolveLp(lp);
  LAMP_CHECK(sol.status == LpSolution::Status::kOptimal);
  return -sol.objective_value;
}

ShareExponents OptimalShareExponents(const ConjunctiveQuery& query) {
  const Hypergraph h = BuildHypergraph(query);
  LAMP_CHECK(!h.edges.empty());
  LAMP_CHECK(!h.vertices.empty());

  // Variables: x_0..x_{k-1} (one per hypergraph vertex) plus t.
  // maximize t  s.t.  sum_{v in e} x_v - t >= 0 for every edge e,
  //                   sum_v x_v = 1, x >= 0, t >= 0.
  const std::size_t k = h.vertices.size();
  LinearProgram lp;
  lp.num_vars = k + 1;
  lp.objective.assign(lp.num_vars, 0.0);
  lp.objective[k] = 1.0;

  for (const auto& edge : h.edges) {
    LinearProgram::Constraint row;
    row.coeffs.assign(lp.num_vars, 0.0);
    for (VarId v : edge) row.coeffs[h.IndexOf(v)] = 1.0;
    row.coeffs[k] = -1.0;
    row.type = ConstraintType::kGe;
    row.rhs = 0.0;
    lp.constraints.push_back(std::move(row));
  }
  {
    LinearProgram::Constraint row;
    row.coeffs.assign(lp.num_vars, 0.0);
    for (std::size_t i = 0; i < k; ++i) row.coeffs[i] = 1.0;
    row.type = ConstraintType::kEq;
    row.rhs = 1.0;
    lp.constraints.push_back(std::move(row));
  }

  const LpSolution sol = SolveLp(lp);
  LAMP_CHECK(sol.status == LpSolution::Status::kOptimal);

  ShareExponents result;
  result.exponent.assign(query.NumVars(), 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    result.exponent[h.vertices[i]] = sol.x[i];
  }
  result.load_exponent = sol.objective_value;
  return result;
}

}  // namespace lamp
