#ifndef LAMP_LP_SIMPLEX_H_
#define LAMP_LP_SIMPLEX_H_

#include <cstddef>
#include <vector>

/// \file
/// A small dense two-phase simplex solver.
///
/// The paper's load bounds hinge on two linear programs over the query
/// hypergraph: the fractional edge packing (tau*, Section 3.1) and the
/// share-exponent program whose optimum is the HyperCube load exponent.
/// These LPs have a handful of variables, so a textbook dense tableau with
/// Bland's anti-cycling rule is the right tool — no external dependency,
/// fully deterministic.

namespace lamp {

/// Constraint sense for LinearProgram rows.
enum class ConstraintType { kLe, kGe, kEq };

/// maximize objective . x  subject to the constraints and x >= 0.
struct LinearProgram {
  /// One linear constraint: coeffs . x (type) rhs.
  struct Constraint {
    std::vector<double> coeffs;
    ConstraintType type = ConstraintType::kLe;
    double rhs = 0.0;
  };

  std::size_t num_vars = 0;
  std::vector<double> objective;
  std::vector<Constraint> constraints;
};

/// Solver outcome.
struct LpSolution {
  enum class Status { kOptimal, kInfeasible, kUnbounded };

  Status status = Status::kInfeasible;
  double objective_value = 0.0;
  std::vector<double> x;
};

/// Solves \p lp with two-phase primal simplex (Bland's rule). Deterministic;
/// suitable for LPs with up to a few hundred rows/columns.
LpSolution SolveLp(const LinearProgram& lp);

}  // namespace lamp

#endif  // LAMP_LP_SIMPLEX_H_
