#include "lp/simplex.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace lamp {

namespace {

constexpr double kEps = 1e-9;

/// Dense tableau: rows_ x cols_ constraint matrix (with slack/artificial
/// columns), rhs_ per row, basis_ holds the basic column of each row.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        a_(rows, std::vector<double>(cols, 0.0)),
        rhs_(rows, 0.0),
        basis_(rows, 0) {}

  double& At(std::size_t r, std::size_t c) { return a_[r][c]; }
  double& Rhs(std::size_t r) { return rhs_[r]; }
  std::size_t& Basis(std::size_t r) { return basis_[r]; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void Pivot(std::size_t pr, std::size_t pc) {
    const double pivot = a_[pr][pc];
    LAMP_CHECK(std::fabs(pivot) > kEps);
    for (std::size_t c = 0; c < cols_; ++c) a_[pr][c] /= pivot;
    rhs_[pr] /= pivot;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = a_[r][pc];
      if (std::fabs(factor) < kEps) continue;
      for (std::size_t c = 0; c < cols_; ++c) a_[r][c] -= factor * a_[pr][c];
      rhs_[r] -= factor * rhs_[pr];
    }
    basis_[pr] = pc;
  }

  /// Runs primal simplex maximizing cost . x over columns in
  /// [0, usable_cols). Returns false on unboundedness. `cost` has cols_
  /// entries (non-usable columns must have cost 0 and never enter).
  bool Maximize(const std::vector<double>& cost, std::size_t usable_cols) {
    while (true) {
      // Reduced costs: c_j - c_B . B^{-1} A_j. Maintain implicitly:
      // recompute from the current tableau each iteration (small LPs).
      std::size_t entering = cols_;
      for (std::size_t j = 0; j < usable_cols; ++j) {  // Bland: lowest index.
        double reduced = cost[j];
        for (std::size_t r = 0; r < rows_; ++r) {
          reduced -= cost[basis_[r]] * a_[r][j];
        }
        if (reduced > kEps) {
          entering = j;
          break;
        }
      }
      if (entering == cols_) return true;  // Optimal.

      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        if (a_[r][entering] > kEps) {
          const double ratio = rhs_[r] / a_[r][entering];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leaving == rows_ || basis_[r] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == rows_) return false;  // Unbounded.
      Pivot(leaving, entering);
    }
  }

  double ObjectiveValue(const std::vector<double>& cost) const {
    double value = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) value += cost[basis_[r]] * rhs_[r];
    return value;
  }

  std::vector<double> Extract(std::size_t num_vars) const {
    std::vector<double> x(num_vars, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < num_vars) x[basis_[r]] = rhs_[r];
    }
    return x;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<double>> a_;
  std::vector<double> rhs_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution SolveLp(const LinearProgram& lp) {
  const std::size_t n = lp.num_vars;
  const std::size_t m = lp.constraints.size();
  LAMP_CHECK(lp.objective.size() == n);

  // Normalize rows to rhs >= 0, count extra columns.
  std::vector<LinearProgram::Constraint> rows = lp.constraints;
  for (auto& row : rows) {
    LAMP_CHECK(row.coeffs.size() == n);
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (double& c : row.coeffs) c = -c;
      if (row.type == ConstraintType::kLe) {
        row.type = ConstraintType::kGe;
      } else if (row.type == ConstraintType::kGe) {
        row.type = ConstraintType::kLe;
      }
    }
  }

  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const auto& row : rows) {
    if (row.type != ConstraintType::kEq) ++num_slack;
    if (row.type != ConstraintType::kLe) ++num_artificial;
  }

  const std::size_t slack_base = n;
  const std::size_t artificial_base = n + num_slack;
  const std::size_t cols = n + num_slack + num_artificial;

  Tableau tableau(m, cols);
  std::size_t next_slack = slack_base;
  std::size_t next_artificial = artificial_base;
  for (std::size_t r = 0; r < m; ++r) {
    const auto& row = rows[r];
    for (std::size_t j = 0; j < n; ++j) tableau.At(r, j) = row.coeffs[j];
    tableau.Rhs(r) = row.rhs;
    switch (row.type) {
      case ConstraintType::kLe:
        tableau.At(r, next_slack) = 1.0;
        tableau.Basis(r) = next_slack++;
        break;
      case ConstraintType::kGe:
        tableau.At(r, next_slack) = -1.0;
        ++next_slack;
        tableau.At(r, next_artificial) = 1.0;
        tableau.Basis(r) = next_artificial++;
        break;
      case ConstraintType::kEq:
        tableau.At(r, next_artificial) = 1.0;
        tableau.Basis(r) = next_artificial++;
        break;
    }
  }

  LpSolution solution;

  // Phase 1: maximize -sum(artificials); feasible iff optimum is ~0.
  if (num_artificial > 0) {
    std::vector<double> phase1_cost(cols, 0.0);
    for (std::size_t j = artificial_base; j < cols; ++j) phase1_cost[j] = -1.0;
    const bool bounded = tableau.Maximize(phase1_cost, cols);
    LAMP_CHECK(bounded);  // Phase-1 objective is bounded by 0.
    if (tableau.ObjectiveValue(phase1_cost) < -1e-7) {
      solution.status = LpSolution::Status::kInfeasible;
      return solution;
    }
    // Drive any artificial still in the basis (at value 0) out if possible.
    for (std::size_t r = 0; r < m; ++r) {
      if (tableau.Basis(r) >= artificial_base) {
        for (std::size_t j = 0; j < artificial_base; ++j) {
          if (std::fabs(tableau.At(r, j)) > kEps) {
            tableau.Pivot(r, j);
            break;
          }
        }
      }
    }
  }

  // Phase 2: maximize the real objective over structural + slack columns.
  std::vector<double> cost(cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) cost[j] = lp.objective[j];
  if (!tableau.Maximize(cost, artificial_base)) {
    solution.status = LpSolution::Status::kUnbounded;
    return solution;
  }

  solution.status = LpSolution::Status::kOptimal;
  solution.objective_value = tableau.ObjectiveValue(cost);
  solution.x = tableau.Extract(n);
  return solution;
}

}  // namespace lamp
