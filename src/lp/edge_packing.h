#ifndef LAMP_LP_EDGE_PACKING_H_
#define LAMP_LP_EDGE_PACKING_H_

#include <vector>

#include "cq/cq.h"
#include "lp/simplex.h"

/// \file
/// The query-hypergraph linear programs behind the paper's load bounds
/// (Section 3.1).
///
/// For a full CQ Q, Beame-Koutris-Suciu show the optimal one-round
/// (HyperCube) maximum load on skew-free data is Theta(m / p^{1/tau*}),
/// where tau* is the value of the optimal *fractional edge packing* of Q's
/// hypergraph. The dual view assigns each variable v a share exponent x_v
/// (the server grid has p^{x_v} coordinates for v); the load of atom e is
/// m / p^{sum_{v in e} x_v}, so the best exponents maximize
/// min_e sum_{v in e} x_v subject to sum_v x_v = 1. LP duality gives
/// that optimum = 1/tau* — the library checks this identity in tests.

namespace lamp {

/// Value tau* of the optimal fractional edge packing:
///   maximize sum_e u_e  s.t.  for every variable v: sum_{e contains v} u_e <= 1,
///   u >= 0.
/// (Triangle: 3/2. k-path R1(x0,x1),...,Rk(x_{k-1},x_k): ceil(k/2)... see
/// tests for the concrete values.)
double FractionalEdgePackingValue(const ConjunctiveQuery& query);

/// Value of the optimal fractional edge cover:
///   minimize sum_e u_e  s.t.  for every variable v: sum_{e contains v} u_e >= 1.
/// (The AGM output-size exponent.)
double FractionalEdgeCoverValue(const ConjunctiveQuery& query);

/// Optimal HyperCube share exponents.
struct ShareExponents {
  /// exponent[v] = x_v, indexed by VarId; shares are alpha_v = p^{x_v}.
  std::vector<double> exponent;
  /// min_e sum_{v in e} x_v: the per-relation load is m / p^{load_exponent}.
  /// Equals 1/tau* at the optimum.
  double load_exponent = 0.0;
};

/// Solves the share-exponent LP described above. Requires at least one
/// body atom and at least one variable.
ShareExponents OptimalShareExponents(const ConjunctiveQuery& query);

}  // namespace lamp

#endif  // LAMP_LP_EDGE_PACKING_H_
