#ifndef LAMP_DISTRIBUTION_POLICIES_H_
#define LAMP_DISTRIBUTION_POLICIES_H_

#include <functional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "distribution/policy.h"
#include "relational/schema.h"

/// \file
/// Concrete distribution policies:
///
///  * FinitePolicy — the paper's class P_fin: all (node, fact) pairs are
///    enumerated explicitly;
///  * LambdaPolicy — responsibility decided by an arbitrary predicate (the
///    class P_npoly made concrete; used to express Example 4.3 directly);
///  * HashPolicy — classic repartition by key columns (Example 3.1(1a));
///  * RangePolicy — primary horizontal fragmentation by a threshold on a
///    column (the Customer example of Section 4.1).
///
/// The HyperCube policy lives in hypercube.h (it is derived from a query).

namespace lamp {

/// P_fin: responsibility enumerated fact by fact.
class FinitePolicy : public DistributionPolicy {
 public:
  FinitePolicy(std::size_t num_nodes, std::vector<Value> universe)
      : num_nodes_(num_nodes), universe_(std::move(universe)) {}

  /// Makes \p node responsible for \p fact.
  void Assign(NodeId node, const Fact& fact);

  std::size_t NumNodes() const override { return num_nodes_; }
  const std::vector<Value>& Universe() const override { return universe_; }
  bool IsResponsible(NodeId node, const Fact& fact) const override;

 private:
  std::size_t num_nodes_;
  std::vector<Value> universe_;
  std::unordered_map<Fact, std::set<NodeId>, FactHash> responsible_;
};

/// Responsibility decided by a caller-supplied predicate.
class LambdaPolicy : public DistributionPolicy {
 public:
  using Predicate = std::function<bool(NodeId, const Fact&)>;

  LambdaPolicy(std::size_t num_nodes, std::vector<Value> universe,
               Predicate predicate)
      : num_nodes_(num_nodes),
        universe_(std::move(universe)),
        predicate_(std::move(predicate)) {}

  std::size_t NumNodes() const override { return num_nodes_; }
  const std::vector<Value>& Universe() const override { return universe_; }
  bool IsResponsible(NodeId node, const Fact& fact) const override {
    return predicate_(node, fact);
  }

 private:
  std::size_t num_nodes_;
  std::vector<Value> universe_;
  Predicate predicate_;
};

/// Hash repartitioning: each relation declares the columns forming its
/// distribution key; a fact goes to the single node
/// hash(key values) mod p. Relations without a declared key are broadcast
/// to every node.
class HashPolicy : public DistributionPolicy {
 public:
  HashPolicy(std::size_t num_nodes, std::vector<Value> universe,
             std::uint64_t seed = 0)
      : num_nodes_(num_nodes), universe_(std::move(universe)), seed_(seed) {}

  /// Declares the key columns of \p relation.
  void SetKey(RelationId relation, std::vector<std::size_t> columns);

  std::size_t NumNodes() const override { return num_nodes_; }
  const std::vector<Value>& Universe() const override { return universe_; }
  bool IsResponsible(NodeId node, const Fact& fact) const override;

  /// The node a keyed fact is routed to.
  NodeId TargetNode(const Fact& fact) const;

 private:
  std::size_t num_nodes_;
  std::vector<Value> universe_;
  std::uint64_t seed_;
  std::unordered_map<RelationId, std::vector<std::size_t>> keys_;
};

/// Range partitioning on one column: node i gets facts whose key value lies
/// in [bounds[i-1], bounds[i]) with open ends at the extremes. Non-keyed
/// relations are broadcast.
class RangePolicy : public DistributionPolicy {
 public:
  /// \p bounds must be strictly increasing and have NumNodes()-1 entries.
  RangePolicy(std::vector<Value> universe, RelationId keyed_relation,
              std::size_t column, std::vector<std::int64_t> bounds);

  std::size_t NumNodes() const override { return bounds_.size() + 1; }
  const std::vector<Value>& Universe() const override { return universe_; }
  bool IsResponsible(NodeId node, const Fact& fact) const override;

 private:
  std::vector<Value> universe_;
  RelationId keyed_relation_;
  std::size_t column_;
  std::vector<std::int64_t> bounds_;
};

/// Helper: the universe {0, 1, ..., n-1} as Values.
std::vector<Value> MakeUniverse(std::size_t n);

}  // namespace lamp

#endif  // LAMP_DISTRIBUTION_POLICIES_H_
