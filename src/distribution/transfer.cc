#include "distribution/transfer.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/check.h"
#include "cq/minimal.h"
#include "cq/valuation.h"

namespace lamp {

namespace {

/// Fresh values strictly above every constant of both queries.
std::int64_t FreshBase(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  std::int64_t base = 1;
  for (Value c : a.Constants()) base = std::max(base, c.v + 1);
  for (Value c : b.Constants()) base = std::max(base, c.v + 1);
  return base;
}

}  // namespace

bool Covers(const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime) {
  LAMP_CHECK_MSG(q.negated().empty() && q_prime.negated().empty(),
                 "covers is defined for CQs without negation");

  const std::int64_t fresh = FreshBase(q, q_prime);

  // Outer universe: constants of both queries + one fresh value per
  // variable of Q'.
  std::vector<Value> outer;
  {
    std::set<Value> consts = q.Constants();
    const std::set<Value> more = q_prime.Constants();
    consts.insert(more.begin(), more.end());
    outer.assign(consts.begin(), consts.end());
    for (std::size_t i = 0; i < q_prime.NumVars(); ++i) {
      outer.emplace_back(fresh + static_cast<std::int64_t>(i));
    }
  }

  return ForEachMinimalValuation(
      q_prime, outer, [&q, &q_prime, fresh](const Valuation& v_prime) {
        const Instance required_prime = v_prime.RequiredFacts(q_prime);

        // Inner universe: values seen by V' + constants of Q + fresh values
        // for the variables of Q (distinct from everything in `outer`).
        const std::vector<Value> prime_dom = required_prime.ActiveDomain();
        std::set<Value> inner_set(prime_dom.begin(), prime_dom.end());
        for (Value c : q.Constants()) inner_set.insert(c);
        const std::int64_t inner_fresh =
            fresh + static_cast<std::int64_t>(q_prime.NumVars());
        for (std::size_t i = 0; i < q.NumVars(); ++i) {
          inner_set.insert(Value(inner_fresh + static_cast<std::int64_t>(i)));
        }
        const std::vector<Value> inner(inner_set.begin(), inner_set.end());

        bool covered = false;
        ForEachMinimalValuation(
            q, inner,
            [&q, &required_prime, &covered](const Valuation& v) {
              const Instance required = v.RequiredFacts(q);
              bool contains_all = true;
              for (const Fact& f : required_prime.AllFacts()) {
                if (!required.Contains(f)) {
                  contains_all = false;
                  break;
                }
              }
              if (contains_all) {
                covered = true;
                return false;
              }
              return true;
            });
        return covered;
      });
}

bool ParallelCorrectnessTransfersTo(const ConjunctiveQuery& q,
                                    const ConjunctiveQuery& q_prime) {
  return Covers(q, q_prime);
}

}  // namespace lamp
