#include "distribution/parallel_correctness.h"

#include <functional>

#include "common/check.h"
#include "cq/eval.h"
#include "cq/minimal.h"
#include "par/thread_pool.h"

namespace lamp {

Instance DistributedEval(const ConjunctiveQuery& query,
                         const DistributionPolicy& policy,
                         const Instance& instance) {
  // Nodes evaluate independently; folding the per-node results in
  // ascending node order keeps the output identical to the serial loop.
  const std::size_t n = policy.NumNodes();
  std::vector<Instance> per_node(n);
  par::GlobalPool().ParallelFor(
      0, n, [&query, &policy, &instance, &per_node](std::size_t node) {
        per_node[node] = Evaluate(
            query, policy.LocalInstance(instance, static_cast<NodeId>(node)));
      });
  Instance result;
  for (const Instance& local : per_node) result.InsertAll(local);
  return result;
}

bool IsParallelSoundOn(const ConjunctiveQuery& query,
                       const DistributionPolicy& policy,
                       const Instance& instance) {
  const Instance global = Evaluate(query, instance);
  const Instance distributed = DistributedEval(query, policy, instance);
  bool sound = true;
  distributed.ForEachFact([&global, &sound](const Fact& f) {
    if (!global.Contains(f)) sound = false;
  });
  return sound;
}

bool IsParallelCompleteOn(const ConjunctiveQuery& query,
                          const DistributionPolicy& policy,
                          const Instance& instance) {
  const Instance global = Evaluate(query, instance);
  const Instance distributed = DistributedEval(query, policy, instance);
  bool complete = true;
  global.ForEachFact([&distributed, &complete](const Fact& f) {
    if (!distributed.Contains(f)) complete = false;
  });
  return complete;
}

bool IsParallelCorrectOn(const ConjunctiveQuery& query,
                         const DistributionPolicy& policy,
                         const Instance& instance) {
  return Evaluate(query, instance) ==
         DistributedEval(query, policy, instance);
}

bool StronglySaturates(const DistributionPolicy& policy,
                       const ConjunctiveQuery& query) {
  LAMP_CHECK_MSG(query.negated().empty(),
                 "saturation conditions are defined for CQs without negation");
  return ForEachValuationOverUniverse(
      query, policy.Universe(), [&query, &policy](const Valuation& v) {
        if (!v.SatisfiesInequalities(query)) return true;
        return policy.SomeNodeHasAll(v.RequiredFacts(query));
      });
}

bool Saturates(const DistributionPolicy& policy,
               const ConjunctiveQuery& query) {
  LAMP_CHECK_MSG(query.negated().empty(),
                 "saturation conditions are defined for CQs without negation");
  return ForEachMinimalValuation(
      query, policy.Universe(), [&query, &policy](const Valuation& v) {
        return policy.SomeNodeHasAll(v.RequiredFacts(query));
      });
}

bool IsParallelCorrect(const ConjunctiveQuery& query,
                       const DistributionPolicy& policy) {
  // Proposition 4.6: parallel-correct iff P saturates Q.
  return Saturates(policy, query);
}

bool IsMinimalForUnion(const std::vector<ConjunctiveQuery>& union_queries,
                       std::size_t index, const Valuation& valuation) {
  LAMP_CHECK(index < union_queries.size());
  const ConjunctiveQuery& query = union_queries[index];
  const Instance required = valuation.RequiredFacts(query);
  const Fact head = valuation.ApplyToAtom(query.head());

  for (const ConjunctiveQuery& other : union_queries) {
    LAMP_CHECK_MSG(other.negated().empty(),
                   "union minimality requires negation-free disjuncts");
    bool smaller_found = false;
    ForEachSatisfyingValuation(
        other, required,
        [&other, &required, &head, &smaller_found](const Valuation& cand) {
          if (cand.ApplyToAtom(other.head()) == head &&
              cand.RequiredFacts(other).Size() < required.Size()) {
            smaller_found = true;
            return false;
          }
          return true;
        });
    if (smaller_found) return false;
  }
  return true;
}

bool IsParallelCorrectUnion(const std::vector<ConjunctiveQuery>& union_queries,
                            const DistributionPolicy& policy) {
  for (std::size_t i = 0; i < union_queries.size(); ++i) {
    const ConjunctiveQuery& query = union_queries[i];
    const bool ok = ForEachValuationOverUniverse(
        query, policy.Universe(),
        [&union_queries, i, &query, &policy](const Valuation& v) {
          if (!v.SatisfiesInequalities(query)) return true;
          if (!IsMinimalForUnion(union_queries, i, v)) return true;
          return policy.SomeNodeHasAll(v.RequiredFacts(query));
        });
    if (!ok) return false;
  }
  return true;
}

std::vector<std::uint8_t> ParallelCorrectnessSweep(
    const std::vector<PcCheck>& checks) {
  std::vector<std::uint8_t> verdicts(checks.size(), 0);
  par::GlobalPool().ParallelFor(
      0, checks.size(), [&checks, &verdicts](std::size_t i) {
        verdicts[i] =
            IsParallelCorrect(*checks[i].query, *checks[i].policy) ? 1 : 0;
      });
  return verdicts;
}

std::optional<Instance> FindPcCounterexample(const Schema& schema,
                                             const ConjunctiveQuery& query,
                                             const DistributionPolicy& policy,
                                             std::size_t max_facts) {
  // Pool: all facts over the policy's universe, for every schema relation.
  std::vector<Fact> pool;
  for (RelationId rel = 0; rel < schema.NumRelations(); ++rel) {
    const std::size_t arity = schema.ArityOf(rel);
    std::vector<std::size_t> idx(arity, 0);
    const std::vector<Value>& u = policy.Universe();
    if (u.empty()) continue;
    while (true) {
      std::vector<Value> args;
      args.reserve(arity);
      for (std::size_t i = 0; i < arity; ++i) args.push_back(u[idx[i]]);
      pool.emplace_back(rel, std::move(args));
      std::size_t pos = 0;
      while (pos < arity) {
        if (++idx[pos] < u.size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == arity) break;
    }
  }

  Instance current;
  std::optional<Instance> found;
  std::function<void(std::size_t)> descend = [&](std::size_t start) {
    if (found.has_value()) return;
    if (!IsParallelCorrectOn(query, policy, current)) {
      found = current;
      return;
    }
    if (current.Size() >= max_facts) return;
    for (std::size_t i = start; i < pool.size() && !found.has_value(); ++i) {
      Instance next = current;
      next.Insert(pool[i]);
      std::swap(current, next);
      descend(i + 1);
      std::swap(current, next);
    }
  };
  descend(0);
  return found;
}

}  // namespace lamp
