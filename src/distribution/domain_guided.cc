#include "distribution/domain_guided.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace lamp {

DomainGuidedPolicy::DomainGuidedPolicy(std::size_t num_nodes,
                                       std::vector<Value> universe,
                                       DomainAssignment alpha)
    : num_nodes_(num_nodes),
      universe_(std::move(universe)),
      alpha_(std::move(alpha)) {
  LAMP_CHECK(num_nodes_ > 0);
}

DomainGuidedPolicy DomainGuidedPolicy::HashBased(std::size_t num_nodes,
                                                 std::vector<Value> universe,
                                                 std::uint64_t seed) {
  return DomainGuidedPolicy(
      num_nodes, std::move(universe),
      [num_nodes, seed](Value a) -> std::vector<NodeId> {
        return {static_cast<NodeId>(
            HashMix(static_cast<std::uint64_t>(a.v) ^ HashMix(seed)) %
            num_nodes)};
      });
}

bool DomainGuidedPolicy::IsResponsible(NodeId node, const Fact& fact) const {
  if (fact.args.empty()) return true;
  for (Value a : fact.args) {
    const std::vector<NodeId> nodes = alpha_(a);
    if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace lamp
