#include "distribution/policies.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace lamp {

void FinitePolicy::Assign(NodeId node, const Fact& fact) {
  LAMP_CHECK(node < num_nodes_);
  responsible_[fact].insert(node);
}

bool FinitePolicy::IsResponsible(NodeId node, const Fact& fact) const {
  auto it = responsible_.find(fact);
  return it != responsible_.end() && it->second.count(node) > 0;
}

void HashPolicy::SetKey(RelationId relation, std::vector<std::size_t> columns) {
  keys_[relation] = std::move(columns);
}

NodeId HashPolicy::TargetNode(const Fact& fact) const {
  auto it = keys_.find(fact.relation);
  LAMP_CHECK_MSG(it != keys_.end(), "relation has no distribution key");
  std::uint64_t h = HashMix(seed_);
  for (std::size_t col : it->second) {
    LAMP_CHECK(col < fact.args.size());
    h = HashCombine(h, static_cast<std::uint64_t>(fact.args[col].v));
  }
  return static_cast<NodeId>(h % num_nodes_);
}

bool HashPolicy::IsResponsible(NodeId node, const Fact& fact) const {
  auto it = keys_.find(fact.relation);
  if (it == keys_.end()) return true;  // Broadcast relation.
  return TargetNode(fact) == node;
}

RangePolicy::RangePolicy(std::vector<Value> universe,
                         RelationId keyed_relation, std::size_t column,
                         std::vector<std::int64_t> bounds)
    : universe_(std::move(universe)),
      keyed_relation_(keyed_relation),
      column_(column),
      bounds_(std::move(bounds)) {
  LAMP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

bool RangePolicy::IsResponsible(NodeId node, const Fact& fact) const {
  if (fact.relation != keyed_relation_) return true;  // Broadcast.
  LAMP_CHECK(column_ < fact.args.size());
  const std::int64_t key = fact.args[column_].v;
  // Number of bounds <= key gives the bucket index.
  const auto bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), key) -
      bounds_.begin());
  return bucket == node;
}

std::vector<Value> MakeUniverse(std::size_t n) {
  std::vector<Value> u;
  u.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    u.emplace_back(static_cast<std::int64_t>(i));
  }
  return u;
}

}  // namespace lamp
