#ifndef LAMP_DISTRIBUTION_POLICY_H_
#define LAMP_DISTRIBUTION_POLICY_H_

#include <cstdint>
#include <vector>

#include "relational/instance.h"

/// \file
/// Distribution policies (Section 4.1 of the paper).
///
/// A distribution policy P = (U, rfacts_P) for a network N maps each node
/// to the set of facts over U it is *responsible* for. The interface is the
/// membership test IsResponsible(node, fact) — the paper's class P_npoly,
/// where responsibility is decided by an algorithm rather than enumerated —
/// plus the finite universe U that the exact deciders quantify over.

namespace lamp {

/// Identifier of a network node; nodes are 0 .. NumNodes()-1.
using NodeId = std::uint32_t;

/// Abstract distribution policy.
class DistributionPolicy {
 public:
  virtual ~DistributionPolicy() = default;

  /// Number of nodes in the network N.
  virtual std::size_t NumNodes() const = 0;

  /// The finite universe U the policy is defined over. Deciders enumerate
  /// valuations over this set (Proposition 4.6).
  virtual const std::vector<Value>& Universe() const = 0;

  /// True iff \p node is responsible for \p fact.
  virtual bool IsResponsible(NodeId node, const Fact& fact) const = 0;

  /// loc-inst_{P,I}(node) = I intersect rfacts_P(node).
  Instance LocalInstance(const Instance& instance, NodeId node) const;

  /// All nodes responsible for \p fact. The default scans every node;
  /// structured policies (HyperCube) override with a direct computation.
  virtual std::vector<NodeId> ResponsibleNodes(const Fact& fact) const;

  /// True when some node is responsible for every fact of \p facts
  /// ("the facts meet at some node" — the core of conditions PC0/PC1).
  bool SomeNodeHasAll(const Instance& facts) const;
};

}  // namespace lamp

#endif  // LAMP_DISTRIBUTION_POLICY_H_
