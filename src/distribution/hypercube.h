#ifndef LAMP_DISTRIBUTION_HYPERCUBE_H_
#define LAMP_DISTRIBUTION_HYPERCUBE_H_

#include <cstdint>
#include <vector>

#include "cq/cq.h"
#include "distribution/policy.h"

/// \file
/// The HyperCube (Shares) distribution policy (Section 3.1, Example 3.2).
///
/// Servers are arranged in a grid with one dimension per query variable;
/// variable v gets share alpha_v, and a hash function h_v maps domain
/// values to [0, alpha_v). A fact R(a1..ak) matching a body atom is
/// replicated to every server whose coordinates agree with the hashed
/// values at the atom's variable positions — so for every valuation V, all
/// facts required by V meet at the server with coordinates
/// (h_v(V(v)))_v. Every HyperCube distribution therefore *strongly
/// saturates* its query (Section 4.1), independent of shares and hashes.

namespace lamp {

/// Share assignment: shares[v] = alpha_v, indexed by VarId of the query.
using Shares = std::vector<std::size_t>;

/// HyperCube policy for one conjunctive query.
class HypercubePolicy : public DistributionPolicy {
 public:
  /// Builds the grid for \p query with the given \p shares (one entry per
  /// query variable, all >= 1). \p universe is the finite universe used by
  /// the exact deciders; \p seed picks the hash family member.
  HypercubePolicy(const ConjunctiveQuery& query, Shares shares,
                  std::vector<Value> universe, std::uint64_t seed = 0);

  std::size_t NumNodes() const override { return num_nodes_; }
  const std::vector<Value>& Universe() const override { return universe_; }
  bool IsResponsible(NodeId node, const Fact& fact) const override;
  std::vector<NodeId> ResponsibleNodes(const Fact& fact) const override;

  /// h_v(value) in [0, shares[v]).
  std::size_t HashVar(VarId v, Value value) const;

  /// Decodes a node id into its grid coordinates (one per variable).
  std::vector<std::size_t> Coordinates(NodeId node) const;

  /// The grid node at the given coordinates.
  NodeId NodeAt(const std::vector<std::size_t>& coords) const;

  const Shares& shares() const { return shares_; }
  const ConjunctiveQuery& query() const { return query_; }

  /// Replication factor of a fact matching body atom \p atom_index: the
  /// product of the shares of the variables *not* occurring in that atom.
  std::size_t ReplicationOf(std::size_t atom_index) const;

 private:
  /// Per-atom coordinate constraints for \p fact: fills \p constrained /
  /// \p coord for the atom's variable positions; returns false when the
  /// fact cannot match the atom (constant mismatch, repeated variable with
  /// diverging values, wrong relation/arity).
  bool ConstrainByAtom(const Atom& atom, const Fact& fact,
                       std::vector<bool>& constrained,
                       std::vector<std::size_t>& coord) const;

  ConjunctiveQuery query_;
  Shares shares_;
  std::vector<Value> universe_;
  std::uint64_t seed_;
  std::vector<std::size_t> stride_;
  std::size_t num_nodes_ = 1;
};

/// Uniform shares: every variable gets floor(p^(1/k)) (at least 1), the
/// Example 3.2 special case alpha_x = alpha_y = alpha_z = p^(1/3).
Shares UniformShares(const ConjunctiveQuery& query, std::size_t budget);

/// Expected per-server load of the HyperCube distribution with the given
/// \p shares:  sum_atoms m_atom / prod_{v in atom} alpha_v.  Each tuple of
/// atom e lands on a uniformly-hashed cell of the e-dimensions, so this is
/// the exact expectation for every input — including skewed ones. (What
/// skew breaks is the *concentration* of the maximum around this value:
/// a heavy hitter pins one coordinate and a single cell receives the
/// whole heavy group. The audit layer exploits exactly that gap.) This is
/// the same objective OptimizeIntegerShares minimizes.
double ExpectedHyperCubeLoad(const ConjunctiveQuery& query,
                             const Shares& shares,
                             const std::vector<double>& atom_sizes);

/// Best integer shares with product <= \p budget, minimizing the expected
/// per-server load  sum_atoms m_atom / prod_{v in atom} alpha_v  given the
/// relation sizes \p atom_sizes (one per body atom). Exhaustive search over
/// integer grids; budget is expected to be small (<= a few thousand).
Shares OptimizeIntegerShares(const ConjunctiveQuery& query,
                             std::size_t budget,
                             const std::vector<double>& atom_sizes);

/// Cost-model hook for the static planner (sa/plan): among \p candidates
/// plus UniformShares, returns the share vector minimizing
/// ExpectedHyperCubeLoad for the given \p atom_sizes, discarding
/// candidates that are malformed (wrong length, a zero share) or exceed
/// the server \p budget. Ties keep the earlier candidate, so a caller can
/// pin "the shares the bench actually runs" by passing them first.
Shares BestShares(const ConjunctiveQuery& query, std::size_t budget,
                  const std::vector<double>& atom_sizes,
                  const std::vector<Shares>& candidates);

/// The Afrati-Ullman Shares objective: integer shares with product exactly
/// \p num_servers minimizing the *total communication*
/// sum_atoms m_atom * prod_{v not in atom} alpha_v (each tuple of an atom
/// is replicated once per grid cell along the dimensions its atom does not
/// constrain). Exhaustive over the factorizations of num_servers.
Shares OptimizeIntegerSharesTotalComm(const ConjunctiveQuery& query,
                                      std::size_t num_servers,
                                      const std::vector<double>& atom_sizes);

}  // namespace lamp

#endif  // LAMP_DISTRIBUTION_HYPERCUBE_H_
