#include "distribution/policy.h"

namespace lamp {

Instance DistributionPolicy::LocalInstance(const Instance& instance,
                                           NodeId node) const {
  Instance local;
  instance.ForEachFact([this, node, &local](const Fact& f) {
    if (IsResponsible(node, f)) local.Insert(f);
  });
  return local;
}

std::vector<NodeId> DistributionPolicy::ResponsibleNodes(
    const Fact& fact) const {
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < NumNodes(); ++n) {
    if (IsResponsible(n, fact)) nodes.push_back(n);
  }
  return nodes;
}

bool DistributionPolicy::SomeNodeHasAll(const Instance& facts) const {
  for (NodeId n = 0; n < NumNodes(); ++n) {
    bool has_all = true;
    facts.ForEachFact([this, n, &has_all](const Fact& f) {
      if (has_all && !IsResponsible(n, f)) has_all = false;
    });
    if (has_all) return true;
  }
  return false;
}

}  // namespace lamp
