#include "distribution/policy.h"

namespace lamp {

Instance DistributionPolicy::LocalInstance(const Instance& instance,
                                           NodeId node) const {
  Instance local;
  for (const Fact& f : instance.AllFacts()) {
    if (IsResponsible(node, f)) local.Insert(f);
  }
  return local;
}

std::vector<NodeId> DistributionPolicy::ResponsibleNodes(
    const Fact& fact) const {
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < NumNodes(); ++n) {
    if (IsResponsible(n, fact)) nodes.push_back(n);
  }
  return nodes;
}

bool DistributionPolicy::SomeNodeHasAll(const Instance& facts) const {
  const std::vector<Fact> all = facts.AllFacts();
  for (NodeId n = 0; n < NumNodes(); ++n) {
    bool has_all = true;
    for (const Fact& f : all) {
      if (!IsResponsible(n, f)) {
        has_all = false;
        break;
      }
    }
    if (has_all) return true;
  }
  return false;
}

}  // namespace lamp
