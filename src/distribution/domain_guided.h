#ifndef LAMP_DISTRIBUTION_DOMAIN_GUIDED_H_
#define LAMP_DISTRIBUTION_DOMAIN_GUIDED_H_

#include <functional>
#include <vector>

#include "distribution/policy.h"

/// \file
/// Domain-guided distribution policies (Section 5.2.2 of the paper).
///
/// A domain assignment alpha maps each domain value to a set of nodes; the
/// induced policy P_alpha makes every node in alpha(a) responsible for
/// every fact containing a. Domain-guided policies are what the class
/// F2 = A2 = Mdisjoint of coordination-free computations is defined over:
/// they guarantee that for each value a there is a node holding *all* facts
/// that mention a.

namespace lamp {

/// P_alpha for a caller-supplied domain assignment.
class DomainGuidedPolicy : public DistributionPolicy {
 public:
  /// alpha(value) = set of nodes; must be nonempty for universe values.
  using DomainAssignment = std::function<std::vector<NodeId>(Value)>;

  DomainGuidedPolicy(std::size_t num_nodes, std::vector<Value> universe,
                     DomainAssignment alpha);

  /// The common hash-based assignment alpha(a) = { hash(a) mod p }.
  static DomainGuidedPolicy HashBased(std::size_t num_nodes,
                                      std::vector<Value> universe,
                                      std::uint64_t seed = 0);

  std::size_t NumNodes() const override { return num_nodes_; }
  const std::vector<Value>& Universe() const override { return universe_; }

  /// A node is responsible for R(a1..ak) iff it lies in some alpha(ai).
  /// Nullary facts are everyone's responsibility.
  bool IsResponsible(NodeId node, const Fact& fact) const override;

  /// alpha(value).
  std::vector<NodeId> AssignmentOf(Value value) const { return alpha_(value); }

 private:
  std::size_t num_nodes_;
  std::vector<Value> universe_;
  DomainAssignment alpha_;
};

}  // namespace lamp

#endif  // LAMP_DISTRIBUTION_DOMAIN_GUIDED_H_
