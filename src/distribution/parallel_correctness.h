#ifndef LAMP_DISTRIBUTION_PARALLEL_CORRECTNESS_H_
#define LAMP_DISTRIBUTION_PARALLEL_CORRECTNESS_H_

#include <optional>
#include <vector>

#include "cq/cq.h"
#include "cq/valuation.h"
#include "distribution/policy.h"
#include "relational/schema.h"

/// \file
/// Parallel-correctness (Section 4.1 of the paper).
///
/// [Q,P](I) is the one-round distributed evaluation: reshuffle I according
/// to policy P, evaluate Q locally everywhere, output the union
/// (Definition 4.2). Q is parallel-correct under P when [Q,P](I) = Q(I) for
/// every instance over P's universe.
///
/// The exact deciders implement:
///  * Condition (PC0) — "strongly saturates": every valuation's required
///    facts meet at some node (sufficient, not necessary; Example 4.3);
///  * Condition (PC1) — "saturates": every *minimal* valuation's required
///    facts meet at some node, which characterizes parallel-correctness
///    (Proposition 4.6);
///  * the UCQ generalization (union-aware minimality, [33]);
///  * instance-level checks (problem PCI), which also cover CQ-not via
///    parallel-soundness + parallel-completeness;
///  * a bounded exhaustive counterexample search used to cross-validate the
///    characterization and to handle CQ-not (where exact PC is
///    coNEXPTIME-complete, Theorem 4.9).

namespace lamp {

/// [Q,P](I): union over nodes of Q evaluated on the node's local instance.
Instance DistributedEval(const ConjunctiveQuery& query,
                         const DistributionPolicy& policy,
                         const Instance& instance);

/// Problem PCI for general queries (negation allowed): does the one-round
/// evaluation compute Q(I) on this instance?
bool IsParallelCorrectOn(const ConjunctiveQuery& query,
                         const DistributionPolicy& policy,
                         const Instance& instance);

/// Parallel-soundness on an instance: [Q,P](I) subseteq Q(I). Trivial for
/// monotone queries, the interesting half for CQ-not.
bool IsParallelSoundOn(const ConjunctiveQuery& query,
                       const DistributionPolicy& policy,
                       const Instance& instance);

/// Parallel-completeness on an instance: Q(I) subseteq [Q,P](I).
bool IsParallelCompleteOn(const ConjunctiveQuery& query,
                          const DistributionPolicy& policy,
                          const Instance& instance);

/// Condition (PC0): P strongly saturates Q.
bool StronglySaturates(const DistributionPolicy& policy,
                       const ConjunctiveQuery& query);

/// Condition (PC1): P saturates Q.
bool Saturates(const DistributionPolicy& policy, const ConjunctiveQuery& query);

/// Problem PC for CQs (with inequalities): exact, via Proposition 4.6.
bool IsParallelCorrect(const ConjunctiveQuery& query,
                       const DistributionPolicy& policy);

/// Minimality within a union (the [33] extension): valuation \p valuation
/// for disjunct \p index is UCQ-minimal when no valuation of *any* disjunct
/// derives the same head fact from a strict subset of its required facts.
bool IsMinimalForUnion(const std::vector<ConjunctiveQuery>& union_queries,
                       std::size_t index, const Valuation& valuation);

/// Problem PC for unions of CQs: exact, via union-aware minimality.
bool IsParallelCorrectUnion(const std::vector<ConjunctiveQuery>& union_queries,
                            const DistributionPolicy& policy);

/// One (query, policy) cell of a parallel-correctness sweep. Pointees must
/// outlive the call.
struct PcCheck {
  const ConjunctiveQuery* query;
  const DistributionPolicy* policy;
};

/// Decides IsParallelCorrect for every check, fanned across the lamp::par
/// global pool (the checks are independent). verdicts[i] == 1 iff
/// checks[i] is parallel-correct; identical at every thread count.
std::vector<std::uint8_t> ParallelCorrectnessSweep(
    const std::vector<PcCheck>& checks);

/// Exhaustively searches instances over the policy's universe with at most
/// \p max_facts facts (schema-typed) for one where the one-round evaluation
/// is wrong. Returns the first counterexample found. Works for any query,
/// including CQ-not; cost is exponential in the fact pool.
std::optional<Instance> FindPcCounterexample(const Schema& schema,
                                             const ConjunctiveQuery& query,
                                             const DistributionPolicy& policy,
                                             std::size_t max_facts);

}  // namespace lamp

#endif  // LAMP_DISTRIBUTION_PARALLEL_CORRECTNESS_H_
