#ifndef LAMP_DISTRIBUTION_TRANSFER_H_
#define LAMP_DISTRIBUTION_TRANSFER_H_

#include "cq/cq.h"

/// \file
/// Parallel-correctness transfer (Section 4.2 of the paper).
///
/// Transfer Q ->pc Q' holds when Q' is parallel-correct under *every*
/// policy for which Q is (Definition 4.10); it lets a multi-query optimizer
/// reuse one data partitioning for a workload without reshuffling.
/// Proposition 4.13 characterizes transfer by the *covers* relation: for
/// every minimal valuation V' of Q' there is a minimal valuation V of Q
/// with V'(body') subseteq V(body).
///
/// The decider makes the paper's Pi^p_3 quantifier structure executable by
/// genericity: the outer valuation V' may be restricted to a universe of
/// |vars(Q')| fresh values plus all constants of both queries, and the
/// inner V to adom(V'(body')) plus constants plus |vars(Q)| fresh values —
/// every other valuation is isomorphic to one of these via a domain
/// permutation fixing the constants.

namespace lamp {

/// Definition 4.12: Q covers Q'.
bool Covers(const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime);

/// Proposition 4.13: transfer holds iff Q covers Q'.
bool ParallelCorrectnessTransfersTo(const ConjunctiveQuery& q,
                                    const ConjunctiveQuery& q_prime);

}  // namespace lamp

#endif  // LAMP_DISTRIBUTION_TRANSFER_H_
