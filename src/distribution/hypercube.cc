#include "distribution/hypercube.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"
#include "common/hash.h"

namespace lamp {

HypercubePolicy::HypercubePolicy(const ConjunctiveQuery& query, Shares shares,
                                 std::vector<Value> universe,
                                 std::uint64_t seed)
    : query_(query),
      shares_(std::move(shares)),
      universe_(std::move(universe)),
      seed_(seed) {
  LAMP_CHECK(shares_.size() == query_.NumVars());
  LAMP_CHECK(!shares_.empty());
  stride_.resize(shares_.size());
  for (std::size_t v = 0; v < shares_.size(); ++v) {
    LAMP_CHECK(shares_[v] >= 1);
    stride_[v] = num_nodes_;
    num_nodes_ *= shares_[v];
  }
}

std::size_t HypercubePolicy::HashVar(VarId v, Value value) const {
  return static_cast<std::size_t>(
      HashMix(static_cast<std::uint64_t>(value.v) ^ HashMix(seed_ + v)) %
      shares_[v]);
}

std::vector<std::size_t> HypercubePolicy::Coordinates(NodeId node) const {
  std::vector<std::size_t> coords(shares_.size());
  std::size_t rest = node;
  for (std::size_t v = 0; v < shares_.size(); ++v) {
    coords[v] = rest % shares_[v];
    rest /= shares_[v];
  }
  return coords;
}

NodeId HypercubePolicy::NodeAt(const std::vector<std::size_t>& coords) const {
  LAMP_CHECK(coords.size() == shares_.size());
  std::size_t node = 0;
  for (std::size_t v = 0; v < shares_.size(); ++v) {
    LAMP_CHECK(coords[v] < shares_[v]);
    node += coords[v] * stride_[v];
  }
  return static_cast<NodeId>(node);
}

bool HypercubePolicy::ConstrainByAtom(const Atom& atom, const Fact& fact,
                                      std::vector<bool>& constrained,
                                      std::vector<std::size_t>& coord) const {
  if (atom.relation != fact.relation) return false;
  if (atom.terms.size() != fact.args.size()) return false;
  std::fill(constrained.begin(), constrained.end(), false);
  for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
    const Term& t = atom.terms[pos];
    if (t.IsConst()) {
      if (t.constant != fact.args[pos]) return false;
      continue;
    }
    const std::size_t h = HashVar(t.var, fact.args[pos]);
    if (constrained[t.var] && coord[t.var] != h) return false;
    constrained[t.var] = true;
    coord[t.var] = h;
  }
  return true;
}

bool HypercubePolicy::IsResponsible(NodeId node, const Fact& fact) const {
  const std::vector<std::size_t> node_coords = Coordinates(node);
  std::vector<bool> constrained(shares_.size());
  std::vector<std::size_t> coord(shares_.size());
  for (const Atom& atom : query_.body()) {
    if (!ConstrainByAtom(atom, fact, constrained, coord)) continue;
    bool match = true;
    for (std::size_t v = 0; v < shares_.size(); ++v) {
      if (constrained[v] && node_coords[v] != coord[v]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::vector<NodeId> HypercubePolicy::ResponsibleNodes(const Fact& fact) const {
  std::vector<NodeId> nodes;
  std::vector<bool> constrained(shares_.size());
  std::vector<std::size_t> coord(shares_.size());
  std::vector<bool> seen(num_nodes_, false);
  for (const Atom& atom : query_.body()) {
    if (!ConstrainByAtom(atom, fact, constrained, coord)) continue;
    // Enumerate the sub-grid over the unconstrained dimensions.
    std::vector<std::size_t> free_dims;
    for (std::size_t v = 0; v < shares_.size(); ++v) {
      if (!constrained[v]) free_dims.push_back(v);
    }
    std::vector<std::size_t> coords = coord;
    for (std::size_t v : free_dims) coords[v] = 0;
    while (true) {
      const NodeId node = NodeAt(coords);
      if (!seen[node]) {
        seen[node] = true;
        nodes.push_back(node);
      }
      std::size_t i = 0;
      for (; i < free_dims.size(); ++i) {
        const std::size_t v = free_dims[i];
        if (++coords[v] < shares_[v]) break;
        coords[v] = 0;
      }
      if (i == free_dims.size()) break;
    }
  }
  return nodes;
}

std::size_t HypercubePolicy::ReplicationOf(std::size_t atom_index) const {
  LAMP_CHECK(atom_index < query_.body().size());
  std::vector<bool> in_atom(shares_.size(), false);
  for (const Term& t : query_.body()[atom_index].terms) {
    if (t.IsVar()) in_atom[t.var] = true;
  }
  std::size_t replication = 1;
  for (std::size_t v = 0; v < shares_.size(); ++v) {
    if (!in_atom[v]) replication *= shares_[v];
  }
  return replication;
}

Shares UniformShares(const ConjunctiveQuery& query, std::size_t budget) {
  const std::size_t k = query.NumVars();
  LAMP_CHECK(k > 0);
  auto share = static_cast<std::size_t>(
      std::floor(std::pow(static_cast<double>(budget), 1.0 / k) + 1e-9));
  if (share < 1) share = 1;
  return Shares(k, share);
}

double ExpectedHyperCubeLoad(const ConjunctiveQuery& query,
                             const Shares& shares,
                             const std::vector<double>& atom_sizes) {
  LAMP_CHECK(shares.size() == query.NumVars());
  LAMP_CHECK(atom_sizes.size() == query.body().size());
  double load = 0.0;
  for (std::size_t a = 0; a < query.body().size(); ++a) {
    double denom = 1.0;
    // A repeated variable constrains only one dimension; count each
    // variable once per atom (matches ConstrainByAtom's coordinates).
    std::vector<bool> seen(shares.size(), false);
    for (const Term& t : query.body()[a].terms) {
      if (t.IsVar() && !seen[t.var]) {
        seen[t.var] = true;
        denom *= static_cast<double>(shares[t.var]);
      }
    }
    load += atom_sizes[a] / denom;
  }
  return load;
}

Shares OptimizeIntegerShares(const ConjunctiveQuery& query,
                             std::size_t budget,
                             const std::vector<double>& atom_sizes) {
  const std::size_t k = query.NumVars();
  LAMP_CHECK(k > 0);
  LAMP_CHECK(atom_sizes.size() == query.body().size());

  // Precompute which variables occur in each atom.
  std::vector<std::vector<bool>> occurs(query.body().size(),
                                        std::vector<bool>(k, false));
  for (std::size_t a = 0; a < query.body().size(); ++a) {
    for (const Term& t : query.body()[a].terms) {
      if (t.IsVar()) occurs[a][t.var] = true;
    }
  }

  Shares best(k, 1);
  double best_load = -1.0;
  Shares current(k, 1);

  // Depth-first over share vectors with product <= budget.
  std::function<void(std::size_t, std::size_t)> descend =
      [&](std::size_t v, std::size_t remaining) {
        if (v == k) {
          double load = 0.0;
          for (std::size_t a = 0; a < occurs.size(); ++a) {
            double denom = 1.0;
            for (std::size_t u = 0; u < k; ++u) {
              if (occurs[a][u]) denom *= static_cast<double>(current[u]);
            }
            load += atom_sizes[a] / denom;
          }
          if (best_load < 0.0 || load < best_load) {
            best_load = load;
            best = current;
          }
          return;
        }
        for (std::size_t share = 1; share <= remaining; ++share) {
          current[v] = share;
          descend(v + 1, remaining / share);
        }
        current[v] = 1;
      };
  descend(0, budget);
  return best;
}

Shares BestShares(const ConjunctiveQuery& query, std::size_t budget,
                  const std::vector<double>& atom_sizes,
                  const std::vector<Shares>& candidates) {
  std::vector<Shares> pool = candidates;
  pool.push_back(UniformShares(query, budget));
  Shares best;
  double best_load = -1.0;
  for (const Shares& shares : pool) {
    if (shares.size() != query.NumVars()) continue;
    std::size_t product = 1;
    bool valid = true;
    for (const std::size_t s : shares) {
      if (s == 0) {
        valid = false;
        break;
      }
      product *= s;
    }
    if (!valid || product > budget) continue;
    const double load = ExpectedHyperCubeLoad(query, shares, atom_sizes);
    if (best_load < 0.0 || load < best_load) {
      best_load = load;
      best = shares;
    }
  }
  // UniformShares is always well-formed and within budget, so best is set.
  return best;
}

Shares OptimizeIntegerSharesTotalComm(const ConjunctiveQuery& query,
                                      std::size_t num_servers,
                                      const std::vector<double>& atom_sizes) {
  const std::size_t k = query.NumVars();
  LAMP_CHECK(k > 0);
  LAMP_CHECK(num_servers > 0);
  LAMP_CHECK(atom_sizes.size() == query.body().size());

  std::vector<std::vector<bool>> occurs(query.body().size(),
                                        std::vector<bool>(k, false));
  for (std::size_t a = 0; a < query.body().size(); ++a) {
    for (const Term& t : query.body()[a].terms) {
      if (t.IsVar()) occurs[a][t.var] = true;
    }
  }

  Shares best(k, 1);
  double best_comm = -1.0;
  Shares current(k, 1);

  // Depth-first over exact factorizations: the product of the remaining
  // slots must divide out `remaining` completely.
  std::function<void(std::size_t, std::size_t)> descend =
      [&](std::size_t v, std::size_t remaining) {
        if (v == k) {
          if (remaining != 1) return;  // Not an exact factorization.
          double comm = 0.0;
          for (std::size_t a = 0; a < occurs.size(); ++a) {
            double replication = 1.0;
            for (std::size_t u = 0; u < k; ++u) {
              if (!occurs[a][u]) replication *= static_cast<double>(current[u]);
            }
            comm += atom_sizes[a] * replication;
          }
          if (best_comm < 0.0 || comm < best_comm) {
            best_comm = comm;
            best = current;
          }
          return;
        }
        for (std::size_t share = 1; share <= remaining; ++share) {
          if (remaining % share != 0) continue;
          current[v] = share;
          descend(v + 1, remaining / share);
        }
        current[v] = 1;
      };
  descend(0, num_servers);
  LAMP_CHECK_MSG(best_comm >= 0.0, "no exact factorization found");
  return best;
}

}  // namespace lamp
