#ifndef LAMP_OBS_CHROME_TRACE_H_
#define LAMP_OBS_CHROME_TRACE_H_

#include "obs/json.h"
#include "obs/trace.h"

/// \file
/// Exports a lamp.trace.v1 recording to the Chrome Trace Event Format —
/// the JSON object format understood by Perfetto (ui.perfetto.dev) and
/// chrome://tracing — so any MPC or transducer run can be inspected in a
/// standard trace viewer instead of only through tools/trace_dump.
///
/// Mapping (all events live in pid 1, "lamp"):
///   tracer shard i     -> tid i, named "tracer shard i" via thread_name
///                         metadata (per-thread ring shards become viewer
///                         tracks)
///   span               -> one complete "X" event; lamp spans are emitted
///                         at their *end* with the duration in value, so
///                         ts = t_ns - value and dur = value
///   mpc.round_end      -> counter "mpc.round_load" (total tuples routed)
///   mpc.server_load    -> counter "mpc.server_load" (per-delivery tuples)
///   net.broadcast,
///   net.deliver        -> counter "net.message_facts" (facts per message)
///   datalog.iteration  -> counter "datalog.delta" (delta cardinality)
///   transport.send,
///   transport.recv     -> counter "transport.wire_bytes" with two series
///                         (cumulative "sent"/"received" lamp.wire.v1
///                         bytes; the staircase slope is instantaneous
///                         wire throughput)
///   every non-span kind -> thread-scoped instant "i" event named by its
///                         wire kind, payload in args {a, b, value}
///
/// Timestamps convert from integer nanoseconds to the format's fractional
/// microseconds. Events missing a "shard" field (traces recorded before
/// shard indices were serialised) map to tid 0.

namespace lamp::obs {

/// Converts a parsed lamp.trace.v1 document. Unknown event kinds still
/// produce instant events; a document without an "events" array yields
/// just the process/thread metadata.
JsonValue ChromeTraceFromTraceJson(const JsonValue& trace);

/// Convenience overload for a live tracer.
JsonValue ChromeTraceFromTracer(const Tracer& tracer);

}  // namespace lamp::obs

#endif  // LAMP_OBS_CHROME_TRACE_H_
