#ifndef LAMP_OBS_DIST_SHARD_H_
#define LAMP_OBS_DIST_SHARD_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

/// \file
/// Per-process trace shards ("lamp.traceshard.v1"): the on-disk half of
/// distributed tracing.
///
/// Every `mpc_procs` worker runs with an isolated in-process Tracer; at
/// exit it flushes the ring buffer to a JSON-lines file so a merger
/// (obs/dist/merge.h, `trace_dump --merge`) can reassemble one mesh-wide
/// trace after the processes are gone. The format is JSON-lines rather
/// than one document so a crashed worker still leaves a parseable prefix:
///
///   line 1:   {"schema":"lamp.traceshard.v1","rank":R,"procs":P,
///              "trace_id":T,"label":"...","ring_t0_ns":..,"ring_t1_ns":..,
///              "ring_fold_ns":..,"dropped":D,"total_emitted":E}
///   line 2..: {"t_ns":..,"kind":"dist.send","a":..,"b":..,"value":..}
///
/// Event lines use the same field names as "lamp.trace.v1" events, so any
/// trace.v1 reader understands them once the header line is skipped.
///
/// Clock metadata: process-local tracer clocks start at an arbitrary
/// epoch, so shard timestamps are mutually incomparable until aligned.
/// The ring seed exchange (tools/mpc_procs) doubles as the timing probe —
/// it is the one moment every process provably touches the same token in
/// a known order:
///  * rank 0 records `ring_t0_ns` when it starts the fold lap and
///    `ring_t1_ns` when the folded token returns (a full ring lap);
///  * every rank records `ring_fold_ns`, its local clock when the fold
///    token passed through it.
/// The merger interpolates rank r's position in rank 0's lap
/// (t0 + r/p of the lap) to estimate per-process clock offsets; see
/// obs/dist/merge.h for the alignment contract.

namespace lamp::obs::dist {

/// Shard metadata (the first JSON line).
struct ShardHeader {
  std::uint64_t rank = 0;      // This process's server rank.
  std::uint64_t procs = 1;     // Mesh size p.
  std::uint64_t trace_id = 0;  // Shared by all shards of one run.
  std::string label;           // Scenario/run label (free-form).
  std::uint64_t ring_t0_ns = 0;    // Rank 0 only: fold-lap start.
  std::uint64_t ring_t1_ns = 0;    // Rank 0 only: fold-lap end.
  std::uint64_t ring_fold_ns = 0;  // Local time the fold token arrived.
  std::uint64_t dropped = 0;       // Ring-buffer drops in this process.
  std::uint64_t total_emitted = 0;

  JsonValue ToJson() const;
  static std::optional<ShardHeader> FromJson(const JsonValue& doc);
};

/// One event line. Same payload as a TraceEvent, but with the kind as its
/// stable wire name and the label owned (shards outlive the process whose
/// static strings TraceEvent::label pointed into).
struct ShardEvent {
  std::uint64_t t_ns = 0;
  std::string kind;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t value = 0;
  std::string label;
};

/// A loaded shard: header plus events in emission order.
struct TraceShard {
  ShardHeader header;
  std::vector<ShardEvent> events;
};

/// Canonical shard path `<prefix>.<label>.p<procs>.r<rank>.jsonl`. The
/// label and mesh size are baked into the name so one LAMP_TRACE_SHARD
/// prefix survives a --selfcheck sweep (scenarios × p) without shards
/// overwriting each other.
std::string ShardPath(std::string_view prefix, std::string_view label,
                      std::uint64_t procs, std::uint64_t rank);

/// Writes \p tracer's merged ring content as a shard. `header.dropped` and
/// `header.total_emitted` are overwritten from the tracer; every other
/// header field is the caller's.
void WriteShard(std::ostream& os, const ShardHeader& header,
                const Tracer& tracer);

/// WriteShard to a file; false (with no partial file guarantees) when the
/// path cannot be opened.
bool WriteShardFile(const std::string& path, const ShardHeader& header,
                    const Tracer& tracer);

/// Parses one shard. Returns nullopt and sets \p error (when non-null) on
/// a missing/malformed header line; malformed *event* lines after a good
/// header are skipped so a truncated tail (crashed worker) still loads.
std::optional<TraceShard> ParseShard(std::istream& is, std::string* error);
std::optional<TraceShard> LoadShardFile(const std::string& path,
                                        std::string* error);

}  // namespace lamp::obs::dist

#endif  // LAMP_OBS_DIST_SHARD_H_
