#ifndef LAMP_OBS_DIST_MERGE_H_
#define LAMP_OBS_DIST_MERGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/dist/shard.h"
#include "obs/json.h"

/// \file
/// Shard merging: reassembles the per-process trace shards of one
/// `mpc_procs` run (obs/dist/shard.h) into a single mesh-wide trace with
/// aligned clocks, matched send/recv pairs and wire-latency statistics.
///
/// Join key. A sender stamps every cross-process fact batch with a span
/// id (its per-process send sequence number) and emits a `dist.send`
/// event; the kTraceCtx wire frame carries (trace id, span, round) to the
/// receiver, which emits `dist.recv` with the *sender's* rank and span.
/// (sender rank, span) is globally unique, so the merge is an exact
/// equi-join — no heuristics, and unmatched events are counted, never
/// guessed at.
///
/// Clock alignment, in two steps:
///  1. *Estimate.* Rank 0 measured the seed-exchange fold lap
///     [ring_t0_ns, ring_t1_ns] on its own clock; the fold token visited
///     ranks in ring order, so rank r's local `ring_fold_ns` is modelled
///     as rank-0 time t0 + (r/p)·lap. The difference is the initial
///     offset estimate.
///  2. *Repair.* Estimates are only as good as the uniform-hop model, so
///     the merger then enforces causality as a system of difference
///     constraints: for every matched pair i→j,
///         offset_j - offset_i >= send_ns - recv_ns + min_latency_ns.
///     Longest-path relaxation (Bellman–Ford over pair constraints)
///     yields the smallest adjustment that makes every aligned send
///     strictly precede its aligned recv. The system is always feasible
///     on causally-consistent shards: around any cycle of pairs the true
///     positive wire latencies telescope the constraint sum negative.
///     Offsets are then normalised so the smallest is 0 (timestamps stay
///     unsigned); infeasibility — corrupt or mixed-run shards — is a
///     merge error, not a crash.
///
/// Merge invariants (checked by tests/dist_trace_test.cc and the
/// mpc_procs acceptance ctest):
///  * every matched pair has aligned send_ns < recv_ns;
///  * Lamport depths computed on the aligned order agree with causality
///    (a message's depth is strictly below its receiver's next send);
///  * pair order, depths and offsets are deterministic functions of the
///    shard contents (golden-pinnable).

namespace lamp::obs::dist {

/// One cross-process message: a `dist.send` joined with its `dist.recv`.
struct MatchedPair {
  std::uint32_t from = 0;      // Sender rank.
  std::uint32_t to = 0;        // Receiver rank.
  std::uint64_t span = 0;      // Sender's span id (join key with `from`).
  std::uint64_t round = 0;     // Logical MPC round.
  std::uint64_t send_ns = 0;   // Aligned send timestamp.
  std::uint64_t recv_ns = 0;   // Aligned recv timestamp (> send_ns).
  std::uint64_t depth = 0;     // Lamport depth of the message.
  std::uint32_t parent = 0;    // Pair index + 1 of the *deepest* delivery
                               // the sender had consumed before this send
                               // (the one that determined depth - 1);
                               // 0 = no prior delivery (root message).

  std::uint64_t latency_ns() const { return recv_ns - send_ns; }
};

struct MergeOptions {
  /// Minimum enforced aligned wire latency. 1 keeps "send strictly before
  /// recv" with the least possible distortion of the estimates.
  std::int64_t min_latency_ns = 1;
};

/// The reassembled run.
struct MergedTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t procs = 0;
  std::string label;
  std::vector<TraceShard> shards;        // Sorted by rank; one per rank.
  std::vector<std::int64_t> offset_ns;   // Per rank; add to local t_ns to
                                         // get aligned time. min is 0.
  std::vector<MatchedPair> pairs;        // Sorted by (send_ns, from, span).
  std::uint64_t unmatched_sends = 0;     // dist.send without a recv.
  std::uint64_t unmatched_recvs = 0;     // dist.recv without a send.
  std::uint64_t total_dropped = 0;       // Σ shard ring-buffer drops.
  std::uint64_t max_depth = 0;           // Deepest Lamport recv clock.

  /// Local shard time -> aligned mesh time.
  std::uint64_t AlignedNs(std::uint64_t rank, std::uint64_t t_ns) const {
    return t_ns + static_cast<std::uint64_t>(offset_ns[rank]);
  }
};

/// Merges one run's shards. Requirements: at least one shard; exactly the
/// ranks 0..procs-1, each once; consistent procs and trace_id. On
/// violation (or an infeasible constraint system) returns nullopt and
/// sets \p error when non-null.
std::optional<MergedTrace> MergeShards(std::vector<TraceShard> shards,
                                       std::string* error,
                                       const MergeOptions& options = {});

/// Percentile summary of pair latencies.
struct LatencyStats {
  std::size_t count = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// End-to-end stats over every matched pair.
LatencyStats EndToEndLatency(const MergedTrace& merged);

/// Per-round stats, ascending by round.
struct RoundLatency {
  std::uint64_t round = 0;
  LatencyStats stats;
};
std::vector<RoundLatency> RoundLatencies(const MergedTrace& merged);

/// "lamp.wirelat.v1": the latency summary fed into audit/bench JSON.
JsonValue LatencySummaryJson(const MergedTrace& merged);

/// "lamp.merged_trace.v1": full merged document (offsets, per-shard drop
/// counts, matched pairs, latency summary). Deterministic for
/// deterministic shards — the golden-pin target.
JsonValue MergedTraceJson(const MergedTrace& merged);

/// Chrome Trace Event export: one process lane per server rank (pid =
/// rank + 1), matched pairs as flow arrows ("s"/"f" bound to 1 µs "X"
/// slices at send and recv), span events as slices and everything else as
/// instants in the owning rank's lane. Load with chrome://tracing or
/// Perfetto.
JsonValue MergedChromeTrace(const MergedTrace& merged);

}  // namespace lamp::obs::dist

#endif  // LAMP_OBS_DIST_MERGE_H_
