#include "obs/dist/shard.h"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

namespace lamp::obs::dist {

namespace {

constexpr std::string_view kSchema = "lamp.traceshard.v1";

std::uint64_t GetU64(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.Find(key);
  return v == nullptr ? 0 : static_cast<std::uint64_t>(v->AsInt());
}

}  // namespace

JsonValue ShardHeader::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", kSchema);
  doc.Set("rank", static_cast<std::size_t>(rank));
  doc.Set("procs", static_cast<std::size_t>(procs));
  doc.Set("trace_id", static_cast<std::size_t>(trace_id));
  doc.Set("label", label);
  doc.Set("ring_t0_ns", static_cast<std::size_t>(ring_t0_ns));
  doc.Set("ring_t1_ns", static_cast<std::size_t>(ring_t1_ns));
  doc.Set("ring_fold_ns", static_cast<std::size_t>(ring_fold_ns));
  doc.Set("dropped", static_cast<std::size_t>(dropped));
  doc.Set("total_emitted", static_cast<std::size_t>(total_emitted));
  return doc;
}

std::optional<ShardHeader> ShardHeader::FromJson(const JsonValue& doc) {
  if (!doc.IsObject()) return std::nullopt;
  const JsonValue* tag = doc.Find("schema");
  if (tag == nullptr || !tag->IsString() || tag->AsString() != kSchema) {
    return std::nullopt;
  }
  ShardHeader header;
  header.rank = GetU64(doc, "rank");
  header.procs = GetU64(doc, "procs");
  header.trace_id = GetU64(doc, "trace_id");
  if (const JsonValue* v = doc.Find("label"); v != nullptr && v->IsString()) {
    header.label = v->AsString();
  }
  header.ring_t0_ns = GetU64(doc, "ring_t0_ns");
  header.ring_t1_ns = GetU64(doc, "ring_t1_ns");
  header.ring_fold_ns = GetU64(doc, "ring_fold_ns");
  header.dropped = GetU64(doc, "dropped");
  header.total_emitted = GetU64(doc, "total_emitted");
  if (header.procs == 0) header.procs = 1;
  return header;
}

std::string ShardPath(std::string_view prefix, std::string_view label,
                      std::uint64_t procs, std::uint64_t rank) {
  std::string path(prefix);
  path += '.';
  for (const char c : label) {
    // Labels are free-form; keep the path shell-safe.
    path += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
             c == '_')
                ? c
                : '_';
  }
  path += ".p";
  path += std::to_string(procs);
  path += ".r";
  path += std::to_string(rank);
  path += ".jsonl";
  return path;
}

void WriteShard(std::ostream& os, const ShardHeader& header,
                const Tracer& tracer) {
  ShardHeader h = header;
  h.dropped = tracer.dropped();
  h.total_emitted = tracer.total_emitted();
  os << h.ToJson().Dump() << "\n";
  for (const TraceEvent& e : tracer.Events()) {
    JsonValue je = JsonValue::Object();
    je.Set("t_ns", static_cast<std::size_t>(e.t_ns));
    je.Set("kind", EventKindName(e.kind));
    je.Set("a", static_cast<std::size_t>(e.a));
    je.Set("b", static_cast<std::size_t>(e.b));
    je.Set("value", static_cast<std::size_t>(e.value));
    if (e.label != nullptr) je.Set("label", e.label);
    os << je.Dump() << "\n";
  }
}

bool WriteShardFile(const std::string& path, const ShardHeader& header,
                    const Tracer& tracer) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  WriteShard(os, header, tracer);
  return static_cast<bool>(os);
}

std::optional<TraceShard> ParseShard(std::istream& is, std::string* error) {
  std::string line;
  if (!std::getline(is, line)) {
    if (error != nullptr) *error = "empty shard (no header line)";
    return std::nullopt;
  }
  const auto header_doc = JsonValue::Parse(line);
  if (!header_doc.has_value()) {
    if (error != nullptr) *error = "malformed shard header line";
    return std::nullopt;
  }
  auto header = ShardHeader::FromJson(*header_doc);
  if (!header.has_value()) {
    if (error != nullptr) {
      *error = "header line is not a lamp.traceshard.v1 document";
    }
    return std::nullopt;
  }
  TraceShard shard;
  shard.header = std::move(*header);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto doc = JsonValue::Parse(line);
    // A truncated tail (the worker died mid-write) is data loss, not a
    // load failure: keep what parsed.
    if (!doc.has_value() || !doc->IsObject()) continue;
    ShardEvent e;
    e.t_ns = GetU64(*doc, "t_ns");
    if (const JsonValue* v = doc->Find("kind"); v != nullptr && v->IsString()) {
      e.kind = v->AsString();
    }
    e.a = static_cast<std::uint32_t>(GetU64(*doc, "a"));
    e.b = static_cast<std::uint32_t>(GetU64(*doc, "b"));
    e.value = GetU64(*doc, "value");
    if (const JsonValue* v = doc->Find("label");
        v != nullptr && v->IsString()) {
      e.label = v->AsString();
    }
    shard.events.push_back(std::move(e));
  }
  return shard;
}

std::optional<TraceShard> LoadShardFile(const std::string& path,
                                        std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open shard file: " + path;
    return std::nullopt;
  }
  return ParseShard(is, error);
}

}  // namespace lamp::obs::dist
