#include "obs/dist/merge.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/metrics.h"

namespace lamp::obs::dist {

namespace {

struct SendInfo {
  std::uint32_t to = 0;
  std::uint64_t round = 0;
  std::uint64_t t_ns = 0;
};

struct RecvInfo {
  std::uint32_t to = 0;
  std::uint64_t round = 0;
  std::uint64_t t_ns = 0;
};

/// (sender rank, span id): the globally unique message key.
using PairKey = std::pair<std::uint64_t, std::uint64_t>;

LatencyStats StatsOf(const std::vector<std::uint64_t>& latencies) {
  LatencyStats stats;
  stats.count = latencies.size();
  if (latencies.empty()) return stats;
  Histogram h;
  for (const std::uint64_t v : latencies) h.Observe(static_cast<double>(v));
  stats.p50_ns = static_cast<std::uint64_t>(h.P50());
  stats.p95_ns = static_cast<std::uint64_t>(h.P95());
  stats.p99_ns = static_cast<std::uint64_t>(h.P99());
  stats.max_ns = static_cast<std::uint64_t>(h.Max());
  return stats;
}

JsonValue StatsJson(const LatencyStats& stats) {
  JsonValue doc = JsonValue::Object();
  doc.Set("count", stats.count);
  doc.Set("p50_ns", static_cast<std::size_t>(stats.p50_ns));
  doc.Set("p95_ns", static_cast<std::size_t>(stats.p95_ns));
  doc.Set("p99_ns", static_cast<std::size_t>(stats.p99_ns));
  doc.Set("max_ns", static_cast<std::size_t>(stats.max_ns));
  return doc;
}

}  // namespace

std::optional<MergedTrace> MergeShards(std::vector<TraceShard> shards,
                                       std::string* error,
                                       const MergeOptions& options) {
  const auto fail = [error](std::string message) -> std::optional<MergedTrace> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  if (shards.empty()) return fail("no shards to merge");
  std::sort(shards.begin(), shards.end(),
            [](const TraceShard& a, const TraceShard& b) {
              return a.header.rank < b.header.rank;
            });
  MergedTrace merged;
  merged.procs = shards.front().header.procs;
  merged.trace_id = shards.front().header.trace_id;
  merged.label = shards.front().header.label;
  if (shards.size() != merged.procs) {
    return fail("expected " + std::to_string(merged.procs) + " shards, got " +
                std::to_string(shards.size()));
  }
  for (std::size_t r = 0; r < shards.size(); ++r) {
    const ShardHeader& h = shards[r].header;
    if (h.rank != r) {
      return fail("shard ranks are not exactly 0.." +
                  std::to_string(merged.procs - 1) + " (missing or duplicate " +
                  "rank " + std::to_string(r) + ")");
    }
    if (h.procs != merged.procs || h.trace_id != merged.trace_id) {
      return fail("shard for rank " + std::to_string(r) +
                  " belongs to a different run (procs/trace_id mismatch)");
    }
    merged.total_dropped += h.dropped;
  }
  merged.shards = std::move(shards);
  const std::size_t p = merged.procs;

  // --- step 1: offset estimates from the seed-exchange ring lap ---------
  std::vector<std::int64_t> off(p, 0);
  const ShardHeader& h0 = merged.shards[0].header;
  if (p > 1 && h0.ring_t1_ns > h0.ring_t0_ns) {
    const std::int64_t t0 = static_cast<std::int64_t>(h0.ring_t0_ns);
    const std::int64_t lap =
        static_cast<std::int64_t>(h0.ring_t1_ns - h0.ring_t0_ns);
    for (std::size_t r = 1; r < p; ++r) {
      // The fold token reached rank r about r/p of the way through the
      // lap (uniform-hop model); that instant read ring_fold_ns on rank
      // r's clock.
      const std::int64_t est_ref =
          t0 + lap * static_cast<std::int64_t>(r) / static_cast<std::int64_t>(p);
      off[r] =
          est_ref - static_cast<std::int64_t>(merged.shards[r].header.ring_fold_ns);
    }
  }

  // --- join dist.send with dist.recv on (sender rank, span) -------------
  std::map<PairKey, SendInfo> sends;
  std::map<PairKey, RecvInfo> recvs;
  for (const TraceShard& shard : merged.shards) {
    const std::uint64_t rank = shard.header.rank;
    for (const ShardEvent& e : shard.events) {
      if (e.kind == "dist.send") {
        const PairKey key{rank, e.value};
        if (!sends.emplace(key, SendInfo{e.a, e.b, e.t_ns}).second) {
          ++merged.unmatched_sends;  // Duplicate span id: keep the first.
        }
      } else if (e.kind == "dist.recv") {
        const PairKey key{e.a, e.value};
        if (!recvs
                 .emplace(key,
                          RecvInfo{static_cast<std::uint32_t>(rank), e.b,
                                   e.t_ns})
                 .second) {
          ++merged.unmatched_recvs;
        }
      }
    }
  }
  struct RawPair {
    std::uint32_t from, to;
    std::uint64_t span, round, send_ns, recv_ns;
  };
  std::vector<RawPair> raw;
  raw.reserve(sends.size());
  for (const auto& [key, send] : sends) {
    const auto it = recvs.find(key);
    if (it == recvs.end()) {
      ++merged.unmatched_sends;
      continue;
    }
    if (key.first >= p || it->second.to >= p) {
      return fail("pair references rank outside mesh");
    }
    raw.push_back(RawPair{static_cast<std::uint32_t>(key.first),
                          it->second.to, key.second, send.round, send.t_ns,
                          it->second.t_ns});
  }
  for (const auto& [key, recv] : recvs) {
    if (sends.find(key) == sends.end()) ++merged.unmatched_recvs;
  }

  // --- step 2: causality repair (difference constraints) ----------------
  // off[to] - off[from] >= send - recv + min_latency for every pair;
  // longest-path relaxation, anchored by normalising afterwards.
  const std::int64_t min_lat = options.min_latency_ns;
  bool changed = true;
  std::size_t iterations = 0;
  const std::size_t max_iterations = p * raw.size() + 2;
  while (changed) {
    if (++iterations > max_iterations) {
      return fail(
          "clock-offset constraints do not converge: shards are not "
          "causally consistent (mixed runs or corrupt timestamps)");
    }
    changed = false;
    for (const RawPair& pr : raw) {
      const std::int64_t need = off[pr.from] +
                                static_cast<std::int64_t>(pr.send_ns) -
                                static_cast<std::int64_t>(pr.recv_ns) + min_lat;
      if (off[pr.to] < need) {
        off[pr.to] = need;
        changed = true;
      }
    }
  }
  const std::int64_t base = *std::min_element(off.begin(), off.end());
  for (std::int64_t& o : off) o -= base;
  merged.offset_ns = std::move(off);

  // --- aligned pairs, deterministic order -------------------------------
  merged.pairs.reserve(raw.size());
  for (const RawPair& pr : raw) {
    MatchedPair pair;
    pair.from = pr.from;
    pair.to = pr.to;
    pair.span = pr.span;
    pair.round = pr.round;
    pair.send_ns = merged.AlignedNs(pr.from, pr.send_ns);
    pair.recv_ns = merged.AlignedNs(pr.to, pr.recv_ns);
    merged.pairs.push_back(pair);
  }
  std::sort(merged.pairs.begin(), merged.pairs.end(),
            [](const MatchedPair& a, const MatchedPair& b) {
              if (a.send_ns != b.send_ns) return a.send_ns < b.send_ns;
              if (a.from != b.from) return a.from < b.from;
              return a.span < b.span;
            });

  // --- Lamport depths over the aligned order ----------------------------
  // Same convention as the transducer runtime (obs/audit/causal.h): a
  // root message is depth 1; otherwise depth = 1 + the deepest message
  // its sender had consumed before sending.
  struct Endpoint {
    std::uint64_t t_ns;
    bool is_recv;
    std::uint32_t pair;  // Index into merged.pairs.
  };
  std::vector<Endpoint> order;
  order.reserve(merged.pairs.size() * 2);
  for (std::uint32_t i = 0; i < merged.pairs.size(); ++i) {
    order.push_back(Endpoint{merged.pairs[i].send_ns, false, i});
    order.push_back(Endpoint{merged.pairs[i].recv_ns, true, i});
  }
  std::sort(order.begin(), order.end(),
            [](const Endpoint& a, const Endpoint& b) {
              if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
              if (a.is_recv != b.is_recv) return !a.is_recv;  // Sends first.
              return a.pair < b.pair;
            });
  std::vector<std::uint64_t> consumed_depth(p, 0);  // Deepest consumed.
  std::vector<std::uint32_t> deepest_pair(p, 0);    // Its pair index + 1.
  for (const Endpoint& ep : order) {
    MatchedPair& pair = merged.pairs[ep.pair];
    if (!ep.is_recv) {
      pair.depth = consumed_depth[pair.from] + 1;
      pair.parent = deepest_pair[pair.from];
    } else {
      if (pair.depth > consumed_depth[pair.to]) {
        consumed_depth[pair.to] = pair.depth;
        deepest_pair[pair.to] = ep.pair + 1;
      }
      merged.max_depth = std::max(merged.max_depth, pair.depth);
    }
  }
  return merged;
}

LatencyStats EndToEndLatency(const MergedTrace& merged) {
  std::vector<std::uint64_t> latencies;
  latencies.reserve(merged.pairs.size());
  for (const MatchedPair& pair : merged.pairs) {
    latencies.push_back(pair.latency_ns());
  }
  return StatsOf(latencies);
}

std::vector<RoundLatency> RoundLatencies(const MergedTrace& merged) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> by_round;
  for (const MatchedPair& pair : merged.pairs) {
    by_round[pair.round].push_back(pair.latency_ns());
  }
  std::vector<RoundLatency> out;
  out.reserve(by_round.size());
  for (const auto& [round, latencies] : by_round) {
    out.push_back(RoundLatency{round, StatsOf(latencies)});
  }
  return out;
}

JsonValue LatencySummaryJson(const MergedTrace& merged) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.wirelat.v1");
  doc.Set("trace_id", static_cast<std::size_t>(merged.trace_id));
  doc.Set("procs", static_cast<std::size_t>(merged.procs));
  doc.Set("label", merged.label);
  doc.Set("pairs", merged.pairs.size());
  doc.Set("unmatched_sends", static_cast<std::size_t>(merged.unmatched_sends));
  doc.Set("unmatched_recvs", static_cast<std::size_t>(merged.unmatched_recvs));
  doc.Set("dropped", static_cast<std::size_t>(merged.total_dropped));
  doc.Set("max_depth", static_cast<std::size_t>(merged.max_depth));
  doc.Set("end_to_end", StatsJson(EndToEndLatency(merged)));
  JsonValue rounds = JsonValue::Array();
  for (const RoundLatency& rl : RoundLatencies(merged)) {
    JsonValue entry = StatsJson(rl.stats);
    entry.Set("round", static_cast<std::size_t>(rl.round));
    rounds.PushBack(std::move(entry));
  }
  doc.Set("rounds", std::move(rounds));
  return doc;
}

JsonValue MergedTraceJson(const MergedTrace& merged) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.merged_trace.v1");
  doc.Set("trace_id", static_cast<std::size_t>(merged.trace_id));
  doc.Set("procs", static_cast<std::size_t>(merged.procs));
  doc.Set("label", merged.label);
  JsonValue offsets = JsonValue::Array();
  for (const std::int64_t o : merged.offset_ns) {
    offsets.PushBack(static_cast<std::int64_t>(o));
  }
  doc.Set("offset_ns", std::move(offsets));
  JsonValue shards = JsonValue::Array();
  for (const TraceShard& shard : merged.shards) {
    JsonValue s = JsonValue::Object();
    s.Set("rank", static_cast<std::size_t>(shard.header.rank));
    s.Set("events", shard.events.size());
    s.Set("dropped", static_cast<std::size_t>(shard.header.dropped));
    s.Set("total_emitted",
          static_cast<std::size_t>(shard.header.total_emitted));
    shards.PushBack(std::move(s));
  }
  doc.Set("shards", std::move(shards));
  JsonValue pairs = JsonValue::Array();
  for (const MatchedPair& pair : merged.pairs) {
    JsonValue jp = JsonValue::Object();
    jp.Set("from", static_cast<std::size_t>(pair.from));
    jp.Set("to", static_cast<std::size_t>(pair.to));
    jp.Set("span", static_cast<std::size_t>(pair.span));
    jp.Set("round", static_cast<std::size_t>(pair.round));
    jp.Set("send_ns", static_cast<std::size_t>(pair.send_ns));
    jp.Set("recv_ns", static_cast<std::size_t>(pair.recv_ns));
    jp.Set("depth", static_cast<std::size_t>(pair.depth));
    jp.Set("parent", static_cast<std::size_t>(pair.parent));
    pairs.PushBack(std::move(jp));
  }
  doc.Set("pairs", std::move(pairs));
  // Every shard event, clock-aligned and merged; ties keep rank order
  // then per-shard emission order (deterministic for golden pinning).
  struct Merged {
    std::uint64_t t_ns;
    std::uint32_t rank;
    const ShardEvent* event;
  };
  std::vector<Merged> events;
  for (const TraceShard& shard : merged.shards) {
    for (const ShardEvent& e : shard.events) {
      events.push_back(Merged{
          merged.AlignedNs(shard.header.rank, e.t_ns),
          static_cast<std::uint32_t>(shard.header.rank), &e});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Merged& a, const Merged& b) {
                     return a.t_ns < b.t_ns;
                   });
  JsonValue out_events = JsonValue::Array();
  for (const Merged& m : events) {
    JsonValue je = JsonValue::Object();
    je.Set("t_ns", static_cast<std::size_t>(m.t_ns));
    je.Set("rank", static_cast<std::size_t>(m.rank));
    je.Set("kind", m.event->kind);
    je.Set("a", static_cast<std::size_t>(m.event->a));
    je.Set("b", static_cast<std::size_t>(m.event->b));
    je.Set("value", static_cast<std::size_t>(m.event->value));
    if (!m.event->label.empty()) je.Set("label", m.event->label);
    out_events.PushBack(std::move(je));
  }
  doc.Set("events", std::move(out_events));
  doc.Set("latency", LatencySummaryJson(merged));
  return doc;
}

JsonValue MergedChromeTrace(const MergedTrace& merged) {
  JsonValue events = JsonValue::Array();
  const auto us = [](std::uint64_t ns) {
    return JsonValue(static_cast<double>(ns) / 1000.0);
  };
  for (const TraceShard& shard : merged.shards) {
    const std::size_t pid = shard.header.rank + 1;
    JsonValue meta = JsonValue::Object();
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", pid);
    meta.Set("tid", std::size_t{0});
    JsonValue margs = JsonValue::Object();
    margs.Set("name", "server " + std::to_string(shard.header.rank));
    meta.Set("args", std::move(margs));
    events.PushBack(std::move(meta));
  }
  // Per-rank local events: spans as slices, the rest as thread instants.
  for (const TraceShard& shard : merged.shards) {
    const std::size_t pid = shard.header.rank + 1;
    const std::uint64_t rank = shard.header.rank;
    for (const ShardEvent& e : shard.events) {
      JsonValue je = JsonValue::Object();
      je.Set("name", e.label.empty() ? e.kind : e.label);
      je.Set("cat", e.kind);
      if (e.kind == "span") {
        je.Set("ph", "X");
        // A span event is stamped at its *end*; value is the duration.
        const std::uint64_t end_ns = merged.AlignedNs(rank, e.t_ns);
        const std::uint64_t start_ns =
            end_ns > e.value ? end_ns - e.value : 0;
        je.Set("ts", us(start_ns));
        je.Set("dur", us(e.value));
      } else {
        je.Set("ph", "i");
        je.Set("s", "t");
        je.Set("ts", us(merged.AlignedNs(rank, e.t_ns)));
      }
      je.Set("pid", pid);
      je.Set("tid", std::size_t{0});
      JsonValue args = JsonValue::Object();
      args.Set("a", static_cast<std::size_t>(e.a));
      args.Set("b", static_cast<std::size_t>(e.b));
      args.Set("value", static_cast<std::size_t>(e.value));
      je.Set("args", std::move(args));
      events.PushBack(std::move(je));
    }
  }
  // Matched pairs: a 1 µs slice at each endpoint with a flow arrow
  // (send lane -> recv lane) bound to them.
  for (std::size_t i = 0; i < merged.pairs.size(); ++i) {
    const MatchedPair& pair = merged.pairs[i];
    const std::string name = "wire " + std::to_string(pair.from) + "->" +
                             std::to_string(pair.to) + " r" +
                             std::to_string(pair.round);
    JsonValue args = JsonValue::Object();
    args.Set("span", static_cast<std::size_t>(pair.span));
    args.Set("round", static_cast<std::size_t>(pair.round));
    args.Set("latency_ns", static_cast<std::size_t>(pair.latency_ns()));
    args.Set("depth", static_cast<std::size_t>(pair.depth));
    const auto slice = [&](std::size_t pid, std::uint64_t ts_ns,
                           const char* suffix) {
      JsonValue je = JsonValue::Object();
      je.Set("name", name + suffix);
      je.Set("cat", "wire");
      je.Set("ph", "X");
      je.Set("ts", us(ts_ns));
      je.Set("dur", 1.0);
      je.Set("pid", pid);
      je.Set("tid", std::size_t{0});
      je.Set("args", args);
      events.PushBack(std::move(je));
    };
    slice(pair.from + 1, pair.send_ns, " send");
    slice(pair.to + 1, pair.recv_ns, " recv");
    const auto flow = [&](const char* ph, std::size_t pid,
                          std::uint64_t ts_ns) {
      JsonValue je = JsonValue::Object();
      je.Set("name", "wire");
      je.Set("cat", "wire");
      je.Set("ph", ph);
      je.Set("id", i + 1);
      je.Set("ts", us(ts_ns));
      je.Set("pid", pid);
      je.Set("tid", std::size_t{0});
      if (ph[0] == 'f') je.Set("bp", "e");
      events.PushBack(std::move(je));
    };
    flow("s", pair.from + 1, pair.send_ns);
    flow("f", pair.to + 1, pair.recv_ns);
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ns");
  JsonValue meta = JsonValue::Object();
  meta.Set("schema", "lamp.merged_trace.v1");
  meta.Set("trace_id", static_cast<std::size_t>(merged.trace_id));
  meta.Set("procs", static_cast<std::size_t>(merged.procs));
  meta.Set("label", merged.label);
  meta.Set("dropped", static_cast<std::size_t>(merged.total_dropped));
  doc.Set("metadata", std::move(meta));
  return doc;
}

}  // namespace lamp::obs::dist
