#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>

namespace lamp::obs {

namespace {

constexpr int kPid = 1;

double ToUs(std::uint64_t t_ns) { return static_cast<double>(t_ns) / 1e3; }

JsonValue MetadataEvent(const char* name, int tid, std::string_view value) {
  JsonValue e = JsonValue::Object();
  e.Set("name", name);
  e.Set("ph", "M");
  e.Set("pid", kPid);
  e.Set("tid", tid);
  JsonValue args = JsonValue::Object();
  args.Set("name", value);
  e.Set("args", std::move(args));
  return e;
}

JsonValue CounterEvent(std::string_view name, double ts_us, int tid,
                       std::string_view series, std::uint64_t value) {
  JsonValue e = JsonValue::Object();
  e.Set("name", name);
  e.Set("ph", "C");
  e.Set("ts", ts_us);
  e.Set("pid", kPid);
  e.Set("tid", tid);
  JsonValue args = JsonValue::Object();
  args.Set(series, static_cast<std::size_t>(value));
  e.Set("args", std::move(args));
  return e;
}

}  // namespace

JsonValue ChromeTraceFromTraceJson(const JsonValue& trace) {
  JsonValue events = JsonValue::Array();
  events.PushBack(MetadataEvent("process_name", 0, "lamp"));

  const JsonValue* in_events = trace.Find("events");

  // Thread-name metadata for every shard that appears; emitted up front so
  // viewers label tracks before the first real event.
  std::set<int> shards;
  if (in_events != nullptr && in_events->IsArray()) {
    for (std::size_t i = 0; i < in_events->size(); ++i) {
      const JsonValue* shard = in_events->at(i).Find("shard");
      shards.insert(shard != nullptr && shard->IsNumber()
                        ? static_cast<int>(shard->AsInt())
                        : 0);
    }
  }
  if (shards.empty()) shards.insert(0);
  for (int s : shards) {
    events.PushBack(MetadataEvent("thread_name", s,
                                  "tracer shard " + std::to_string(s)));
  }

  // Cumulative wire-byte totals feeding the dedicated transport counter
  // track: the viewer shows a monotone staircase whose slope is the
  // instantaneous wire throughput of the run.
  std::uint64_t wire_sent = 0;
  std::uint64_t wire_received = 0;

  if (in_events != nullptr && in_events->IsArray()) {
    for (std::size_t i = 0; i < in_events->size(); ++i) {
      const JsonValue& in = in_events->at(i);
      std::uint64_t t_ns = 0;
      std::uint64_t value = 0;
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      int tid = 0;
      std::string kind;
      std::string label;
      if (const auto* v = in.Find("t_ns")) {
        t_ns = static_cast<std::uint64_t>(v->AsInt());
      }
      if (const auto* v = in.Find("value")) {
        value = static_cast<std::uint64_t>(v->AsInt());
      }
      if (const auto* v = in.Find("a")) a = static_cast<std::uint32_t>(v->AsInt());
      if (const auto* v = in.Find("b")) b = static_cast<std::uint32_t>(v->AsInt());
      if (const auto* v = in.Find("shard")) tid = static_cast<int>(v->AsInt());
      if (const auto* v = in.Find("kind")) kind = v->AsString();
      if (const auto* v = in.Find("label")) label = v->AsString();

      if (kind == "span") {
        // The span event lands at its end; value carries the duration.
        JsonValue e = JsonValue::Object();
        e.Set("name", label.empty() ? "span" : label);
        e.Set("ph", "X");
        e.Set("ts", ToUs(t_ns >= value ? t_ns - value : 0));
        e.Set("dur", ToUs(value));
        e.Set("pid", kPid);
        e.Set("tid", tid);
        JsonValue args = JsonValue::Object();
        args.Set("a", static_cast<std::size_t>(a));
        e.Set("args", std::move(args));
        events.PushBack(std::move(e));
        continue;
      }

      JsonValue e = JsonValue::Object();
      e.Set("name", kind.empty() ? "event" : kind);
      e.Set("ph", "i");
      e.Set("ts", ToUs(t_ns));
      e.Set("pid", kPid);
      e.Set("tid", tid);
      e.Set("s", "t");
      JsonValue args = JsonValue::Object();
      args.Set("a", static_cast<std::size_t>(a));
      args.Set("b", static_cast<std::size_t>(b));
      args.Set("value", static_cast<std::size_t>(value));
      if (!label.empty()) args.Set("label", label);
      e.Set("args", std::move(args));
      events.PushBack(std::move(e));

      // Load-like kinds additionally feed a counter track.
      if (kind == "mpc.round_end") {
        events.PushBack(
            CounterEvent("mpc.round_load", ToUs(t_ns), tid, "tuples", value));
      } else if (kind == "mpc.server_load") {
        events.PushBack(
            CounterEvent("mpc.server_load", ToUs(t_ns), tid, "tuples", value));
      } else if (kind == "net.broadcast" || kind == "net.deliver") {
        events.PushBack(
            CounterEvent("net.message_facts", ToUs(t_ns), tid, "facts", value));
      } else if (kind == "datalog.iteration") {
        events.PushBack(
            CounterEvent("datalog.delta", ToUs(t_ns), tid, "facts", value));
      } else if (kind == "transport.send" || kind == "transport.recv") {
        if (kind == "transport.send") {
          wire_sent += value;
        } else {
          wire_received += value;
        }
        JsonValue counter = JsonValue::Object();
        counter.Set("name", "transport.wire_bytes");
        counter.Set("ph", "C");
        counter.Set("ts", ToUs(t_ns));
        counter.Set("pid", kPid);
        counter.Set("tid", tid);
        JsonValue series = JsonValue::Object();
        series.Set("sent", static_cast<std::size_t>(wire_sent));
        series.Set("received", static_cast<std::size_t>(wire_received));
        counter.Set("args", std::move(series));
        events.PushBack(std::move(counter));
      }
    }
  }

  JsonValue out = JsonValue::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", "ms");
  JsonValue other = JsonValue::Object();
  other.Set("source", "lamp.trace.v1");
  if (const auto* v = trace.Find("dropped")) other.Set("dropped", *v);
  out.Set("otherData", std::move(other));
  return out;
}

JsonValue ChromeTraceFromTracer(const Tracer& tracer) {
  return ChromeTraceFromTraceJson(TraceToJson(tracer));
}

}  // namespace lamp::obs
