#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <ostream>

#include "common/check.h"

namespace lamp::obs {

namespace {

/// Tracer epoch keys are process-unique and never reused, so a stale
/// thread-local shard cache entry can only miss, never alias a new tracer
/// (or a cleared one) by accident.
std::atomic<std::uint64_t> g_next_tracer_key{1};

struct ShardCache {
  std::uint64_t key = 0;
  void* shard = nullptr;
};
thread_local ShardCache t_shard_cache;

}  // namespace

/// One thread's ring. Only the owning thread writes it; readers run after
/// the emitting parallel region has joined.
struct Tracer::Shard {
  std::vector<TraceEvent> ring;
  std::size_t next = 0;     // Ring write cursor.
  std::uint64_t total = 0;  // Events ever emitted by this thread.
};

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kMpcRoundBegin:
      return "mpc.round_begin";
    case EventKind::kMpcServerLoad:
      return "mpc.server_load";
    case EventKind::kMpcRoundEnd:
      return "mpc.round_end";
    case EventKind::kNetStart:
      return "net.start";
    case EventKind::kNetBroadcast:
      return "net.broadcast";
    case EventKind::kNetDeliver:
      return "net.deliver";
    case EventKind::kNetQuiescent:
      return "net.quiescent";
    case EventKind::kDatalogIteration:
      return "datalog.iteration";
    case EventKind::kNetDrop:
      return "net.drop";
    case EventKind::kNetDuplicate:
      return "net.duplicate";
    case EventKind::kNetCrash:
      return "net.crash";
    case EventKind::kNetRestart:
      return "net.restart";
    case EventKind::kNetPartition:
      return "net.partition";
    case EventKind::kNetHeal:
      return "net.heal";
    case EventKind::kNetCausalDeliver:
      return "net.causal_deliver";
    case EventKind::kNetOutput:
      return "net.output";
    case EventKind::kTransportConnect:
      return "transport.connect";
    case EventKind::kTransportSend:
      return "transport.send";
    case EventKind::kTransportRecv:
      return "transport.recv";
    case EventKind::kDistSend:
      return "dist.send";
    case EventKind::kDistRecv:
      return "dist.recv";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity),
      key_(g_next_tracer_key.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  LAMP_CHECK(capacity_ > 0);
}

Tracer::~Tracer() = default;

std::uint64_t Tracer::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::Shard& Tracer::ShardForThisThread() {
  if (t_shard_cache.key == key_) {
    return *static_cast<Shard*>(t_shard_cache.shard);
  }
  std::lock_guard<std::mutex> lock(shards_mu_);
  const std::thread::id tid = std::this_thread::get_id();
  Shard* shard = nullptr;
  for (auto& [id, s] : shards_) {
    if (id == tid) {
      shard = s.get();
      break;
    }
  }
  if (shard == nullptr) {
    shards_.emplace_back(tid, std::make_unique<Shard>());
    shard = shards_.back().second.get();
    shard->ring.reserve(capacity_);
  }
  t_shard_cache = ShardCache{key_, shard};
  return *shard;
}

void Tracer::Emit(EventKind kind, std::uint32_t a, std::uint32_t b,
                  std::uint64_t value, const char* label) {
  Shard& s = ShardForThisThread();
  TraceEvent e;
  e.t_ns = NowNs();
  e.value = value;
  e.a = a;
  e.b = b;
  e.kind = kind;
  e.label = label;
  if (s.ring.size() < capacity_) {
    s.ring.push_back(e);
  } else {
    s.ring[s.next] = e;
  }
  s.next = (s.next + 1) % capacity_;
  ++s.total;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::size_t n = 0;
  for (const auto& [id, s] : shards_) n += s->ring.size();
  return n;
}

std::uint64_t Tracer::total_emitted() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::uint64_t n = 0;
  for (const auto& [id, s] : shards_) n += s->total;
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::uint64_t n = 0;
  for (const auto& [id, s] : shards_) n += s->total - s->ring.size();
  return n;
}

std::vector<Tracer::ShardedEvent> Tracer::ShardedEvents() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::vector<ShardedEvent> out;
  std::uint32_t shard_index = 0;
  for (const auto& [id, s] : shards_) {
    out.reserve(out.size() + s->ring.size());
    if (s->ring.size() < capacity_) {
      // Not yet wrapped: chronological as stored.
      for (const TraceEvent& e : s->ring) {
        out.push_back(ShardedEvent{e, shard_index});
      }
    } else {
      // next points at the oldest event once the ring is full.
      for (std::size_t i = 0; i < s->ring.size(); ++i) {
        out.push_back(
            ShardedEvent{s->ring[(s->next + i) % capacity_], shard_index});
      }
    }
    ++shard_index;
  }
  // Merge shards chronologically; stable, so the single-shard case (every
  // deterministic golden trace) keeps exact emission order.
  std::stable_sort(out.begin(), out.end(),
                   [](const ShardedEvent& a, const ShardedEvent& b) {
                     return a.event.t_ns < b.event.t_ns;
                   });
  return out;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  for (const ShardedEvent& se : ShardedEvents()) out.push_back(se.event);
  return out;
}

std::size_t Tracer::num_shards() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return shards_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(shards_mu_);
  shards_.clear();
  key_ = g_next_tracer_key.fetch_add(1, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

Tracer* InstallTracer(Tracer* tracer) {
  Tracer* prev = internal::g_tracer;
  internal::g_tracer = tracer;
  return prev;
}

JsonValue TraceToJson(const Tracer& tracer) {
  JsonValue out = JsonValue::Object();
  out.Set("schema", "lamp.trace.v1");
  out.Set("capacity", tracer.capacity());
  out.Set("total_emitted", static_cast<std::size_t>(tracer.total_emitted()));
  out.Set("dropped", static_cast<std::size_t>(tracer.dropped()));
  out.Set("shards", tracer.num_shards());
  JsonValue events = JsonValue::Array();
  for (const Tracer::ShardedEvent& se : tracer.ShardedEvents()) {
    const TraceEvent& e = se.event;
    JsonValue je = JsonValue::Object();
    je.Set("t_ns", static_cast<std::size_t>(e.t_ns));
    je.Set("kind", EventKindName(e.kind));
    je.Set("a", static_cast<std::size_t>(e.a));
    je.Set("b", static_cast<std::size_t>(e.b));
    je.Set("value", static_cast<std::size_t>(e.value));
    je.Set("shard", static_cast<std::size_t>(se.shard));
    if (e.label != nullptr) je.Set("label", e.label);
    events.PushBack(std::move(je));
  }
  out.Set("events", std::move(events));
  return out;
}

void WriteTraceJson(const Tracer& tracer, std::ostream& os) {
  os << TraceToJson(tracer).Dump(2) << "\n";
}

}  // namespace lamp::obs
