#include "obs/trace.h"

#include <ostream>

#include "common/check.h"

namespace lamp::obs {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kMpcRoundBegin:
      return "mpc.round_begin";
    case EventKind::kMpcServerLoad:
      return "mpc.server_load";
    case EventKind::kMpcRoundEnd:
      return "mpc.round_end";
    case EventKind::kNetStart:
      return "net.start";
    case EventKind::kNetBroadcast:
      return "net.broadcast";
    case EventKind::kNetDeliver:
      return "net.deliver";
    case EventKind::kNetQuiescent:
      return "net.quiescent";
    case EventKind::kDatalogIteration:
      return "datalog.iteration";
    case EventKind::kNetDrop:
      return "net.drop";
    case EventKind::kNetDuplicate:
      return "net.duplicate";
    case EventKind::kNetCrash:
      return "net.crash";
    case EventKind::kNetRestart:
      return "net.restart";
    case EventKind::kNetPartition:
      return "net.partition";
    case EventKind::kNetHeal:
      return "net.heal";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  LAMP_CHECK(capacity_ > 0);
  ring_.reserve(capacity_);
}

std::uint64_t Tracer::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Emit(EventKind kind, std::uint32_t a, std::uint32_t b,
                  std::uint64_t value, const char* label) {
  TraceEvent e;
  e.t_ns = NowNs();
  e.value = value;
  e.a = a;
  e.b = b;
  e.kind = kind;
  e.label = label;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[next_] = e;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::size_t Tracer::size() const { return ring_.size(); }

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    // Not yet wrapped: chronological as stored.
    out = ring_;
  } else {
    // next_ points at the oldest event once the ring is full.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

void Tracer::Clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

Tracer* InstallTracer(Tracer* tracer) {
  Tracer* prev = internal::g_tracer;
  internal::g_tracer = tracer;
  return prev;
}

JsonValue TraceToJson(const Tracer& tracer) {
  JsonValue out = JsonValue::Object();
  out.Set("schema", "lamp.trace.v1");
  out.Set("capacity", tracer.capacity());
  out.Set("total_emitted", static_cast<std::size_t>(tracer.total_emitted()));
  out.Set("dropped", static_cast<std::size_t>(tracer.dropped()));
  JsonValue events = JsonValue::Array();
  for (const TraceEvent& e : tracer.Events()) {
    JsonValue je = JsonValue::Object();
    je.Set("t_ns", static_cast<std::size_t>(e.t_ns));
    je.Set("kind", EventKindName(e.kind));
    je.Set("a", static_cast<std::size_t>(e.a));
    je.Set("b", static_cast<std::size_t>(e.b));
    je.Set("value", static_cast<std::size_t>(e.value));
    if (e.label != nullptr) je.Set("label", e.label);
    events.PushBack(std::move(je));
  }
  out.Set("events", std::move(events));
  return out;
}

void WriteTraceJson(const Tracer& tracer, std::ostream& os) {
  os << TraceToJson(tracer).Dump(2) << "\n";
}

}  // namespace lamp::obs
