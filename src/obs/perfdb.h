#ifndef LAMP_OBS_PERFDB_H_
#define LAMP_OBS_PERFDB_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

/// \file
/// The consumption side of the bench-reporting pipeline: a keyed store of
/// BenchReporter JSON-lines records, per-key summary statistics over
/// repeats, and a noise-aware diff between two stores.
///
/// Keying: a record belongs to the (bench, params, threads) configuration
/// it measured. "params" is identified by its compact JSON serialisation,
/// which is deterministic because JsonValue objects preserve insertion
/// order and every bench sets its params in a fixed order.
///
/// The regression rule is deliberately two-sided: a key is flagged only
/// when the median wall-clock moved by more than a *relative* tolerance
/// AND by more than a multiple of the observed run-to-run noise (the
/// larger sample standard deviation of the two sides) AND by more than an
/// absolute floor. A single noisy repeat therefore cannot fail a gate,
/// and sub-microsecond configurations cannot flake on scheduler jitter.

namespace lamp::obs {

/// Identity of one measured configuration.
struct PerfKey {
  std::string bench;
  std::string params;  // Compact JSON of the "params" object.
  int threads = 1;

  bool operator<(const PerfKey& o) const {
    if (bench != o.bench) return bench < o.bench;
    if (params != o.params) return params < o.params;
    return threads < o.threads;
  }
  bool operator==(const PerfKey& o) const {
    return bench == o.bench && params == o.params && threads == o.threads;
  }

  /// "bench params ×T" — the label used by reports.
  std::string Label() const;
};

/// Summary of the wall_ns samples recorded for one key.
struct PerfSummary {
  std::size_t count = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double mean_ns = 0.0;
  double median_ns = 0.0;
  double stddev_ns = 0.0;  // Sample stddev (n-1); 0 when count < 2.
  double cv = 0.0;         // stddev / mean; 0 when mean is 0.
};

/// Computes the summary of a raw sample (exposed for tests).
PerfSummary Summarize(std::vector<std::uint64_t> wall_ns);

/// Keyed store of bench records.
class PerfDb {
 public:
  struct LoadStats {
    std::size_t lines = 0;      // Non-empty lines seen.
    std::size_t records = 0;    // Successfully ingested.
    std::size_t malformed = 0;  // Rejected lines.
    std::vector<std::string> errors;  // One message per rejected line.
  };

  /// Ingests one parsed record. Returns false (and explains in \p error
  /// when non-null) if the record lacks the uniform shape ("bench" string,
  /// "params" object, numeric "wall_ns").
  bool Add(const JsonValue& record, std::string* error = nullptr);

  /// Ingests JSON-lines text (the BENCH_*.json format). Malformed lines
  /// are counted and reported in the returned stats, never fatal: perfdb
  /// consumes externally produced files.
  LoadStats IngestJsonLines(std::string_view text);

  std::size_t NumRecords() const;
  bool Empty() const { return records_.empty(); }

  /// All ingested records grouped by key, insertion-ordered within a key.
  const std::map<PerfKey, std::vector<JsonValue>>& records() const {
    return records_;
  }

  /// Per-key summaries over the wall_ns samples.
  std::map<PerfKey, PerfSummary> Summaries() const;

  /// Flat array of every ingested record (report serialisation).
  JsonValue RecordsToJson() const;

  /// {"schema": "lamp.perf_summary.v1", "summaries": [{"bench": ..,
  ///  "params": {...}, "threads": .., "count": .., "min_ns": ..,
  ///  "median_ns": .., "mean_ns": .., "max_ns": .., "stddev_ns": ..,
  ///  "cv": ..}, ...]}
  JsonValue SummariesToJson() const;

 private:
  std::map<PerfKey, std::vector<JsonValue>> records_;
};

/// Parses a summaries array produced by PerfDb::SummariesToJson (or the
/// "summaries" member of a bench_runner report/baseline document) back
/// into a summary map. Unparseable entries are skipped.
std::map<PerfKey, PerfSummary> SummariesFromJson(const JsonValue& summaries);

/// Thresholds for the noise-aware diff. A delta counts only when it
/// clears all three bars.
struct DiffThresholds {
  double rel_tolerance = 0.10;  // |delta| / baseline median.
  double noise_mult = 3.0;      // |delta| vs observed stddev.
  double min_delta_ns = 5.0e4;  // Absolute floor: 50us.
};

enum class DiffStatus {
  kUnchanged,  // Within tolerance (or within noise).
  kImproved,   // Median dropped past every threshold.
  kRegressed,  // Median rose past every threshold.
  kNew,        // Key only in the current store.
  kMissing,    // Key only in the baseline store.
};

std::string_view DiffStatusName(DiffStatus status);

struct DiffEntry {
  PerfKey key;
  DiffStatus status = DiffStatus::kUnchanged;
  PerfSummary baseline;  // Zero-initialised when status == kNew.
  PerfSummary current;   // Zero-initialised when status == kMissing.
  double delta_rel = 0.0;  // (current - baseline) / baseline medians.
  double noise_ns = 0.0;   // max(baseline.stddev, current.stddev).
};

struct DiffReport {
  std::vector<DiffEntry> entries;  // Key order; regressions first.
  std::size_t num_regressed = 0;
  std::size_t num_improved = 0;
  std::size_t num_unchanged = 0;
  std::size_t num_new = 0;
  std::size_t num_missing = 0;
  DiffThresholds thresholds;

  bool HasRegressions() const { return num_regressed > 0; }

  /// Fixed-width table for terminals.
  std::string RenderConsole() const;
  /// GitHub-flavoured markdown (PR comments / job summaries).
  std::string RenderMarkdown() const;
};

/// Diffs two summary maps under \p thresholds. Entries are ordered
/// regressions first, then improvements, then the rest by key.
DiffReport DiffSummaries(const std::map<PerfKey, PerfSummary>& baseline,
                         const std::map<PerfKey, PerfSummary>& current,
                         const DiffThresholds& thresholds);

}  // namespace lamp::obs

#endif  // LAMP_OBS_PERFDB_H_
