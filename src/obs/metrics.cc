#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace lamp::obs {

void Histogram::Observe(double v) {
  if (!samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
  sum_ += v;
}

namespace {

void EnsureSorted(std::vector<double>& samples, bool& sorted) {
  if (!sorted) {
    std::sort(samples.begin(), samples.end());
    sorted = true;
  }
}

}  // namespace

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted(samples_, sorted_);
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted(samples_, sorted_);
  return samples_.back();
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted(samples_, sorted_);
  if (q <= 0.0) return samples_.front();
  if (q >= 100.0) return samples_.back();
  // Nearest rank: ceil(q/100 * n), 1-based.
  const double n = static_cast<double>(samples_.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > samples_.size()) rank = samples_.size();
  return samples_[rank - 1];
}

JsonValue Histogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", samples_.size());
  out.Set("sum", Sum());
  out.Set("min", Min());
  out.Set("max", Max());
  out.Set("mean", Mean());
  out.Set("p50", P50());
  out.Set("p95", P95());
  out.Set("p99", P99());
  return out;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter()).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge()).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

JsonValue MetricsRegistry::ToJson() const {
  JsonValue out = JsonValue::Object();
  for (const auto& [name, c] : counters_) {
    out.Set(name, static_cast<std::size_t>(c.value()));
  }
  for (const auto& [name, g] : gauges_) out.Set(name, g.value());
  for (const auto& [name, h] : histograms_) out.Set(name, h.ToJson());
  return out;
}

}  // namespace lamp::obs
