#ifndef LAMP_OBS_METRICS_H_
#define LAMP_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

/// \file
/// The metrics registry shared by every runtime in the repo.
///
/// Every quantity the reproduced results are stated in — per-round MPC
/// loads (Section 3), transducer-network message/transition counts to
/// quiescence (Section 5), semi-naive Datalog iteration counts — is
/// recorded here under one naming convention, so MPC runs, network runs
/// and the Datalog engine report through a single schema:
///
///   mpc.rounds                 counter    rounds executed
///   mpc.round.max_load         histogram  per-round maximum load
///   mpc.round.total_load       histogram  per-round communication
///   mpc.max_load               gauge      max over rounds (KS objective)
///   mpc.total_communication    counter    sum over rounds (AU objective)
///   net.messages_sent          counter    point-to-point messages
///   net.facts_transferred      counter    sum of message sizes
///   net.transitions            counter    deliveries to quiescence
///   net.broadcasts             counter    Broadcast() calls
///   net.message_size           histogram  facts per broadcast message
///   net.fault.drops            counter    failed delivery attempts
///   net.fault.duplicates       counter    duplicate deliveries
///   net.fault.crashes          counter    node crashes
///   net.fault.restarts         counter    node restarts
///   net.fault.retransmits      counter    messages requeued on restart
///   net.causal_depth           histogram  Lamport depth per delivery
///   net.causal_max_depth       gauge      max delivered causal depth
///   net.coordination_depth     gauge      causal depth of the first
///                                         output fact (0 = produced at a
///                                         heartbeat: coordination-free)
///   datalog.iterations         counter    semi-naive rounds
///   datalog.facts_derived      counter    IDB facts derived
///   datalog.delta_size         histogram  per-iteration delta cardinality
///
/// Instruments are plain values (no atomics): the runtimes are
/// single-threaded and deterministic by design, and registries are
/// copyable so run results can carry their own snapshot.

namespace lamp::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void Increment() { value_ += 1; }
  void Add(std::uint64_t n) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A value that can move both ways (e.g. the running max load).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Exact-percentile histogram: keeps every sample (bench-scale run
/// lengths make that cheap) and answers nearest-rank percentiles, so
/// p50/p95/p99 agree with a sorted reference to the sample.
///
/// Every summary accessor is a *total function* on the empty histogram:
/// Count() is 0 and Sum/Mean/Min/Max/Percentile(q) all return 0.0 without
/// touching the (empty) sample vector. There is no "no data" sentinel —
/// callers that need to distinguish "no samples" from "all samples are 0"
/// check Count() first. Percentile additionally clamps q to [0, 100], so
/// out-of-range quantiles are not undefined behaviour either.
class Histogram {
 public:
  void Observe(double v);

  std::size_t Count() const { return samples_.size(); }
  double Sum() const { return sum_; }
  double Mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }
  double Min() const;
  double Max() const;

  /// Nearest-rank percentile: the smallest sample x such that at least
  /// q*Count() samples are <= x. \p q in [0, 100]; 0 on an empty
  /// histogram.
  double Percentile(double q) const;
  double P50() const { return Percentile(50.0); }
  double P95() const { return Percentile(95.0); }
  double P99() const { return Percentile(99.0); }

  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,...}
  JsonValue ToJson() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Name -> instrument map. Instruments are created on first access; names
/// follow the dotted convention documented above.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Value of a counter, or 0 when it was never touched.
  std::uint64_t CounterValue(std::string_view name) const;

  bool Empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Flat object: counters and gauges as numbers, histograms as summary
  /// objects. Keys are sorted (map order) — stable across runs.
  JsonValue ToJson() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Canonical metric names (keep in sync with the table above).
inline constexpr std::string_view kMpcRounds = "mpc.rounds";
inline constexpr std::string_view kMpcRoundMaxLoad = "mpc.round.max_load";
inline constexpr std::string_view kMpcRoundTotalLoad = "mpc.round.total_load";
inline constexpr std::string_view kMpcMaxLoad = "mpc.max_load";
inline constexpr std::string_view kMpcTotalCommunication =
    "mpc.total_communication";
inline constexpr std::string_view kMpcWireBytes = "mpc.wire_bytes";
inline constexpr std::string_view kNetMessagesSent = "net.messages_sent";
inline constexpr std::string_view kNetFactsTransferred =
    "net.facts_transferred";
inline constexpr std::string_view kNetTransitions = "net.transitions";
inline constexpr std::string_view kNetBroadcasts = "net.broadcasts";
inline constexpr std::string_view kNetMessageSize = "net.message_size";
inline constexpr std::string_view kNetWireBytes = "net.wire_bytes";
inline constexpr std::string_view kNetFaultDrops = "net.fault.drops";
inline constexpr std::string_view kNetFaultDuplicates = "net.fault.duplicates";
inline constexpr std::string_view kNetFaultCrashes = "net.fault.crashes";
inline constexpr std::string_view kNetFaultRestarts = "net.fault.restarts";
inline constexpr std::string_view kNetFaultRetransmits =
    "net.fault.retransmits";
inline constexpr std::string_view kNetCausalDepth = "net.causal_depth";
inline constexpr std::string_view kNetCausalMaxDepth = "net.causal_max_depth";
inline constexpr std::string_view kNetCoordinationDepth =
    "net.coordination_depth";
inline constexpr std::string_view kDatalogIterations = "datalog.iterations";
inline constexpr std::string_view kDatalogFactsDerived =
    "datalog.facts_derived";
inline constexpr std::string_view kDatalogDeltaSize = "datalog.delta_size";
inline constexpr std::string_view kDatalogDeltaIndexHits =
    "datalog.delta_index_hits";
inline constexpr std::string_view kRelationalRowsScanned =
    "relational.rows_scanned";

}  // namespace lamp::obs

#endif  // LAMP_OBS_METRICS_H_
