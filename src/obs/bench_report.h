#ifndef LAMP_OBS_BENCH_REPORT_H_
#define LAMP_OBS_BENCH_REPORT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "obs/metrics.h"

/// \file
/// Uniform machine-readable bench reporting.
///
/// Every binary under bench/ creates one BenchReporter and appends one
/// record per measured configuration. Each record serialises as one JSON
/// line:
///
///   {"bench": "hypercube_load",
///    "params": {"query": "triangle", "p": 64, "m": 20000},
///    "metrics": {"mpc.max_load": 812, ...},
///    "threads": 8, "repeat": 0, "wall_ms": 12.4, "wall_ns": 12400000,
///    "meta": {"git_rev": "a0ee471", ...}}
///
/// "threads" records lamp::par's configured lane count at record creation
/// (the --threads / LAMP_THREADS value), and "wall_ns" the wall-clock in
/// integer nanoseconds, so BENCH_*.json captures scaling curves directly.
/// "repeat" is the zero-based repetition index set by the --repeat flag
/// (ConfigureRepeatsFromCommandLine / RunRepeated below); repeated runs
/// let tools/bench_runner estimate run-to-run noise per configuration.
/// "meta" appears only when the LAMP_BENCH_META environment variable
/// holds a JSON object — bench_runner uses it to stamp every record with
/// run provenance (git rev, date, host) without the bench knowing.
///
/// Destination: the file named by the LAMP_BENCH_JSON environment
/// variable (appended, creating it if needed) so table output on stdout
/// stays human-readable; without the variable — or when that file cannot
/// be opened — the records are printed to stdout after a "# bench-json:"
/// marker line. One record per line means BENCH_*.json files diff cleanly
/// across PRs.

namespace lamp::obs {

/// Wall-clock stopwatch for the per-configuration "wall_ms" field.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  std::uint64_t ElapsedNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

class BenchReporter {
 public:
  /// One record under construction. All setters return *this for
  /// chaining; the record is complete when the reporter flushes.
  class Record {
   public:
    Record& Param(std::string_view name, JsonValue value);
    Record& Metric(std::string_view name, JsonValue value);
    /// Folds a whole registry snapshot into "metrics".
    Record& Metrics(const MetricsRegistry& registry);
    /// Sets both "wall_ms" and the derived integer "wall_ns".
    Record& WallMs(double ms);
    /// Exact nanosecond variant (WallTimer::ElapsedNs); also sets wall_ms.
    Record& WallNs(std::uint64_t ns);

   private:
    friend class BenchReporter;
    explicit Record(std::string_view bench_name);
    JsonValue json_;
  };

  /// \p bench_name identifies the binary ("hypercube_load", ...).
  explicit BenchReporter(std::string bench_name);

  /// Flushes on destruction (idempotent with explicit Flush).
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Starts a new record. References remain valid until Flush.
  Record& NewRecord();

  std::size_t NumRecords() const { return records_.size(); }

  /// All pending records, one compact JSON document per line.
  std::string RenderJsonLines() const;

  /// Writes pending records to LAMP_BENCH_JSON (append) or stdout and
  /// clears them.
  void Flush();

 private:
  std::string bench_name_;
  std::deque<Record> records_;  // deque: NewRecord references stay valid.
};

/// Name of the environment variable selecting the JSON destination file.
inline constexpr const char* kBenchJsonEnvVar = "LAMP_BENCH_JSON";

/// Environment variable holding a compact JSON object merged into every
/// record as "meta" (run provenance: git rev, date, host, ...). Invalid
/// or non-object content is ignored with a warning on stderr.
inline constexpr const char* kBenchMetaEnvVar = "LAMP_BENCH_META";

/// Strips "--repeat N" / "--repeat=N" from argv (ahead of downstream flag
/// parsers such as google-benchmark) and stores the value, clamped to
/// >= 1. Returns the configured repeat count. Every binary under bench/
/// calls this right after par::ConfigureFromCommandLine.
int ConfigureRepeatsFromCommandLine(int* argc, char** argv);

/// Configured repeat count (default 1).
int BenchRepeats();

/// Zero-based index stamped into the "repeat" field of records created
/// afterwards. RunRepeated advances it; tests may set it directly.
void SetBenchRepeatIndex(int index);
int BenchRepeatIndex();

/// Runs \p body once per configured repeat, setting the stamped repeat
/// index to 0..BenchRepeats()-1 around each call.
void RunRepeated(const std::function<void()>& body);

}  // namespace lamp::obs

#endif  // LAMP_OBS_BENCH_REPORT_H_
