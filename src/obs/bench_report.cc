#include "obs/bench_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "par/thread_pool.h"

namespace lamp::obs {

BenchReporter::Record::Record(std::string_view bench_name) {
  json_ = JsonValue::Object();
  json_.Set("bench", bench_name);
  json_.Set("params", JsonValue::Object());
  json_.Set("metrics", JsonValue::Object());
  json_.Set("threads", par::DefaultThreads());
  json_.Set("wall_ms", JsonValue());
  json_.Set("wall_ns", JsonValue());
}

BenchReporter::Record& BenchReporter::Record::Param(std::string_view name,
                                                    JsonValue value) {
  JsonValue params = *json_.Find("params");
  params.Set(name, std::move(value));
  json_.Set("params", std::move(params));
  return *this;
}

BenchReporter::Record& BenchReporter::Record::Metric(std::string_view name,
                                                     JsonValue value) {
  JsonValue metrics = *json_.Find("metrics");
  metrics.Set(name, std::move(value));
  json_.Set("metrics", std::move(metrics));
  return *this;
}

BenchReporter::Record& BenchReporter::Record::Metrics(
    const MetricsRegistry& registry) {
  JsonValue metrics = *json_.Find("metrics");
  const JsonValue snapshot = registry.ToJson();
  for (const auto& [name, value] : snapshot.members()) {
    metrics.Set(name, value);
  }
  json_.Set("metrics", std::move(metrics));
  return *this;
}

BenchReporter::Record& BenchReporter::Record::WallMs(double ms) {
  json_.Set("wall_ms", JsonValue(ms));
  json_.Set("wall_ns",
            JsonValue(static_cast<std::size_t>(std::llround(ms * 1e6))));
  return *this;
}

BenchReporter::Record& BenchReporter::Record::WallNs(std::uint64_t ns) {
  json_.Set("wall_ms", JsonValue(static_cast<double>(ns) / 1e6));
  json_.Set("wall_ns", JsonValue(static_cast<std::size_t>(ns)));
  return *this;
}

BenchReporter::BenchReporter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

BenchReporter::~BenchReporter() { Flush(); }

BenchReporter::Record& BenchReporter::NewRecord() {
  records_.push_back(Record(bench_name_));
  return records_.back();
}

std::string BenchReporter::RenderJsonLines() const {
  std::string out;
  for (const Record& r : records_) {
    out += r.json_.Dump();
    out += '\n';
  }
  return out;
}

void BenchReporter::Flush() {
  if (records_.empty()) return;
  const std::string lines = RenderJsonLines();
  const char* path = std::getenv(kBenchJsonEnvVar);
  if (path != nullptr && path[0] != '\0') {
    std::FILE* f = std::fopen(path, "a");
    if (f != nullptr) {
      std::fwrite(lines.data(), 1, lines.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "bench_report: cannot open %s for append\n", path);
    }
  } else {
    std::printf("# bench-json: %zu record(s) for %s\n", records_.size(),
                bench_name_.c_str());
    std::fwrite(lines.data(), 1, lines.size(), stdout);
  }
  records_.clear();
}

}  // namespace lamp::obs
