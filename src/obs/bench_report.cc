#include "obs/bench_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "par/thread_pool.h"

namespace lamp::obs {

namespace {

int g_repeats = 1;
int g_repeat_index = 0;

/// LAMP_BENCH_META parsed once per process; nullopt when unset/invalid.
const std::optional<JsonValue>& BenchMeta() {
  static const std::optional<JsonValue> meta = []() -> std::optional<JsonValue> {
    const char* text = std::getenv(kBenchMetaEnvVar);
    if (text == nullptr || text[0] == '\0') return std::nullopt;
    std::optional<JsonValue> parsed = JsonValue::Parse(text);
    if (!parsed.has_value() || !parsed->IsObject()) {
      std::fprintf(stderr,
                   "bench_report: ignoring %s (not a JSON object)\n",
                   kBenchMetaEnvVar);
      return std::nullopt;
    }
    return parsed;
  }();
  return meta;
}

}  // namespace

int ConfigureRepeatsFromCommandLine(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    int consumed = 0;
    if (std::strcmp(arg, "--repeat") == 0 && i + 1 < *argc) {
      value = argv[i + 1];
      consumed = 2;
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      value = arg + 9;
      consumed = 1;
    }
    if (value == nullptr) continue;
    out = std::atoi(value);
    for (int j = i + consumed; j < *argc; ++j) argv[j - consumed] = argv[j];
    *argc -= consumed;
    --i;
  }
  if (out < 1) out = 1;
  g_repeats = out;
  return out;
}

int BenchRepeats() { return g_repeats; }

void SetBenchRepeatIndex(int index) { g_repeat_index = index; }

int BenchRepeatIndex() { return g_repeat_index; }

void RunRepeated(const std::function<void()>& body) {
  for (int r = 0; r < g_repeats; ++r) {
    SetBenchRepeatIndex(r);
    body();
  }
  SetBenchRepeatIndex(0);
}

BenchReporter::Record::Record(std::string_view bench_name) {
  json_ = JsonValue::Object();
  json_.Set("bench", bench_name);
  json_.Set("params", JsonValue::Object());
  json_.Set("metrics", JsonValue::Object());
  json_.Set("threads", par::DefaultThreads());
  json_.Set("repeat", BenchRepeatIndex());
  json_.Set("wall_ms", JsonValue());
  json_.Set("wall_ns", JsonValue());
  if (BenchMeta().has_value()) json_.Set("meta", *BenchMeta());
}

BenchReporter::Record& BenchReporter::Record::Param(std::string_view name,
                                                    JsonValue value) {
  JsonValue params = *json_.Find("params");
  params.Set(name, std::move(value));
  json_.Set("params", std::move(params));
  return *this;
}

BenchReporter::Record& BenchReporter::Record::Metric(std::string_view name,
                                                     JsonValue value) {
  JsonValue metrics = *json_.Find("metrics");
  metrics.Set(name, std::move(value));
  json_.Set("metrics", std::move(metrics));
  return *this;
}

BenchReporter::Record& BenchReporter::Record::Metrics(
    const MetricsRegistry& registry) {
  JsonValue metrics = *json_.Find("metrics");
  const JsonValue snapshot = registry.ToJson();
  for (const auto& [name, value] : snapshot.members()) {
    metrics.Set(name, value);
  }
  json_.Set("metrics", std::move(metrics));
  return *this;
}

BenchReporter::Record& BenchReporter::Record::WallMs(double ms) {
  json_.Set("wall_ms", JsonValue(ms));
  json_.Set("wall_ns",
            JsonValue(static_cast<std::size_t>(std::llround(ms * 1e6))));
  return *this;
}

BenchReporter::Record& BenchReporter::Record::WallNs(std::uint64_t ns) {
  json_.Set("wall_ms", JsonValue(static_cast<double>(ns) / 1e6));
  json_.Set("wall_ns", JsonValue(static_cast<std::size_t>(ns)));
  return *this;
}

BenchReporter::BenchReporter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

BenchReporter::~BenchReporter() { Flush(); }

BenchReporter::Record& BenchReporter::NewRecord() {
  records_.push_back(Record(bench_name_));
  return records_.back();
}

std::string BenchReporter::RenderJsonLines() const {
  std::string out;
  for (const Record& r : records_) {
    out += r.json_.Dump();
    out += '\n';
  }
  return out;
}

void BenchReporter::Flush() {
  if (records_.empty()) return;
  const std::string lines = RenderJsonLines();
  const char* path = std::getenv(kBenchJsonEnvVar);
  bool to_stdout = true;
  if (path != nullptr && path[0] != '\0') {
    std::FILE* f = std::fopen(path, "a");
    if (f != nullptr) {
      std::fwrite(lines.data(), 1, lines.size(), f);
      std::fclose(f);
      to_stdout = false;
    } else {
      // Never drop records: fall back to the stdout path below.
      std::fprintf(stderr,
                   "bench_report: cannot open %s for append; writing"
                   " records to stdout instead\n",
                   path);
    }
  }
  if (to_stdout) {
    std::printf("# bench-json: %zu record(s) for %s\n", records_.size(),
                bench_name_.c_str());
    std::fwrite(lines.data(), 1, lines.size(), stdout);
  }
  records_.clear();
}

}  // namespace lamp::obs
