#include "obs/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lamp::obs {

void JsonValue::Set(std::string_view key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(v));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string& out, double d,
                  const std::optional<std::int64_t>& exact) {
  if (exact.has_value()) {
    out += std::to_string(*exact);
    return;
  }
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  // Integral doubles print as integers ("690", not "6.9e+02" — the
  // shortest-%g form below would pick the latter).
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Prefer the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
    if (std::strtod(probe, nullptr) == d) {
      out += probe;
      return;
    }
  }
  out += buf;
}

void AppendIndent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, num_, int_);
      break;
    case Type::kString:
      out += '"';
      out += EscapeJson(str_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += indent < 0 ? "," : ",";
        AppendIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) AppendIndent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ",";
        AppendIndent(out, indent, depth + 1);
        out += '"';
        out += EscapeJson(members_[i].first);
        out += indent < 0 ? "\":" : "\": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) AppendIndent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Run() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(v)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // Trailing garbage.
    return v;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue& out) {
    if (AtEnd()) return false;
    switch (Peek()) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        if (!ParseString(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!ConsumeWord("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!ConsumeWord("false")) return false;
        out = JsonValue(false);
        return true;
      case 'n':
        if (!ConsumeWord("null")) return false;
        out = JsonValue();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue& out) {
    if (!Consume('{')) return false;
    out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      JsonValue v;
      if (!ParseValue(v)) return false;
      out.Set(key, std::move(v));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue& out) {
    if (!Consume('[')) return false;
    out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      JsonValue v;
      if (!ParseValue(v)) return false;
      out.PushBack(std::move(v));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  static void AppendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseHex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    return true;
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (true) {
      if (AtEnd()) return false;
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (AtEnd()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (!ConsumeWord("\\u")) return false;
            unsigned low = 0;
            if (!ParseHex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // Lone low surrogate.
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return false;
      }
    }
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    if (AtEnd()) return false;
    if (!Consume('0')) {
      if (AtEnd() || Peek() < '1' || Peek() > '9') return false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (AtEnd() || Peek() < '0' || Peek() > '9') return false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') return false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out = JsonValue(static_cast<std::int64_t>(v));
        return true;
      }
    }
    out = JsonValue(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace lamp::obs
