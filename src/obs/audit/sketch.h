#ifndef LAMP_OBS_AUDIT_SKETCH_H_
#define LAMP_OBS_AUDIT_SKETCH_H_

#include <cstdint>
#include <map>
#include <vector>

/// \file
/// The Space-Saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi,
/// ICDT'05) and a Zipf skew estimator on top of it.
///
/// The statistics catalog (obs/audit/catalog.h) needs per-column heavy
/// hitters to decide whether a workload is skewed — the quantity that
/// separates the paper's skew-free HyperCube bound m/p^{1/tau*} from the
/// skew-resistant m/sqrt(p) algorithms. Exact per-column frequency maps
/// would work at bench scale, but the catalog is the seed of the
/// ROADMAP-2 planner, which must not assume instances fit a frequency
/// map; Space-Saving gives the classic bounded-memory guarantee instead:
///
///   with k counters over a stream of length N,
///     count(v) - error(v) <= true_freq(v) <= count(v)
///   for every *tracked* value, every value with true frequency > N/k is
///   tracked, and every error(v) <= N/k.
///
/// The property test in tests/audit_test.cc checks exactly these three
/// invariants against exact counts over seeded Zipf streams.

namespace lamp::obs::audit {

/// One tracked stream value with its overestimated count and the upper
/// bound on the overestimate.
struct SketchEntry {
  std::int64_t value = 0;
  std::uint64_t count = 0;  // Overestimate: true frequency <= count.
  std::uint64_t error = 0;  // count - error <= true frequency.
};

/// Space-Saving with a fixed number of counters. Deterministic: ties on
/// eviction break towards the smallest tracked value, so identical
/// streams produce identical sketches on every platform.
class SpaceSavingSketch {
 public:
  /// \p capacity = k, the number of counters (>= 1).
  explicit SpaceSavingSketch(std::size_t capacity);

  void Observe(std::int64_t value);

  /// Stream length so far.
  std::uint64_t StreamLength() const { return stream_length_; }

  std::size_t capacity() const { return capacity_; }

  /// Tracked entries sorted by count descending (ties: smaller value
  /// first). The full sketch content, at most capacity() entries.
  std::vector<SketchEntry> Entries() const;

  /// The \p k heaviest entries (prefix of Entries()).
  std::vector<SketchEntry> TopK(std::size_t k) const;

  /// Guaranteed lower bound on the maximum frequency of any value:
  /// max over tracked entries of count - error (0 on an empty stream).
  std::uint64_t MaxFrequencyLowerBound() const;

 private:
  struct Counter {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  std::size_t capacity_;
  std::uint64_t stream_length_ = 0;
  // Ordered by value: deterministic iteration for eviction tie-breaks.
  std::map<std::int64_t, Counter> counters_;
};

/// Least-squares estimate of the Zipf exponent s from the top ranks of a
/// frequency profile: fits log(count) = c - s*log(rank) over \p entries
/// (already sorted by count descending) and returns max(s, 0). Returns 0
/// when fewer than 3 entries or when all counts are equal — a uniform
/// profile has no skew. This is a coarse diagnostic (the audit only needs
/// "roughly uniform" vs "heavy-tailed"), not a maximum-likelihood fit.
double EstimateZipfExponent(const std::vector<SketchEntry>& entries);

}  // namespace lamp::obs::audit

#endif  // LAMP_OBS_AUDIT_SKETCH_H_
