#include "obs/audit/bounds.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "lp/edge_packing.h"

namespace lamp::obs::audit {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

double TotalBodySize(const ConjunctiveQuery& query, const Schema& schema,
                     const Catalog& catalog) {
  double total = 0.0;
  for (const double m : BodyAtomSizes(query, schema, catalog)) total += m;
  return total;
}

}  // namespace

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kHyperCube:
      return "hypercube";
    case Strategy::kRepartition:
      return "repartition";
    case Strategy::kFragmentReplicate:
      return "fragment_replicate";
    case Strategy::kSharesSkew:
      return "shares_skew";
    case Strategy::kSkewResilient:
      return "skew_resilient";
    case Strategy::kNone:
      return "none";
  }
  return "none";
}

Strategy StrategyFromName(std::string_view name) {
  if (name == "hypercube") return Strategy::kHyperCube;
  if (name == "repartition") return Strategy::kRepartition;
  if (name == "fragment_replicate") return Strategy::kFragmentReplicate;
  if (name == "shares_skew") return Strategy::kSharesSkew;
  if (name == "skew_resilient") return Strategy::kSkewResilient;
  return Strategy::kNone;
}

LoadBound NoBound() { return LoadBound{}; }

std::vector<double> BodyAtomSizes(const ConjunctiveQuery& query,
                                  const Schema& schema,
                                  const Catalog& catalog) {
  std::vector<double> sizes;
  sizes.reserve(query.body().size());
  for (const Atom& atom : query.body()) {
    sizes.push_back(static_cast<double>(
        catalog.CardinalityOf(schema.NameOf(atom.relation))));
  }
  return sizes;
}

LoadBound HyperCubeBound(const ConjunctiveQuery& query, const Schema& schema,
                         const Catalog& catalog, const Shares& shares) {
  LAMP_CHECK(shares.size() == query.NumVars());
  const std::vector<double> sizes = BodyAtomSizes(query, schema, catalog);
  LoadBound bound;
  bound.has_bound = true;
  bound.tuples = ExpectedHyperCubeLoad(query, shares, sizes);
  std::size_t grid = 1;
  for (const std::size_t s : shares) grid *= s;
  bound.formula = "sum_e m_e/prod_{v in e} a_v = " + FormatDouble(bound.tuples) +
                  " (grid " + std::to_string(grid) + ")";
  return bound;
}

LoadBound SkewResilientBound(const ConjunctiveQuery& query,
                             const Schema& schema, const Catalog& catalog,
                             std::size_t p) {
  const double tau = FractionalEdgePackingValue(query);
  LAMP_CHECK(tau > 0.0);
  const double denom = std::pow(static_cast<double>(p), 1.0 / tau);
  LoadBound bound;
  bound.has_bound = true;
  bound.tuples = TotalBodySize(query, schema, catalog) / denom;
  bound.formula = "sum_e m_e/p^{1/tau*} = " + FormatDouble(bound.tuples) +
                  " (tau*=" + FormatDouble(tau) + ", p=" + std::to_string(p) +
                  ")";
  return bound;
}

LoadBound RepartitionBound(const ConjunctiveQuery& query, const Schema& schema,
                           const Catalog& catalog, std::size_t p) {
  LAMP_CHECK(p > 0);
  LoadBound bound;
  bound.has_bound = true;
  bound.tuples = TotalBodySize(query, schema, catalog) / static_cast<double>(p);
  bound.formula =
      "m/p = " + FormatDouble(bound.tuples) + " (p=" + std::to_string(p) + ")";
  return bound;
}

LoadBound SqrtPBound(const ConjunctiveQuery& query, const Schema& schema,
                     const Catalog& catalog, std::size_t p) {
  LAMP_CHECK(p > 0);
  const auto g = static_cast<std::size_t>(
      std::floor(std::sqrt(static_cast<double>(p)) + 1e-9));
  const double denom = static_cast<double>(g < 1 ? 1 : g);
  LoadBound bound;
  bound.has_bound = true;
  bound.tuples = TotalBodySize(query, schema, catalog) / denom;
  bound.formula = "m/floor(sqrt p) = " + FormatDouble(bound.tuples) +
                  " (p=" + std::to_string(p) + ")";
  return bound;
}

LoadBound BoundFor(Strategy strategy, const ConjunctiveQuery& query,
                   const Schema& schema, const Catalog& catalog, std::size_t p,
                   const Shares* shares) {
  switch (strategy) {
    case Strategy::kHyperCube:
      LAMP_CHECK_MSG(shares != nullptr,
                     "HyperCube bound needs the share vector");
      return HyperCubeBound(query, schema, catalog, *shares);
    case Strategy::kRepartition:
      return RepartitionBound(query, schema, catalog, p);
    case Strategy::kFragmentReplicate:
    case Strategy::kSharesSkew:
      return SqrtPBound(query, schema, catalog, p);
    case Strategy::kSkewResilient:
      return SkewResilientBound(query, schema, catalog, p);
    case Strategy::kNone:
      return NoBound();
  }
  return NoBound();
}

}  // namespace lamp::obs::audit
