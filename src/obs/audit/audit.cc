#include "obs/audit/audit.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace lamp::obs::audit {

bool AuditRecord::Pass() const {
  if (!bound.has_bound) return true;
  return static_cast<double>(measured_max_load) <= bound.tuples * slack;
}

double AuditRecord::Headroom() const {
  if (!bound.has_bound) return 0.0;
  const double measured =
      static_cast<double>(measured_max_load == 0 ? 1 : measured_max_load);
  return bound.tuples * slack / measured;
}

double AuditRecord::PredictionRatio() const {
  if (!HasPrediction() || predicted_max_load <= 0.0) return 0.0;
  return static_cast<double>(measured_max_load) / predicted_max_load;
}

JsonValue AuditRecord::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.audit.v1");
  doc.Set("bench", bench);
  doc.Set("label", label);
  doc.Set("strategy", StrategyName(strategy));
  doc.Set("p", p);
  doc.Set("params", params);
  if (bound.has_bound) {
    doc.Set("bound", bound.tuples);
    doc.Set("bound_formula", bound.formula);
    doc.Set("headroom", Headroom());
  } else {
    doc.Set("bound", JsonValue());
    doc.Set("bound_formula", JsonValue());
    doc.Set("headroom", JsonValue());
  }
  doc.Set("slack", slack);
  doc.Set("measured_max_load", measured_max_load);
  doc.Set("rounds", rounds);
  doc.Set("total_communication", total_communication);
  doc.Set("worst_round", worst_round);
  JsonValue loads = JsonValue::Array();
  for (const std::size_t load : per_server) loads.PushBack(JsonValue(load));
  doc.Set("per_server", std::move(loads));
  doc.Set("wire_bytes", wire_bytes);
  JsonValue round_wire = JsonValue::Array();
  for (const std::size_t b : round_wire_bytes) {
    round_wire.PushBack(JsonValue(b));
  }
  doc.Set("round_wire_bytes", std::move(round_wire));
  JsonValue round_load = JsonValue::Array();
  for (const std::size_t l : round_total_load) {
    round_load.PushBack(JsonValue(l));
  }
  doc.Set("round_total_load", std::move(round_load));
  if (!round_wire_p50_ns.empty() || !round_wire_p99_ns.empty()) {
    JsonValue p50 = JsonValue::Array();
    for (const std::size_t v : round_wire_p50_ns) p50.PushBack(JsonValue(v));
    doc.Set("round_wire_p50_ns", std::move(p50));
    JsonValue p99 = JsonValue::Array();
    for (const std::size_t v : round_wire_p99_ns) p99.PushBack(JsonValue(v));
    doc.Set("round_wire_p99_ns", std::move(p99));
  }
  if (HasPrediction()) {
    doc.Set("predicted_max_load", predicted_max_load);
    doc.Set("predicted_wire_bytes", predicted_wire_bytes);
    doc.Set("planned_strategy", planned_strategy);
  }
  doc.Set("pass", Pass());
  doc.Set("expected_violation", expected_violation);
  return doc;
}

std::optional<AuditRecord> AuditRecord::FromJson(const JsonValue& doc) {
  if (!doc.IsObject()) return std::nullopt;
  const JsonValue* tag = doc.Find("schema");
  if (tag == nullptr || !tag->IsString() || tag->AsString() != "lamp.audit.v1") {
    return std::nullopt;
  }
  const JsonValue* bench = doc.Find("bench");
  const JsonValue* label = doc.Find("label");
  const JsonValue* strategy = doc.Find("strategy");
  const JsonValue* p = doc.Find("p");
  const JsonValue* slack = doc.Find("slack");
  const JsonValue* measured = doc.Find("measured_max_load");
  if (bench == nullptr || !bench->IsString() || label == nullptr ||
      !label->IsString() || strategy == nullptr || !strategy->IsString() ||
      p == nullptr || slack == nullptr || measured == nullptr) {
    return std::nullopt;
  }
  AuditRecord record;
  record.bench = bench->AsString();
  record.label = label->AsString();
  record.strategy = StrategyFromName(strategy->AsString());
  record.p = static_cast<std::size_t>(p->AsInt());
  record.slack = slack->AsDouble();
  record.measured_max_load = static_cast<std::size_t>(measured->AsInt());
  if (const JsonValue* params = doc.Find("params");
      params != nullptr && params->IsObject()) {
    record.params = *params;
  }
  if (const JsonValue* bound = doc.Find("bound");
      bound != nullptr && bound->IsNumber()) {
    record.bound.has_bound = true;
    record.bound.tuples = bound->AsDouble();
    if (const JsonValue* formula = doc.Find("bound_formula");
        formula != nullptr && formula->IsString()) {
      record.bound.formula = formula->AsString();
    }
  }
  if (const JsonValue* rounds = doc.Find("rounds"); rounds != nullptr) {
    record.rounds = static_cast<std::size_t>(rounds->AsInt());
  }
  if (const JsonValue* total = doc.Find("total_communication");
      total != nullptr) {
    record.total_communication = static_cast<std::size_t>(total->AsInt());
  }
  if (const JsonValue* worst = doc.Find("worst_round"); worst != nullptr) {
    record.worst_round = static_cast<std::size_t>(worst->AsInt());
  }
  if (const JsonValue* loads = doc.Find("per_server");
      loads != nullptr && loads->IsArray()) {
    for (std::size_t i = 0; i < loads->size(); ++i) {
      record.per_server.push_back(
          static_cast<std::size_t>(loads->at(i).AsInt()));
    }
  }
  if (const JsonValue* wire = doc.Find("wire_bytes");
      wire != nullptr && wire->IsNumber()) {
    record.wire_bytes = static_cast<std::size_t>(wire->AsInt());
  }
  if (const JsonValue* round_wire = doc.Find("round_wire_bytes");
      round_wire != nullptr && round_wire->IsArray()) {
    for (std::size_t i = 0; i < round_wire->size(); ++i) {
      record.round_wire_bytes.push_back(
          static_cast<std::size_t>(round_wire->at(i).AsInt()));
    }
  }
  if (const JsonValue* round_load = doc.Find("round_total_load");
      round_load != nullptr && round_load->IsArray()) {
    for (std::size_t i = 0; i < round_load->size(); ++i) {
      record.round_total_load.push_back(
          static_cast<std::size_t>(round_load->at(i).AsInt()));
    }
  }
  if (const JsonValue* p50 = doc.Find("round_wire_p50_ns");
      p50 != nullptr && p50->IsArray()) {
    for (std::size_t i = 0; i < p50->size(); ++i) {
      record.round_wire_p50_ns.push_back(
          static_cast<std::size_t>(p50->at(i).AsInt()));
    }
  }
  if (const JsonValue* p99 = doc.Find("round_wire_p99_ns");
      p99 != nullptr && p99->IsArray()) {
    for (std::size_t i = 0; i < p99->size(); ++i) {
      record.round_wire_p99_ns.push_back(
          static_cast<std::size_t>(p99->at(i).AsInt()));
    }
  }
  if (const JsonValue* predicted = doc.Find("predicted_max_load");
      predicted != nullptr && predicted->IsNumber()) {
    record.predicted_max_load = predicted->AsDouble();
  }
  if (const JsonValue* predicted_wire = doc.Find("predicted_wire_bytes");
      predicted_wire != nullptr && predicted_wire->IsNumber()) {
    record.predicted_wire_bytes = predicted_wire->AsDouble();
  }
  if (const JsonValue* planned = doc.Find("planned_strategy");
      planned != nullptr && planned->IsString()) {
    record.planned_strategy = planned->AsString();
  }
  if (const JsonValue* expected = doc.Find("expected_violation");
      expected != nullptr && expected->IsBool()) {
    record.expected_violation = expected->AsBool();
  }
  return record;
}

AuditRecord MakeAuditRecord(std::string bench, std::string label,
                            Strategy strategy, std::size_t p, LoadBound bound,
                            const RunStats& stats, double slack) {
  AuditRecord record;
  record.bench = std::move(bench);
  record.label = std::move(label);
  record.strategy = strategy;
  record.p = p;
  record.bound = std::move(bound);
  record.slack = slack;
  record.measured_max_load = stats.MaxLoad();
  record.rounds = stats.NumRounds();
  record.total_communication = stats.TotalCommunication();
  record.wire_bytes = stats.TotalWireBytes();
  for (const RoundStats& r : stats.rounds) {
    record.round_wire_bytes.push_back(r.TotalWireBytes());
    record.round_total_load.push_back(r.TotalLoad());
  }
  for (std::size_t r = 0; r < stats.rounds.size(); ++r) {
    if (stats.rounds[r].MaxLoad() == record.measured_max_load) {
      record.worst_round = r;
      record.per_server = stats.rounds[r].received;
      break;
    }
  }
  return record;
}

AuditSink::~AuditSink() { Flush(); }

void AuditSink::Add(AuditRecord record) {
  records_.push_back(std::move(record));
}

std::size_t AuditSink::ExpectedViolations() const {
  std::size_t n = 0;
  for (const AuditRecord& r : records_) {
    if (!r.Pass() && r.expected_violation) ++n;
  }
  return n;
}

std::size_t AuditSink::HardViolations() const {
  std::size_t n = 0;
  for (const AuditRecord& r : records_) {
    if (r.HardViolation()) ++n;
  }
  return n;
}

std::string AuditSink::RenderJsonLines() const {
  std::string out;
  for (const AuditRecord& r : records_) {
    out += r.ToJson().Dump();
    out += '\n';
  }
  return out;
}

void AuditSink::Flush() {
  if (records_.empty()) return;
  const std::string lines = RenderJsonLines();
  const char* path = std::getenv(kAuditJsonEnvVar);
  bool to_stdout = true;
  if (path != nullptr && path[0] != '\0') {
    std::FILE* f = std::fopen(path, "a");
    if (f != nullptr) {
      std::fwrite(lines.data(), 1, lines.size(), f);
      std::fclose(f);
      to_stdout = false;
    } else {
      std::fprintf(stderr,
                   "audit: cannot open %s for append; writing records to"
                   " stdout instead\n",
                   path);
    }
  }
  if (to_stdout) {
    std::printf("# audit-json: %zu record(s)\n", records_.size());
    std::fwrite(lines.data(), 1, lines.size(), stdout);
  }
  records_.clear();
}

AuditSink& GlobalAuditSink() {
  static AuditSink* sink = new AuditSink();
  return *sink;
}

bool HardFailRequested() {
  const char* v = std::getenv(kAuditHardFailEnvVar);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0;
}

int FinalizeGlobalAudit() {
  AuditSink& sink = GlobalAuditSink();
  const bool hard = HardFailRequested();
  std::size_t hard_violations = 0;
  for (const AuditRecord& r : sink.records()) {
    if (!r.HardViolation()) continue;
    ++hard_violations;
    std::fprintf(stderr,
                 "audit: %s/%s (%s, p=%zu) measured max load %zu exceeds"
                 " bound %.1f x slack %.2f\n",
                 r.bench.c_str(), r.label.c_str(),
                 std::string(StrategyName(r.strategy)).c_str(), r.p,
                 r.measured_max_load, r.bound.tuples, r.slack);
  }
  sink.Flush();
  if (hard && hard_violations > 0) {
    std::fprintf(stderr, "audit: %zu hard bound violation(s); failing\n",
                 hard_violations);
    return kAuditHardFailExit;
  }
  return 0;
}

}  // namespace lamp::obs::audit
