#ifndef LAMP_OBS_AUDIT_CAUSAL_H_
#define LAMP_OBS_AUDIT_CAUSAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/dist/merge.h"
#include "obs/json.h"
#include "obs/trace.h"

/// \file
/// Causal-profile extraction from transducer-network traces.
///
/// The network runner stamps every message with a Lamport causal depth
/// (heartbeat broadcasts are depth 1; a message sent while processing a
/// delivery is one deeper than the deepest message its sender had
/// consumed) and emits kNetCausalDeliver / kNetOutput events. This module
/// reconstructs from those events:
///
///  * `coordination_depth` — the causal depth at which the run produced
///    its first output fact. 0 means the output appeared during a
///    heartbeat, before any communication: the operational signature of
///    coordination-freeness (Section 5.1 — on an ideal distribution a
///    coordination-free program computes the query without reading any
///    message, which is exactly TransducerNetwork::RunWithoutDelivery).
///    Non-monotone programs (e.g. a counting barrier) cannot output until
///    messages have been consumed, so their depth is >= 1 on *every*
///    distribution; the sa_causal cross-validation test pins that gap.
///  * the *critical path* — the longest chain of causally-ordered
///    deliveries, root (heartbeat-originated message) to deepest.
///
/// Serialised as "lamp.causal.v1"; tools/obs_audit renders it.

namespace lamp::obs::audit {

/// One delivery on the critical path.
struct CausalStep {
  std::uint32_t transition = 0;  // Delivery transition index.
  std::uint32_t node = 0;        // Receiving node.
  std::uint64_t depth = 0;       // Lamport depth of the delivered message.
};

/// The causal profile of one network run.
struct CausalReport {
  std::size_t deliveries = 0;        // kNetCausalDeliver events seen.
  std::uint64_t max_depth = 0;       // Deepest delivered message.
  bool has_output = false;           // Any kNetOutput event.
  std::uint64_t coordination_depth = 0;  // Depth of the first output.
  std::size_t outputs = 0;           // kNetOutput events (growth points).
  std::vector<CausalStep> critical_path;  // Root to deepest delivery.

  /// Coordination-free profile: every output (if any) appeared at causal
  /// depth 0, i.e. during a heartbeat.
  bool CoordinationFree() const { return coordination_depth == 0; }

  /// Serialises as the "lamp.causal.v1" document.
  JsonValue ToJson() const;
  static std::optional<CausalReport> FromJson(const JsonValue& doc);

  /// Human-readable rendering (depth summary + critical path).
  std::string Render() const;
};

/// Builds the profile from merged trace events (Tracer::Events() order).
CausalReport BuildCausalReport(const std::vector<TraceEvent>& events);

/// Builds the profile from a "lamp.trace.v1" document (trace_dump input).
/// nullopt when the document has no events array.
std::optional<CausalReport> CausalReportFromTraceJson(const JsonValue& doc);

/// Builds the profile across *process* boundaries from a merged
/// multi-process trace (obs/dist/merge.h): every matched send/recv pair
/// is one delivery, its transition index is the pair's position in the
/// merged order, and depths/parents are the Lamport values the merger
/// computed on aligned timestamps. The same convention as the in-process
/// report — root messages are depth 1, a message is one deeper than the
/// deepest message its sender had consumed — so coordination structure is
/// comparable between the simulator and a real mesh run. Mesh runs have
/// no kNetOutput events, so `has_output` stays false and the report's
/// value is the delivery count, max depth and critical path.
CausalReport BuildCausalReport(const dist::MergedTrace& merged);

}  // namespace lamp::obs::audit

#endif  // LAMP_OBS_AUDIT_CAUSAL_H_
