#include "obs/audit/causal.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace lamp::obs::audit {

namespace {

/// Decoded kNetCausalDeliver payload (see obs/trace.h kind comment).
struct Delivery {
  std::uint32_t node = 0;
  std::uint64_t depth = 0;
  std::uint32_t parent = 0;  // Parent transition + 1; 0 = heartbeat origin.
};

CausalReport BuildFromDeliveries(
    const std::vector<std::pair<std::uint32_t, Delivery>>& deliveries,
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& outputs) {
  CausalReport report;
  report.deliveries = deliveries.size();
  report.outputs = outputs.size();
  if (!outputs.empty()) {
    report.has_output = true;
    report.coordination_depth = outputs.front().second;
  }

  std::unordered_map<std::uint32_t, Delivery> by_transition;
  by_transition.reserve(deliveries.size());
  bool have_deepest = false;
  std::uint32_t deepest = 0;
  for (const auto& [transition, d] : deliveries) {
    by_transition[transition] = d;
    if (d.depth > report.max_depth || !have_deepest) {
      report.max_depth = d.depth;
      deepest = transition;
      have_deepest = true;
    }
  }

  // Walk parent pointers from the deepest delivery back to a
  // heartbeat-originated message, then reverse into root-first order.
  // The guard on strictly shrinking depth makes the walk total even on a
  // trace whose ring buffer dropped the parent events.
  if (have_deepest) {
    std::uint32_t transition = deepest;
    std::uint64_t prev_depth = report.max_depth + 1;
    while (true) {
      const auto it = by_transition.find(transition);
      if (it == by_transition.end() || it->second.depth >= prev_depth) break;
      report.critical_path.push_back(
          {transition, it->second.node, it->second.depth});
      prev_depth = it->second.depth;
      if (it->second.parent == 0) break;
      transition = it->second.parent - 1;
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
  }
  return report;
}

}  // namespace

JsonValue CausalReport::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.causal.v1");
  doc.Set("deliveries", deliveries);
  doc.Set("max_depth", static_cast<std::int64_t>(max_depth));
  doc.Set("has_output", has_output);
  doc.Set("coordination_depth", static_cast<std::int64_t>(coordination_depth));
  doc.Set("outputs", outputs);
  doc.Set("coordination_free", CoordinationFree());
  JsonValue path = JsonValue::Array();
  for (const CausalStep& step : critical_path) {
    JsonValue s = JsonValue::Object();
    s.Set("transition", static_cast<std::size_t>(step.transition));
    s.Set("node", static_cast<std::size_t>(step.node));
    s.Set("depth", static_cast<std::int64_t>(step.depth));
    path.PushBack(std::move(s));
  }
  doc.Set("critical_path", std::move(path));
  return doc;
}

std::optional<CausalReport> CausalReport::FromJson(const JsonValue& doc) {
  if (!doc.IsObject()) return std::nullopt;
  const JsonValue* tag = doc.Find("schema");
  if (tag == nullptr || !tag->IsString() ||
      tag->AsString() != "lamp.causal.v1") {
    return std::nullopt;
  }
  CausalReport report;
  if (const JsonValue* v = doc.Find("deliveries"); v != nullptr) {
    report.deliveries = static_cast<std::size_t>(v->AsInt());
  }
  if (const JsonValue* v = doc.Find("max_depth"); v != nullptr) {
    report.max_depth = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const JsonValue* v = doc.Find("has_output"); v != nullptr && v->IsBool()) {
    report.has_output = v->AsBool();
  }
  if (const JsonValue* v = doc.Find("coordination_depth"); v != nullptr) {
    report.coordination_depth = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const JsonValue* v = doc.Find("outputs"); v != nullptr) {
    report.outputs = static_cast<std::size_t>(v->AsInt());
  }
  if (const JsonValue* path = doc.Find("critical_path");
      path != nullptr && path->IsArray()) {
    for (std::size_t i = 0; i < path->size(); ++i) {
      const JsonValue& s = path->at(i);
      CausalStep step;
      if (const JsonValue* t = s.Find("transition"); t != nullptr) {
        step.transition = static_cast<std::uint32_t>(t->AsInt());
      }
      if (const JsonValue* n = s.Find("node"); n != nullptr) {
        step.node = static_cast<std::uint32_t>(n->AsInt());
      }
      if (const JsonValue* d = s.Find("depth"); d != nullptr) {
        step.depth = static_cast<std::uint64_t>(d->AsInt());
      }
      report.critical_path.push_back(step);
    }
  }
  return report;
}

std::string CausalReport::Render() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "deliveries=%zu max_depth=%llu outputs=%zu"
                " coordination_depth=%llu (%s)\n",
                deliveries, static_cast<unsigned long long>(max_depth),
                outputs, static_cast<unsigned long long>(coordination_depth),
                has_output
                    ? (CoordinationFree() ? "coordination-free" : "coordinated")
                    : "no output");
  out += buf;
  if (!critical_path.empty()) {
    out += "critical path (root -> deepest):\n";
    for (const CausalStep& step : critical_path) {
      std::snprintf(buf, sizeof(buf),
                    "  depth %llu: node %u (transition %u)\n",
                    static_cast<unsigned long long>(step.depth), step.node,
                    step.transition);
      out += buf;
    }
  }
  return out;
}

CausalReport BuildCausalReport(const std::vector<TraceEvent>& events) {
  std::vector<std::pair<std::uint32_t, Delivery>> deliveries;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> outputs;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kNetCausalDeliver) {
      Delivery d;
      d.node = e.a;
      d.depth = e.value >> 32;
      d.parent = static_cast<std::uint32_t>(e.value & 0xffffffffu);
      deliveries.emplace_back(e.b, d);
    } else if (e.kind == EventKind::kNetOutput) {
      outputs.emplace_back(e.b, e.value);
    }
  }
  return BuildFromDeliveries(deliveries, outputs);
}

CausalReport BuildCausalReport(const dist::MergedTrace& merged) {
  std::vector<std::pair<std::uint32_t, Delivery>> deliveries;
  deliveries.reserve(merged.pairs.size());
  for (std::size_t i = 0; i < merged.pairs.size(); ++i) {
    const dist::MatchedPair& pair = merged.pairs[i];
    Delivery d;
    d.node = pair.to;
    d.depth = pair.depth;
    d.parent = pair.parent;  // Already "pair index + 1, 0 = root".
    deliveries.emplace_back(static_cast<std::uint32_t>(i), d);
  }
  return BuildFromDeliveries(deliveries, {});
}

std::optional<CausalReport> CausalReportFromTraceJson(const JsonValue& doc) {
  if (!doc.IsObject()) return std::nullopt;
  const JsonValue* events = doc.Find("events");
  if (events == nullptr || !events->IsArray()) return std::nullopt;
  std::vector<std::pair<std::uint32_t, Delivery>> deliveries;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> outputs;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const JsonValue* kind = e.Find("kind");
    if (kind == nullptr || !kind->IsString()) continue;
    const JsonValue* a = e.Find("a");
    const JsonValue* b = e.Find("b");
    const JsonValue* value = e.Find("value");
    if (a == nullptr || b == nullptr || value == nullptr) continue;
    if (kind->AsString() == "net.causal_deliver") {
      Delivery d;
      d.node = static_cast<std::uint32_t>(a->AsInt());
      const auto packed = static_cast<std::uint64_t>(value->AsInt());
      d.depth = packed >> 32;
      d.parent = static_cast<std::uint32_t>(packed & 0xffffffffu);
      deliveries.emplace_back(static_cast<std::uint32_t>(b->AsInt()), d);
    } else if (kind->AsString() == "net.output") {
      outputs.emplace_back(static_cast<std::uint32_t>(b->AsInt()),
                           static_cast<std::uint64_t>(value->AsInt()));
    }
  }
  return BuildFromDeliveries(deliveries, outputs);
}

}  // namespace lamp::obs::audit
