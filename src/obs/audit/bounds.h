#ifndef LAMP_OBS_AUDIT_BOUNDS_H_
#define LAMP_OBS_AUDIT_BOUNDS_H_

#include <string>
#include <string_view>

#include "cq/cq.h"
#include "distribution/hypercube.h"
#include "obs/audit/catalog.h"

/// \file
/// Theoretical per-server load bounds, one per distribution strategy the
/// repo implements (Section 3 of the paper), computed from the statistics
/// catalog so the audit layer can hold every measured run against the
/// bound it claims to reproduce:
///
///   HyperCube        exact expected load  sum_e m_e / prod_{v in e} a_v
///                    (the Theta(m/p^{1/tau*}) optimum on skew-free data;
///                    the expectation is exact for *every* input, skew
///                    only breaks the concentration of the max around it)
///   Repartition      m / p      (hash-partition on the join key; degrades
///                    to Omega(m) under a heavy hitter)
///   FragmentReplicate / SharesSkew
///                    m / floor(sqrt p)  (skew-independent one-round join)
///   SkewResilient    sum_e m_e / p^{1/tau*}  (the multi-round algorithm
///                    recovers the skew-free exponent on skewed data)
///
/// A bound is a *pass threshold*, not a prediction: the auditor compares
/// measured max load against bound * slack, where slack absorbs hashing
/// variance (balls-into-bins constants the Theta hides). Strategies with
/// no closed-form bound (plan cascades, Yannakakis, GYM) audit as kNone:
/// the record still carries the measured loads, just no verdict.

namespace lamp::obs::audit {

/// The distribution strategy a run claims to implement.
enum class Strategy {
  kHyperCube,          // One-round HyperCube/Shares with explicit shares.
  kRepartition,        // Hash-repartition on the shared variables.
  kFragmentReplicate,  // Row x column grid broadcast join.
  kSharesSkew,         // Heavy-hitter-aware shares (skew join).
  kSkewResilient,      // Multi-round skew-resilient algorithm.
  kNone,               // No closed-form bound; record loads only.
};

/// Stable wire name ("hypercube", "repartition", ...).
std::string_view StrategyName(Strategy strategy);

/// Parses a wire name; kNone for anything unknown.
Strategy StrategyFromName(std::string_view name);

/// One computed bound. `tuples` is the threshold in tuples-per-server;
/// `formula` renders how it was derived, for reports.
struct LoadBound {
  bool has_bound = false;
  double tuples = 0.0;
  std::string formula;
};

/// No closed-form bound (Strategy::kNone).
LoadBound NoBound();

/// Relation sizes of the query's positive body atoms, from the catalog.
/// Atoms over relations the catalog does not know get size 0.
std::vector<double> BodyAtomSizes(const ConjunctiveQuery& query,
                                  const Schema& schema,
                                  const Catalog& catalog);

/// Exact expected HyperCube load for the given shares (see file comment).
LoadBound HyperCubeBound(const ConjunctiveQuery& query, const Schema& schema,
                         const Catalog& catalog, const Shares& shares);

/// Asymptotic skew-free optimum sum_e m_e / p^{1/tau*}; used for
/// multi-round skew-resilient runs where no single share vector applies.
LoadBound SkewResilientBound(const ConjunctiveQuery& query,
                             const Schema& schema, const Catalog& catalog,
                             std::size_t p);

/// Repartition bound m_total / p over the query's body relations.
LoadBound RepartitionBound(const ConjunctiveQuery& query, const Schema& schema,
                           const Catalog& catalog, std::size_t p);

/// Skew-independent bound m_total / floor(sqrt p) for fragment-replicate
/// style grids (also the SharesSkew guarantee).
LoadBound SqrtPBound(const ConjunctiveQuery& query, const Schema& schema,
                     const Catalog& catalog, std::size_t p);

/// The bound a strategy promises, dispatching on \p strategy. kHyperCube
/// requires \p shares (one per query variable); the others ignore it.
LoadBound BoundFor(Strategy strategy, const ConjunctiveQuery& query,
                   const Schema& schema, const Catalog& catalog, std::size_t p,
                   const Shares* shares = nullptr);

}  // namespace lamp::obs::audit

#endif  // LAMP_OBS_AUDIT_BOUNDS_H_
