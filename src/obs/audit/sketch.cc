#include "obs/audit/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lamp::obs::audit {

SpaceSavingSketch::SpaceSavingSketch(std::size_t capacity)
    : capacity_(capacity) {
  LAMP_CHECK(capacity_ >= 1);
}

void SpaceSavingSketch::Observe(std::int64_t value) {
  ++stream_length_;
  auto it = counters_.find(value);
  if (it != counters_.end()) {
    ++it->second.count;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(value, Counter{1, 0});
    return;
  }
  // Evict the minimum-count entry; the map's value order makes the choice
  // of minimum deterministic. The newcomer inherits the evicted count as
  // its error bound (it may have occurred up to that often before being
  // tracked).
  auto min_it = counters_.begin();
  for (auto cand = counters_.begin(); cand != counters_.end(); ++cand) {
    if (cand->second.count < min_it->second.count) min_it = cand;
  }
  const std::uint64_t min_count = min_it->second.count;
  counters_.erase(min_it);
  counters_.emplace(value, Counter{min_count + 1, min_count});
}

std::vector<SketchEntry> SpaceSavingSketch::Entries() const {
  std::vector<SketchEntry> entries;
  entries.reserve(counters_.size());
  for (const auto& [value, c] : counters_) {
    entries.push_back({value, c.count, c.error});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  return entries;
}

std::vector<SketchEntry> SpaceSavingSketch::TopK(std::size_t k) const {
  std::vector<SketchEntry> entries = Entries();
  if (entries.size() > k) entries.resize(k);
  return entries;
}

std::uint64_t SpaceSavingSketch::MaxFrequencyLowerBound() const {
  std::uint64_t best = 0;
  for (const auto& [value, c] : counters_) {
    (void)value;
    best = std::max(best, c.count - c.error);
  }
  return best;
}

double EstimateZipfExponent(const std::vector<SketchEntry>& entries) {
  if (entries.size() < 3) return 0.0;
  // Least squares of y = log(count) on x = log(rank), rank starting at 1.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].count == 0) return 0.0;
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(entries[i].count));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (denom <= 0) return 0.0;
  const double slope = (n * sxy - sx * sy) / denom;
  return std::max(0.0, -slope);
}

}  // namespace lamp::obs::audit
