#ifndef LAMP_OBS_AUDIT_AUDIT_H_
#define LAMP_OBS_AUDIT_AUDIT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mpc/stats.h"
#include "obs/audit/bounds.h"
#include "obs/json.h"

/// \file
/// Load-bound audit records ("lamp.audit.v1").
///
/// One record holds a single MPC run against the theoretical bound its
/// strategy promises: the measured per-server/per-round loads from
/// RunStats next to the catalog-derived LoadBound, a headroom ratio
/// (bound * slack / measured; > 1 means the run respected the bound) and
/// a pass verdict. Records flow through the same channel as bench
/// records: appended as JSON lines to the file named by LAMP_AUDIT_JSON,
/// or printed after a "# audit-json:" marker when the variable is unset.
///
/// Hard-fail mode (LAMP_AUDIT_HARD_FAIL=1, or the bench_runner
/// --audit-hard-fail gate) turns an *unexpected* bound violation into a
/// nonzero exit: FinalizeGlobalAudit() returns kAuditHardFailExit and the
/// bench main() propagates it. Records can opt out via
/// `expected_violation` — that is how deliberately skewed workloads
/// (repartition under a heavy hitter, one-round HyperCube on skewed
/// data) stay pinned as *demonstrations* of the theory's preconditions
/// without failing the suite.

namespace lamp::obs::audit {

/// Slack multiplier absorbing the constants the Theta-bounds hide
/// (hashing variance, balls-into-bins maxima). Calibrated against the
/// repo's bench workloads; see EXPERIMENTS.md for the calibration runs.
inline constexpr double kDefaultSlack = 3.0;

/// Exit code of a hard audit failure (distinct from test-failure 1 and
/// usage-error 2 conventions).
inline constexpr int kAuditHardFailExit = 4;

/// Environment variable naming the JSON-lines destination file.
inline constexpr const char* kAuditJsonEnvVar = "LAMP_AUDIT_JSON";

/// Environment variable enabling hard-fail mode ("1"/"true").
inline constexpr const char* kAuditHardFailEnvVar = "LAMP_AUDIT_HARD_FAIL";

/// One audited run.
struct AuditRecord {
  std::string bench;   // Binary name ("hypercube_load", ...).
  std::string label;   // Configuration ("triangle/p=64", ...).
  Strategy strategy = Strategy::kNone;
  std::size_t p = 0;   // Servers.
  JsonValue params = JsonValue::Object();  // Free-form workload params.

  LoadBound bound;     // has_bound=false => loads recorded, no verdict.
  double slack = kDefaultSlack;

  std::size_t measured_max_load = 0;  // RunStats::MaxLoad().
  std::size_t rounds = 0;
  std::size_t total_communication = 0;
  std::size_t worst_round = 0;  // Round achieving the max load.
  std::vector<std::size_t> per_server;  // Loads of the worst round.

  /// Wire traffic next to the logical loads (lamp.wire.v1 framing bytes;
  /// measured on socket transports and by tools/mpc_procs, computed in
  /// closed form in-process — identical either way). Zero / empty when
  /// the producing run predates wire accounting; FromJson tolerates their
  /// absence. round_total_load aligns with round_wire_bytes so readers
  /// can print the per-round wire/logical ratio (bytes per tuple, the
  /// serialization overhead) without re-deriving round totals.
  std::size_t wire_bytes = 0;                  // RunStats::TotalWireBytes().
  std::vector<std::size_t> round_wire_bytes;   // Per round, all servers.
  std::vector<std::size_t> round_total_load;   // Per round, all servers.

  /// Measured cross-process wire latency per round (ns percentiles over
  /// the matched send/recv pairs of a merged multi-process trace — see
  /// obs/dist/merge.h). Empty when the run was in-process or traced
  /// nothing; FromJson tolerates absence. Aligned with round_wire_bytes
  /// by index when both are present.
  std::vector<std::size_t> round_wire_p50_ns;
  std::vector<std::size_t> round_wire_p99_ns;

  /// The static planner's verdict for this run, when the producing bench
  /// planned it (lamp.plan.v1 — see sa/plan/plan.h): the predicted max
  /// per-server load and wire bytes for *this record's* strategy, and the
  /// strategy the planner ranked first for the whole scenario. Zero /
  /// empty when the run was not planned; FromJson tolerates absence.
  /// `obs_audit report` renders predicted-vs-measured slack from these.
  double predicted_max_load = 0.0;
  double predicted_wire_bytes = 0.0;
  std::string planned_strategy;

  bool expected_violation = false;  // Exempt from hard fail.

  /// measured <= bound * slack (true when there is no bound).
  bool Pass() const;

  /// bound * slack / max(measured, 1); 0 when there is no bound. > 1 is
  /// headroom, < 1 is violation depth.
  double Headroom() const;

  /// True when this record should fail a hard-fail gate.
  bool HardViolation() const { return !Pass() && !expected_violation; }

  /// True when the record carries a planner verdict.
  bool HasPrediction() const { return !planned_strategy.empty(); }

  /// measured / predicted max load (how far reality strayed from the
  /// model; ~1 is a good model). 0 when unplanned or predicted is 0.
  double PredictionRatio() const;

  JsonValue ToJson() const;
  static std::optional<AuditRecord> FromJson(const JsonValue& doc);
};

/// Builds a record from a finished run: fills the measured side from
/// \p stats (max load, rounds, communication, worst-round profile).
AuditRecord MakeAuditRecord(std::string bench, std::string label,
                            Strategy strategy, std::size_t p, LoadBound bound,
                            const RunStats& stats,
                            double slack = kDefaultSlack);

/// Collects records and flushes them as JSON lines, mirroring
/// BenchReporter's destination contract (see file comment).
class AuditSink {
 public:
  AuditSink() = default;
  ~AuditSink();
  AuditSink(const AuditSink&) = delete;
  AuditSink& operator=(const AuditSink&) = delete;

  void Add(AuditRecord record);

  const std::vector<AuditRecord>& records() const { return records_; }
  std::size_t NumRecords() const { return records_.size(); }

  /// Records failing Pass() but marked expected (informational).
  std::size_t ExpectedViolations() const;
  /// Records that trip a hard-fail gate.
  std::size_t HardViolations() const;

  std::string RenderJsonLines() const;

  /// Writes pending records to LAMP_AUDIT_JSON (append) or stdout after a
  /// "# audit-json:" marker, then clears them.
  void Flush();

 private:
  std::vector<AuditRecord> records_;
};

/// Process-global sink shared by a bench binary's configurations.
AuditSink& GlobalAuditSink();

/// True when LAMP_AUDIT_HARD_FAIL requests hard-fail mode.
bool HardFailRequested();

/// Flushes the global sink; in hard-fail mode, prints every hard
/// violation to stderr and returns kAuditHardFailExit when any exists
/// (0 otherwise). Bench main()s call this after RunRepeated and
/// propagate the exit code.
int FinalizeGlobalAudit();

}  // namespace lamp::obs::audit

#endif  // LAMP_OBS_AUDIT_AUDIT_H_
