#ifndef LAMP_OBS_AUDIT_CATALOG_H_
#define LAMP_OBS_AUDIT_CATALOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/audit/sketch.h"
#include "obs/json.h"
#include "relational/instance.h"
#include "relational/schema.h"

/// \file
/// The per-relation statistics catalog ("lamp.catalog.v1").
///
/// A single pass over an Instance produces, per relation: cardinality,
/// per-column distinct counts, a Space-Saving heavy-hitter profile and a
/// Zipf skew estimate. The catalog is the shared input of two consumers:
///
///  * the load-bound auditor (obs/audit/bounds.h), which needs relation
///    sizes m_e for the HyperCube expected load sum_e m_e / prod alpha_v
///    and the skew profile to explain why a skewed run blows the
///    skew-free bound;
///  * the ROADMAP-2 cost-based planner, which will pick shares and join
///    orders from exactly these statistics.
///
/// Persisted as JSON so bench harnesses can snapshot the catalog next to
/// the audit records and tools/obs_audit can render a skew report offline.

namespace lamp::obs::audit {

/// Statistics of one attribute position of one relation.
struct ColumnStats {
  std::size_t distinct = 0;  // Exact distinct-value count.
  double zipf_s = 0.0;       // Estimated Zipf exponent (0 = uniform-ish).
  /// Mean lamp.wire.v1 zigzag-varint size of the column's values, in
  /// bytes — what one value of this column costs on the wire. The
  /// planner multiplies shipped-tuple estimates by these to predict wire
  /// bytes. 0 when the column is empty (or the catalog predates the
  /// field; FromJson tolerates absence).
  double avg_bytes = 0.0;
  std::vector<SketchEntry> heavy;  // Sketch top-k, count descending.

  /// Upper bound on the max frequency of any value in this column
  /// (top sketch count; 0 when the column is empty).
  std::uint64_t MaxFrequencyUpper() const {
    return heavy.empty() ? 0 : heavy.front().count;
  }
  /// Guaranteed lower bound on the max frequency.
  std::uint64_t MaxFrequencyLower() const;
};

/// Statistics of one relation.
struct RelationStats {
  std::string name;
  std::size_t arity = 0;
  std::uint64_t cardinality = 0;
  std::vector<ColumnStats> columns;  // One per attribute position.

  /// Max estimated Zipf exponent over columns — the relation counts as
  /// skewed when any single attribute is heavy-tailed.
  double SkewEstimate() const;

  /// True when some column has a value of frequency > cardinality *
  /// \p heavy_fraction (by the sketch's guaranteed lower bound) — the
  /// "heavy hitter" condition under which one hash bucket must overflow.
  bool HasHeavyHitter(double heavy_fraction) const;
};

struct CatalogOptions {
  std::size_t sketch_capacity = 64;  // Space-Saving counters per column.
  std::size_t top_k = 8;             // Heavy hitters kept in the catalog.
};

/// The statistics catalog of one Instance.
struct Catalog {
  std::vector<RelationStats> relations;  // Schema registration order.

  const RelationStats* Find(std::string_view name) const;

  /// Cardinality of \p name, or 0 when the catalog has no such relation.
  std::uint64_t CardinalityOf(std::string_view name) const;

  /// Total facts over all relations.
  std::uint64_t TotalFacts() const;

  /// Serialises as the "lamp.catalog.v1" document.
  JsonValue ToJson() const;

  /// Parses a "lamp.catalog.v1" document; nullopt when the schema tag or
  /// shape is wrong.
  static std::optional<Catalog> FromJson(const JsonValue& doc);
};

/// Builds the catalog for \p instance in one pass. Relations registered in
/// \p schema but absent from the instance get cardinality-0 entries, so a
/// bound lookup never silently misses a relation the query mentions.
Catalog BuildCatalog(const Schema& schema, const Instance& instance,
                     const CatalogOptions& options = {});

}  // namespace lamp::obs::audit

#endif  // LAMP_OBS_AUDIT_CATALOG_H_
