#include "obs/audit/catalog.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "transport/wire.h"

namespace lamp::obs::audit {

std::uint64_t ColumnStats::MaxFrequencyLower() const {
  std::uint64_t best = 0;
  for (const SketchEntry& e : heavy) best = std::max(best, e.count - e.error);
  return best;
}

double RelationStats::SkewEstimate() const {
  double best = 0.0;
  for (const ColumnStats& c : columns) best = std::max(best, c.zipf_s);
  return best;
}

bool RelationStats::HasHeavyHitter(double heavy_fraction) const {
  const double threshold = static_cast<double>(cardinality) * heavy_fraction;
  for (const ColumnStats& c : columns) {
    if (static_cast<double>(c.MaxFrequencyLower()) > threshold) return true;
  }
  return false;
}

const RelationStats* Catalog::Find(std::string_view name) const {
  for (const RelationStats& r : relations) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::uint64_t Catalog::CardinalityOf(std::string_view name) const {
  const RelationStats* r = Find(name);
  return r == nullptr ? 0 : r->cardinality;
}

std::uint64_t Catalog::TotalFacts() const {
  std::uint64_t total = 0;
  for (const RelationStats& r : relations) total += r.cardinality;
  return total;
}

JsonValue Catalog::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "lamp.catalog.v1");
  JsonValue rels = JsonValue::Array();
  for (const RelationStats& r : relations) {
    JsonValue rel = JsonValue::Object();
    rel.Set("name", r.name);
    rel.Set("arity", r.arity);
    rel.Set("cardinality", static_cast<std::int64_t>(r.cardinality));
    rel.Set("skew", r.SkewEstimate());
    JsonValue cols = JsonValue::Array();
    for (const ColumnStats& c : r.columns) {
      JsonValue col = JsonValue::Object();
      col.Set("distinct", c.distinct);
      col.Set("zipf_s", c.zipf_s);
      col.Set("avg_bytes", c.avg_bytes);
      JsonValue heavy = JsonValue::Array();
      for (const SketchEntry& e : c.heavy) {
        JsonValue entry = JsonValue::Object();
        entry.Set("value", e.value);
        entry.Set("count", static_cast<std::int64_t>(e.count));
        entry.Set("error", static_cast<std::int64_t>(e.error));
        heavy.PushBack(std::move(entry));
      }
      col.Set("heavy", std::move(heavy));
      cols.PushBack(std::move(col));
    }
    rel.Set("columns", std::move(cols));
    rels.PushBack(std::move(rel));
  }
  doc.Set("relations", std::move(rels));
  return doc;
}

std::optional<Catalog> Catalog::FromJson(const JsonValue& doc) {
  if (!doc.IsObject()) return std::nullopt;
  const JsonValue* tag = doc.Find("schema");
  if (tag == nullptr || !tag->IsString() ||
      tag->AsString() != "lamp.catalog.v1") {
    return std::nullopt;
  }
  const JsonValue* rels = doc.Find("relations");
  if (rels == nullptr || !rels->IsArray()) return std::nullopt;
  Catalog catalog;
  for (std::size_t i = 0; i < rels->size(); ++i) {
    const JsonValue& rel = rels->at(i);
    const JsonValue* name = rel.Find("name");
    const JsonValue* arity = rel.Find("arity");
    const JsonValue* cardinality = rel.Find("cardinality");
    const JsonValue* cols = rel.Find("columns");
    if (name == nullptr || !name->IsString() || arity == nullptr ||
        cardinality == nullptr || cols == nullptr || !cols->IsArray()) {
      return std::nullopt;
    }
    RelationStats stats;
    stats.name = name->AsString();
    stats.arity = static_cast<std::size_t>(arity->AsInt());
    stats.cardinality = static_cast<std::uint64_t>(cardinality->AsInt());
    for (std::size_t j = 0; j < cols->size(); ++j) {
      const JsonValue& col = cols->at(j);
      const JsonValue* distinct = col.Find("distinct");
      const JsonValue* zipf = col.Find("zipf_s");
      if (distinct == nullptr || zipf == nullptr) return std::nullopt;
      ColumnStats cstats;
      cstats.distinct = static_cast<std::size_t>(distinct->AsInt());
      cstats.zipf_s = zipf->AsDouble();
      if (const JsonValue* avg = col.Find("avg_bytes");
          avg != nullptr && avg->IsNumber()) {
        cstats.avg_bytes = avg->AsDouble();
      }
      if (const JsonValue* heavy = col.Find("heavy");
          heavy != nullptr && heavy->IsArray()) {
        for (std::size_t k = 0; k < heavy->size(); ++k) {
          const JsonValue& e = heavy->at(k);
          const JsonValue* value = e.Find("value");
          const JsonValue* count = e.Find("count");
          const JsonValue* error = e.Find("error");
          if (value == nullptr || count == nullptr || error == nullptr) {
            return std::nullopt;
          }
          cstats.heavy.push_back({value->AsInt(),
                                  static_cast<std::uint64_t>(count->AsInt()),
                                  static_cast<std::uint64_t>(error->AsInt())});
        }
      }
      stats.columns.push_back(std::move(cstats));
    }
    catalog.relations.push_back(std::move(stats));
  }
  return catalog;
}

Catalog BuildCatalog(const Schema& schema, const Instance& instance,
                     const CatalogOptions& options) {
  Catalog catalog;
  for (RelationId rel = 0; rel < schema.NumRelations(); ++rel) {
    const std::size_t arity = schema.ArityOf(rel);
    RelationStats stats;
    stats.name = schema.NameOf(rel);
    stats.arity = arity;

    std::vector<std::unordered_set<std::int64_t>> distinct(arity);
    std::vector<std::uint64_t> value_bytes(arity, 0);
    std::vector<SpaceSavingSketch> sketches;
    sketches.reserve(arity);
    for (std::size_t c = 0; c < arity; ++c) {
      sketches.emplace_back(options.sketch_capacity);
    }
    if (rel < instance.NumRelationIds()) {
      for (const Fact& f : instance.FactsOf(rel)) {
        ++stats.cardinality;
        for (std::size_t c = 0; c < arity && c < f.args.size(); ++c) {
          distinct[c].insert(f.args[c].v);
          value_bytes[c] += transport::ZigzagSize(f.args[c].v);
          sketches[c].Observe(f.args[c].v);
        }
      }
    }
    for (std::size_t c = 0; c < arity; ++c) {
      ColumnStats cstats;
      cstats.distinct = distinct[c].size();
      // Estimate skew from the full sketch (more ranks, better fit), but
      // persist only the top_k heaviest entries.
      cstats.zipf_s = EstimateZipfExponent(sketches[c].Entries());
      cstats.avg_bytes = stats.cardinality == 0
                             ? 0.0
                             : static_cast<double>(value_bytes[c]) /
                                   static_cast<double>(stats.cardinality);
      cstats.heavy = sketches[c].TopK(options.top_k);
      stats.columns.push_back(std::move(cstats));
    }
    catalog.relations.push_back(std::move(stats));
  }
  return catalog;
}

}  // namespace lamp::obs::audit
