#include "obs/perfdb.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lamp::obs {

std::string PerfKey::Label() const {
  std::string out = bench;
  out += ' ';
  out += params;
  out += " ×";
  out += std::to_string(threads);
  return out;
}

PerfSummary Summarize(std::vector<std::uint64_t> wall_ns) {
  PerfSummary s;
  if (wall_ns.empty()) return s;
  std::sort(wall_ns.begin(), wall_ns.end());
  s.count = wall_ns.size();
  s.min_ns = wall_ns.front();
  s.max_ns = wall_ns.back();
  double sum = 0.0;
  for (std::uint64_t v : wall_ns) sum += static_cast<double>(v);
  s.mean_ns = sum / static_cast<double>(s.count);
  const std::size_t mid = s.count / 2;
  s.median_ns = (s.count % 2 == 1)
                    ? static_cast<double>(wall_ns[mid])
                    : (static_cast<double>(wall_ns[mid - 1]) +
                       static_cast<double>(wall_ns[mid])) /
                          2.0;
  if (s.count >= 2) {
    double sq = 0.0;
    for (std::uint64_t v : wall_ns) {
      const double d = static_cast<double>(v) - s.mean_ns;
      sq += d * d;
    }
    s.stddev_ns = std::sqrt(sq / static_cast<double>(s.count - 1));
  }
  if (s.mean_ns > 0.0) s.cv = s.stddev_ns / s.mean_ns;
  return s;
}

bool PerfDb::Add(const JsonValue& record, std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!record.IsObject()) return fail("record is not a JSON object");
  const JsonValue* bench = record.Find("bench");
  if (bench == nullptr || !bench->IsString() || bench->AsString().empty()) {
    return fail("missing or non-string \"bench\"");
  }
  const JsonValue* params = record.Find("params");
  if (params == nullptr || !params->IsObject()) {
    return fail("missing or non-object \"params\"");
  }
  const JsonValue* wall_ns = record.Find("wall_ns");
  if (wall_ns == nullptr || !wall_ns->IsNumber()) {
    return fail("missing or non-numeric \"wall_ns\"");
  }
  if (wall_ns->AsInt() < 0) return fail("negative \"wall_ns\"");
  PerfKey key;
  key.bench = bench->AsString();
  key.params = params->Dump();
  const JsonValue* threads = record.Find("threads");
  key.threads =
      (threads != nullptr && threads->IsNumber() && threads->AsInt() >= 1)
          ? static_cast<int>(threads->AsInt())
          : 1;
  records_[key].push_back(record);
  return true;
}

PerfDb::LoadStats PerfDb::IngestJsonLines(std::string_view text) {
  LoadStats stats;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
      if (pos > text.size()) break;
      continue;
    }
    // Lines starting with '#' are human-readable markers ("# bench-json:"
    // from the stdout fallback), not records.
    if (line[line.find_first_not_of(" \t\r")] == '#') continue;
    ++stats.lines;
    std::string error;
    const std::optional<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.has_value()) {
      ++stats.malformed;
      stats.errors.push_back("line " + std::to_string(line_no) +
                             ": invalid JSON");
      continue;
    }
    if (!Add(*parsed, &error)) {
      ++stats.malformed;
      stats.errors.push_back("line " + std::to_string(line_no) + ": " + error);
      continue;
    }
    ++stats.records;
  }
  return stats;
}

std::size_t PerfDb::NumRecords() const {
  std::size_t n = 0;
  for (const auto& [key, recs] : records_) n += recs.size();
  return n;
}

std::map<PerfKey, PerfSummary> PerfDb::Summaries() const {
  std::map<PerfKey, PerfSummary> out;
  for (const auto& [key, recs] : records_) {
    std::vector<std::uint64_t> samples;
    samples.reserve(recs.size());
    for (const JsonValue& r : recs) {
      samples.push_back(static_cast<std::uint64_t>(r.Find("wall_ns")->AsInt()));
    }
    out.emplace(key, Summarize(std::move(samples)));
  }
  return out;
}

JsonValue PerfDb::RecordsToJson() const {
  JsonValue out = JsonValue::Array();
  for (const auto& [key, recs] : records_) {
    for (const JsonValue& r : recs) out.PushBack(r);
  }
  return out;
}

JsonValue PerfDb::SummariesToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("schema", "lamp.perf_summary.v1");
  JsonValue arr = JsonValue::Array();
  for (const auto& [key, summary] : Summaries()) {
    JsonValue e = JsonValue::Object();
    e.Set("bench", key.bench);
    // params round-trips as the object itself, not the signature string,
    // so baselines stay human-readable and diffable.
    const std::optional<JsonValue> params = JsonValue::Parse(key.params);
    e.Set("params", params.has_value() ? *params : JsonValue::Object());
    e.Set("threads", key.threads);
    e.Set("count", summary.count);
    e.Set("min_ns", static_cast<std::size_t>(summary.min_ns));
    e.Set("median_ns", summary.median_ns);
    e.Set("mean_ns", summary.mean_ns);
    e.Set("max_ns", static_cast<std::size_t>(summary.max_ns));
    e.Set("stddev_ns", summary.stddev_ns);
    e.Set("cv", summary.cv);
    arr.PushBack(std::move(e));
  }
  out.Set("summaries", std::move(arr));
  return out;
}

std::map<PerfKey, PerfSummary> SummariesFromJson(const JsonValue& summaries) {
  std::map<PerfKey, PerfSummary> out;
  const JsonValue* arr = &summaries;
  if (summaries.IsObject()) {
    const JsonValue* inner = summaries.Find("summaries");
    if (inner == nullptr) return out;
    arr = inner;
  }
  if (!arr->IsArray()) return out;
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const JsonValue& e = arr->at(i);
    if (!e.IsObject()) continue;
    const JsonValue* bench = e.Find("bench");
    const JsonValue* params = e.Find("params");
    const JsonValue* median = e.Find("median_ns");
    if (bench == nullptr || !bench->IsString() || params == nullptr ||
        !params->IsObject() || median == nullptr || !median->IsNumber()) {
      continue;
    }
    PerfKey key;
    key.bench = bench->AsString();
    key.params = params->Dump();
    const JsonValue* threads = e.Find("threads");
    key.threads = (threads != nullptr && threads->IsNumber())
                      ? static_cast<int>(threads->AsInt())
                      : 1;
    PerfSummary s;
    s.median_ns = median->AsDouble();
    if (const auto* v = e.Find("count")) {
      s.count = static_cast<std::size_t>(v->AsInt());
    }
    if (const auto* v = e.Find("min_ns")) {
      s.min_ns = static_cast<std::uint64_t>(v->AsInt());
    }
    if (const auto* v = e.Find("max_ns")) {
      s.max_ns = static_cast<std::uint64_t>(v->AsInt());
    }
    if (const auto* v = e.Find("mean_ns")) s.mean_ns = v->AsDouble();
    if (const auto* v = e.Find("stddev_ns")) s.stddev_ns = v->AsDouble();
    if (const auto* v = e.Find("cv")) s.cv = v->AsDouble();
    out.emplace(std::move(key), s);
  }
  return out;
}

std::string_view DiffStatusName(DiffStatus status) {
  switch (status) {
    case DiffStatus::kUnchanged:
      return "ok";
    case DiffStatus::kImproved:
      return "improved";
    case DiffStatus::kRegressed:
      return "REGRESSED";
    case DiffStatus::kNew:
      return "new";
    case DiffStatus::kMissing:
      return "missing";
  }
  return "?";
}

DiffReport DiffSummaries(const std::map<PerfKey, PerfSummary>& baseline,
                         const std::map<PerfKey, PerfSummary>& current,
                         const DiffThresholds& thresholds) {
  DiffReport report;
  report.thresholds = thresholds;
  for (const auto& [key, cur] : current) {
    DiffEntry entry;
    entry.key = key;
    entry.current = cur;
    const auto it = baseline.find(key);
    if (it == baseline.end()) {
      entry.status = DiffStatus::kNew;
      ++report.num_new;
      report.entries.push_back(std::move(entry));
      continue;
    }
    const PerfSummary& base = it->second;
    entry.baseline = base;
    const double delta = cur.median_ns - base.median_ns;
    entry.delta_rel = base.median_ns > 0.0 ? delta / base.median_ns : 0.0;
    entry.noise_ns = std::max(base.stddev_ns, cur.stddev_ns);
    const bool significant =
        std::abs(delta) > thresholds.noise_mult * entry.noise_ns &&
        std::abs(delta) > thresholds.min_delta_ns &&
        std::abs(entry.delta_rel) > thresholds.rel_tolerance;
    if (!significant) {
      entry.status = DiffStatus::kUnchanged;
      ++report.num_unchanged;
    } else if (delta > 0.0) {
      entry.status = DiffStatus::kRegressed;
      ++report.num_regressed;
    } else {
      entry.status = DiffStatus::kImproved;
      ++report.num_improved;
    }
    report.entries.push_back(std::move(entry));
  }
  for (const auto& [key, base] : baseline) {
    if (current.find(key) != current.end()) continue;
    DiffEntry entry;
    entry.key = key;
    entry.baseline = base;
    entry.status = DiffStatus::kMissing;
    ++report.num_missing;
    report.entries.push_back(std::move(entry));
  }
  // Regressions first, then improvements, then the rest; key order within
  // each class (entries were generated in key order).
  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const DiffEntry& a, const DiffEntry& b) {
                     const auto rank = [](DiffStatus s) {
                       switch (s) {
                         case DiffStatus::kRegressed:
                           return 0;
                         case DiffStatus::kImproved:
                           return 1;
                         default:
                           return 2;
                       }
                     };
                     return rank(a.status) < rank(b.status);
                   });
  return report;
}

namespace {

std::string FormatMs(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e6);
  return buf;
}

std::string FormatPct(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", rel * 100.0);
  return buf;
}

std::string Truncate(std::string s, std::size_t max) {
  if (s.size() > max) {
    s.resize(max - 1);
    s += "…";
  }
  return s;
}

}  // namespace

std::string DiffReport::RenderConsole() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "perf diff: %zu key(s) — %zu regressed, %zu improved, %zu"
                " unchanged, %zu new, %zu missing\n"
                "thresholds: rel > %.0f%%, delta > %.1fx noise, delta >"
                " %.3fms\n\n",
                entries.size(), num_regressed, num_improved, num_unchanged,
                num_new, num_missing, thresholds.rel_tolerance * 100.0,
                thresholds.noise_mult, thresholds.min_delta_ns / 1e6);
  out += line;
  std::snprintf(line, sizeof(line), "%-9s %-52s %12s %12s %8s %10s\n",
                "status", "bench / params / threads", "base ms", "cur ms",
                "delta", "noise ms");
  out += line;
  for (const DiffEntry& e : entries) {
    const std::string label = Truncate(e.key.Label(), 52);
    const bool has_base = e.status != DiffStatus::kNew;
    const bool has_cur = e.status != DiffStatus::kMissing;
    std::snprintf(line, sizeof(line), "%-9s %-52s %12s %12s %8s %10s\n",
                  std::string(DiffStatusName(e.status)).c_str(), label.c_str(),
                  has_base ? FormatMs(e.baseline.median_ns).c_str() : "-",
                  has_cur ? FormatMs(e.current.median_ns).c_str() : "-",
                  has_base && has_cur ? FormatPct(e.delta_rel).c_str() : "-",
                  has_base && has_cur ? FormatMs(e.noise_ns).c_str() : "-");
    out += line;
  }
  return out;
}

std::string DiffReport::RenderMarkdown() const {
  std::string out = "### Perf comparison\n\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "%zu key(s): **%zu regressed**, %zu improved, %zu unchanged,"
                " %zu new, %zu missing  \n",
                entries.size(), num_regressed, num_improved, num_unchanged,
                num_new, num_missing);
  out += line;
  std::snprintf(line, sizeof(line),
                "thresholds: rel > %.0f%% and delta > %.1fx noise and delta"
                " > %.3f ms\n\n",
                thresholds.rel_tolerance * 100.0, thresholds.noise_mult,
                thresholds.min_delta_ns / 1e6);
  out += line;
  out += "| status | bench | params | threads | base ms | cur ms | delta |"
         " noise ms |\n";
  out += "|---|---|---|---|---:|---:|---:|---:|\n";
  for (const DiffEntry& e : entries) {
    const bool has_base = e.status != DiffStatus::kNew;
    const bool has_cur = e.status != DiffStatus::kMissing;
    out += "| ";
    out += DiffStatusName(e.status);
    out += " | ";
    out += e.key.bench;
    out += " | `";
    out += e.key.params;
    out += "` | ";
    out += std::to_string(e.key.threads);
    out += " | ";
    out += has_base ? FormatMs(e.baseline.median_ns) : "-";
    out += " | ";
    out += has_cur ? FormatMs(e.current.median_ns) : "-";
    out += " | ";
    out += has_base && has_cur ? FormatPct(e.delta_rel) : "-";
    out += " | ";
    out += has_base && has_cur ? FormatMs(e.noise_ns) : "-";
    out += " |\n";
  }
  return out;
}

}  // namespace lamp::obs
