#ifndef LAMP_OBS_JSON_H_
#define LAMP_OBS_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// A minimal, dependency-free JSON document model: an ordered value tree
/// with a writer (deterministic key order — whatever order keys were set
/// in) and a strict recursive-descent parser. This is the wire format of
/// the observability layer: bench records (obs/bench_report.h), metric
/// snapshots (obs/metrics.h) and trace dumps (obs/trace.h) all serialise
/// through JsonValue, and tools/trace_dump reads them back.
///
/// Numbers are stored as double plus an exact-int64 side channel so that
/// counters (tuple counts, loads) round-trip without losing precision.

namespace lamp::obs {

/// One JSON value: null, bool, number, string, array, or object.
/// Objects preserve insertion order (diff-friendly output).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  JsonValue(double d) : type_(Type::kNumber), num_(d) {}
  JsonValue(std::int64_t i)
      : type_(Type::kNumber), num_(static_cast<double>(i)), int_(i) {}
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(std::size_t u) : JsonValue(static_cast<std::int64_t>(u)) {}
  JsonValue(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  JsonValue(std::string_view s) : type_(Type::kString), str_(s) {}
  JsonValue(const char* s) : type_(Type::kString), str_(s) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  /// Exact integer when the value was produced from one; otherwise the
  /// truncated double.
  std::int64_t AsInt() const {
    return int_.has_value() ? *int_ : static_cast<std::int64_t>(num_);
  }
  const std::string& AsString() const { return str_; }

  // --- Array operations -------------------------------------------------
  void PushBack(JsonValue v) { items_.push_back(std::move(v)); }
  std::size_t size() const {
    return IsObject() ? members_.size() : items_.size();
  }
  const JsonValue& at(std::size_t i) const { return items_[i]; }

  // --- Object operations ------------------------------------------------
  /// Sets (or replaces) a member, preserving first-insertion order.
  void Set(std::string_view key, JsonValue v);
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Serialises. \p indent < 0 means compact one-line output; >= 0 is the
  /// number of spaces per nesting level.
  std::string Dump(int indent = -1) const;

  /// Strict parser (no comments, no trailing commas). Returns nullopt on
  /// any syntax error or trailing garbage.
  static std::optional<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::optional<std::int64_t> int_;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes \p s for inclusion inside a JSON string literal (no quotes
/// added). Control characters become \uXXXX; UTF-8 bytes pass through.
std::string EscapeJson(std::string_view s);

}  // namespace lamp::obs

#endif  // LAMP_OBS_JSON_H_
