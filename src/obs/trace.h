#ifndef LAMP_OBS_TRACE_H_
#define LAMP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.h"

/// \file
/// Low-overhead event tracing for the MPC simulator, the transducer
/// network runtime and the Datalog engine.
///
/// Design constraints, in order:
///   1. *Zero cost when off.* Instrumented hot paths pay exactly one
///      relaxed pointer load + predictable branch when no tracer is
///      installed (the "null sink"); no clock is read, nothing allocates.
///   2. *Bounded memory when on.* Events land in a fixed-capacity ring
///      buffer; once full, the oldest events are overwritten and counted
///      as dropped. A trace can therefore be left on for an arbitrarily
///      long run.
///   3. *Machine readable.* WriteTraceJson serialises a trace to the
///      obs JSON schema; tools/trace_dump renders it as a timeline.
///
/// Event payloads are four scalars (a, b, value, label) whose meaning is
/// fixed per EventKind — see the kind list. Labels must point to storage
/// that outlives the tracer (string literals in practice).
///
/// Installation is process-global and deliberately not thread-safe: a
/// global avoids threading a sink pointer through every simulator and
/// network constructor, and install/uninstall happens between runs.
/// *Emitting*, however, is safe from lamp::par pool workers: each thread
/// writes to its own ring-buffer shard (registered on first emit; lock-free
/// afterwards), and Events() merges the shards chronologically. Read/Clear
/// must not race emits — callers read after the pool has joined, which is
/// what ParallelFor guarantees on return.

namespace lamp::obs {

/// What happened. The comment gives the payload convention.
enum class EventKind : std::uint8_t {
  kSpan = 0,           // label=phase name, a=round, value=duration ns
  kMpcRoundBegin,      // a=round index, value=num servers
  kMpcServerLoad,      // a=round index, b=server, value=tuples received
  kMpcRoundEnd,        // a=round index, value=total load of the round
  kNetStart,           // a=node (heartbeat transition)
  kNetBroadcast,       // a=sender node, value=facts in the message
  kNetDeliver,         // a=receiver node, b=transition index, value=facts
  kNetQuiescent,       // value=total transitions performed
  kDatalogIteration,   // a=stratum, b=iteration within stratum,
                       //   value=delta cardinality
  kNetDrop,            // a=receiver node, value=facts (attempt failed;
                       //   the sender retransmits)
  kNetDuplicate,       // a=receiver node, value=facts (extra copy stays
                       //   in flight; a kNetDeliver event follows)
  kNetCrash,           // a=node, b=1 when the outage is durable
  kNetRestart,         // a=node, b=1 when the outage was durable
  kNetPartition,       // a=isolated-group size, value=step
  kNetHeal,            // value=step
  kNetCausalDeliver,   // a=receiver node, b=transition index of this
                       //   delivery, value=(depth << 32) | (parent
                       //   transition index + 1; 0 = heartbeat origin).
                       //   depth is the message's Lamport causal depth;
                       //   obs/audit/causal.h reconstructs critical paths
                       //   from these events.
  kNetOutput,          // a=node, b=transition index + 1 (0 = produced
                       //   during a heartbeat), value=causal depth at
                       //   which the first new output fact appeared
  kTransportConnect,   // a=endpoints, b=backend (TransportKind), value=
                       //   file descriptors opened (0 for in-process)
  kTransportSend,      // a=sender endpoint, b=receiver endpoint,
                       //   value=frame wire bytes
  kTransportRecv,      // a=receiver endpoint, b=sender endpoint,
                       //   value=frame wire bytes
  kDistSend,           // a=receiver rank, b=logical round, value=sender
                       //   span id. The distributed-trace send stamp: the
                       //   emitting process's rank is implicit in the
                       //   shard identity, so (shard rank, value) is the
                       //   globally unique join key mergers pair with the
                       //   matching kDistRecv (see obs/dist/merge.h).
  kDistRecv,           // a=sender rank, b=logical round, value=sender
                       //   span id carried by the kTraceCtx frame that
                       //   preceded the data frame.
};

/// Stable wire name of a kind ("mpc.server_load", "net.deliver", ...).
std::string_view EventKindName(EventKind kind);

/// One trace record. 32 bytes of scalars + a static label pointer.
struct TraceEvent {
  std::uint64_t t_ns = 0;  // Nanoseconds since the tracer's epoch.
  std::uint64_t value = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  EventKind kind = EventKind::kSpan;
  const char* label = nullptr;  // May be nullptr; static storage only.
};

/// Fixed-capacity ring buffer of TraceEvents, sharded per emitting thread.
/// Each shard holds up to capacity() events; single-threaded runs use
/// exactly one shard and behave like the classic single ring.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Emit(EventKind kind, std::uint32_t a, std::uint32_t b,
            std::uint64_t value, const char* label = nullptr);

  /// Events merged over all shards, chronological (stable by shard for
  /// equal timestamps). With one emitting thread this is exactly the
  /// oldest-to-newest ring content.
  std::vector<TraceEvent> Events() const;

  /// Like Events(), but each event carries the index of the shard (the
  /// emitting thread's registration order) it came from. Shard indices are
  /// what the Chrome Trace exporter maps to tids.
  struct ShardedEvent {
    TraceEvent event;
    std::uint32_t shard = 0;
  };
  std::vector<ShardedEvent> ShardedEvents() const;

  /// Number of per-thread shards registered so far.
  std::size_t num_shards() const;

  /// Per-shard ring capacity.
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t total_emitted() const;
  std::uint64_t dropped() const;

  void Clear();

  /// Nanoseconds since construction/Clear (monotonic).
  std::uint64_t NowNs() const;

 private:
  struct Shard;

  /// The calling thread's shard, registered on first use. Lock-free after
  /// registration via a thread-local cache keyed by the tracer epoch key.
  Shard& ShardForThisThread();

  std::size_t capacity_;
  std::uint64_t key_;  // Process-unique; renewed by Clear (cache invalidation).
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex shards_mu_;
  std::vector<std::pair<std::thread::id, std::unique_ptr<Shard>>> shards_;
};

namespace internal {
/// The installed sink. A plain global: the traced runtimes are
/// single-threaded (see file comment).
inline Tracer* g_tracer = nullptr;
}  // namespace internal

/// Currently installed tracer, or nullptr (the null sink).
inline Tracer* InstalledTracer() { return internal::g_tracer; }

/// Installs \p tracer as the process-global sink; nullptr uninstalls.
/// Returns the previously installed tracer.
Tracer* InstallTracer(Tracer* tracer);

/// RAII installation for tests and tools.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer& tracer) : prev_(InstallTracer(&tracer)) {}
  ~ScopedTracer() { InstallTracer(prev_); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* prev_;
};

/// The hot-path emit: one load + branch when no tracer is installed.
inline void Emit(EventKind kind, std::uint32_t a = 0, std::uint32_t b = 0,
                 std::uint64_t value = 0, const char* label = nullptr) {
  Tracer* t = internal::g_tracer;
  if (t == nullptr) return;
  t->Emit(kind, a, b, value, label);
}

/// Span-style scoped timer: emits one kSpan event with the measured
/// duration on destruction. Reads no clock when tracing is off.
class TraceSpan {
 public:
  explicit TraceSpan(const char* label, std::uint32_t a = 0)
      : tracer_(internal::g_tracer), label_(label), a_(a) {
    if (tracer_ != nullptr) start_ns_ = tracer_->NowNs();
  }
  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    // A span may outlive the ScopedTracer that installed its sink, in
    // which case the captured pointer can dangle. Emit only while the
    // installation is unchanged; otherwise the span is dropped.
    if (internal::g_tracer != tracer_) return;
    tracer_->Emit(EventKind::kSpan, a_, 0, tracer_->NowNs() - start_ns_,
                  label_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* label_;
  std::uint32_t a_;
  std::uint64_t start_ns_ = 0;
};

/// Serialises a trace:
///   {"schema": "lamp.trace.v1", "capacity": N, "total_emitted": N,
///    "dropped": N, "shards": N, "events": [{"t_ns":..,"kind":"..",
///    "a":..,"b":..,"value":..,"shard":..,"label":..}, ...]}
/// "shard" is the emitting thread's shard index (0 in single-threaded
/// runs); readers treat a missing "shard" as 0.
JsonValue TraceToJson(const Tracer& tracer);
void WriteTraceJson(const Tracer& tracer, std::ostream& os);

}  // namespace lamp::obs

#endif  // LAMP_OBS_TRACE_H_
