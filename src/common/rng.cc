#include "common/rng.h"

#include <cmath>

#include "common/check.h"
#include "common/hash.h"

namespace lamp {

namespace {

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed with splitmix64 so that nearby seeds give unrelated
  // states (the xoshiro authors' recommended initialization).
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = HashMix(s);
  }
  // All-zero state would be a fixed point; HashMix of distinct inputs makes
  // this effectively impossible, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  LAMP_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  LAMP_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(Next());
  }
  return lo + static_cast<std::int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  LAMP_CHECK(n > 0);
  LAMP_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  // First index whose CDF value exceeds u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Probability(std::size_t k) const {
  LAMP_CHECK(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace lamp
