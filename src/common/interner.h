#ifndef LAMP_COMMON_INTERNER_H_
#define LAMP_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file
/// Bidirectional string <-> dense-id interning.

namespace lamp {

/// Maps strings to dense uint32 ids and back. Used for relation names and
/// for presenting symbolic domain constants (a, b, c, ...) in examples and
/// tests while the engine works on integer values internally.
class Interner {
 public:
  /// Returns the id for \p name, assigning the next free id on first use.
  std::uint32_t Intern(std::string_view name);

  /// Returns the id for \p name if already interned, or -1 cast to uint32.
  std::uint32_t Find(std::string_view name) const;

  /// Returns the string for an id previously returned by Intern.
  const std::string& NameOf(std::uint32_t id) const;

  /// Number of distinct interned strings.
  std::size_t size() const { return names_.size(); }

  /// Sentinel returned by Find for unknown names.
  static constexpr std::uint32_t kNotFound = static_cast<std::uint32_t>(-1);

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace lamp

#endif  // LAMP_COMMON_INTERNER_H_
