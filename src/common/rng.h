#ifndef LAMP_COMMON_RNG_H_
#define LAMP_COMMON_RNG_H_

#include <cstdint>
#include <vector>

/// \file
/// Deterministic, seedable pseudo-random generation.
///
/// Every source of randomness in the library (instance generators, the
/// asynchronous scheduler, hash families) goes through Rng so that all
/// experiments are reproducible from a single seed.

namespace lamp {

/// xoshiro256**-based generator. Deliberately not std::mt19937: we want a
/// fixed, documented algorithm whose output is identical across standard
/// libraries and platforms.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(std::uint64_t seed);

  /// Returns the next raw 64-bit output.
  std::uint64_t Next();

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t Uniform(std::uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles the given vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1}: element k has
/// probability proportional to 1/(k+1)^s. Used to generate skewed relations
/// with heavy hitters (Section 3 of the paper). Sampling is O(log n) via a
/// precomputed CDF.
class ZipfSampler {
 public:
  /// Builds the sampler for n elements with exponent s >= 0
  /// (s == 0 is uniform). Requires n > 0.
  ZipfSampler(std::size_t n, double s);

  /// Draws one sample in [0, n).
  std::size_t Sample(Rng& rng) const;

  /// Probability of element k.
  double Probability(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace lamp

#endif  // LAMP_COMMON_RNG_H_
