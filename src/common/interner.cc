#include "common/interner.h"

#include "common/check.h"

namespace lamp {

std::uint32_t Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t Interner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNotFound : it->second;
}

const std::string& Interner::NameOf(std::uint32_t id) const {
  LAMP_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace lamp
