#ifndef LAMP_COMMON_HASH_H_
#define LAMP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

/// \file
/// Hash-combining utilities shared by facts, atoms and valuations.

namespace lamp {

/// Mixes a 64-bit value into an accumulated hash (splitmix64 finalizer).
/// Used instead of std::hash chaining so that hash quality does not depend
/// on the standard library's (often identity) integer hash.
inline std::uint64_t HashMix(std::uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Combines an existing seed with the hash of one more value.
inline std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return HashMix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

/// Hashes a contiguous range of 64-bit values with an initial seed.
template <typename It>
std::uint64_t HashRange(It first, It last, std::uint64_t seed = 0) {
  std::uint64_t h = HashMix(seed);
  for (It it = first; it != last; ++it) {
    h = HashCombine(h, static_cast<std::uint64_t>(*it));
  }
  return h;
}

}  // namespace lamp

#endif  // LAMP_COMMON_HASH_H_
