#ifndef LAMP_COMMON_SUBSET_H_
#define LAMP_COMMON_SUBSET_H_

#include <cstdint>
#include <vector>

/// \file
/// Combinatorial enumeration helpers used by the exact deciders
/// (parallel-correctness, containment with negation, monotonicity classes),
/// all of which quantify over subsets or tuples of a finite universe.

namespace lamp {

/// Calls \p fn once for every assignment of \p slots values each drawn from
/// [0, base). fn receives the assignment as const std::vector<size_t>&.
/// Stops early (and returns false) if fn returns false; returns true if all
/// assignments were visited.
template <typename Fn>
bool ForEachTuple(std::size_t slots, std::size_t base, Fn&& fn) {
  std::vector<std::size_t> idx(slots, 0);
  if (base == 0) return slots == 0 ? fn(idx) : true;
  while (true) {
    if (!fn(static_cast<const std::vector<std::size_t>&>(idx))) return false;
    std::size_t pos = 0;
    while (pos < slots) {
      if (++idx[pos] < base) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == slots) return true;
  }
}

/// Calls \p fn once for every subset of {0, ..., n-1}, passed as a
/// std::vector<bool> membership mask. Requires n <= 24 (enumeration is
/// 2^n). Stops early if fn returns false; returns true otherwise.
template <typename Fn>
bool ForEachSubset(std::size_t n, Fn&& fn) {
  std::vector<bool> mask(n, false);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    for (std::size_t i = 0; i < n; ++i) mask[i] = (bits >> i) & 1;
    if (!fn(static_cast<const std::vector<bool>&>(mask))) return false;
  }
  return true;
}

}  // namespace lamp

#endif  // LAMP_COMMON_SUBSET_H_
