#ifndef LAMP_COMMON_CHECK_H_
#define LAMP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Precondition / invariant checking macros.
///
/// LAMP_CHECK is always on (also in release builds): the library deals with
/// combinatorial objects whose invariants are cheap to test relative to the
/// enumeration work around them, and a silent invariant violation would
/// invalidate every measurement downstream. A failed check prints the
/// condition and location and aborts.

#define LAMP_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "LAMP_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

#define LAMP_CHECK_MSG(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "LAMP_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                                \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

#endif  // LAMP_COMMON_CHECK_H_
