#include "mpc/shares_skew.h"

#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "cq/eval.h"
#include "mpc/heavy_hitters.h"
#include "mpc/simulator.h"

namespace lamp {

namespace {

/// Join-variable positions for the two atoms (first shared variable).
struct SkewJoinShape {
  RelationId left, right;
  std::size_t left_pos = 0, right_pos = 0;
};

SkewJoinShape Analyze(const ConjunctiveQuery& query) {
  LAMP_CHECK_MSG(query.body().size() == 2 && !query.HasSelfJoin(),
                 "SharesSkew join needs two atoms without self-joins");
  const Atom& l = query.body()[0];
  const Atom& r = query.body()[1];
  SkewJoinShape shape;
  shape.left = l.relation;
  shape.right = r.relation;
  for (std::size_t i = 0; i < l.terms.size(); ++i) {
    if (!l.terms[i].IsVar()) continue;
    for (std::size_t j = 0; j < r.terms.size(); ++j) {
      if (r.terms[j].IsVar() && r.terms[j].var == l.terms[i].var) {
        shape.left_pos = i;
        shape.right_pos = j;
        return shape;
      }
    }
  }
  LAMP_CHECK_MSG(false, "atoms share no variable");
  return shape;
}

}  // namespace

MpcRunResult SharesSkewJoin(const ConjunctiveQuery& query,
                            const Instance& input, std::size_t num_servers,
                            std::uint64_t seed,
                            std::size_t heavy_threshold) {
  const SkewJoinShape shape = Analyze(query);
  const std::size_t p = num_servers;
  const std::size_t m = std::max(input.FactsOf(shape.left).size(),
                                 input.FactsOf(shape.right).size());
  if (heavy_threshold == 0) {
    heavy_threshold = static_cast<std::size_t>(
        static_cast<double>(m) /
        std::sqrt(static_cast<double>(std::max<std::size_t>(p, 1))));
    if (heavy_threshold == 0) heavy_threshold = 1;
  }

  const std::set<Value> heavy =
      JoinHeavyHitters(input, shape.left, shape.left_pos, shape.right,
                       shape.right_pos, heavy_threshold);
  const std::vector<Value> heavy_list(heavy.begin(), heavy.end());
  const std::size_t h = heavy_list.size();

  // Server split: half for the hashed light region; the rest divided into
  // one fragment-replicate sub-grid per heavy value.
  const std::size_t p_light = h == 0 ? p : std::max<std::size_t>(1, p / 2);
  const std::size_t p_heavy_total = p - p_light;
  const std::size_t p_b =
      h == 0 ? 0 : std::max<std::size_t>(1, p_heavy_total / h);
  const std::size_t g =
      h == 0 ? 0
             : std::max<std::size_t>(
                   1, static_cast<std::size_t>(std::floor(
                          std::sqrt(static_cast<double>(p_b)) + 1e-9)));

  auto heavy_index_of = [&heavy_list](Value v) -> std::size_t {
    for (std::size_t i = 0; i < heavy_list.size(); ++i) {
      if (heavy_list[i] == v) return i;
    }
    return heavy_list.size();
  };
  auto cell = [&](std::size_t idx, std::uint64_t row,
                  std::uint64_t col) -> NodeId {
    const std::size_t base = p_light + (idx * p_b) % std::max<std::size_t>(
                                                         1, p_heavy_total);
    return static_cast<NodeId>((base + (row % g) * g + (col % g)) % p);
  };

  MpcSimulator sim(p);
  sim.LoadInput(input);
  sim.RunRound(
      [&](NodeId, const Fact& f) -> std::vector<NodeId> {
        const bool is_left = f.relation == shape.left;
        const bool is_right = f.relation == shape.right;
        if (!is_left && !is_right) return {};
        const Value join_value =
            is_left ? f.args[shape.left_pos] : f.args[shape.right_pos];
        if (heavy.count(join_value) == 0) {
          // Light: plain hash into the light region.
          const std::uint64_t hv =
              HashMix(static_cast<std::uint64_t>(join_value.v) ^
                      HashMix(seed + 5));
          return {static_cast<NodeId>(hv % p_light)};
        }
        // Heavy: fragment-replicate inside the value's sub-grid.
        const std::size_t idx = heavy_index_of(join_value);
        const std::uint64_t spread = FactHash()(f) ^ HashMix(seed + 9);
        std::vector<NodeId> targets;
        targets.reserve(g);
        if (is_left) {
          for (std::size_t col = 0; col < g; ++col) {
            targets.push_back(cell(idx, spread, col));
          }
        } else {
          for (std::size_t row = 0; row < g; ++row) {
            targets.push_back(cell(idx, row, spread));
          }
        }
        return targets;
      },
      [&query](NodeId, const Instance& received) {
        return MpcSimulator::ComputeResult{Instance(),
                                           Evaluate(query, received)};
      });
  return {sim.output(), sim.stats()};
}

}  // namespace lamp
