#include "mpc/hypercube_run.h"

#include <cmath>

#include "common/check.h"
#include "cq/eval.h"
#include "distribution/policies.h"
#include "lp/edge_packing.h"
#include "mpc/simulator.h"

namespace lamp {

MpcRunResult RunHyperCube(const ConjunctiveQuery& query, const Instance& input,
                          const Shares& shares, std::uint64_t seed) {
  // The deciders' universe is irrelevant for routing; pass something small.
  const HypercubePolicy policy(query, shares, MakeUniverse(1), seed);

  MpcSimulator sim(policy.NumNodes());
  sim.LoadInput(input);
  sim.RunRound(
      [&policy](NodeId, const Fact& f) { return policy.ResponsibleNodes(f); },
      [&query](NodeId, const Instance& received) {
        return MpcSimulator::ComputeResult{Instance(),
                                           Evaluate(query, received)};
      });
  return {sim.output(), sim.stats()};
}

MpcRunResult RunHyperCubeUniform(const ConjunctiveQuery& query,
                                 const Instance& input,
                                 std::size_t num_servers, std::uint64_t seed) {
  return RunHyperCube(query, input, UniformShares(query, num_servers), seed);
}

Shares LpRoundedShares(const ConjunctiveQuery& query,
                       std::size_t num_servers) {
  const ShareExponents exponents = OptimalShareExponents(query);
  Shares shares(query.NumVars(), 1);
  for (std::size_t v = 0; v < shares.size(); ++v) {
    const double alpha = std::pow(static_cast<double>(num_servers),
                                  exponents.exponent[v]);
    shares[v] = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(alpha)));
  }
  return shares;
}

MpcRunResult RunHyperCubeLpShares(const ConjunctiveQuery& query,
                                  const Instance& input,
                                  std::size_t num_servers,
                                  std::uint64_t seed) {
  return RunHyperCube(query, input, LpRoundedShares(query, num_servers), seed);
}

}  // namespace lamp
