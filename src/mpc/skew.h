#ifndef LAMP_MPC_SKEW_H_
#define LAMP_MPC_SKEW_H_

#include <cstdint>

#include "cq/cq.h"
#include "mpc/join_strategies.h"

/// \file
/// Two-round skew-resilient triangle evaluation (Section 3.2 of the paper;
/// after Beame-Koutris-Suciu "Skew in parallel query processing").
///
/// One-round HyperCube degrades under skew: a join value with frequency d
/// forces a load of at least d / p^{1/3} on the servers of its hash slice,
/// so a heavy hitter of degree ~m yields load ~m/p^{1/3} (and the paper
/// notes the general one-round bound degrades from m/p^{2/3} to
/// m/p^{1/2}). With two rounds the load returns to the skew-free
/// m/p^{2/3}:
///
///  * Round 1 runs the ordinary HyperCube on the tuples whose join value
///    (y) is *light* — frequency at most m/p^{1/3}; heavy tuples stay put.
///  * Round 2 gives each heavy value b a dedicated sub-grid of ~p/h
///    servers and evaluates the *residual* query
///    H(x,b,z) <- R(x,b), S(b,z), T(z,x) by fragment-replicate on (x,z):
///    R(x,b) is replicated along a row, S(b,z) along a column, and each
///    T(z,x) goes to exactly one cell per sub-grid.
///
/// Substitution note (documented in DESIGN.md): the full BKS algorithm
/// also special-cases values heavy in x or z; we classify by the
/// R-S join variable y only, which is where the benchmarked workloads
/// place their skew. Correctness holds for arbitrary inputs regardless
/// (x/z skew affects load, not the computed result).

namespace lamp {

/// Evaluates a triangle-shaped query (exactly R(x,y), S(y,z), T(z,x) up to
/// renaming, three distinct binary relations) in two rounds as described
/// above. \p heavy_threshold 0 means "use m / p^{1/3}".
MpcRunResult SkewResilientTriangle(const ConjunctiveQuery& triangle,
                                   const Instance& input,
                                   std::size_t num_servers,
                                   std::uint64_t seed = 0,
                                   std::size_t heavy_threshold = 0);

}  // namespace lamp

#endif  // LAMP_MPC_SKEW_H_
