#include "mpc/simulator.h"

#include "common/check.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace lamp {

namespace {

/// One routed fact in a worker's outbox, as a columnar row reference. The
/// row pointer aims into the source server's local instance, which is
/// immutable for the whole communication phase — routing copies no facts.
struct Routed {
  transport::RowRef row;
  NodeId source;
};

}  // namespace

MpcSimulator::MpcSimulator(std::size_t num_servers) {
  LAMP_CHECK(num_servers > 0);
  locals_.resize(num_servers);
}

void MpcSimulator::LoadInput(const Instance& global) {
  const std::size_t p = locals_.size();
  locals_.assign(p, Instance());
  output_ = Instance();
  stats_ = RunStats();
  std::size_t i = 0;
  global.ForEachFact([this, p, &i](const Fact& f) {
    locals_[i % p].Insert(f);
    ++i;
  });
}

void MpcSimulator::LoadLocals(std::vector<Instance> locals) {
  LAMP_CHECK(locals.size() == locals_.size());
  locals_ = std::move(locals);
  output_ = Instance();
  stats_ = RunStats();
}

void MpcSimulator::RunRound(const Router& route, const Computer& compute) {
  const std::size_t p = locals_.size();
  const auto round_idx = static_cast<std::uint32_t>(stats_.rounds.size());
  obs::Emit(obs::EventKind::kMpcRoundBegin, round_idx, 0, p);

  par::ThreadPool& pool = par::GlobalPool();

  // Communication phase, step 1: each worker routes a contiguous shard of
  // source servers into its own per-target outbox. Within an outbox the
  // routed facts appear in (source, fact, route-target) order — the order
  // the serial loop would visit them.
  std::vector<Instance> received(p);
  RoundStats round;
  round.received.assign(p, 0);
  round.wire_bytes.assign(p, 0);
  {
    obs::TraceSpan span("mpc.route", round_idx);
    const std::size_t shards = pool.NumChunks(p);
    std::vector<std::vector<std::vector<Routed>>> outbox(shards);
    pool.ParallelChunks(
        0, p,
        [this, p, &route, &outbox](std::size_t shard, std::size_t lo,
                                   std::size_t hi) {
          std::vector<std::vector<Routed>>& out = outbox[shard];
          out.resize(p);
          Fact scratch;  // Router argument, rebuilt per row.
          for (std::size_t source = lo; source < hi; ++source) {
            const auto src = static_cast<NodeId>(source);
            const Instance& local = locals_[source];
            for (RelationId rel = 0; rel < local.NumRelationIds(); ++rel) {
              const RowsView rows = local.RowsOf(rel);
              if (rows.num_rows == 0) continue;
              scratch.relation = rel;
              for (std::size_t i = 0; i < rows.num_rows; ++i) {
                const Value* row = rows.Row(i);
                scratch.args.assign(row, row + rows.arity);
                for (NodeId target : route(src, scratch)) {
                  LAMP_CHECK(target < p);
                  out[target].push_back(Routed{
                      transport::RowRef{
                          rel, row, static_cast<std::uint32_t>(rows.arity)},
                      src});
                }
              }
            }
          }
        });

    transport::Transport* wire = WireTransport();
    if (wire == nullptr) {
      // Step 2 (in-process): merge outboxes per target, ascending shard
      // order. Targets are independent, so the merge itself fans out; the
      // per-target insert sequence equals the serial one, keeping dedup
      // decisions and load counts byte-identical. A fact kept at its
      // current server is not communicated: it persists but does not count
      // toward the load (the model's load is the data *received* by a
      // server during the round). Wire bytes are accounted in closed form:
      // the bytes the socket backends would ship for the same traffic,
      // one kFactBatch frame per (source, target) run.
      pool.ParallelFor(0, p, [&received, &round, &outbox,
                              round_idx](std::size_t target) {
        const auto tgt = static_cast<NodeId>(target);
        std::size_t& load = round.received[target];
        std::size_t& bytes = round.wire_bytes[target];
        NodeId run_source = 0;
        std::size_t run_count = 0;
        std::size_t run_fact_bytes = 0;
        const auto flush_run = [&] {
          if (run_count == 0) return;
          const std::size_t payload = transport::VarintSize(round_idx) +
                                      transport::VarintSize(run_count) +
                                      run_fact_bytes;
          bytes += transport::FactBatchFrameSize(run_source, tgt, payload);
          run_count = 0;
          run_fact_bytes = 0;
        };
        for (const auto& out : outbox) {
          for (const Routed& r : out[target]) {
            if (r.source != tgt) {
              if (run_count != 0 && r.source != run_source) flush_run();
              run_source = r.source;
              ++run_count;
              run_fact_bytes += transport::EncodedRowSize(r.row);
            }
            if (received[target].InsertRow(r.row.relation, r.row.row,
                                           r.row.arity) &&
                tgt != r.source) {
              ++load;
            }
          }
        }
        flush_run();
      });
    } else {
      // Step 2 (sockets): serialize each (source, target != source) run
      // into one kFactBatch frame and ship it. Sources are ascending per
      // target (shards are contiguous ascending ranges), so senders[t]
      // comes out ascending too.
      std::vector<std::vector<NodeId>> senders(p);
      std::vector<transport::RowRef> batch;
      for (const auto& out : outbox) {
        for (std::size_t target = 0; target < p; ++target) {
          const std::vector<Routed>& entries = out[target];
          std::size_t i = 0;
          while (i < entries.size()) {
            const NodeId src = entries[i].source;
            batch.clear();
            while (i < entries.size() && entries[i].source == src) {
              batch.push_back(entries[i].row);
              ++i;
            }
            if (src == static_cast<NodeId>(target)) continue;  // Stays local.
            transport::WireFrame frame;
            frame.type = transport::FrameType::kFactBatch;
            frame.from = src;
            frame.to = static_cast<std::uint32_t>(target);
            frame.payload = transport::EncodeFactBatchPayload(round_idx,
                                                              batch);
            wire->Send(std::move(frame));
            senders[target].push_back(src);
          }
        }
      }
      // Each target drains its channels in ascending source order,
      // interleaving the self-routed (local) entries at its own position —
      // the exact in-process insert sequence, so digests cannot move.
      pool.ParallelFor(0, p, [&received, &round, &outbox, &senders, wire, p,
                              round_idx](std::size_t target) {
        const auto tgt = static_cast<NodeId>(target);
        std::size_t& load = round.received[target];
        std::size_t next = 0;
        for (NodeId source = 0; source < p; ++source) {
          if (source == tgt) {
            for (const auto& out : outbox) {
              for (const Routed& r : out[target]) {
                if (r.source == tgt) {
                  received[target].InsertRow(r.row.relation, r.row.row,
                                             r.row.arity);
                }
              }
            }
            continue;
          }
          if (next >= senders[target].size() ||
              senders[target][next] != source) {
            continue;  // That source routed nothing here this round.
          }
          ++next;
          transport::WireFrame frame = wire->Recv(
              static_cast<std::uint32_t>(target), source);
          LAMP_CHECK(frame.type == transport::FrameType::kFactBatch);
          round.wire_bytes[target] += transport::FrameWireSize(frame);
          const auto decoded =
              transport::DecodeFactBatchPayload(frame.payload);
          LAMP_CHECK_MSG(decoded.has_value() && decoded->round == round_idx,
                         "mpc: malformed fact batch on the wire");
          for (const Fact& f : decoded->facts) {
            if (received[target].Insert(f)) ++load;
          }
        }
      });
    }
  }
  std::size_t round_total = 0;
  if (obs::InstalledTracer() != nullptr) {
    for (NodeId server = 0; server < p; ++server) {
      obs::Emit(obs::EventKind::kMpcServerLoad, round_idx,
                static_cast<std::uint32_t>(server), round.received[server]);
    }
    round_total = round.TotalLoad();
  }
  stats_.rounds.push_back(std::move(round));

  // Computation phase: servers are independent; results land in a
  // per-server slot and are folded into output in ascending server order,
  // matching the serial loop.
  {
    obs::TraceSpan span("mpc.compute", round_idx);
    std::vector<ComputeResult> results(p);
    pool.ParallelFor(0, p,
                     [&compute, &received, &results](std::size_t server) {
                       results[server] = compute(static_cast<NodeId>(server),
                                                 received[server]);
                     });
    for (NodeId server = 0; server < p; ++server) {
      locals_[server] = std::move(results[server].next_state);
      output_.InsertAll(results[server].output);
    }
  }
  obs::Emit(obs::EventKind::kMpcRoundEnd, round_idx, 0, round_total);
}

transport::Transport* MpcSimulator::WireTransport() {
  const transport::TransportKind kind = transport::ActiveKind();
  if (kind == transport::TransportKind::kInProcess) return nullptr;
  if (transport_ == nullptr || transport_->kind() != kind ||
      transport_->num_endpoints() != locals_.size()) {
    transport_ = transport::MakeLoopbackTransport(kind, locals_.size());
  }
  return transport_.get();
}

MpcSimulator::Computer MpcSimulator::KeepAll() {
  return [](NodeId, const Instance& received) {
    return ComputeResult{received, Instance()};
  };
}

Instance MpcSimulator::GlobalState() const {
  Instance global;
  for (const Instance& local : locals_) global.InsertAll(local);
  return global;
}

}  // namespace lamp
