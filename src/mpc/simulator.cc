#include "mpc/simulator.h"

#include "common/check.h"
#include "obs/trace.h"

namespace lamp {

MpcSimulator::MpcSimulator(std::size_t num_servers) {
  LAMP_CHECK(num_servers > 0);
  locals_.resize(num_servers);
}

void MpcSimulator::LoadInput(const Instance& global) {
  const std::size_t p = locals_.size();
  locals_.assign(p, Instance());
  output_ = Instance();
  stats_ = RunStats();
  std::size_t i = 0;
  for (const Fact& f : global.AllFacts()) {
    locals_[i % p].Insert(f);
    ++i;
  }
}

void MpcSimulator::LoadLocals(std::vector<Instance> locals) {
  LAMP_CHECK(locals.size() == locals_.size());
  locals_ = std::move(locals);
  output_ = Instance();
  stats_ = RunStats();
}

void MpcSimulator::RunRound(const Router& route, const Computer& compute) {
  const std::size_t p = locals_.size();
  const auto round_idx = static_cast<std::uint32_t>(stats_.rounds.size());
  obs::Emit(obs::EventKind::kMpcRoundBegin, round_idx, 0, p);

  // Communication phase.
  std::vector<Instance> received(p);
  RoundStats round;
  round.received.assign(p, 0);
  {
    obs::TraceSpan span("mpc.route", round_idx);
    for (NodeId source = 0; source < p; ++source) {
      for (const Fact& f : locals_[source].AllFacts()) {
        for (NodeId target : route(source, f)) {
          LAMP_CHECK(target < p);
          // A fact kept at its current server is not communicated: it
          // persists but does not count toward the load (the model's load
          // is the data *received* by a server during the round).
          if (received[target].Insert(f) && target != source) {
            ++round.received[target];
          }
        }
      }
    }
  }
  std::size_t round_total = 0;
  if (obs::InstalledTracer() != nullptr) {
    for (NodeId server = 0; server < p; ++server) {
      obs::Emit(obs::EventKind::kMpcServerLoad, round_idx,
                static_cast<std::uint32_t>(server), round.received[server]);
    }
    round_total = round.TotalLoad();
  }
  stats_.rounds.push_back(std::move(round));

  // Computation phase.
  {
    obs::TraceSpan span("mpc.compute", round_idx);
    for (NodeId server = 0; server < p; ++server) {
      ComputeResult result = compute(server, received[server]);
      locals_[server] = std::move(result.next_state);
      output_.InsertAll(result.output);
    }
  }
  obs::Emit(obs::EventKind::kMpcRoundEnd, round_idx, 0, round_total);
}

MpcSimulator::Computer MpcSimulator::KeepAll() {
  return [](NodeId, const Instance& received) {
    return ComputeResult{received, Instance()};
  };
}

Instance MpcSimulator::GlobalState() const {
  Instance global;
  for (const Instance& local : locals_) global.InsertAll(local);
  return global;
}

}  // namespace lamp
