#include "mpc/simulator.h"

#include "common/check.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace lamp {

namespace {

/// One routed fact in a worker's outbox. The pointer aims into the source
/// server's local instance, which is immutable for the whole communication
/// phase — routing copies no facts.
struct Routed {
  const Fact* fact;
  NodeId source;
};

}  // namespace

MpcSimulator::MpcSimulator(std::size_t num_servers) {
  LAMP_CHECK(num_servers > 0);
  locals_.resize(num_servers);
}

void MpcSimulator::LoadInput(const Instance& global) {
  const std::size_t p = locals_.size();
  locals_.assign(p, Instance());
  output_ = Instance();
  stats_ = RunStats();
  std::size_t i = 0;
  global.ForEachFact([this, p, &i](const Fact& f) {
    locals_[i % p].Insert(f);
    ++i;
  });
}

void MpcSimulator::LoadLocals(std::vector<Instance> locals) {
  LAMP_CHECK(locals.size() == locals_.size());
  locals_ = std::move(locals);
  output_ = Instance();
  stats_ = RunStats();
}

void MpcSimulator::RunRound(const Router& route, const Computer& compute) {
  const std::size_t p = locals_.size();
  const auto round_idx = static_cast<std::uint32_t>(stats_.rounds.size());
  obs::Emit(obs::EventKind::kMpcRoundBegin, round_idx, 0, p);

  par::ThreadPool& pool = par::GlobalPool();

  // Communication phase, step 1: each worker routes a contiguous shard of
  // source servers into its own per-target outbox. Within an outbox the
  // routed facts appear in (source, fact, route-target) order — the order
  // the serial loop would visit them.
  std::vector<Instance> received(p);
  RoundStats round;
  round.received.assign(p, 0);
  {
    obs::TraceSpan span("mpc.route", round_idx);
    const std::size_t shards = pool.NumChunks(p);
    std::vector<std::vector<std::vector<Routed>>> outbox(shards);
    pool.ParallelChunks(
        0, p,
        [this, p, &route, &outbox](std::size_t shard, std::size_t lo,
                                   std::size_t hi) {
          std::vector<std::vector<Routed>>& out = outbox[shard];
          out.resize(p);
          for (std::size_t source = lo; source < hi; ++source) {
            const auto src = static_cast<NodeId>(source);
            locals_[source].ForEachFact([p, &route, &out, src](const Fact& f) {
              for (NodeId target : route(src, f)) {
                LAMP_CHECK(target < p);
                out[target].push_back(Routed{&f, src});
              }
            });
          }
        });

    // Step 2: merge outboxes per target, ascending shard order. Targets are
    // independent, so the merge itself fans out; the per-target insert
    // sequence equals the serial one, keeping dedup decisions and load
    // counts byte-identical. A fact kept at its current server is not
    // communicated: it persists but does not count toward the load (the
    // model's load is the data *received* by a server during the round).
    pool.ParallelFor(0, p, [&received, &round, &outbox](std::size_t target) {
      const auto tgt = static_cast<NodeId>(target);
      std::size_t& load = round.received[target];
      for (const auto& out : outbox) {
        for (const Routed& r : out[target]) {
          if (received[target].Insert(*r.fact) && tgt != r.source) {
            ++load;
          }
        }
      }
    });
  }
  std::size_t round_total = 0;
  if (obs::InstalledTracer() != nullptr) {
    for (NodeId server = 0; server < p; ++server) {
      obs::Emit(obs::EventKind::kMpcServerLoad, round_idx,
                static_cast<std::uint32_t>(server), round.received[server]);
    }
    round_total = round.TotalLoad();
  }
  stats_.rounds.push_back(std::move(round));

  // Computation phase: servers are independent; results land in a
  // per-server slot and are folded into output in ascending server order,
  // matching the serial loop.
  {
    obs::TraceSpan span("mpc.compute", round_idx);
    std::vector<ComputeResult> results(p);
    pool.ParallelFor(0, p,
                     [&compute, &received, &results](std::size_t server) {
                       results[server] = compute(static_cast<NodeId>(server),
                                                 received[server]);
                     });
    for (NodeId server = 0; server < p; ++server) {
      locals_[server] = std::move(results[server].next_state);
      output_.InsertAll(results[server].output);
    }
  }
  obs::Emit(obs::EventKind::kMpcRoundEnd, round_idx, 0, round_total);
}

MpcSimulator::Computer MpcSimulator::KeepAll() {
  return [](NodeId, const Instance& received) {
    return ComputeResult{received, Instance()};
  };
}

Instance MpcSimulator::GlobalState() const {
  Instance global;
  for (const Instance& local : locals_) global.InsertAll(local);
  return global;
}

}  // namespace lamp
