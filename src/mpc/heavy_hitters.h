#ifndef LAMP_MPC_HEAVY_HITTERS_H_
#define LAMP_MPC_HEAVY_HITTERS_H_

#include <cstddef>
#include <map>
#include <set>

#include "relational/instance.h"

/// \file
/// Heavy hitters (Section 3 of the paper): "skewed values whose frequency
/// is much higher than some predefined threshold". The skew-aware
/// algorithms (SharesSkew, the BKS multi-round triangle) first classify
/// values by their frequency in a join column and then treat heavy values
/// with dedicated residual plans.

namespace lamp {

/// Frequency of every value in column \p column of relation \p relation.
std::map<Value, std::size_t> ColumnFrequencies(const Instance& instance,
                                               RelationId relation,
                                               std::size_t column);

/// Values whose frequency in the given column strictly exceeds
/// \p threshold.
std::set<Value> HeavyHitters(const Instance& instance, RelationId relation,
                             std::size_t column, std::size_t threshold);

/// Values heavy in either of two columns (e.g. the join value y of the
/// triangle, heavy in R's second or S's first column).
std::set<Value> JoinHeavyHitters(const Instance& instance, RelationId left,
                                 std::size_t left_column, RelationId right,
                                 std::size_t right_column,
                                 std::size_t threshold);

}  // namespace lamp

#endif  // LAMP_MPC_HEAVY_HITTERS_H_
