#ifndef LAMP_MPC_CASCADE_H_
#define LAMP_MPC_CASCADE_H_

#include <cstdint>

#include "cq/cq.h"
#include "mpc/join_strategies.h"
#include "relational/schema.h"

/// \file
/// Multi-round evaluation by a cascade of binary hash joins
/// (Example 3.1(2): the two-round triangle R |x| S then |x| T).
///
/// Round i repartitions the intermediate result and the next atom's
/// relation on their shared variables and joins locally; relations needed
/// in later rounds stay put (self-routing, which is not communication).
/// The number of rounds is #atoms - 1; intermediate results can exceed the
/// final output (the motivation for Yannakakis/GYM in Section 3.2).

namespace lamp {

/// Evaluates \p query (no negation; inequalities applied at the end) by a
/// left-deep cascade. Atoms are greedily reordered so that every join step
/// shares at least one variable (checked error for cartesian steps).
/// \p schema is extended with synthetic relations for the intermediates.
MpcRunResult CascadeJoin(Schema& schema, const ConjunctiveQuery& query,
                         const Instance& input, std::size_t num_servers,
                         std::uint64_t seed = 0);

}  // namespace lamp

#endif  // LAMP_MPC_CASCADE_H_
