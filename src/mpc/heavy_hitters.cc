#include "mpc/heavy_hitters.h"

#include "common/check.h"

namespace lamp {

std::map<Value, std::size_t> ColumnFrequencies(const Instance& instance,
                                               RelationId relation,
                                               std::size_t column) {
  std::map<Value, std::size_t> freq;
  for (const Fact& f : instance.FactsOf(relation)) {
    LAMP_CHECK(column < f.args.size());
    ++freq[f.args[column]];
  }
  return freq;
}

std::set<Value> HeavyHitters(const Instance& instance, RelationId relation,
                             std::size_t column, std::size_t threshold) {
  std::set<Value> heavy;
  for (const auto& [value, count] :
       ColumnFrequencies(instance, relation, column)) {
    if (count > threshold) heavy.insert(value);
  }
  return heavy;
}

std::set<Value> JoinHeavyHitters(const Instance& instance, RelationId left,
                                 std::size_t left_column, RelationId right,
                                 std::size_t right_column,
                                 std::size_t threshold) {
  std::set<Value> heavy = HeavyHitters(instance, left, left_column, threshold);
  const std::set<Value> more =
      HeavyHitters(instance, right, right_column, threshold);
  heavy.insert(more.begin(), more.end());
  return heavy;
}

}  // namespace lamp
