#ifndef LAMP_MPC_STATS_H_
#define LAMP_MPC_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"

/// \file
/// Load accounting for MPC rounds (Section 3 of the paper).
///
/// The model's central quantity is the *load*: the number of tuples a
/// server receives during one round. The paper states bounds on the maximum
/// load (e.g. O(m/p^{1/tau*}) for HyperCube) and on the total load a.k.a.
/// communication cost (the Shares objective). Both are tracked per round.
///
/// All accessors are total functions: on zero servers or zero rounds they
/// return 0 (there is no load), never divide by zero.

namespace lamp {

/// Tuples received per server during one communication phase.
struct RoundStats {
  std::vector<std::size_t> received;

  /// Wire bytes received per server (lamp.wire.v1 frames, duplicates and
  /// framing included). Same length as `received` when the run went
  /// through lamp::transport; empty for legacy paths that never filled
  /// it — all accessors treat empty as zero.
  std::vector<std::size_t> wire_bytes;

  /// Maximum load over servers (the Koutris-Suciu objective).
  std::size_t MaxLoad() const;

  /// Total load = communication cost (the Afrati-Ullman objective).
  std::size_t TotalLoad() const;

  /// Average load per server (0 on zero servers).
  double AvgLoad() const;

  /// Total wire bytes received this round (0 when not measured).
  std::size_t TotalWireBytes() const;
};

/// Statistics of a complete (multi-round) MPC execution.
struct RunStats {
  std::vector<RoundStats> rounds;

  /// Max over rounds of the per-round maximum load ("the load should
  /// always be a number in [m/p, m]" at any point of the execution).
  std::size_t MaxLoad() const;

  /// Total tuples communicated across all rounds.
  std::size_t TotalCommunication() const;

  /// Total wire bytes across all rounds (0 when not measured).
  std::size_t TotalWireBytes() const;

  std::size_t NumRounds() const { return rounds.size(); }

  /// One line per round: "round 0: max=12 total=96".
  std::string ToString() const;

  /// Full per-round/per-server load profile:
  ///   {"rounds":[{"max":..,"total":..,"received":[..]},...],
  ///    "max_load":..,"total_communication":..}
  /// This is the measured side of an audit record (obs/audit/audit.h);
  /// tools/obs_audit renders it as a per-server heatmap.
  obs::JsonValue ToJson() const;

  /// Exports under the obs naming convention: mpc.rounds, mpc.max_load,
  /// mpc.total_communication plus the per-round mpc.round.* histograms.
  /// Counters accumulate when the registry already holds earlier runs.
  void ToMetrics(obs::MetricsRegistry& registry) const;
};

}  // namespace lamp

#endif  // LAMP_MPC_STATS_H_
