#ifndef LAMP_MPC_SHARES_SKEW_H_
#define LAMP_MPC_SHARES_SKEW_H_

#include <cstdint>

#include "cq/cq.h"
#include "mpc/join_strategies.h"

/// \file
/// SharesSkew (Afrati-Stasinopoulos-Ullman-Vasilakopoulos, cited in
/// Section 3.1): a *one-round* generalization of Shares that handles
/// heavy hitters by "distinguishing tuples that are heavy hitters" —
/// each heavy join value gets its own residual grid, all within the same
/// communication round.
///
/// Implemented for the binary join H <- R(x,y), S(y,z) (the shape the
/// paper's Example 3.1 analyzes): the server pool is split into a hashed
/// region for light join values and one fragment-replicate sub-grid per
/// heavy value; every tuple is routed in the single round either to its
/// hash bucket or to its heavy sub-grid. Load drops from the
/// repartition join's O(heavy-degree) to O(m/sqrt(p_b)) per heavy value.

namespace lamp {

/// One-round skew-aware join. \p heavy_threshold 0 means m/sqrt(p).
MpcRunResult SharesSkewJoin(const ConjunctiveQuery& query,
                            const Instance& input, std::size_t num_servers,
                            std::uint64_t seed = 0,
                            std::size_t heavy_threshold = 0);

}  // namespace lamp

#endif  // LAMP_MPC_SHARES_SKEW_H_
