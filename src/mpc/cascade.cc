#include "mpc/cascade.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "cq/valuation.h"
#include "mpc/simulator.h"

namespace lamp {

namespace {

std::set<VarId> AtomVars(const Atom& atom) {
  std::set<VarId> vars;
  for (const Term& t : atom.terms) {
    if (t.IsVar()) vars.insert(t.var);
  }
  return vars;
}

/// Greedy connected ordering of the body atoms: start with atom 0, then
/// repeatedly append an unused atom sharing a variable with the bound set.
std::vector<std::size_t> ConnectedOrder(const ConjunctiveQuery& query) {
  const std::vector<Atom>& body = query.body();
  std::vector<std::size_t> order = {0};
  std::set<VarId> bound = AtomVars(body[0]);
  std::vector<bool> used(body.size(), false);
  used[0] = true;
  for (std::size_t step = 1; step < body.size(); ++step) {
    std::size_t pick = body.size();
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (used[i]) continue;
      for (VarId v : AtomVars(body[i])) {
        if (bound.count(v) > 0) {
          pick = i;
          break;
        }
      }
      if (pick != body.size()) break;
    }
    LAMP_CHECK_MSG(pick != body.size(),
                   "cascade join requires a connected query");
    used[pick] = true;
    order.push_back(pick);
    const std::set<VarId> vars = AtomVars(body[pick]);
    bound.insert(vars.begin(), vars.end());
  }
  return order;
}

/// Hash of the values of \p vars (sorted) under an assignment represented
/// as a map from VarId to Value.
std::uint64_t HashSharedVars(const std::vector<VarId>& vars,
                             const std::unordered_map<VarId, Value>& binding,
                             std::uint64_t seed) {
  std::uint64_t h = HashMix(seed);
  for (VarId v : vars) {
    h = HashCombine(h, static_cast<std::uint64_t>(binding.at(v).v));
  }
  return h;
}

/// Tries to bind \p atom against \p fact, extending \p binding. Returns
/// false on mismatch (constants, repeated vars, prior bindings).
bool BindAtom(const Atom& atom, const Fact& fact,
              std::unordered_map<VarId, Value>& binding) {
  if (atom.relation != fact.relation ||
      atom.terms.size() != fact.args.size()) {
    return false;
  }
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (t.IsConst()) {
      if (t.constant != fact.args[i]) return false;
      continue;
    }
    auto [it, inserted] = binding.emplace(t.var, fact.args[i]);
    if (!inserted && !(it->second == fact.args[i])) return false;
  }
  return true;
}

}  // namespace

MpcRunResult CascadeJoin(Schema& schema, const ConjunctiveQuery& query,
                         const Instance& input, std::size_t num_servers,
                         std::uint64_t seed) {
  LAMP_CHECK_MSG(query.negated().empty(), "cascade join does not handle negation");
  const std::vector<Atom>& body = query.body();
  LAMP_CHECK(!body.empty());

  const std::vector<std::size_t> order = ConnectedOrder(query);

  // Variable sets of the intermediates: vars_after[i] = vars of atoms
  // order[0..i], sorted (their order defines the intermediate's columns).
  std::vector<std::vector<VarId>> vars_after(order.size());
  {
    std::set<VarId> acc;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::set<VarId> vars = AtomVars(body[order[i]]);
      acc.insert(vars.begin(), vars.end());
      vars_after[i].assign(acc.begin(), acc.end());
    }
  }

  // Synthetic relations for the intermediates.
  std::vector<RelationId> inter_rel(order.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    inter_rel[i] = schema.AddRelation(
        "__cascade" + std::to_string(seed % 1000) + "_" + std::to_string(i),
        vars_after[i].size());
  }

  MpcSimulator sim(num_servers);
  sim.LoadInput(input);

  // Round 0 is special-cased into round 1's routing: the first two atoms
  // are repartitioned together. Rounds i = 1 .. k-1: join intermediate
  // (i-1) with atom order[i].
  for (std::size_t i = 1; i < order.size(); ++i) {
    const Atom& next_atom = body[order[i]];
    const std::vector<VarId>& prev_vars =
        i == 1 ? vars_after[0] : vars_after[i - 1];
    // Shared variables between the accumulated intermediate and the next
    // atom, in sorted order.
    std::vector<VarId> shared;
    {
      const std::set<VarId> next_vars = AtomVars(next_atom);
      for (VarId v : prev_vars) {
        if (next_vars.count(v) > 0) shared.push_back(v);
      }
    }
    LAMP_CHECK_MSG(!shared.empty(), "cascade step without shared variables");

    const RelationId prev_rel = i == 1 ? body[order[0]].relation
                                       : inter_rel[i - 1];
    const Atom& prev_atom = body[order[0]];  // Only used when i == 1.

    // Relations of atoms still needed in later rounds (stay in place).
    std::set<RelationId> future;
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      future.insert(body[order[j]].relation);
    }

    const std::uint64_t round_seed = HashCombine(seed, i);

    sim.RunRound(
        [&](NodeId source, const Fact& f) -> std::vector<NodeId> {
          // A fact may play several roles (self-joins): collect all targets.
          std::set<NodeId> targets;
          if (f.relation == prev_rel) {
            std::unordered_map<VarId, Value> binding;
            bool ok = true;
            if (i == 1) {
              ok = BindAtom(prev_atom, f, binding);
            } else {
              // Intermediate fact: columns are prev_vars in order.
              for (std::size_t c = 0; c < prev_vars.size(); ++c) {
                binding[prev_vars[c]] = f.args[c];
              }
            }
            if (ok) {
              targets.insert(static_cast<NodeId>(
                  HashSharedVars(shared, binding, round_seed) % num_servers));
            }
          }
          {
            std::unordered_map<VarId, Value> binding;
            if (BindAtom(next_atom, f, binding)) {
              targets.insert(static_cast<NodeId>(
                  HashSharedVars(shared, binding, round_seed) % num_servers));
            }
          }
          if (future.count(f.relation) > 0) {
            targets.insert(source);  // Stays put for a later round.
          }
          return {targets.begin(), targets.end()};
        },
        [&](NodeId, const Instance& received) -> MpcSimulator::ComputeResult {
          // Local join: hash next_atom's facts by shared values, then
          // extend each intermediate tuple.
          std::unordered_map<std::uint64_t,
                             std::vector<std::unordered_map<VarId, Value>>>
              by_key;
          for (const Fact& f : received.FactsOf(next_atom.relation)) {
            std::unordered_map<VarId, Value> binding;
            if (!BindAtom(next_atom, f, binding)) continue;
            by_key[HashSharedVars(shared, binding, round_seed)]
                .push_back(std::move(binding));
          }

          Instance next_state;
          auto emit = [&](const std::unordered_map<VarId, Value>& binding) {
            std::vector<Value> args;
            args.reserve(vars_after[i].size());
            for (VarId v : vars_after[i]) args.push_back(binding.at(v));
            next_state.Insert(Fact(inter_rel[i], std::move(args)));
          };

          auto extend = [&](std::unordered_map<VarId, Value> base) {
            const std::uint64_t key =
                HashSharedVars(shared, base, round_seed);
            auto it = by_key.find(key);
            if (it == by_key.end()) return;
            for (const auto& ext : it->second) {
              std::unordered_map<VarId, Value> merged = base;
              bool ok = true;
              for (const auto& [v, val] : ext) {
                auto [slot, inserted] = merged.emplace(v, val);
                if (!inserted && !(slot->second == val)) {
                  ok = false;
                  break;
                }
              }
              if (ok) emit(merged);
            }
          };

          if (i == 1) {
            for (const Fact& f : received.FactsOf(prev_rel)) {
              std::unordered_map<VarId, Value> binding;
              if (BindAtom(prev_atom, f, binding)) extend(std::move(binding));
            }
          } else {
            for (const Fact& f : received.FactsOf(prev_rel)) {
              std::unordered_map<VarId, Value> binding;
              for (std::size_t c = 0; c < prev_vars.size(); ++c) {
                binding[prev_vars[c]] = f.args[c];
              }
              extend(std::move(binding));
            }
          }

          // Relations for later rounds ride along.
          for (RelationId rel : future) {
            for (const Fact& f : received.FactsOf(rel)) next_state.Insert(f);
          }

          Instance output;
          if (i + 1 == order.size()) {
            // Final round: apply inequalities and project onto the head.
            for (const Fact& f : next_state.FactsOf(inter_rel[i])) {
              Valuation v(query.NumVars());
              for (std::size_t c = 0; c < vars_after[i].size(); ++c) {
                v.Bind(vars_after[i][c], f.args[c]);
              }
              if (v.SatisfiesInequalities(query)) {
                output.Insert(v.ApplyToAtom(query.head()));
              }
            }
          }
          return {std::move(next_state), std::move(output)};
        });
  }

  // Single-atom query: no rounds were run; evaluate directly with one
  // repartition-free round (broadcast-free: each server filters locally).
  if (order.size() == 1) {
    sim.RunRound(
        [](NodeId source, const Fact&) -> std::vector<NodeId> {
          return {source};
        },
        [&](NodeId, const Instance& received) -> MpcSimulator::ComputeResult {
          Instance output;
          for (const Fact& f : received.FactsOf(body[0].relation)) {
            std::unordered_map<VarId, Value> binding;
            if (!BindAtom(body[0], f, binding)) continue;
            Valuation v(query.NumVars());
            for (const auto& [var, val] : binding) v.Bind(var, val);
            if (v.SatisfiesInequalities(query)) {
              output.Insert(v.ApplyToAtom(query.head()));
            }
          }
          return {received, std::move(output)};
        });
  }

  return {sim.output(), sim.stats()};
}

}  // namespace lamp
