#ifndef LAMP_MPC_GYM_H_
#define LAMP_MPC_GYM_H_

#include <cstdint>

#include "cq/cq.h"
#include "mpc/decomposition.h"
#include "mpc/join_strategies.h"
#include "relational/schema.h"

/// \file
/// GYM — Generalized Yannakakis in MapReduce (Afrati et al., discussed in
/// Section 3.2 of the paper) — for possibly cyclic queries:
///
///  1. take a tree decomposition of the query;
///  2. evaluate the atoms grouped at each bag with the Shares/HyperCube
///     algorithm, materializing one relation per bag;
///  3. run Yannakakis over the (acyclic) bag tree: semi-join reduction
///     then a join cascade whose intermediates are bounded by the reduced
///     data.
///
/// The decomposition's shape trades rounds against communication: a
/// single bag degenerates to plain one-round HyperCube, a deep tree to
/// many cheap rounds. Bag evaluations are independent (they run on
/// disjoint server groups in real deployments); the simulator executes
/// them as separate rounds, so reported round counts upper-bound a real
/// GYM execution.

namespace lamp {

/// Evaluates \p query (no negation) with GYM over \p td on
/// \p num_servers simulated servers. \p schema gains synthetic bag
/// relations ("__bag<i>"). Inequalities are applied in the final join
/// cascade.
MpcRunResult GymEvaluate(Schema& schema, const ConjunctiveQuery& query,
                         const TreeDecomposition& td, const Instance& input,
                         std::size_t num_servers, std::uint64_t seed = 0);

/// Convenience: builds the decomposition internally.
MpcRunResult GymEvaluate(Schema& schema, const ConjunctiveQuery& query,
                         const Instance& input, std::size_t num_servers,
                         std::uint64_t seed = 0);

}  // namespace lamp

#endif  // LAMP_MPC_GYM_H_
