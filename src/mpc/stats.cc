#include "mpc/stats.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace lamp {

std::size_t RoundStats::MaxLoad() const {
  if (received.empty()) return 0;
  return *std::max_element(received.begin(), received.end());
}

std::size_t RoundStats::TotalLoad() const {
  return std::accumulate(received.begin(), received.end(), std::size_t{0});
}

double RoundStats::AvgLoad() const {
  if (received.empty()) return 0.0;
  return static_cast<double>(TotalLoad()) /
         static_cast<double>(received.size());
}

std::size_t RoundStats::TotalWireBytes() const {
  return std::accumulate(wire_bytes.begin(), wire_bytes.end(),
                         std::size_t{0});
}

std::size_t RunStats::MaxLoad() const {
  std::size_t max_load = 0;
  for (const RoundStats& r : rounds) {
    max_load = std::max(max_load, r.MaxLoad());
  }
  return max_load;
}

std::size_t RunStats::TotalCommunication() const {
  std::size_t total = 0;
  for (const RoundStats& r : rounds) total += r.TotalLoad();
  return total;
}

std::size_t RunStats::TotalWireBytes() const {
  std::size_t total = 0;
  for (const RoundStats& r : rounds) total += r.TotalWireBytes();
  return total;
}

void RunStats::ToMetrics(obs::MetricsRegistry& registry) const {
  registry.GetCounter(obs::kMpcRounds).Add(rounds.size());
  registry.GetCounter(obs::kMpcTotalCommunication).Add(TotalCommunication());
  registry.GetCounter(obs::kMpcWireBytes).Add(TotalWireBytes());
  registry.GetGauge(obs::kMpcMaxLoad).Max(static_cast<double>(MaxLoad()));
  obs::Histogram& max_load = registry.GetHistogram(obs::kMpcRoundMaxLoad);
  obs::Histogram& total_load = registry.GetHistogram(obs::kMpcRoundTotalLoad);
  for (const RoundStats& r : rounds) {
    max_load.Observe(static_cast<double>(r.MaxLoad()));
    total_load.Observe(static_cast<double>(r.TotalLoad()));
  }
}

obs::JsonValue RunStats::ToJson() const {
  obs::JsonValue doc = obs::JsonValue::Object();
  obs::JsonValue round_list = obs::JsonValue::Array();
  for (const RoundStats& r : rounds) {
    obs::JsonValue round = obs::JsonValue::Object();
    round.Set("max", r.MaxLoad());
    round.Set("total", r.TotalLoad());
    obs::JsonValue received = obs::JsonValue::Array();
    for (const std::size_t load : r.received) {
      received.PushBack(obs::JsonValue(load));
    }
    round.Set("received", std::move(received));
    if (!r.wire_bytes.empty()) {
      obs::JsonValue wire = obs::JsonValue::Array();
      for (const std::size_t b : r.wire_bytes) {
        wire.PushBack(obs::JsonValue(b));
      }
      round.Set("wire_bytes", std::move(wire));
    }
    round_list.PushBack(std::move(round));
  }
  doc.Set("rounds", std::move(round_list));
  doc.Set("max_load", MaxLoad());
  doc.Set("total_communication", TotalCommunication());
  if (TotalWireBytes() > 0) doc.Set("wire_bytes", TotalWireBytes());
  return doc;
}

std::string RunStats::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    os << "round " << i << ": max=" << rounds[i].MaxLoad()
       << " total=" << rounds[i].TotalLoad() << "\n";
  }
  return os.str();
}

}  // namespace lamp
