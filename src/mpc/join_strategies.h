#ifndef LAMP_MPC_JOIN_STRATEGIES_H_
#define LAMP_MPC_JOIN_STRATEGIES_H_

#include <cstdint>
#include <vector>

#include "cq/cq.h"
#include "mpc/simulator.h"
#include "mpc/stats.h"
#include "relational/instance.h"

/// \file
/// The two single-round binary-join strategies of Example 3.1:
///
///  (1a) *repartition join*: hash both relations on the shared join
///       variables; O(m/p) load without skew but degrades to O(m) when a
///       join value is heavy;
///  (1b) *fragment-replicate join* (Ullman's drug-interaction pattern, used
///       by DYM-n): split R into sqrt(p) row groups and S into sqrt(p)
///       column groups and give every (row, column) pair a server;
///       O(m/sqrt(p)) load independent of skew.

namespace lamp {

/// Result of a complete MPC execution: the query output plus per-round
/// load statistics.
struct MpcRunResult {
  Instance output;
  RunStats stats;
};

/// Positions (within each of the two body atoms) of the shared join
/// variables of a binary join query.
struct JoinShape {
  std::vector<std::size_t> left_positions;   // In body()[0].
  std::vector<std::size_t> right_positions;  // In body()[1].
};

/// Validates that \p query is a binary join the strategies support (two
/// distinct atoms sharing at least one variable) and returns the
/// join-key positions.
JoinShape AnalyzeBinaryJoin(const ConjunctiveQuery& query);

/// The exact routing function RepartitionJoin runs, exposed so
/// out-of-process runners (tools/mpc_procs) route byte-identically to
/// the in-process reference. The returned callable is self-contained:
/// it captures no reference to \p query.
MpcSimulator::Router RepartitionRouter(const ConjunctiveQuery& query,
                                       std::size_t num_servers,
                                       std::uint64_t seed);

/// The exact routing function FragmentReplicateJoin runs (grid of
/// g = floor(sqrt(num_servers)) rows x g columns). Self-contained like
/// RepartitionRouter.
MpcSimulator::Router FragmentReplicateRouter(const ConjunctiveQuery& query,
                                             std::size_t num_servers,
                                             std::uint64_t seed);

/// Example 3.1(1a). \p query must be a join of exactly two atoms sharing
/// at least one variable (e.g. H(x,y,z) <- R(x,y), S(y,z)).
MpcRunResult RepartitionJoin(const ConjunctiveQuery& query,
                             const Instance& input, std::size_t num_servers,
                             std::uint64_t seed = 0);

/// Example 3.1(1b). Uses the largest g with g*g <= num_servers and
/// arranges the g*g servers as a grid; the first atom's facts go to a
/// random-but-deterministic row group, the second atom's to a column
/// group. Load O(m/g) regardless of skew.
MpcRunResult FragmentReplicateJoin(const ConjunctiveQuery& query,
                                   const Instance& input,
                                   std::size_t num_servers,
                                   std::uint64_t seed = 0);

}  // namespace lamp

#endif  // LAMP_MPC_JOIN_STRATEGIES_H_
