#ifndef LAMP_MPC_JOIN_STRATEGIES_H_
#define LAMP_MPC_JOIN_STRATEGIES_H_

#include <cstdint>

#include "cq/cq.h"
#include "mpc/stats.h"
#include "relational/instance.h"

/// \file
/// The two single-round binary-join strategies of Example 3.1:
///
///  (1a) *repartition join*: hash both relations on the shared join
///       variables; O(m/p) load without skew but degrades to O(m) when a
///       join value is heavy;
///  (1b) *fragment-replicate join* (Ullman's drug-interaction pattern, used
///       by DYM-n): split R into sqrt(p) row groups and S into sqrt(p)
///       column groups and give every (row, column) pair a server;
///       O(m/sqrt(p)) load independent of skew.

namespace lamp {

/// Result of a complete MPC execution: the query output plus per-round
/// load statistics.
struct MpcRunResult {
  Instance output;
  RunStats stats;
};

/// Example 3.1(1a). \p query must be a join of exactly two atoms sharing
/// at least one variable (e.g. H(x,y,z) <- R(x,y), S(y,z)).
MpcRunResult RepartitionJoin(const ConjunctiveQuery& query,
                             const Instance& input, std::size_t num_servers,
                             std::uint64_t seed = 0);

/// Example 3.1(1b). Uses the largest g with g*g <= num_servers and
/// arranges the g*g servers as a grid; the first atom's facts go to a
/// random-but-deterministic row group, the second atom's to a column
/// group. Load O(m/g) regardless of skew.
MpcRunResult FragmentReplicateJoin(const ConjunctiveQuery& query,
                                   const Instance& input,
                                   std::size_t num_servers,
                                   std::uint64_t seed = 0);

}  // namespace lamp

#endif  // LAMP_MPC_JOIN_STRATEGIES_H_
