#include "mpc/join_strategies.h"

#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "cq/eval.h"
#include "mpc/simulator.h"

namespace lamp {

namespace {

std::uint64_t HashPositions(const Fact& fact,
                            const std::vector<std::size_t>& positions,
                            std::uint64_t seed) {
  std::uint64_t h = HashMix(seed);
  for (std::size_t pos : positions) {
    h = HashCombine(h, static_cast<std::uint64_t>(fact.args[pos].v));
  }
  return h;
}

MpcSimulator::Computer EvaluateLocally(const ConjunctiveQuery& query) {
  return [&query](NodeId, const Instance& received) {
    return MpcSimulator::ComputeResult{Instance(),
                                       Evaluate(query, received)};
  };
}

}  // namespace

JoinShape AnalyzeBinaryJoin(const ConjunctiveQuery& query) {
  LAMP_CHECK_MSG(query.body().size() == 2,
                 "binary join strategies need exactly two body atoms");
  const Atom& left = query.body()[0];
  const Atom& right = query.body()[1];
  LAMP_CHECK_MSG(left.relation != right.relation,
                 "binary join strategies do not support self-joins");

  std::set<VarId> left_vars;
  for (const Term& t : left.terms) {
    if (t.IsVar()) left_vars.insert(t.var);
  }
  std::set<VarId> shared;
  for (const Term& t : right.terms) {
    if (t.IsVar() && left_vars.count(t.var) > 0) shared.insert(t.var);
  }
  LAMP_CHECK_MSG(!shared.empty(), "the two atoms share no variable");

  JoinShape shape;
  // First occurrence of each shared var in each atom, in VarId order.
  for (VarId v : shared) {
    for (std::size_t i = 0; i < left.terms.size(); ++i) {
      if (left.terms[i].IsVar() && left.terms[i].var == v) {
        shape.left_positions.push_back(i);
        break;
      }
    }
    for (std::size_t i = 0; i < right.terms.size(); ++i) {
      if (right.terms[i].IsVar() && right.terms[i].var == v) {
        shape.right_positions.push_back(i);
        break;
      }
    }
  }
  return shape;
}

MpcSimulator::Router RepartitionRouter(const ConjunctiveQuery& query,
                                       std::size_t num_servers,
                                       std::uint64_t seed) {
  const JoinShape shape = AnalyzeBinaryJoin(query);
  const RelationId left_rel = query.body()[0].relation;
  const RelationId right_rel = query.body()[1].relation;
  return [shape, left_rel, right_rel, num_servers,
          seed](NodeId, const Fact& f) -> std::vector<NodeId> {
    if (f.relation == left_rel) {
      return {static_cast<NodeId>(
          HashPositions(f, shape.left_positions, seed) % num_servers)};
    }
    if (f.relation == right_rel) {
      return {static_cast<NodeId>(
          HashPositions(f, shape.right_positions, seed) % num_servers)};
    }
    return {};
  };
}

MpcSimulator::Router FragmentReplicateRouter(const ConjunctiveQuery& query,
                                             std::size_t num_servers,
                                             std::uint64_t seed) {
  AnalyzeBinaryJoin(query);  // Validates the query shape.
  const RelationId left_rel = query.body()[0].relation;
  const RelationId right_rel = query.body()[1].relation;

  const auto g = static_cast<std::size_t>(
      std::floor(std::sqrt(static_cast<double>(num_servers)) + 1e-9));
  LAMP_CHECK(g >= 1);

  return [left_rel, right_rel, g, seed](NodeId, const Fact& f) {
    std::vector<NodeId> targets;
    // Group by the whole-fact hash: balanced regardless of value skew.
    const std::uint64_t group = FactHash()(f) ^ HashMix(seed);
    if (f.relation == left_rel) {
      const std::size_t row = group % g;
      for (std::size_t col = 0; col < g; ++col) {
        targets.push_back(static_cast<NodeId>(row * g + col));
      }
    } else if (f.relation == right_rel) {
      const std::size_t col = group % g;
      for (std::size_t row = 0; row < g; ++row) {
        targets.push_back(static_cast<NodeId>(row * g + col));
      }
    }
    return targets;
  };
}

MpcRunResult RepartitionJoin(const ConjunctiveQuery& query,
                             const Instance& input, std::size_t num_servers,
                             std::uint64_t seed) {
  MpcSimulator sim(num_servers);
  sim.LoadInput(input);
  sim.RunRound(RepartitionRouter(query, num_servers, seed),
               EvaluateLocally(query));
  return {sim.output(), sim.stats()};
}

MpcRunResult FragmentReplicateJoin(const ConjunctiveQuery& query,
                                   const Instance& input,
                                   std::size_t num_servers,
                                   std::uint64_t seed) {
  MpcSimulator sim(num_servers);
  sim.LoadInput(input);
  sim.RunRound(FragmentReplicateRouter(query, num_servers, seed),
               EvaluateLocally(query));
  return {sim.output(), sim.stats()};
}

}  // namespace lamp
