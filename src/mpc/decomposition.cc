#include "mpc/decomposition.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace lamp {

namespace {

std::set<VarId> AtomVars(const Atom& atom) {
  std::set<VarId> vars;
  for (const Term& t : atom.terms) {
    if (t.IsVar()) vars.insert(t.var);
  }
  return vars;
}

}  // namespace

std::size_t TreeDecomposition::Width() const {
  std::size_t width = 0;
  for (const Bag& bag : bags) {
    width = std::max(width, bag.vars.size());
  }
  return width == 0 ? 0 : width - 1;
}

TreeDecomposition BuildTreeDecomposition(const ConjunctiveQuery& query) {
  LAMP_CHECK(!query.body().empty());

  // Variable co-occurrence graph.
  std::set<VarId> alive;
  std::map<VarId, std::set<VarId>> adj;
  for (const Atom& atom : query.body()) {
    const std::set<VarId> vars = AtomVars(atom);
    for (VarId a : vars) {
      alive.insert(a);
      for (VarId b : vars) {
        if (a != b) adj[a].insert(b);
      }
    }
  }
  LAMP_CHECK_MSG(!alive.empty(), "query has no variables");

  // Min-degree elimination. bag_of_var[v] is the index of the bag created
  // when v was eliminated; elimination_order records the sequence.
  TreeDecomposition td;
  std::map<VarId, std::size_t> bag_of_var;
  std::vector<VarId> elimination_order;

  std::set<VarId> remaining = alive;
  while (!remaining.empty()) {
    VarId best = *remaining.begin();
    std::size_t best_degree = adj[best].size();
    for (VarId v : remaining) {
      if (adj[v].size() < best_degree) {
        best = v;
        best_degree = adj[v].size();
      }
    }
    // Bag: best + its current neighbors.
    TreeDecomposition::Bag bag;
    bag.vars = adj[best];
    bag.vars.insert(best);
    bag_of_var[best] = td.bags.size();
    elimination_order.push_back(best);
    td.bags.push_back(std::move(bag));

    // Fill-in: the neighbors become a clique; remove best.
    const std::set<VarId> neighbors = adj[best];
    for (VarId a : neighbors) {
      adj[a].erase(best);
      for (VarId b : neighbors) {
        if (a != b) adj[a].insert(b);
      }
    }
    adj.erase(best);
    remaining.erase(best);
  }

  // Parents: the bag of the first-eliminated variable among
  // bag.vars \ {eliminated var}; the last bag is the root.
  std::map<VarId, std::size_t> elim_position;
  for (std::size_t i = 0; i < elimination_order.size(); ++i) {
    elim_position[elimination_order[i]] = i;
  }
  td.parent.assign(td.bags.size(), TreeDecomposition::kRoot);
  for (std::size_t i = 0; i < td.bags.size(); ++i) {
    std::size_t earliest = td.bags.size();
    for (VarId v : td.bags[i].vars) {
      const std::size_t pos = elim_position[v];
      if (pos > i) earliest = std::min(earliest, pos);
    }
    if (earliest < td.bags.size()) {
      td.parent[i] = static_cast<std::ptrdiff_t>(earliest);
    }
  }

  // Assign each atom to the bag of its earliest-eliminated variable (that
  // bag contains the whole atom by the elimination invariant). Nullary
  // atoms go to the root.
  for (std::size_t a = 0; a < query.body().size(); ++a) {
    const std::set<VarId> vars = AtomVars(query.body()[a]);
    std::size_t target = td.bags.size() - 1;  // Root by default.
    std::size_t earliest = td.bags.size();
    for (VarId v : vars) {
      if (elim_position[v] < earliest) {
        earliest = elim_position[v];
        target = elim_position[v];
      }
    }
    td.bags[target].atom_indices.push_back(a);
  }

  // Contract atom-less bags: merge their variables into the parent (or a
  // child when the root), preserving variable-subtree connectivity.
  bool contracted = true;
  while (contracted) {
    contracted = false;
    for (std::size_t i = 0; i < td.bags.size(); ++i) {
      if (!td.bags[i].atom_indices.empty()) continue;
      if (td.bags.size() == 1) break;  // Keep at least one bag.

      std::size_t merge_into;
      if (td.parent[i] != TreeDecomposition::kRoot) {
        merge_into = static_cast<std::size_t>(td.parent[i]);
      } else {
        // Root: merge into any child.
        merge_into = td.bags.size();
        for (std::size_t j = 0; j < td.bags.size(); ++j) {
          if (td.parent[j] == static_cast<std::ptrdiff_t>(i)) {
            merge_into = j;
            break;
          }
        }
        if (merge_into == td.bags.size()) break;  // Isolated root, keep.
        td.parent[merge_into] = TreeDecomposition::kRoot;
      }
      td.bags[merge_into].vars.insert(td.bags[i].vars.begin(),
                                      td.bags[i].vars.end());
      for (std::size_t j = 0; j < td.bags.size(); ++j) {
        if (td.parent[j] == static_cast<std::ptrdiff_t>(i)) {
          td.parent[j] = static_cast<std::ptrdiff_t>(merge_into);
        }
      }
      // Remove bag i by swapping with the last and fixing indices.
      const std::size_t last = td.bags.size() - 1;
      if (i != last) {
        td.bags[i] = std::move(td.bags[last]);
        // Children of the removed bag were re-parented above, so
        // parent[last] cannot be i.
        td.parent[i] = td.parent[last];
        for (std::size_t j = 0; j < last; ++j) {
          if (td.parent[j] == static_cast<std::ptrdiff_t>(last)) {
            td.parent[j] = static_cast<std::ptrdiff_t>(i);
          }
        }
      }
      td.bags.pop_back();
      td.parent.pop_back();
      contracted = true;
      break;  // Indices changed; restart the scan.
    }
  }
  return td;
}

bool IsValidDecomposition(const ConjunctiveQuery& query,
                          const TreeDecomposition& td) {
  // 1. Every atom assigned exactly once, to a bag covering its variables.
  std::vector<int> assigned(query.body().size(), 0);
  for (const auto& bag : td.bags) {
    for (std::size_t a : bag.atom_indices) {
      if (a >= query.body().size()) return false;
      ++assigned[a];
      for (VarId v : AtomVars(query.body()[a])) {
        if (bag.vars.count(v) == 0) return false;
      }
    }
  }
  for (int count : assigned) {
    if (count != 1) return false;
  }

  // 2. Every variable's bags form a connected subtree: walking up from
  // every bag containing v, the occurrences must form one chain-closed
  // region. Equivalent check: for each v, the bags containing v minus one
  // root-most bag each have a parent containing v.
  for (VarId v = 0; v < query.NumVars(); ++v) {
    std::size_t rootmost = 0;
    std::size_t containing = 0;
    for (std::size_t i = 0; i < td.bags.size(); ++i) {
      if (td.bags[i].vars.count(v) == 0) continue;
      ++containing;
      const std::ptrdiff_t p = td.parent[i];
      if (p == TreeDecomposition::kRoot ||
          td.bags[static_cast<std::size_t>(p)].vars.count(v) == 0) {
        ++rootmost;
      }
    }
    if (containing > 0 && rootmost != 1) return false;
  }
  return true;
}

}  // namespace lamp
