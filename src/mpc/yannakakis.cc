#include "mpc/yannakakis.h"

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "mpc/cascade.h"
#include "mpc/simulator.h"

namespace lamp {

namespace {

std::set<VarId> AtomVars(const Atom& atom) {
  std::set<VarId> vars;
  for (const Term& t : atom.terms) {
    if (t.IsVar()) vars.insert(t.var);
  }
  return vars;
}

/// First position of each shared variable (in VarId order) within an atom.
std::vector<std::size_t> SharedPositions(const Atom& atom,
                                         const std::vector<VarId>& shared) {
  std::vector<std::size_t> positions;
  for (VarId v : shared) {
    for (std::size_t i = 0; i < atom.terms.size(); ++i) {
      if (atom.terms[i].IsVar() && atom.terms[i].var == v) {
        positions.push_back(i);
        break;
      }
    }
  }
  LAMP_CHECK(positions.size() == shared.size());
  return positions;
}

std::uint64_t KeyHash(const Fact& fact,
                      const std::vector<std::size_t>& positions,
                      std::uint64_t seed) {
  std::uint64_t h = HashMix(seed);
  for (std::size_t pos : positions) {
    h = HashCombine(h, static_cast<std::uint64_t>(fact.args[pos].v));
  }
  return h;
}

/// One distributed semijoin round: keep := keep semijoin filter_by, joined
/// on the shared variables of their atoms; all other facts stay put.
void SemijoinRound(MpcSimulator& sim, const Atom& keep_atom,
                   const Atom& filter_atom, std::size_t num_servers,
                   std::uint64_t round_seed) {
  std::vector<VarId> shared;
  {
    const std::set<VarId> keep_vars = AtomVars(keep_atom);
    for (VarId v : AtomVars(filter_atom)) {
      if (keep_vars.count(v) > 0) shared.push_back(v);
    }
  }
  LAMP_CHECK_MSG(!shared.empty(), "join tree edge without shared variables");
  const std::vector<std::size_t> keep_pos =
      SharedPositions(keep_atom, shared);
  const std::vector<std::size_t> filter_pos =
      SharedPositions(filter_atom, shared);
  const RelationId keep_rel = keep_atom.relation;
  const RelationId filter_rel = filter_atom.relation;

  sim.RunRound(
      [&](NodeId source, const Fact& f) -> std::vector<NodeId> {
        if (f.relation == keep_rel) {
          return {static_cast<NodeId>(KeyHash(f, keep_pos, round_seed) %
                                      num_servers)};
        }
        if (f.relation == filter_rel) {
          return {static_cast<NodeId>(KeyHash(f, filter_pos, round_seed) %
                                      num_servers)};
        }
        return {source};
      },
      [&](NodeId, const Instance& received) -> MpcSimulator::ComputeResult {
        std::unordered_set<std::uint64_t> filter_keys;
        for (const Fact& f : received.FactsOf(filter_rel)) {
          filter_keys.insert(KeyHash(f, filter_pos, round_seed));
        }
        Instance next;
        for (const Fact& f : received.AllFacts()) {
          if (f.relation == keep_rel &&
              filter_keys.count(KeyHash(f, keep_pos, round_seed)) == 0) {
            continue;  // Dangling tuple eliminated.
          }
          next.Insert(f);
        }
        return {std::move(next), Instance()};
      });
}

}  // namespace

MpcRunResult SemijoinReduce(const ConjunctiveQuery& query,
                            const JoinTree& tree, const Instance& input,
                            std::size_t num_servers, std::uint64_t seed) {
  LAMP_CHECK_MSG(tree.acyclic, "Yannakakis requires an acyclic query");
  LAMP_CHECK_MSG(!query.HasSelfJoin(),
                 "the distributed semijoin phase assumes no self-joins");
  LAMP_CHECK_MSG(query.negated().empty(), "negation is not supported");

  MpcSimulator sim(num_servers);
  sim.LoadInput(input);

  const std::vector<Atom>& body = query.body();
  std::uint64_t round = 0;

  // Upward sweep: leaves first; parent := parent semijoin child.
  for (std::size_t idx : tree.removal_order) {
    if (tree.parent[idx] == JoinTree::kRoot) continue;
    const Atom& child = body[idx];
    const Atom& parent = body[static_cast<std::size_t>(tree.parent[idx])];
    SemijoinRound(sim, parent, child, num_servers,
                  HashCombine(seed, ++round));
  }
  // Downward sweep: root first; child := child semijoin parent.
  for (auto it = tree.removal_order.rbegin(); it != tree.removal_order.rend();
       ++it) {
    if (tree.parent[*it] == JoinTree::kRoot) continue;
    const Atom& child = body[*it];
    const Atom& parent = body[static_cast<std::size_t>(tree.parent[*it])];
    SemijoinRound(sim, child, parent, num_servers,
                  HashCombine(seed, ++round));
  }

  return {sim.GlobalState(), sim.stats()};
}

MpcRunResult YannakakisMpc(Schema& schema, const ConjunctiveQuery& query,
                           const Instance& input, std::size_t num_servers,
                           std::uint64_t seed) {
  const JoinTree tree = BuildJoinTree(query);
  MpcRunResult reduced = SemijoinReduce(query, tree, input, num_servers, seed);

  // Join phase over the reduced database.
  MpcRunResult joined =
      CascadeJoin(schema, query, reduced.output, num_servers, seed + 1);

  MpcRunResult result;
  result.output = std::move(joined.output);
  result.stats = std::move(reduced.stats);
  for (RoundStats& r : joined.stats.rounds) {
    result.stats.rounds.push_back(std::move(r));
  }
  return result;
}

}  // namespace lamp
