#ifndef LAMP_MPC_SIMULATOR_H_
#define LAMP_MPC_SIMULATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "distribution/policy.h"
#include "mpc/stats.h"
#include "relational/instance.h"
#include "transport/transport.h"

/// \file
/// The MPC execution model (Section 3 of the paper): p servers, rounds of a
/// communication phase (every server routes each of its facts to a set of
/// servers) followed by a computation phase (local function of the received
/// data). What the simulator *measures* — per-server received tuples — is
/// exactly the quantity the surveyed load bounds speak about.
///
/// Execution is parallel across the lamp::par global pool and
/// *deterministic*: each worker routes a contiguous shard of source servers
/// into per-(worker, target) outboxes, which are merged per target in
/// ascending worker order. Because shards partition the sources in
/// ascending order, that merge replays exactly the serial source-ascending
/// insert sequence, so outputs, dedup decisions and RoundStats are
/// byte-identical at every thread count (DESIGN.md §lamp::par). The Router
/// and Computer callbacks are invoked concurrently when the pool has more
/// than one lane and must therefore be thread-safe for distinct servers
/// (the stock policies and CQ evaluation are; they share only const state).
///
/// Accounting convention: the load of a server in a round is the number of
/// distinct tuples it receives from *other* servers. A fact a server routes
/// to itself persists into the next phase but is not communication (multi-
/// round algorithms use self-routing to keep relations in place for later
/// rounds). With round-robin initial placement, accidental self-hits are a
/// 1/p effect on measured loads.
///
/// Backend selection: transport::ActiveKind() picks where the routed facts
/// travel. The in-process default keeps the zero-copy outbox/merge path;
/// tcp/uds serialize each (source, target) batch into one lamp.wire.v1
/// kFactBatch frame per round and ship it over real sockets
/// (src/transport). The wire path drains channels per target in ascending
/// source order — exactly the in-process merge order — so outputs, dedup
/// decisions and RoundStats are byte-identical across backends. Either
/// way RoundStats::wire_bytes records the serialized frame bytes each
/// server received (computed in closed form in-process, measured on the
/// socket backends; the two agree by construction).

namespace lamp {

/// Simulates one MPC cluster execution.
class MpcSimulator {
 public:
  /// Routes one fact (held by server \p source) to target servers.
  /// Returning an empty vector drops the fact.
  using Router =
      std::function<std::vector<NodeId>(NodeId source, const Fact& fact)>;

  /// Computation phase of one server: transforms the received local
  /// instance into (next round's local state, output facts).
  struct ComputeResult {
    Instance next_state;
    Instance output;
  };
  using Computer =
      std::function<ComputeResult(NodeId server, const Instance& received)>;

  explicit MpcSimulator(std::size_t num_servers);

  /// Distributes \p global round-robin over the servers ("the input data
  /// is initially partitioned among the p servers"). Resets stats/output.
  void LoadInput(const Instance& global);

  /// Places \p local directly on each server (for tests). Resets stats.
  void LoadLocals(std::vector<Instance> locals);

  /// Executes one round: route every fact of every server with \p route,
  /// then run \p compute per server on the received data. Load statistics
  /// for the round are appended to stats().
  void RunRound(const Router& route, const Computer& compute);

  /// A computation phase that evaluates nothing and keeps the received
  /// data as next state (pure reshuffle).
  static Computer KeepAll();

  std::size_t num_servers() const { return locals_.size(); }
  const std::vector<Instance>& locals() const { return locals_; }
  const Instance& output() const { return output_; }
  const RunStats& stats() const { return stats_; }

  /// Union of all server states (for assertions).
  Instance GlobalState() const;

 private:
  /// The socket transport for this cluster, created on the first RunRound
  /// when transport::ActiveKind() is a socket backend (nullptr otherwise).
  transport::Transport* WireTransport();

  std::vector<Instance> locals_;
  Instance output_;
  RunStats stats_;
  std::unique_ptr<transport::Transport> transport_;
};

}  // namespace lamp

#endif  // LAMP_MPC_SIMULATOR_H_
