#ifndef LAMP_MPC_HYPERCUBE_RUN_H_
#define LAMP_MPC_HYPERCUBE_RUN_H_

#include <cstdint>

#include "cq/cq.h"
#include "distribution/hypercube.h"
#include "mpc/join_strategies.h"

/// \file
/// One-round HyperCube/Shares evaluation in the MPC simulator
/// (Section 3.1). Routing is the HypercubePolicy; the computation phase
/// evaluates the query locally. For a full CQ on skew-free data the
/// maximum load is O(m/p^{1/tau*}) with high probability
/// (Beame-Koutris-Suciu), which bench/bench_hypercube_load.cc measures.

namespace lamp {

/// Runs \p query in one round on a grid with the given \p shares.
MpcRunResult RunHyperCube(const ConjunctiveQuery& query, const Instance& input,
                          const Shares& shares, std::uint64_t seed = 0);

/// Convenience: uniform shares for a budget of \p num_servers.
MpcRunResult RunHyperCubeUniform(const ConjunctiveQuery& query,
                                 const Instance& input,
                                 std::size_t num_servers,
                                 std::uint64_t seed = 0);

/// Convenience: LP-optimal share exponents rounded to integers (each
/// alpha_v = round(p^{x_v}) clamped to >= 1).
MpcRunResult RunHyperCubeLpShares(const ConjunctiveQuery& query,
                                  const Instance& input,
                                  std::size_t num_servers,
                                  std::uint64_t seed = 0);

/// The share vector RunHyperCubeLpShares uses.
Shares LpRoundedShares(const ConjunctiveQuery& query,
                       std::size_t num_servers);

}  // namespace lamp

#endif  // LAMP_MPC_HYPERCUBE_RUN_H_
