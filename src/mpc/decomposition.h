#ifndef LAMP_MPC_DECOMPOSITION_H_
#define LAMP_MPC_DECOMPOSITION_H_

#include <cstddef>
#include <set>
#include <vector>

#include "cq/cq.h"

/// \file
/// Tree decompositions of query hypergraphs (the input GYM takes,
/// Section 3.2: "GYM takes a tree decomposition of a possibly cyclic
/// query as input").
///
/// We build decompositions by min-degree elimination on the variable
/// co-occurrence graph — the standard heuristic; its width is optimal for
/// the small query shapes the experiments use (triangles, cycles,
/// chordal-ish joins).

namespace lamp {

/// A tree decomposition with atoms assigned to bags.
struct TreeDecomposition {
  static constexpr std::ptrdiff_t kRoot = -1;

  struct Bag {
    std::set<VarId> vars;
    std::vector<std::size_t> atom_indices;  // Body atoms evaluated here.
  };

  std::vector<Bag> bags;
  std::vector<std::ptrdiff_t> parent;  // parent[i] or kRoot.

  /// Width = max bag size - 1.
  std::size_t Width() const;
};

/// Builds a decomposition by min-degree elimination. Every body atom is
/// assigned to exactly one bag that covers all its variables; bags that
/// ended up with no atoms are contracted away. Requires at least one atom
/// and at least one variable.
TreeDecomposition BuildTreeDecomposition(const ConjunctiveQuery& query);

/// Validity checks (used by tests): every atom's variables inside its
/// bag, every atom assigned, and every variable's bags forming a
/// connected subtree.
bool IsValidDecomposition(const ConjunctiveQuery& query,
                          const TreeDecomposition& td);

}  // namespace lamp

#endif  // LAMP_MPC_DECOMPOSITION_H_
