#include "mpc/gym.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "mpc/cascade.h"
#include "mpc/hypercube_run.h"
#include "mpc/yannakakis.h"

namespace lamp {

MpcRunResult GymEvaluate(Schema& schema, const ConjunctiveQuery& query,
                         const TreeDecomposition& td, const Instance& input,
                         std::size_t num_servers, std::uint64_t seed) {
  LAMP_CHECK_MSG(query.negated().empty(), "GYM does not handle negation");
  LAMP_CHECK(!td.bags.empty());

  MpcRunResult result;
  Instance bag_instance;
  std::vector<RelationId> bag_rel(td.bags.size());
  std::vector<std::vector<VarId>> bag_cols(td.bags.size());

  // Phase 1: evaluate each bag's atom group with HyperCube.
  for (std::size_t b = 0; b < td.bags.size(); ++b) {
    const TreeDecomposition::Bag& bag = td.bags[b];
    LAMP_CHECK_MSG(!bag.atom_indices.empty(),
                   "decomposition has an atom-less bag");

    // Columns: the variables actually bound by the bag's atoms, sorted.
    std::set<VarId> bound;
    for (std::size_t a : bag.atom_indices) {
      for (const Term& t : query.body()[a].terms) {
        if (t.IsVar()) bound.insert(t.var);
      }
    }
    bag_cols[b].assign(bound.begin(), bound.end());
    bag_rel[b] = schema.AddRelation(
        "__bag" + std::to_string(b) + "_" + std::to_string(seed % 1000),
        bag_cols[b].size());

    // Bag sub-query: full head over the bound variables. Inequalities
    // local to the bag are applied here (harmless to defer, cheaper not
    // to).
    ConjunctiveQuery sub;
    std::vector<Term> head_terms;
    head_terms.reserve(bag_cols[b].size());
    // Re-intern variable names so the sub-query is self-contained.
    std::vector<VarId> local_of(query.NumVars(), 0);
    for (VarId v : bag_cols[b]) {
      local_of[v] = sub.VarIdOf(query.VarName(v));
      head_terms.push_back(Term::Var(local_of[v]));
    }
    sub.SetHead(Atom(bag_rel[b], std::move(head_terms)));
    for (std::size_t a : bag.atom_indices) {
      Atom atom = query.body()[a];
      for (Term& t : atom.terms) {
        if (t.IsVar()) t = Term::Var(local_of[t.var]);
      }
      sub.AddBodyAtom(std::move(atom));
    }
    for (const auto& [lhs, rhs] : query.inequalities()) {
      const bool lhs_in = !lhs.IsVar() || bound.count(lhs.var) > 0;
      const bool rhs_in = !rhs.IsVar() || bound.count(rhs.var) > 0;
      if (lhs_in && rhs_in) {
        const Term l = lhs.IsVar() ? Term::Var(local_of[lhs.var]) : lhs;
        const Term r = rhs.IsVar() ? Term::Var(local_of[rhs.var]) : rhs;
        sub.AddInequality(l, r);
      }
    }
    sub.Validate();

    const MpcRunResult bag_run =
        RunHyperCubeUniform(sub, input, num_servers, seed + b);
    bag_instance.InsertAll(bag_run.output);
    for (const RoundStats& r : bag_run.stats.rounds) {
      result.stats.rounds.push_back(r);
    }
  }

  // Phase 2: Yannakakis over the bag relations. The bag query's body is
  // one atom per bag; its hypergraph has the decomposition tree as a join
  // tree, hence it is acyclic.
  ConjunctiveQuery bag_query;
  std::vector<VarId> global_to_local(query.NumVars(),
                                     static_cast<VarId>(-1));
  auto local_var = [&](VarId v) {
    if (global_to_local[v] == static_cast<VarId>(-1)) {
      global_to_local[v] = bag_query.VarIdOf(query.VarName(v));
    }
    return global_to_local[v];
  };
  for (std::size_t b = 0; b < td.bags.size(); ++b) {
    std::vector<Term> terms;
    terms.reserve(bag_cols[b].size());
    for (VarId v : bag_cols[b]) terms.push_back(Term::Var(local_var(v)));
    bag_query.AddBodyAtom(Atom(bag_rel[b], std::move(terms)));
  }
  {
    Atom head = query.head();
    for (Term& t : head.terms) {
      if (t.IsVar()) t = Term::Var(local_var(t.var));
    }
    bag_query.SetHead(std::move(head));
  }
  for (const auto& [lhs, rhs] : query.inequalities()) {
    const Term l = lhs.IsVar() ? Term::Var(local_var(lhs.var)) : lhs;
    const Term r = rhs.IsVar() ? Term::Var(local_var(rhs.var)) : rhs;
    bag_query.AddInequality(l, r);
  }
  bag_query.Validate();

  // The decomposition tree *is* a join tree for the bag query (bag i's
  // atom corresponds to decomposition bag i), so hand it to the semijoin
  // phase directly instead of re-deriving one: the bound-variable
  // hypergraph can look cyclic even when the decomposition is valid.
  JoinTree bag_tree;
  bag_tree.acyclic = true;
  bag_tree.parent = td.parent;
  {
    // Leaves-first order via Kahn's algorithm on the parent pointers.
    std::vector<std::size_t> children(td.bags.size(), 0);
    for (std::ptrdiff_t p : td.parent) {
      if (p != TreeDecomposition::kRoot) ++children[static_cast<std::size_t>(p)];
    }
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < td.bags.size(); ++i) {
      if (children[i] == 0) frontier.push_back(i);
    }
    while (!frontier.empty()) {
      const std::size_t bag = frontier.back();
      frontier.pop_back();
      bag_tree.removal_order.push_back(bag);
      const std::ptrdiff_t p = td.parent[bag];
      if (p != TreeDecomposition::kRoot &&
          --children[static_cast<std::size_t>(p)] == 0) {
        frontier.push_back(static_cast<std::size_t>(p));
      }
    }
    LAMP_CHECK(bag_tree.removal_order.size() == td.bags.size());
  }
  // Every tree edge must share a bound variable for the distributed
  // semijoin (and the subsequent cascade) to have a repartition key.
  for (std::size_t i = 0; i < td.bags.size(); ++i) {
    if (td.parent[i] == TreeDecomposition::kRoot) continue;
    const auto& a = bag_cols[i];
    const auto& b = bag_cols[static_cast<std::size_t>(td.parent[i])];
    bool shared = false;
    for (VarId v : a) {
      if (std::find(b.begin(), b.end(), v) != b.end()) shared = true;
    }
    LAMP_CHECK_MSG(shared,
                   "decomposition edge without shared bound variables");
  }

  MpcRunResult reduced = SemijoinReduce(bag_query, bag_tree, bag_instance,
                                        num_servers, seed + 101);
  for (RoundStats& r : reduced.stats.rounds) {
    result.stats.rounds.push_back(std::move(r));
  }
  MpcRunResult joined =
      CascadeJoin(schema, bag_query, reduced.output, num_servers, seed + 202);
  result.output = std::move(joined.output);
  for (RoundStats& r : joined.stats.rounds) {
    result.stats.rounds.push_back(std::move(r));
  }
  return result;
}

MpcRunResult GymEvaluate(Schema& schema, const ConjunctiveQuery& query,
                         const Instance& input, std::size_t num_servers,
                         std::uint64_t seed) {
  return GymEvaluate(schema, query, BuildTreeDecomposition(query), input,
                     num_servers, seed);
}

}  // namespace lamp
