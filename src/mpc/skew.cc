#include "mpc/skew.h"

#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "cq/eval.h"
#include "distribution/hypercube.h"
#include "distribution/policies.h"
#include "mpc/heavy_hitters.h"
#include "mpc/simulator.h"

namespace lamp {

namespace {

/// Structural description of a triangle query R(x,y), S(y,z), T(z,x).
struct TriangleShape {
  RelationId r, s, t;
  std::size_t r_y_pos, s_y_pos;  // Position of y in R and in S.
};

std::size_t VarPos(const Atom& atom, VarId v) {
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (atom.terms[i].IsVar() && atom.terms[i].var == v) return i;
  }
  LAMP_CHECK_MSG(false, "variable not in atom");
  return 0;
}

VarId SharedVar(const Atom& a, const Atom& b) {
  for (const Term& ta : a.terms) {
    if (!ta.IsVar()) continue;
    for (const Term& tb : b.terms) {
      if (tb.IsVar() && tb.var == ta.var) return ta.var;
    }
  }
  LAMP_CHECK_MSG(false, "atoms share no variable");
  return 0;
}

TriangleShape AnalyzeTriangle(const ConjunctiveQuery& q) {
  LAMP_CHECK_MSG(q.body().size() == 3, "triangle query needs 3 atoms");
  for (const Atom& atom : q.body()) {
    LAMP_CHECK_MSG(atom.terms.size() == 2, "triangle atoms must be binary");
    LAMP_CHECK(atom.terms[0].IsVar() && atom.terms[1].IsVar());
  }
  const Atom& ra = q.body()[0];
  const Atom& sa = q.body()[1];
  const Atom& ta = q.body()[2];
  LAMP_CHECK_MSG(ra.relation != sa.relation && sa.relation != ta.relation &&
                     ra.relation != ta.relation,
                 "triangle relations must be distinct");
  TriangleShape shape;
  shape.r = ra.relation;
  shape.s = sa.relation;
  shape.t = ta.relation;
  const VarId y = SharedVar(ra, sa);
  shape.r_y_pos = VarPos(ra, y);
  shape.s_y_pos = VarPos(sa, y);
  return shape;
}

}  // namespace

MpcRunResult SkewResilientTriangle(const ConjunctiveQuery& triangle,
                                   const Instance& input,
                                   std::size_t num_servers,
                                   std::uint64_t seed,
                                   std::size_t heavy_threshold) {
  const TriangleShape shape = AnalyzeTriangle(triangle);
  const std::size_t p = num_servers;

  const std::size_t m =
      std::max({input.FactsOf(shape.r).size(), input.FactsOf(shape.s).size(),
                input.FactsOf(shape.t).size()});
  if (heavy_threshold == 0) {
    heavy_threshold = static_cast<std::size_t>(
        static_cast<double>(m) /
        std::cbrt(static_cast<double>(std::max<std::size_t>(p, 1))));
    if (heavy_threshold == 0) heavy_threshold = 1;
  }

  const std::set<Value> heavy =
      JoinHeavyHitters(input, shape.r, shape.r_y_pos, shape.s, shape.s_y_pos,
                       heavy_threshold);

  auto y_of = [&shape](const Fact& f) -> Value {
    return f.relation == shape.r ? f.args[shape.r_y_pos]
                                 : f.args[shape.s_y_pos];
  };
  auto is_heavy_fact = [&](const Fact& f) {
    return (f.relation == shape.r || f.relation == shape.s) &&
           heavy.count(y_of(f)) > 0;
  };

  // Round 1: HyperCube over the light part; heavy R/S tuples stay put.
  const HypercubePolicy grid(triangle, UniformShares(triangle, p),
                             MakeUniverse(1), seed);
  MpcSimulator sim(p);
  sim.LoadInput(input);
  sim.RunRound(
      [&](NodeId source, const Fact& f) -> std::vector<NodeId> {
        if (is_heavy_fact(f)) return {source};
        std::vector<NodeId> targets = grid.ResponsibleNodes(f);
        if (f.relation == shape.t) {
          targets.push_back(source);  // T is needed again in round 2.
        }
        return targets;
      },
      [&](NodeId, const Instance& received) {
        return MpcSimulator::ComputeResult{received,
                                           Evaluate(triangle, received)};
      });

  // Round 2: residual sub-grids, one per heavy value.
  if (!heavy.empty()) {
    const std::vector<Value> heavy_list(heavy.begin(), heavy.end());
    const std::size_t h = heavy_list.size();
    const std::size_t p_b = std::max<std::size_t>(1, p / h);
    const auto g = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(std::sqrt(static_cast<double>(p_b)) + 1e-9)));

    auto grid_index = [&](std::size_t heavy_idx) -> std::size_t {
      return (heavy_idx * p_b) % p;  // Base server of the sub-grid.
    };
    auto cell = [&](std::size_t heavy_idx, std::uint64_t row,
                    std::uint64_t col) -> NodeId {
      return static_cast<NodeId>(
          (grid_index(heavy_idx) + (row % g) * g + (col % g)) % p);
    };
    auto heavy_index_of = [&](Value v) -> std::size_t {
      for (std::size_t i = 0; i < heavy_list.size(); ++i) {
        if (heavy_list[i] == v) return i;
      }
      return heavy_list.size();
    };

    sim.RunRound(
        [&](NodeId, const Fact& f) -> std::vector<NodeId> {
          std::vector<NodeId> targets;
          if ((f.relation == shape.r || f.relation == shape.s) &&
              heavy.count(y_of(f)) > 0) {
            const std::size_t idx = heavy_index_of(y_of(f));
            // The non-y value of the tuple picks the row (R) / column (S).
            const std::size_t other_pos =
                f.relation == shape.r ? 1 - shape.r_y_pos : 1 - shape.s_y_pos;
            const std::uint64_t hash_val =
                HashMix(static_cast<std::uint64_t>(f.args[other_pos].v) ^
                        HashMix(seed + 77));
            if (f.relation == shape.r) {
              for (std::size_t col = 0; col < g; ++col) {
                targets.push_back(cell(idx, hash_val, col));
              }
            } else {
              for (std::size_t row = 0; row < g; ++row) {
                targets.push_back(cell(idx, row, hash_val));
              }
            }
          } else if (f.relation == shape.t) {
            // T(z,x): one exact cell per sub-grid. Row is keyed by x (the
            // variable shared with R), column by z (shared with S).
            const Atom& t_atom = triangle.body()[2];
            const Atom& r_atom = triangle.body()[0];
            const VarId x = SharedVar(t_atom, r_atom);
            const std::size_t t_x_pos = VarPos(t_atom, x);
            const std::uint64_t row =
                HashMix(static_cast<std::uint64_t>(f.args[t_x_pos].v) ^
                        HashMix(seed + 77));
            const std::uint64_t col =
                HashMix(static_cast<std::uint64_t>(f.args[1 - t_x_pos].v) ^
                        HashMix(seed + 77));
            for (std::size_t idx = 0; idx < h; ++idx) {
              targets.push_back(cell(idx, row, col));
            }
          }
          return targets;
        },
        [&](NodeId, const Instance& received) {
          return MpcSimulator::ComputeResult{Instance(),
                                             Evaluate(triangle, received)};
        });
  }

  return {sim.output(), sim.stats()};
}

}  // namespace lamp
