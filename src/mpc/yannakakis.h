#ifndef LAMP_MPC_YANNAKAKIS_H_
#define LAMP_MPC_YANNAKAKIS_H_

#include <cstdint>

#include "cq/acyclic.h"
#include "cq/cq.h"
#include "mpc/join_strategies.h"
#include "relational/schema.h"

/// \file
/// Distributed Yannakakis evaluation for acyclic queries (Section 3.2: the
/// core of GYM, "Generalized Yannakakis in MapReduce").
///
/// Phase 1 (2(n-1) rounds): semi-join reduction along a join tree — an
/// upward sweep (parent := parent semijoin child) followed by a downward
/// sweep (child := child semijoin parent) eliminates all dangling tuples.
/// Phase 2 (n-1 rounds): a cascade of joins over the reduced relations; for
/// full acyclic queries the intermediate results never exceed the final
/// output size, which is the algorithm's point versus a plain cascade.
/// Each semijoin is one MPC round: both relations repartition on their
/// shared variables, every other relation stays put.

namespace lamp {

/// Runs Yannakakis on \p query (acyclic, no self-joins, no negation) and
/// returns output + per-round loads (semijoin rounds first, then the join
/// cascade's). \p schema is extended with synthetic intermediate relations.
MpcRunResult YannakakisMpc(Schema& schema, const ConjunctiveQuery& query,
                           const Instance& input, std::size_t num_servers,
                           std::uint64_t seed = 0);

/// The semi-join reduction alone: returns the reduced database (dangling
/// tuples removed) plus the loads of the 2(n-1) semijoin rounds.
MpcRunResult SemijoinReduce(const ConjunctiveQuery& query,
                            const JoinTree& tree, const Instance& input,
                            std::size_t num_servers, std::uint64_t seed = 0);

}  // namespace lamp

#endif  // LAMP_MPC_YANNAKAKIS_H_
