#include "fault/confluence.h"

#include <limits>

#include "common/hash.h"
#include "fault/scheduler.h"

namespace lamp::fault {

std::string_view FaultClassName(FaultClass fault_class) {
  switch (fault_class) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kDropRetransmit:
      return "drop+retransmit";
    case FaultClass::kDuplicate:
      return "duplicate";
    case FaultClass::kReorder:
      return "reorder";
    case FaultClass::kPartitionHeal:
      return "partition+heal";
    case FaultClass::kCrashVolatile:
      return "crash/restart (volatile)";
    case FaultClass::kCrashDurable:
      return "crash/restart (durable)";
  }
  return "unknown";
}

FaultPlan MakeClassPlan(FaultClass fault_class, std::size_t num_nodes,
                        Rng& rng) {
  switch (fault_class) {
    case FaultClass::kNone:
      return FaultPlan{};
    case FaultClass::kDropRetransmit:
      return DropStormPlan(rng.Uniform(4), 3 + rng.Uniform(6),
                           1 + rng.Uniform(3));
    case FaultClass::kDuplicate:
      return DuplicateStormPlan(rng.Uniform(4), 3 + rng.Uniform(6),
                                1 + rng.Uniform(3));
    case FaultClass::kReorder: {
      if (num_nodes > 1 && rng.Bernoulli(0.5)) {
        return StarvePlan(static_cast<NodeId>(rng.Uniform(num_nodes)));
      }
      return NewestFirstPlan();
    }
    case FaultClass::kPartitionHeal: {
      if (num_nodes < 2) return FaultPlan{};
      std::vector<NodeId> group;
      for (NodeId n = 0; n < num_nodes; ++n) {
        if (rng.Bernoulli(0.5)) group.push_back(n);
      }
      if (group.empty()) group.push_back(0);
      if (group.size() == num_nodes) group.pop_back();
      const std::size_t at = rng.Uniform(4);
      // Half the plans heal at a concrete step; the rest hold the cut
      // until both sides are quiescent (the scheduler forces the heal).
      const std::size_t heal =
          rng.Bernoulli(0.5) ? at + 4 + rng.Uniform(24)
                             : std::numeric_limits<std::size_t>::max();
      return PartitionHealPlan(std::move(group), at, heal);
    }
    case FaultClass::kCrashVolatile:
    case FaultClass::kCrashDurable: {
      const bool durable = fault_class == FaultClass::kCrashDurable;
      const NodeId victim = static_cast<NodeId>(rng.Uniform(num_nodes));
      const std::size_t at = rng.Uniform(8);
      FaultPlan plan =
          CrashRestartPlan(victim, at, at + 2 + rng.Uniform(12), durable);
      if (num_nodes > 1 && rng.Bernoulli(0.3)) {
        // Occasionally a second overlapping outage.
        const NodeId other =
            static_cast<NodeId>((victim + 1 + rng.Uniform(num_nodes - 1)) %
                                num_nodes);
        const std::size_t at2 = at + rng.Uniform(8);
        const FaultPlan second =
            CrashRestartPlan(other, at2, at2 + 2 + rng.Uniform(12), durable);
        plan.events.insert(plan.events.end(), second.events.begin(),
                           second.events.end());
        plan.Normalize();
      }
      return plan;
    }
  }
  return FaultPlan{};
}

FaultSweep CheckConsistencyUnderFaults(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, FaultClass fault_class, std::size_t num_seeds,
    const DistributionPolicy* policy, bool aware, const Schema* schema) {
  FaultSweep sweep;
  sweep.fault_class = fault_class;

  for (std::size_t d = 0; d < distributions.size(); ++d) {
    const std::vector<Instance>& locals = distributions[d];
    for (std::uint64_t seed = 0; seed < num_seeds; ++seed) {
      // A fresh plan per run, deterministic in (class, distribution,
      // seed) so failures replay exactly.
      Rng plan_rng(HashCombine(HashMix(static_cast<std::uint64_t>(
                                   fault_class) +
                               1),
                               HashCombine(d, seed)));
      FaultPlan plan = MakeClassPlan(fault_class, locals.size(), plan_rng);
      FaultScheduler scheduler(plan, seed);
      TransducerNetwork network(locals, program, policy, aware);
      const NetworkRunResult result = network.RunWith(scheduler);
      ++sweep.runs;
      sweep.total_transitions += result.transitions();
      sweep.total_facts_transferred += result.facts_transferred();
      sweep.total_drops += result.metrics.CounterValue(obs::kNetFaultDrops);
      sweep.total_duplicates +=
          result.metrics.CounterValue(obs::kNetFaultDuplicates);
      sweep.total_crashes +=
          result.metrics.CounterValue(obs::kNetFaultCrashes);
      sweep.total_retransmits +=
          result.metrics.CounterValue(obs::kNetFaultRetransmits);
      if (result.output == expected) {
        ++sweep.correct_runs;
      } else {
        sweep.all_runs_correct = false;
        if (!sweep.first_failure.has_value()) {
          FaultSweepFailure failure;
          failure.seed = seed;
          failure.distribution_index = d;
          failure.plan = std::move(plan);
          failure.diff = DiffInstances(result.output, expected, schema);
          sweep.first_failure = std::move(failure);
        }
      }
    }
  }
  return sweep;
}

const FaultSweep* ConfluenceReport::FindClass(FaultClass fault_class) const {
  for (const FaultSweep& sweep : by_class) {
    if (sweep.fault_class == fault_class) return &sweep;
  }
  return nullptr;
}

ConfluenceReport ClassifyConfluence(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, std::size_t num_seeds,
    const DistributionPolicy* policy, bool aware, const Schema* schema) {
  ConfluenceReport report;
  for (FaultClass fault_class : kAllFaultClasses) {
    FaultSweep sweep =
        CheckConsistencyUnderFaults(program, distributions, expected,
                                    fault_class, num_seeds, policy, aware,
                                    schema);
    if (!sweep.all_runs_correct) report.confluent = false;
    report.by_class.push_back(std::move(sweep));
  }
  return report;
}

}  // namespace lamp::fault
