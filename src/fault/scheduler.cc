#include "fault/scheduler.h"

#include "common/check.h"
#include "obs/trace.h"

namespace lamp::fault {

FaultScheduler::FaultScheduler(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed) {
  plan_.Normalize();
}

std::vector<NodeId> FaultScheduler::StartOrder(std::size_t num_nodes) {
  std::vector<NodeId> order(num_nodes);
  for (NodeId i = 0; i < num_nodes; ++i) order[i] = i;
  rng_.Shuffle(order);
  return order;
}

bool FaultScheduler::Blocked(NodeId from, NodeId to) const {
  if (!partition_active_) return false;
  return partition_group_.count(from) != partition_group_.count(to);
}

SchedulerAction FaultScheduler::ApplyEvent(const FaultEvent& event,
                                           std::size_t step) {
  switch (event.kind) {
    case FaultEvent::Kind::kDropNext:
      ++pending_drops_;
      return {};
    case FaultEvent::Kind::kDuplicateNext:
      ++pending_dups_;
      return {};
    case FaultEvent::Kind::kCrash:
      if (down_.count(event.node) != 0) return {};  // Already down.
      down_.insert(event.node);
      return SchedulerAction::Crash(event.node, event.durable);
    case FaultEvent::Kind::kRestart:
      if (down_.count(event.node) == 0) return {};  // Not down.
      down_.erase(event.node);
      return SchedulerAction::Restart(event.node);
    case FaultEvent::Kind::kPartition:
      partition_active_ = true;
      partition_group_.clear();
      partition_group_.insert(event.group.begin(), event.group.end());
      obs::Emit(obs::EventKind::kNetPartition,
                static_cast<std::uint32_t>(partition_group_.size()), 0, step);
      return {};
    case FaultEvent::Kind::kHeal:
      if (partition_active_) {
        partition_active_ = false;
        partition_group_.clear();
        obs::Emit(obs::EventKind::kNetHeal, 0, 0, step);
      }
      return {};
    case FaultEvent::Kind::kStallBegin:
      stalled_.insert(event.node);
      return {};
    case FaultEvent::Kind::kStallEnd:
      stalled_.erase(event.node);
      return {};
  }
  return {};
}

SchedulerAction FaultScheduler::Next(const ChannelView& view) {
  const std::size_t n = view.queued_from.size();

  while (true) {
    // Apply every plan event due at this step. Internal events are
    // absorbed; runner-visible ones (crash/restart) are returned.
    while (next_event_ < plan_.events.size() &&
           plan_.events[next_event_].step <= view.step) {
      const FaultEvent& event = plan_.events[next_event_++];
      const SchedulerAction action = ApplyEvent(event, view.step);
      if (action.kind != SchedulerAction::Kind::kNone) return action;
    }

    // Deliverable messages: receiver up + unstalled, edge not cut.
    std::vector<NodeId> ready;
    std::vector<std::vector<std::size_t>> indices(n);
    bool any_queued = false;
    for (NodeId to = 0; to < n; ++to) {
      if (!view.queued_from[to].empty()) any_queued = true;
      if (!view.node_up[to] || down_.count(to) != 0 ||
          stalled_.count(to) != 0) {
        continue;
      }
      for (std::size_t i = 0; i < view.queued_from[to].size(); ++i) {
        if (Blocked(view.queued_from[to][i], to)) continue;
        indices[to].push_back(i);
      }
      if (!indices[to].empty()) ready.push_back(to);
    }

    if (ready.empty()) {
      // Nothing deliverable. Fast-forward to the plan's next event; once
      // the plan is exhausted, force recovery so the run stays live.
      if (next_event_ < plan_.events.size()) {
        const FaultEvent& event = plan_.events[next_event_++];
        ++forced_recoveries_;
        const SchedulerAction action = ApplyEvent(event, view.step);
        if (action.kind != SchedulerAction::Kind::kNone) return action;
        continue;
      }
      if (partition_active_) {
        partition_active_ = false;
        partition_group_.clear();
        ++forced_recoveries_;
        obs::Emit(obs::EventKind::kNetHeal, 0, 0, view.step);
        continue;
      }
      if (!stalled_.empty()) {
        stalled_.clear();
        ++forced_recoveries_;
        continue;
      }
      if (!down_.empty()) {
        const NodeId node = *down_.begin();
        down_.erase(down_.begin());
        ++forced_recoveries_;
        return SchedulerAction::Restart(node);
      }
      LAMP_CHECK_MSG(!any_queued,
                     "fault scheduler stuck with undeliverable messages");
      return {};
    }

    // Starvation: serve the starved node only when it is the last option.
    if (plan_.discipline == DeliveryDiscipline::kStarve && ready.size() > 1) {
      std::vector<NodeId> others;
      for (NodeId node : ready) {
        if (node != plan_.starve_target) others.push_back(node);
      }
      if (!others.empty()) ready = std::move(others);
    }

    const NodeId node = ready[rng_.Uniform(ready.size())];
    const std::vector<std::size_t>& choices = indices[node];
    std::size_t pick = 0;
    switch (plan_.discipline) {
      case DeliveryDiscipline::kOldestFirst:
        pick = choices.front();
        break;
      case DeliveryDiscipline::kNewestFirst:
        pick = choices.back();
        break;
      default:
        pick = choices[rng_.Uniform(choices.size())];
        break;
    }

    if (pending_drops_ > 0) {
      --pending_drops_;
      return SchedulerAction::Drop(node, pick);
    }
    if (pending_dups_ > 0) {
      --pending_dups_;
      return SchedulerAction::Duplicate(node, pick);
    }
    return SchedulerAction::Deliver(node, pick);
  }
}

}  // namespace lamp::fault
