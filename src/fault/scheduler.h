#ifndef LAMP_FAULT_SCHEDULER_H_
#define LAMP_FAULT_SCHEDULER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "fault/plan.h"
#include "net/scheduler.h"

/// \file
/// The fault-injecting scheduler: executes a FaultPlan on top of a seeded
/// base schedule.
///
/// Liveness by construction: every run terminates with every message
/// delivered (possibly after drops, duplication, partitions and
/// crashes), because
///   * drops never discard the queued copy (loss-with-retransmission);
///   * duplication budgets are finite (one copy per kDuplicateNext);
///   * when no delivery is possible the scheduler *forces* progress —
///     it fast-forwards to the plan's next event, and once the plan is
///     exhausted it heals partitions, ends stalls and restarts crashed
///     nodes on its own.
/// So a FaultScheduler run is a legal asynchronous run in the paper's
/// model (finite delay, finite duplication, no true loss), which is
/// exactly the class of runs CALM quantifies over.

namespace lamp::fault {

class FaultScheduler : public Scheduler {
 public:
  /// \p seed drives the base schedule (heartbeat order + tie-breaking
  /// among deliverable messages). Runs are deterministic in (plan, seed).
  FaultScheduler(FaultPlan plan, std::uint64_t seed);

  std::vector<NodeId> StartOrder(std::size_t num_nodes) override;
  SchedulerAction Next(const ChannelView& view) override;
  bool WantsRedeliveryLog() const override {
    return plan_.HasVolatileCrash();
  }

  /// Faults forced outside their planned step to keep the run live
  /// (auto-heals, auto-restarts, auto-unstalls).
  std::size_t forced_recoveries() const { return forced_recoveries_; }

 private:
  /// Applies one plan event. Internal events (partition, heal, stall)
  /// mutate scheduler state and return kNone; crash/restart return the
  /// runner-visible action (or kNone when invalid, e.g. double crash).
  SchedulerAction ApplyEvent(const FaultEvent& event, std::size_t step);

  /// True when the partition blocks `from` -> `to` delivery.
  bool Blocked(NodeId from, NodeId to) const;

  FaultPlan plan_;
  Rng rng_;
  std::size_t next_event_ = 0;
  std::set<NodeId> down_;
  std::set<NodeId> stalled_;
  bool partition_active_ = false;
  std::set<NodeId> partition_group_;
  std::size_t pending_drops_ = 0;
  std::size_t pending_dups_ = 0;
  std::size_t forced_recoveries_ = 0;
};

}  // namespace lamp::fault

#endif  // LAMP_FAULT_SCHEDULER_H_
