#include "fault/plan.h"

#include <algorithm>
#include <limits>

namespace lamp::fault {

std::string_view DeliveryDisciplineName(DeliveryDiscipline discipline) {
  switch (discipline) {
    case DeliveryDiscipline::kUniform:
      return "uniform";
    case DeliveryDiscipline::kOldestFirst:
      return "oldest-first";
    case DeliveryDiscipline::kNewestFirst:
      return "newest-first";
    case DeliveryDiscipline::kStarve:
      return "starve";
  }
  return "unknown";
}

std::string_view FaultEventKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kDropNext:
      return "drop";
    case FaultEvent::Kind::kDuplicateNext:
      return "dup";
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRestart:
      return "restart";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kStallBegin:
      return "stall-begin";
    case FaultEvent::Kind::kStallEnd:
      return "stall-end";
  }
  return "unknown";
}

void FaultPlan::Normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.step < b.step;
                   });
}

bool FaultPlan::HasVolatileCrash() const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultEvent::Kind::kCrash && !e.durable) return true;
  }
  return false;
}

namespace {

std::string EventToString(const FaultEvent& e) {
  std::string out;
  out.reserve(48);
  out.append(FaultEventKindName(e.kind));
  switch (e.kind) {
    case FaultEvent::Kind::kCrash:
      out.append("(n");
      out.append(std::to_string(e.node));
      out.append(e.durable ? ",durable)" : ",volatile)");
      break;
    case FaultEvent::Kind::kRestart:
    case FaultEvent::Kind::kStallBegin:
    case FaultEvent::Kind::kStallEnd:
      out.append("(n");
      out.append(std::to_string(e.node));
      out.push_back(')');
      break;
    case FaultEvent::Kind::kPartition: {
      out.append("({");
      for (std::size_t i = 0; i < e.group.size(); ++i) {
        if (i > 0) out.push_back(',');
        out.append(std::to_string(e.group[i]));
      }
      out.append("})");
      break;
    }
    default:
      break;
  }
  if (e.step == std::numeric_limits<std::size_t>::max()) {
    out.append("@quiescence");
  } else {
    out.push_back('@');
    out.append(std::to_string(e.step));
  }
  return out;
}

}  // namespace

std::string FaultPlan::ToString() const {
  std::string out;
  out.reserve(64);
  out.append("discipline=");
  out.append(DeliveryDisciplineName(discipline));
  if (discipline == DeliveryDiscipline::kStarve) {
    out.append("(n");
    out.append(std::to_string(starve_target));
    out.push_back(')');
  }
  out.append(" events=[");
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out.append(EventToString(events[i]));
  }
  out.push_back(']');
  return out;
}

obs::JsonValue FaultPlan::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("discipline", DeliveryDisciplineName(discipline));
  if (discipline == DeliveryDiscipline::kStarve) {
    out.Set("starve_target", static_cast<std::size_t>(starve_target));
  }
  obs::JsonValue array = obs::JsonValue::Array();
  for (const FaultEvent& e : events) {
    obs::JsonValue je = obs::JsonValue::Object();
    je.Set("kind", FaultEventKindName(e.kind));
    je.Set("step", e.step);
    switch (e.kind) {
      case FaultEvent::Kind::kCrash:
        je.Set("node", static_cast<std::size_t>(e.node));
        je.Set("durable", e.durable);
        break;
      case FaultEvent::Kind::kRestart:
      case FaultEvent::Kind::kStallBegin:
      case FaultEvent::Kind::kStallEnd:
        je.Set("node", static_cast<std::size_t>(e.node));
        break;
      case FaultEvent::Kind::kPartition: {
        obs::JsonValue group = obs::JsonValue::Array();
        for (NodeId n : e.group) {
          group.PushBack(obs::JsonValue(static_cast<std::size_t>(n)));
        }
        je.Set("group", std::move(group));
        break;
      }
      default:
        break;
    }
    array.PushBack(std::move(je));
  }
  out.Set("events", std::move(array));
  return out;
}

FaultPlan DuplicateStormPlan(std::size_t first_step, std::size_t count,
                             std::size_t stride) {
  FaultPlan plan;
  for (std::size_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kDuplicateNext;
    e.step = first_step + i * stride;
    plan.events.push_back(e);
  }
  plan.Normalize();
  return plan;
}

FaultPlan DropStormPlan(std::size_t first_step, std::size_t count,
                        std::size_t stride) {
  FaultPlan plan;
  for (std::size_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kDropNext;
    e.step = first_step + i * stride;
    plan.events.push_back(e);
  }
  plan.Normalize();
  return plan;
}

FaultPlan CrashRestartPlan(NodeId node, std::size_t crash_step,
                           std::size_t restart_step, bool durable) {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.step = crash_step;
  crash.node = node;
  crash.durable = durable;
  FaultEvent restart;
  restart.kind = FaultEvent::Kind::kRestart;
  restart.step = restart_step;
  restart.node = node;
  plan.events = {crash, restart};
  plan.Normalize();
  return plan;
}

FaultPlan PartitionHealPlan(std::vector<NodeId> group, std::size_t at_step,
                            std::size_t heal_step) {
  FaultPlan plan;
  FaultEvent cut;
  cut.kind = FaultEvent::Kind::kPartition;
  cut.step = at_step;
  cut.group = std::move(group);
  FaultEvent heal;
  heal.kind = FaultEvent::Kind::kHeal;
  heal.step = heal_step;
  plan.events = {std::move(cut), heal};
  plan.Normalize();
  return plan;
}

FaultPlan StallPlan(NodeId node, std::size_t from_step, std::size_t to_step) {
  FaultPlan plan;
  FaultEvent begin;
  begin.kind = FaultEvent::Kind::kStallBegin;
  begin.step = from_step;
  begin.node = node;
  FaultEvent end;
  end.kind = FaultEvent::Kind::kStallEnd;
  end.step = to_step;
  end.node = node;
  plan.events = {begin, end};
  plan.Normalize();
  return plan;
}

FaultPlan StarvePlan(NodeId target) {
  FaultPlan plan;
  plan.discipline = DeliveryDiscipline::kStarve;
  plan.starve_target = target;
  return plan;
}

FaultPlan NewestFirstPlan() {
  FaultPlan plan;
  plan.discipline = DeliveryDiscipline::kNewestFirst;
  return plan;
}

FaultPlan RandomFaultPlan(std::size_t num_nodes, Rng& rng) {
  FaultPlan plan;
  switch (rng.Uniform(4)) {
    case 0:
      plan.discipline = DeliveryDiscipline::kOldestFirst;
      break;
    case 1:
      plan.discipline = DeliveryDiscipline::kNewestFirst;
      break;
    case 2:
      plan.discipline = DeliveryDiscipline::kStarve;
      plan.starve_target = static_cast<NodeId>(rng.Uniform(num_nodes));
      break;
    default:
      break;  // Uniform.
  }

  const std::size_t drops = rng.Uniform(4);
  for (std::size_t i = 0; i < drops; ++i) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kDropNext;
    e.step = rng.Uniform(24);
    plan.events.push_back(e);
  }
  const std::size_t dups = rng.Uniform(4);
  for (std::size_t i = 0; i < dups; ++i) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kDuplicateNext;
    e.step = rng.Uniform(24);
    plan.events.push_back(e);
  }
  if (num_nodes > 1 && rng.Bernoulli(0.5)) {
    const NodeId victim = static_cast<NodeId>(rng.Uniform(num_nodes));
    const std::size_t at = rng.Uniform(12);
    const FaultPlan crash = CrashRestartPlan(victim, at,
                                             at + 2 + rng.Uniform(10),
                                             rng.Bernoulli(0.5));
    plan.events.insert(plan.events.end(), crash.events.begin(),
                       crash.events.end());
  }
  if (num_nodes > 1 && rng.Bernoulli(0.4)) {
    std::vector<NodeId> group;
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (rng.Bernoulli(0.5)) group.push_back(n);
    }
    if (!group.empty() && group.size() < num_nodes) {
      const std::size_t at = rng.Uniform(8);
      const FaultPlan cut =
          PartitionHealPlan(std::move(group), at, at + 4 + rng.Uniform(24));
      plan.events.insert(plan.events.end(), cut.events.begin(),
                         cut.events.end());
    }
  }
  plan.Normalize();
  return plan;
}

}  // namespace lamp::fault
