#include "fault/explorer.h"

#include <limits>
#include <utility>

#include "fault/scheduler.h"
#include "obs/trace.h"

namespace lamp::fault {

namespace {

/// One named strategy: a plan to try across seeds.
struct Strategy {
  std::string name;
  FaultPlan plan;
};

/// The battery for an n-node network, in hunt order: cheap pure-schedule
/// adversaries first, then fault storms, then randomized mixes.
std::vector<Strategy> StrategyBattery(std::size_t num_nodes,
                                      const ExplorerOptions& options) {
  std::vector<Strategy> battery;
  battery.push_back({"uniform", FaultPlan{}});
  battery.push_back({"newest-first", NewestFirstPlan()});
  for (NodeId node = 0; node < num_nodes; ++node) {
    battery.push_back(
        {"starve-node-" + std::to_string(node), StarvePlan(node)});
  }
  if (num_nodes >= 2) {
    std::vector<NodeId> half;
    for (NodeId node = 0; node < num_nodes / 2 + num_nodes % 2; ++node) {
      half.push_back(node);
    }
    battery.push_back({"partition-until-quiescence-then-heal",
                       PartitionHealPlan(std::move(half), 0,
                                         std::numeric_limits<
                                             std::size_t>::max())});
  }
  battery.push_back({"duplicate-storm", DuplicateStormPlan(0, 12)});
  battery.push_back({"drop-storm", DropStormPlan(0, 12)});
  for (NodeId node = 0; node < num_nodes; ++node) {
    battery.push_back({"crash-volatile-" + std::to_string(node),
                       CrashRestartPlan(node, 2, 8, /*durable=*/false)});
    battery.push_back({"crash-durable-" + std::to_string(node),
                       CrashRestartPlan(node, 2, 8, /*durable=*/true)});
  }
  Rng rng(options.random_plan_seed);
  for (std::size_t i = 0; i < options.random_plans; ++i) {
    battery.push_back({"random-mix-" + std::to_string(i),
                       RandomFaultPlan(num_nodes, rng)});
  }
  return battery;
}

Instance RunPlan(TransducerProgram& program,
                 const std::vector<Instance>& locals, const FaultPlan& plan,
                 std::uint64_t seed, const DistributionPolicy* policy,
                 bool aware) {
  FaultScheduler scheduler(plan, seed);
  TransducerNetwork network(locals, program, policy, aware);
  return network.RunWith(scheduler).output;
}

obs::JsonValue CaptureTrace(TransducerProgram& program,
                            const std::vector<Instance>& locals,
                            const FaultPlan& plan, std::uint64_t seed,
                            const DistributionPolicy* policy, bool aware) {
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(tracer);
    (void)RunPlan(program, locals, plan, seed, policy, aware);
  }
  return obs::TraceToJson(tracer);
}

}  // namespace

bool PlanDiverges(TransducerProgram& program,
                  const std::vector<Instance>& locals,
                  const Instance& expected, const FaultPlan& plan,
                  std::uint64_t seed, const DistributionPolicy* policy,
                  bool aware) {
  return !(RunPlan(program, locals, plan, seed, policy, aware) == expected);
}

FaultPlan MinimizeWitness(TransducerProgram& program,
                          const std::vector<Instance>& locals,
                          const Instance& expected, FaultPlan plan,
                          std::uint64_t seed,
                          const DistributionPolicy* policy, bool aware,
                          std::size_t* runs) {
  auto diverges = [&](const FaultPlan& candidate) {
    if (runs != nullptr) ++*runs;
    return PlanDiverges(program, locals, expected, candidate, seed, policy,
                        aware);
  };

  // Greedy event removal to a fixed point. Removing from the back first
  // keeps earlier steps' semantics stable while the list shrinks.
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = plan.events.size(); i-- > 0;) {
      FaultPlan candidate = plan;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (diverges(candidate)) {
        plan = std::move(candidate);
        shrunk = true;
      }
    }
  }
  // Then try to simplify the discipline back to the uniform base.
  if (plan.discipline != DeliveryDiscipline::kUniform) {
    FaultPlan candidate = plan;
    candidate.discipline = DeliveryDiscipline::kUniform;
    candidate.starve_target = 0;
    if (diverges(candidate)) plan = std::move(candidate);
  }
  return plan;
}

ExplorerResult ExploreSchedules(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, const ExplorerOptions& options,
    const DistributionPolicy* policy, bool aware, const Schema* schema) {
  ExplorerResult result;

  for (std::size_t d = 0; d < distributions.size(); ++d) {
    const std::vector<Instance>& locals = distributions[d];
    const std::vector<Strategy> battery =
        StrategyBattery(locals.size(), options);
    if (d == 0) result.strategies_tried = battery.size();

    for (const Strategy& strategy : battery) {
      for (std::uint64_t seed = 0; seed < options.seeds_per_strategy;
           ++seed) {
        ++result.runs;
        const Instance actual =
            RunPlan(program, locals, strategy.plan, seed, policy, aware);
        if (actual == expected) continue;

        // Divergence: build the witness.
        result.divergence_found = true;
        DivergenceWitness& witness = result.witness;
        witness.strategy = strategy.name;
        witness.seed = seed;
        witness.distribution_index = d;
        witness.plan = strategy.plan;
        if (options.minimize) {
          witness.plan =
              MinimizeWitness(program, locals, expected, witness.plan, seed,
                              policy, aware, &result.runs);
        }
        witness.diff = DiffInstances(
            RunPlan(program, locals, witness.plan, seed, policy, aware),
            expected, schema);
        ++result.runs;

        if (options.capture_traces) {
          witness.divergent_trace = CaptureTrace(
              program, locals, witness.plan, seed, policy, aware);
          ++result.runs;
          // Reference: the first fault-free seed that computes Q(I).
          const FaultPlan clean;
          for (std::uint64_t ref = 0; ref < options.max_reference_seeds;
               ++ref) {
            ++result.runs;
            if (RunPlan(program, locals, clean, ref, policy, aware) ==
                expected) {
              witness.has_reference = true;
              witness.reference_seed = ref;
              witness.reference_trace = CaptureTrace(
                  program, locals, clean, ref, policy, aware);
              ++result.runs;
              break;
            }
          }
        }
        return result;
      }
    }
  }
  return result;
}

}  // namespace lamp::fault
