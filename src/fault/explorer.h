#ifndef LAMP_FAULT_EXPLORER_H_
#define LAMP_FAULT_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "net/consistency.h"
#include "obs/json.h"

/// \file
/// Adversarial schedule exploration.
///
/// A seed sweep samples uniform schedules; real divergence often hides in
/// the corners — one channel starved to the end, a partition held until
/// both sides are quiescent, a duplicated barrier message. The explorer
/// runs a battery of named adversarial strategies (plus randomized mixed
/// plans) against the expected output, and when it finds a run whose
/// final output differs it delta-debugs the fault plan down to a minimal
/// counterexample and captures a pair of lamp.trace.v1 recordings — the
/// divergent run and a fault-free reference — for
/// `trace_dump --diff` to render.

namespace lamp::fault {

struct ExplorerOptions {
  std::size_t seeds_per_strategy = 4;  // Scheduler seeds tried per plan.
  std::size_t random_plans = 6;        // Extra randomized mixed plans.
  std::uint64_t random_plan_seed = 0xfau;  // Generator seed for those.
  bool minimize = true;                // Delta-debug the witness plan.
  bool capture_traces = true;          // Record witness + reference traces.
  std::size_t max_reference_seeds = 16;  // Seeds tried for the reference.
};

/// A minimized divergence counterexample.
struct DivergenceWitness {
  std::string strategy;            // Name of the strategy that found it.
  FaultPlan plan;                  // Minimized when options.minimize.
  std::uint64_t seed = 0;          // Scheduler seed of the divergent run.
  std::size_t distribution_index = 0;
  InstanceDiff diff;               // Divergent output vs expected.
  bool has_reference = false;
  std::uint64_t reference_seed = 0;
  obs::JsonValue divergent_trace;  // lamp.trace.v1 of the witness replay.
  obs::JsonValue reference_trace;  // lamp.trace.v1 of a correct clean run.
};

struct ExplorerResult {
  std::size_t strategies_tried = 0;
  std::size_t runs = 0;            // Network runs, minimization included.
  bool divergence_found = false;
  DivergenceWitness witness;       // Valid when divergence_found.
};

/// Replays (plan, seed) on one distribution and reports whether the final
/// output differs from \p expected. The explorer's probe, exposed for
/// regression tests that pin a witness.
bool PlanDiverges(TransducerProgram& program,
                  const std::vector<Instance>& locals,
                  const Instance& expected, const FaultPlan& plan,
                  std::uint64_t seed,
                  const DistributionPolicy* policy = nullptr,
                  bool aware = true);

/// Greedy delta-debugging: repeatedly drops plan events (and finally the
/// delivery discipline) while the run still diverges. The result is
/// 1-minimal: removing any single remaining element restores the
/// expected output. \p runs, when given, accumulates the replay count.
FaultPlan MinimizeWitness(TransducerProgram& program,
                          const std::vector<Instance>& locals,
                          const Instance& expected, FaultPlan plan,
                          std::uint64_t seed,
                          const DistributionPolicy* policy = nullptr,
                          bool aware = true, std::size_t* runs = nullptr);

/// Hunts for a divergent final output across the strategy battery. Stops
/// at the first divergence found (strategies are ordered, so results are
/// deterministic); returns the minimized witness with its trace pair.
ExplorerResult ExploreSchedules(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, const ExplorerOptions& options = {},
    const DistributionPolicy* policy = nullptr, bool aware = true,
    const Schema* schema = nullptr);

}  // namespace lamp::fault

#endif  // LAMP_FAULT_EXPLORER_H_
