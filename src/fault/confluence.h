#ifndef LAMP_FAULT_CONFLUENCE_H_
#define LAMP_FAULT_CONFLUENCE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "fault/plan.h"
#include "net/consistency.h"

/// \file
/// The confluence classifier: CheckEventualConsistency extended from
/// "many seeds" to "many seeds x fault classes".
///
/// The CALM theorem (Section 5, F0 = A0 = M) claims monotone programs
/// compute their query on *every* asynchronous run — including runs with
/// duplication and loss-with-retransmission — while non-monotone programs
/// diverge on some run. CheckEventualConsistency samples only the
/// fault-free side; the classifier here samples every fault class the
/// runtime can inject, so the dividing line becomes a regression-tested
/// artifact: monotone example programs must stay correct under every
/// class, and the explorer (fault/explorer.h) hunts the divergence
/// witnesses for the rest.

namespace lamp::fault {

/// The injectable fault classes.
enum class FaultClass : std::uint8_t {
  kNone = 0,        // Plain seeded runs (the CheckEventualConsistency base).
  kDropRetransmit,  // Failed delivery attempts; senders retransmit.
  kDuplicate,       // Duplicate copies of in-flight messages.
  kReorder,         // Adversarial delay: LIFO channels / starved receivers.
  kPartitionHeal,   // Network partition with a later heal point.
  kCrashVolatile,   // Node crashes losing state; channel redelivers.
  kCrashDurable,    // Node crashes keeping state.
};

inline constexpr std::array<FaultClass, 7> kAllFaultClasses = {
    FaultClass::kNone,          FaultClass::kDropRetransmit,
    FaultClass::kDuplicate,     FaultClass::kReorder,
    FaultClass::kPartitionHeal, FaultClass::kCrashVolatile,
    FaultClass::kCrashDurable,
};

std::string_view FaultClassName(FaultClass fault_class);

/// A randomized plan of the given class for an n-node network.
/// Deterministic in (fault_class, num_nodes, rng state).
FaultPlan MakeClassPlan(FaultClass fault_class, std::size_t num_nodes,
                        Rng& rng);

/// First failing run of a fault sweep, with the plan that broke it.
struct FaultSweepFailure {
  std::uint64_t seed = 0;
  std::size_t distribution_index = 0;
  FaultPlan plan;
  InstanceDiff diff;
};

/// Aggregate of one fault class's sweep.
struct FaultSweep {
  FaultClass fault_class = FaultClass::kNone;
  bool all_runs_correct = true;
  std::size_t runs = 0;
  std::size_t correct_runs = 0;
  std::uint64_t total_transitions = 0;
  std::uint64_t total_facts_transferred = 0;
  std::uint64_t total_drops = 0;
  std::uint64_t total_duplicates = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t total_retransmits = 0;
  std::optional<FaultSweepFailure> first_failure;

  double MeanTransitions() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(total_transitions) /
                           static_cast<double>(runs);
  }
  double MeanFactsTransferred() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(total_facts_transferred) /
                           static_cast<double>(runs);
  }
};

/// Runs \p program under \p fault_class: every distribution x every seed
/// in [0, num_seeds), each with a fresh randomized plan of that class,
/// comparing each run's output to \p expected.
FaultSweep CheckConsistencyUnderFaults(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, FaultClass fault_class, std::size_t num_seeds,
    const DistributionPolicy* policy = nullptr, bool aware = true,
    const Schema* schema = nullptr);

/// Verdict over every fault class.
struct ConfluenceReport {
  bool confluent = true;  // Correct under every class (incl. fault-free).
  std::vector<FaultSweep> by_class;

  const FaultSweep* FindClass(FaultClass fault_class) const;
};

/// The full classifier: one FaultSweep per entry of kAllFaultClasses.
/// A monotone (F0) program should come back confluent; for a
/// non-monotone one the report pinpoints the first class that broke it.
ConfluenceReport ClassifyConfluence(
    TransducerProgram& program,
    const std::vector<std::vector<Instance>>& distributions,
    const Instance& expected, std::size_t num_seeds,
    const DistributionPolicy* policy = nullptr, bool aware = true,
    const Schema* schema = nullptr);

}  // namespace lamp::fault

#endif  // LAMP_FAULT_CONFLUENCE_H_
