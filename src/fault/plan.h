#ifndef LAMP_FAULT_PLAN_H_
#define LAMP_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "distribution/policy.h"
#include "obs/json.h"

/// \file
/// Declarative fault plans for transducer-network runs.
///
/// The paper's CALM results (Section 5) quantify over *all* asynchronous
/// runs: arbitrary delay, duplication, and loss with retransmission. A
/// FaultPlan makes one adversarial run describable as data: a delivery
/// discipline (how the in-flight message to deliver next is chosen) plus
/// a list of discrete fault events keyed by the scheduler's step counter.
/// Plans are deterministic given (plan, scheduler seed), serialise to
/// JSON for witness reports, and — being plain event lists — are the unit
/// the explorer's delta-debugger shrinks when it minimises a divergence
/// witness (fault/explorer.h).

namespace lamp::fault {

/// How the scheduler picks among deliverable messages.
enum class DeliveryDiscipline : std::uint8_t {
  kUniform = 0,   // Uniform random channel + message (the seed runner).
  kOldestFirst,   // Random channel, FIFO within it.
  kNewestFirst,   // Random channel, LIFO within it (starves old messages).
  kStarve,        // Deliver to starve_target only when nothing else can go.
};

std::string_view DeliveryDisciplineName(DeliveryDiscipline discipline);

/// One discrete fault, applied when the scheduler's step counter reaches
/// `step` (or earlier, if the run would otherwise be stuck — heals and
/// restarts are also forced when no delivery is possible, so every plan
/// is live).
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kDropNext,       // The next delivery attempt fails (sender retransmits).
    kDuplicateNext,  // The next delivery leaves a duplicate copy in flight.
    kCrash,          // `node` goes down; `durable` keeps its state.
    kRestart,        // `node` comes back up (see net/network.h semantics).
    kPartition,      // `group` is isolated from the rest of the network.
    kHeal,           // The active partition is removed.
    kStallBegin,     // `node` stops being scheduled (but stays up).
    kStallEnd,       // `node` is schedulable again.
  };

  Kind kind = Kind::kDropNext;
  std::size_t step = 0;
  NodeId node = 0;            // Crash/restart/stall target.
  bool durable = false;       // Crash mode.
  std::vector<NodeId> group;  // Partition: the isolated group.
};

std::string_view FaultEventKindName(FaultEvent::Kind kind);

/// A complete adversarial schedule description.
struct FaultPlan {
  DeliveryDiscipline discipline = DeliveryDiscipline::kUniform;
  NodeId starve_target = 0;       // Used by DeliveryDiscipline::kStarve.
  std::vector<FaultEvent> events; // Kept sorted by step (stable).

  /// Stable-sorts events by step (generators and the minimizer call it).
  void Normalize();

  bool Empty() const {
    return discipline == DeliveryDiscipline::kUniform && events.empty();
  }

  /// True when some event is a volatile (non-durable) crash — those runs
  /// need the runner's redelivery log.
  bool HasVolatileCrash() const;

  /// "discipline=newest-first events=[dup@3 crash(n2,volatile)@5 ...]".
  std::string ToString() const;

  /// {"discipline": .., "starve_target": .., "events": [...]}.
  obs::JsonValue ToJson() const;
};

// --- Plan generators (all deterministic in their arguments). ------------

/// `count` duplications, the first at `first_step`, `stride` steps apart.
FaultPlan DuplicateStormPlan(std::size_t first_step, std::size_t count,
                             std::size_t stride = 1);

/// `count` failed delivery attempts (each retransmitted), spaced likewise.
FaultPlan DropStormPlan(std::size_t first_step, std::size_t count,
                        std::size_t stride = 1);

/// Crash `node` at `crash_step`, restart it at `restart_step`.
FaultPlan CrashRestartPlan(NodeId node, std::size_t crash_step,
                           std::size_t restart_step, bool durable);

/// Isolate `group` at `at_step`; heal at `heal_step`. Pass a huge
/// heal_step to heal only once both sides are quiescent (the scheduler
/// forces the heal when nothing else can be delivered).
FaultPlan PartitionHealPlan(std::vector<NodeId> group, std::size_t at_step,
                            std::size_t heal_step);

/// Stall `node` (scheduling starvation, no crash) for the given window.
FaultPlan StallPlan(NodeId node, std::size_t from_step, std::size_t to_step);

/// Starve one receiver: deliver to `target` only when forced.
FaultPlan StarvePlan(NodeId target);

/// LIFO delivery within every channel (adversarial bounded delay).
FaultPlan NewestFirstPlan();

/// A random mixed plan over an n-node network: a handful of drops,
/// duplications, a crash/restart pair, and sometimes a partition window.
FaultPlan RandomFaultPlan(std::size_t num_nodes, Rng& rng);

}  // namespace lamp::fault

#endif  // LAMP_FAULT_PLAN_H_
