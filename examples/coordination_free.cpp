// Scenario: declarative distributed computing (Section 5 of the paper).
//
// A cluster of nodes holds a partitioned graph and must answer queries
// under eventual consistency, without global synchronization barriers:
//
//   * triangles (monotone)      -> naive broadcast works (CALM theorem);
//   * open triangles (Mdistinct) -> naive broadcast produces wrong
//     answers on some schedules; the policy-aware strategy of Example 5.4
//     fixes it without coordination;
//   * complement of reachability (Mdisjoint) -> needs the per-component
//     strategy over a domain-guided partitioning (Theorem 5.12).

#include <cstdio>

#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "distribution/domain_guided.h"
#include "distribution/policies.h"
#include "net/consistency.h"
#include "net/programs.h"
#include "relational/generators.h"

int main() {
  using namespace lamp;

  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const ConjunctiveQuery triangle = ParseQuery(
      schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z");
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");

  Rng rng(3);
  Instance graph;
  AddRandomGraph(schema, e, 60, 15, rng, graph);
  AddTriangleClusters(schema, e, 3, 100, graph);

  const DomainGuidedPolicy policy =
      DomainGuidedPolicy::HashBased(4, MakeUniverse(1), 5);
  const std::vector<std::vector<Instance>> dist = {
      DistributeByPolicy(graph, policy)};

  auto wrap = [](const ConjunctiveQuery& q) -> NetQueryFunction {
    return [&q](const Instance& i) { return Evaluate(q, i); };
  };

  // -- Monotone: naive broadcast is consistent on every schedule -----------
  {
    MonotoneBroadcastProgram program(wrap(triangle));
    const ConsistencySweep sweep = CheckEventualConsistency(
        program, dist, Evaluate(triangle, graph), 10, nullptr, false);
    std::printf("triangles, naive broadcast:      %zu runs, %s\n",
                sweep.runs,
                sweep.all_runs_correct ? "all consistent" : "INCONSISTENT");
  }

  // -- Non-monotone: naive broadcast breaks --------------------------------
  {
    MonotoneBroadcastProgram program(wrap(open_triangle));
    const ConsistencySweep sweep = CheckEventualConsistency(
        program, dist, Evaluate(open_triangle, graph), 10, nullptr, false);
    std::printf("open triangles, naive broadcast: %zu runs, %s\n",
                sweep.runs,
                sweep.all_runs_correct ? "all consistent (unexpected!)"
                                       : "inconsistent, as the CALM theorem "
                                         "predicts");
  }

  // -- Mdistinct: policy-aware strategy (Example 5.4) ----------------------
  {
    PolicyAwareNegationProgram program(open_triangle);
    const ConsistencySweep sweep = CheckEventualConsistency(
        program, dist, Evaluate(open_triangle, graph), 10, &policy, false);
    std::printf("open triangles, policy-aware:    %zu runs, %s\n",
                sweep.runs,
                sweep.all_runs_correct ? "all consistent" : "INCONSISTENT");
  }

  // -- Mdisjoint: complement of reachability, per-component ----------------
  {
    Schema dl_schema;
    DatalogProgram prog =
        ParseProgram(dl_schema,
                     "TC(x,y) <- E(x,y)\n"
                     "TC(x,y) <- TC(x,z), TC(z,y)\n"
                     "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)");
    const RelationId out = dl_schema.IdOf("OUT");
    NetQueryFunction not_tc = [&dl_schema, &prog,
                               out](const Instance& edb) {
      const Instance everything = EvaluateProgram(dl_schema, prog, edb);
      Instance result;
      for (const Fact& f : everything.FactsOf(out)) result.Insert(f);
      return result;
    };

    Instance edb;
    const RelationId de = dl_schema.IdOf("E");
    // Three disconnected clusters.
    edb.Insert(Fact(de, {0, 1}));
    edb.Insert(Fact(de, {1, 2}));
    edb.Insert(Fact(de, {10, 11}));
    edb.Insert(Fact(de, {20, 21}));
    edb.Insert(Fact(de, {21, 20}));

    const DomainGuidedPolicy dl_policy =
        DomainGuidedPolicy::HashBased(3, MakeUniverse(1), 9);
    ComponentProgram program(not_tc, dl_schema);
    const ConsistencySweep sweep = CheckEventualConsistency(
        program, {DistributeByPolicy(edb, dl_policy)}, not_tc(edb), 10,
        &dl_policy, false);
    std::printf("not-reachable, per-component:    %zu runs, %s\n",
                sweep.runs,
                sweep.all_runs_correct ? "all consistent" : "INCONSISTENT");
  }

  std::printf(
      "\nReading: this reproduces the paper's Figure 2 hierarchy in action\n"
      "(M via broadcast, Mdistinct via policy awareness, Mdisjoint via\n"
      "domain-guided per-component evaluation).\n");
  return 0;
}
