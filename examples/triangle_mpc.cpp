// Scenario: triangle counting on skewed social-graph data (the workload
// class that motivates Sections 3.1-3.2 of the paper).
//
// Compares four evaluation strategies on the same data:
//   * one-round HyperCube (uniform shares),
//   * one-round HyperCube (LP-optimal shares),
//   * two-round cascade of binary joins (Example 3.1(2)),
//   * two-round skew-resilient algorithm (heavy hitters get sub-grids).
//
// Run on a skew-free and on a Zipf-skewed graph to see the crossover the
// paper describes: one-round HyperCube is great without skew, degrades
// with a heavy join value, and the two-round algorithm recovers.

#include <cstdio>

#include "cq/eval.h"
#include "cq/parser.h"
#include "mpc/cascade.h"
#include "mpc/hypercube_run.h"
#include "mpc/skew.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

Instance SkewFreeInput(Schema& schema, std::size_t m) {
  Rng rng(7);
  Instance db;
  AddRandomGraph(schema, schema.IdOf("R"), m, 8 * m, rng, db);
  AddRandomGraph(schema, schema.IdOf("S"), m, 8 * m, rng, db);
  AddRandomGraph(schema, schema.IdOf("T"), m, 8 * m, rng, db);
  // Plant a few guaranteed triangles so the output is nonempty.
  for (std::int64_t t = 0; t < 20; ++t) {
    const std::int64_t a = 9 * static_cast<std::int64_t>(m) + 3 * t;
    db.Insert(Fact(schema.IdOf("R"), {a, a + 1}));
    db.Insert(Fact(schema.IdOf("S"), {a + 1, a + 2}));
    db.Insert(Fact(schema.IdOf("T"), {a + 2, a}));
  }
  return db;
}

Instance SkewedInput(Schema& schema, std::size_t m) {
  Rng rng(8);
  Instance db;
  // Join value 0 is super-heavy in R's y column and S's y column.
  for (std::size_t i = 0; i < m / 2; ++i) {
    db.Insert(Fact(schema.IdOf("R"), {static_cast<std::int64_t>(i), 0}));
    db.Insert(Fact(schema.IdOf("S"), {0, static_cast<std::int64_t>(i)}));
  }
  AddUniformRelation(schema, schema.IdOf("R"), m / 2, 8 * m, rng, db);
  AddUniformRelation(schema, schema.IdOf("S"), m / 2, 8 * m, rng, db);
  AddUniformRelation(schema, schema.IdOf("T"), m, 8 * m, rng, db);
  return db;
}

void Report(const char* name, const MpcRunResult& run,
            const Instance& expected) {
  std::printf("  %-28s rounds=%zu max-load=%-7zu total-comm=%-8zu %s\n", name,
              run.stats.NumRounds(), run.stats.MaxLoad(),
              run.stats.TotalCommunication(),
              run.output == expected ? "correct" : "WRONG");
}

void RunAll(Schema& schema, const ConjunctiveQuery& triangle,
            const Instance& db, std::size_t p) {
  const Instance expected = Evaluate(triangle, db);
  std::printf("  m per relation ~%zu, p=%zu, %zu triangles\n",
              db.FactsOf(schema.IdOf("R")).size(), p, expected.Size());
  Report("hypercube (uniform)", RunHyperCubeUniform(triangle, db, p),
         expected);
  Report("hypercube (LP shares)", RunHyperCubeLpShares(triangle, db, p),
         expected);
  Schema cascade_schema = schema;
  Report("cascade (2 binary joins)",
         CascadeJoin(cascade_schema, triangle, db, p), expected);
  Report("skew-resilient (2 rounds)", SkewResilientTriangle(triangle, db, p),
         expected);
}

}  // namespace

int main() {
  using namespace lamp;
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");

  const std::size_t m = 8000;
  const std::size_t p = 64;

  std::printf("== skew-free input ==\n");
  RunAll(schema, triangle, SkewFreeInput(schema, m), p);

  std::printf("== skewed input (one heavy join value) ==\n");
  RunAll(schema, triangle, SkewedInput(schema, m), p);

  std::printf(
      "\nReading: without skew the one-round HyperCube max load tracks\n"
      "3m/p^(2/3); with a heavy join value it degrades while the two-round\n"
      "skew-resilient algorithm stays near the skew-free level\n"
      "(Section 3.2 of the paper).\n");
  return 0;
}
