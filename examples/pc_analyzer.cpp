// Scenario: a partitioning analyzer for a multi-query workload
// (Section 4.2's motivation: "an optimizer tries to automatically
// partition the base data across multiple nodes to achieve overall
// optimal performance for a specific workload" without reshuffling
// between queries).
//
// Usage:
//   pc_analyzer                       # analyze the built-in demo workload
//   pc_analyzer 'H(x) <- R(x,y)' 'G(y) <- R(x,y), S(y)'   # your queries
//
// For every query pair the tool reports parallel-correctness transfer and
// containment; it then picks an "anchor" query, builds its HyperCube
// distribution, and verifies which other queries can reuse that
// distribution without reshuffling.

#include <cstdio>
#include <string>
#include <vector>

#include "cq/containment.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "distribution/parallel_correctness.h"
#include "distribution/policies.h"
#include "distribution/transfer.h"

int main(int argc, char** argv) {
  using namespace lamp;

  std::vector<std::string> texts;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) texts.emplace_back(argv[i]);
  } else {
    // All four share the head relation H so containment is meaningful.
    texts = {
        "H() <- S(x), R(x,x), T(x)",
        "H() <- R(x,x), T(x)",
        "H() <- S(x), R(x,y), T(y)",
        "H() <- R(x,y), T(y)",
    };
    std::printf("(no queries given; analyzing the paper's Example 4.11 "
                "workload)\n\n");
  }

  Schema schema;
  std::vector<ConjunctiveQuery> queries;
  for (const std::string& text : texts) {
    queries.push_back(ParseQuery(schema, text));
    std::printf("Q%zu: %s\n", queries.size(),
                queries.back().ToString(schema).c_str());
  }
  const std::size_t n = queries.size();

  std::printf("\nparallel-correctness transfer (row ->pc column):\n     ");
  for (std::size_t j = 0; j < n; ++j) std::printf("  Q%zu ", j + 1);
  std::printf("\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  Q%zu ", i + 1);
    for (std::size_t j = 0; j < n; ++j) {
      std::printf("  %s ", ParallelCorrectnessTransfersTo(queries[i],
                                                          queries[j])
                               ? "yes"
                               : " . ");
    }
    std::printf("\n");
  }

  std::printf("\ncontainment (row subseteq column):\n     ");
  for (std::size_t j = 0; j < n; ++j) std::printf("  Q%zu ", j + 1);
  std::printf("\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  Q%zu ", i + 1);
    for (std::size_t j = 0; j < n; ++j) {
      const bool defined =
          queries[i].negated().empty() && queries[j].negated().empty();
      std::printf("  %s ",
                  defined && IsContainedIn(queries[i], queries[j]) ? "yes"
                                                                   : " . ");
    }
    std::printf("\n");
  }

  // Pick the query that transfers to the most others as the anchor whose
  // distribution the workload keeps.
  std::size_t best = 0;
  std::size_t best_coverage = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t coverage = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (ParallelCorrectnessTransfersTo(queries[i], queries[j])) ++coverage;
    }
    if (coverage > best_coverage) {
      best_coverage = coverage;
      best = i;
    }
  }
  std::printf(
      "\nanchor: Q%zu (its distributions serve %zu/%zu workload queries "
      "without reshuffling)\n",
      best + 1, best_coverage, n);

  // Sanity check with a concrete HyperCube distribution for the anchor.
  if (queries[best].NumVars() > 0) {
    const HypercubePolicy grid(queries[best],
                               UniformShares(queries[best], 8),
                               MakeUniverse(2));
    std::printf("hypercube(8) for the anchor is parallel-correct for:");
    for (std::size_t j = 0; j < n; ++j) {
      if (IsParallelCorrect(queries[j], grid)) std::printf(" Q%zu", j + 1);
    }
    std::printf("\n");
  }
  return 0;
}
