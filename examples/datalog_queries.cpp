// Scenario: the Datalog side of the paper (Section 5.3) — recursive
// queries, stratified negation, structural analysis (semi-positive /
// connected / semi-connected) and the well-founded semantics for win-move.

#include <cstdio>

#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/wellfounded.h"
#include "relational/generators.h"

int main() {
  using namespace lamp;

  // -- Transitive closure and its complement (Example 5.13, program 1) -----
  {
    Schema schema;
    DatalogProgram program =
        ParseProgram(schema,
                     "# complement of reachability\n"
                     "TC(x,y) <- E(x,y)\n"
                     "TC(x,y) <- TC(x,z), TC(z,y)\n"
                     "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)");
    std::printf("program 1 (not-TC):\n");
    std::printf("  stratifies: %s\n",
                program.Stratify().has_value() ? "yes" : "no");
    std::printf("  semi-positive: %s\n",
                program.IsSemiPositive() ? "yes" : "no");
    std::printf("  semi-connected: %s (disconnected rule is in the last "
                "stratum)\n",
                program.IsSemiConnected() ? "yes" : "no");

    Instance edb;
    AddPathGraph(schema, schema.IdOf("E"), 8, edb);
    DatalogStats stats;
    const Instance result = EvaluateProgram(schema, program, edb, &stats);
    std::printf("  8-node path: |TC| = %zu, |OUT| = %zu "
                "(%zu semi-naive rounds)\n",
                result.FactsOf(schema.IdOf("TC")).size(),
                result.FactsOf(schema.IdOf("OUT")).size(), stats.iterations);
  }

  // -- The no-triangle program (Example 5.13, program 2) -------------------
  {
    Schema schema;
    DatalogProgram program = ParseProgram(
        schema,
        "T(x,y,z) <- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z\n"
        "S(x) <- ADom(x), T(u,v,w)\n"
        "OUT(x,y) <- E(x,y), !S(x)");
    std::printf("program 2 (no-triangle):\n");
    std::printf("  stratifies: %s\n",
                program.Stratify().has_value() ? "yes" : "no");
    std::printf("  semi-connected: %s (the S rule is disconnected and not "
                "last)\n",
                program.IsSemiConnected() ? "yes" : "no");
  }

  // -- win-move under the well-founded semantics ----------------------------
  {
    Schema schema;
    DatalogProgram program =
        ParseProgram(schema, "WIN(x) <- MOVE(x,y), !WIN(y)");
    std::printf("win-move:\n");
    std::printf("  stratifies: %s (negative recursion)\n",
                program.Stratify().has_value() ? "yes" : "no");

    // A small game: a chain 3->2->1->0 plus a draw cycle 7<->8.
    Instance edb;
    const RelationId move = schema.IdOf("MOVE");
    edb.Insert(Fact(move, {3, 2}));
    edb.Insert(Fact(move, {2, 1}));
    edb.Insert(Fact(move, {1, 0}));
    edb.Insert(Fact(move, {7, 8}));
    edb.Insert(Fact(move, {8, 7}));

    const WellFoundedModel model = EvaluateWellFounded(schema, program, edb);
    std::printf("  winning positions: %s\n",
                model.true_facts.ToString(schema).c_str());
    std::printf("  drawn (undefined) positions: %s\n",
                model.undefined_facts.ToString(schema).c_str());
    std::printf("  gamma applications: %zu\n", model.gamma_applications);
  }

  return 0;
}
