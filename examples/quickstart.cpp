// Quickstart: the three layers of the library in one walk-through.
//
//  1. Define a conjunctive query and a database instance.
//  2. Run it in one MPC round with the HyperCube algorithm and inspect the
//     per-server loads the paper's Section 3 reasons about.
//  3. Check parallel-correctness of a custom distribution policy
//     (Section 4) and transfer between two queries.
//
// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "cq/eval.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "distribution/parallel_correctness.h"
#include "distribution/policies.h"
#include "distribution/transfer.h"
#include "lp/edge_packing.h"
#include "mpc/hypercube_run.h"
#include "relational/generators.h"

int main() {
  using namespace lamp;

  // -- 1. A query and some data ---------------------------------------------
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  std::printf("query: %s\n", triangle.ToString(schema).c_str());

  Rng rng(42);
  Instance db;
  AddRandomGraph(schema, schema.IdOf("R"), 3000, 500, rng, db);
  AddRandomGraph(schema, schema.IdOf("S"), 3000, 500, rng, db);
  AddRandomGraph(schema, schema.IdOf("T"), 3000, 500, rng, db);

  const Instance answers = Evaluate(triangle, db);
  std::printf("centralized evaluation: %zu triangles from %zu facts\n",
              answers.Size(), db.Size());

  // -- 2. One-round HyperCube on 64 simulated servers -----------------------
  const double tau = FractionalEdgePackingValue(triangle);
  std::printf("fractional edge packing tau* = %.3f -> load ~ m/p^{%.3f}\n",
              tau, 1.0 / tau);

  const MpcRunResult run = RunHyperCubeUniform(triangle, db, 64);
  std::printf("hypercube on p=64: output %zu, max load %zu, total comm %zu\n",
              run.output.Size(), run.stats.MaxLoad(),
              run.stats.TotalCommunication());
  std::printf("matches centralized: %s\n",
              run.output == answers ? "yes" : "NO");

  // -- 3. Parallel-correctness of a hand-written policy ---------------------
  // Split R/S/T by the parity of their first attribute over 2 nodes: the
  // join can separate, so this policy is NOT parallel-correct.
  const LambdaPolicy parity(2, MakeUniverse(4),
                            [](NodeId node, const Fact& f) {
                              return (f.args[0].v % 2) ==
                                     static_cast<std::int64_t>(node);
                            });
  std::printf("parity policy parallel-correct for the triangle query: %s\n",
              IsParallelCorrect(triangle, parity) ? "yes" : "no");

  // The HyperCube policy is always parallel-correct (it strongly saturates
  // its query).
  const HypercubePolicy grid(triangle, {2, 2, 2}, MakeUniverse(4));
  std::printf("hypercube policy parallel-correct: %s\n",
              IsParallelCorrect(triangle, grid) ? "yes" : "no");

  // Transfer: evaluating a smaller query on the same distribution.
  const ConjunctiveQuery edge = ParseQuery(schema, "G(x,y) <- R(x,y)");
  std::printf("parallel-correctness transfers triangle -> edge: %s\n",
              ParallelCorrectnessTransfersTo(triangle, edge) ? "yes" : "no");
  std::printf("parallel-correctness transfers edge -> triangle: %s\n",
              ParallelCorrectnessTransfersTo(edge, triangle) ? "yes" : "no");
  return 0;
}
