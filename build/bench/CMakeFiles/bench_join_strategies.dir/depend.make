# Empty dependencies file for bench_join_strategies.
# This may be replaced when dependencies are built.
