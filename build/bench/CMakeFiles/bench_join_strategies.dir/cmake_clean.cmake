file(REMOVE_RECURSE
  "CMakeFiles/bench_join_strategies.dir/bench_join_strategies.cc.o"
  "CMakeFiles/bench_join_strategies.dir/bench_join_strategies.cc.o.d"
  "bench_join_strategies"
  "bench_join_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
