file(REMOVE_RECURSE
  "CMakeFiles/bench_datalog_eval.dir/bench_datalog_eval.cc.o"
  "CMakeFiles/bench_datalog_eval.dir/bench_datalog_eval.cc.o.d"
  "bench_datalog_eval"
  "bench_datalog_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datalog_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
