# Empty dependencies file for bench_datalog_eval.
# This may be replaced when dependencies are built.
