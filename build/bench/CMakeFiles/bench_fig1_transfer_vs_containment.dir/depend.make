# Empty dependencies file for bench_fig1_transfer_vs_containment.
# This may be replaced when dependencies are built.
