file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_transfer_vs_containment.dir/bench_fig1_transfer_vs_containment.cc.o"
  "CMakeFiles/bench_fig1_transfer_vs_containment.dir/bench_fig1_transfer_vs_containment.cc.o.d"
  "bench_fig1_transfer_vs_containment"
  "bench_fig1_transfer_vs_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_transfer_vs_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
