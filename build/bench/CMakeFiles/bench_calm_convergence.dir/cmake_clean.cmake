file(REMOVE_RECURSE
  "CMakeFiles/bench_calm_convergence.dir/bench_calm_convergence.cc.o"
  "CMakeFiles/bench_calm_convergence.dir/bench_calm_convergence.cc.o.d"
  "bench_calm_convergence"
  "bench_calm_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calm_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
