# Empty dependencies file for bench_calm_convergence.
# This may be replaced when dependencies are built.
