# Empty compiler generated dependencies file for bench_hypercube_load.
# This may be replaced when dependencies are built.
