file(REMOVE_RECURSE
  "CMakeFiles/bench_hypercube_load.dir/bench_hypercube_load.cc.o"
  "CMakeFiles/bench_hypercube_load.dir/bench_hypercube_load.cc.o.d"
  "bench_hypercube_load"
  "bench_hypercube_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hypercube_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
