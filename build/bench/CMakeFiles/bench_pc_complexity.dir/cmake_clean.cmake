file(REMOVE_RECURSE
  "CMakeFiles/bench_pc_complexity.dir/bench_pc_complexity.cc.o"
  "CMakeFiles/bench_pc_complexity.dir/bench_pc_complexity.cc.o.d"
  "bench_pc_complexity"
  "bench_pc_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pc_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
