# Empty compiler generated dependencies file for bench_tc_mapreduce.
# This may be replaced when dependencies are built.
