file(REMOVE_RECURSE
  "CMakeFiles/bench_tc_mapreduce.dir/bench_tc_mapreduce.cc.o"
  "CMakeFiles/bench_tc_mapreduce.dir/bench_tc_mapreduce.cc.o.d"
  "bench_tc_mapreduce"
  "bench_tc_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tc_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
