file(REMOVE_RECURSE
  "CMakeFiles/bench_scaleindep.dir/bench_scaleindep.cc.o"
  "CMakeFiles/bench_scaleindep.dir/bench_scaleindep.cc.o.d"
  "bench_scaleindep"
  "bench_scaleindep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaleindep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
