# Empty compiler generated dependencies file for bench_scaleindep.
# This may be replaced when dependencies are built.
