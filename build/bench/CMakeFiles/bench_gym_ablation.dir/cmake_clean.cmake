file(REMOVE_RECURSE
  "CMakeFiles/bench_gym_ablation.dir/bench_gym_ablation.cc.o"
  "CMakeFiles/bench_gym_ablation.dir/bench_gym_ablation.cc.o.d"
  "bench_gym_ablation"
  "bench_gym_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gym_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
