# Empty dependencies file for bench_fig2_hierarchy.
# This may be replaced when dependencies are built.
