file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hierarchy.dir/bench_fig2_hierarchy.cc.o"
  "CMakeFiles/bench_fig2_hierarchy.dir/bench_fig2_hierarchy.cc.o.d"
  "bench_fig2_hierarchy"
  "bench_fig2_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
