file(REMOVE_RECURSE
  "CMakeFiles/bench_triangle_rounds.dir/bench_triangle_rounds.cc.o"
  "CMakeFiles/bench_triangle_rounds.dir/bench_triangle_rounds.cc.o.d"
  "bench_triangle_rounds"
  "bench_triangle_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triangle_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
