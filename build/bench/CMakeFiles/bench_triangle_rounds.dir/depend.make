# Empty dependencies file for bench_triangle_rounds.
# This may be replaced when dependencies are built.
