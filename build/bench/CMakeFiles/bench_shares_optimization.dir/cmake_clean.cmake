file(REMOVE_RECURSE
  "CMakeFiles/bench_shares_optimization.dir/bench_shares_optimization.cc.o"
  "CMakeFiles/bench_shares_optimization.dir/bench_shares_optimization.cc.o.d"
  "bench_shares_optimization"
  "bench_shares_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shares_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
