# Empty compiler generated dependencies file for bench_shares_optimization.
# This may be replaced when dependencies are built.
