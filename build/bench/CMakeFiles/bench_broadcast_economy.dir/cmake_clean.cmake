file(REMOVE_RECURSE
  "CMakeFiles/bench_broadcast_economy.dir/bench_broadcast_economy.cc.o"
  "CMakeFiles/bench_broadcast_economy.dir/bench_broadcast_economy.cc.o.d"
  "bench_broadcast_economy"
  "bench_broadcast_economy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_broadcast_economy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
