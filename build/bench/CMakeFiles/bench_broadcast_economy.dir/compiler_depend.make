# Empty compiler generated dependencies file for bench_broadcast_economy.
# This may be replaced when dependencies are built.
