file(REMOVE_RECURSE
  "CMakeFiles/lamp_net.dir/consistency.cc.o"
  "CMakeFiles/lamp_net.dir/consistency.cc.o.d"
  "CMakeFiles/lamp_net.dir/datalog_program.cc.o"
  "CMakeFiles/lamp_net.dir/datalog_program.cc.o.d"
  "CMakeFiles/lamp_net.dir/network.cc.o"
  "CMakeFiles/lamp_net.dir/network.cc.o.d"
  "CMakeFiles/lamp_net.dir/programs.cc.o"
  "CMakeFiles/lamp_net.dir/programs.cc.o.d"
  "liblamp_net.a"
  "liblamp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
