# Empty compiler generated dependencies file for lamp_net.
# This may be replaced when dependencies are built.
