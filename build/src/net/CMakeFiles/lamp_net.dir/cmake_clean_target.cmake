file(REMOVE_RECURSE
  "liblamp_net.a"
)
