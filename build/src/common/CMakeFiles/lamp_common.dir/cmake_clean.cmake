file(REMOVE_RECURSE
  "CMakeFiles/lamp_common.dir/interner.cc.o"
  "CMakeFiles/lamp_common.dir/interner.cc.o.d"
  "CMakeFiles/lamp_common.dir/rng.cc.o"
  "CMakeFiles/lamp_common.dir/rng.cc.o.d"
  "liblamp_common.a"
  "liblamp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
