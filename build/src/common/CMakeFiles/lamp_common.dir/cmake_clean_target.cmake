file(REMOVE_RECURSE
  "liblamp_common.a"
)
