# Empty dependencies file for lamp_common.
# This may be replaced when dependencies are built.
