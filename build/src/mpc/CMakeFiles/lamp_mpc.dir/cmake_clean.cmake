file(REMOVE_RECURSE
  "CMakeFiles/lamp_mpc.dir/cascade.cc.o"
  "CMakeFiles/lamp_mpc.dir/cascade.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/decomposition.cc.o"
  "CMakeFiles/lamp_mpc.dir/decomposition.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/gym.cc.o"
  "CMakeFiles/lamp_mpc.dir/gym.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/heavy_hitters.cc.o"
  "CMakeFiles/lamp_mpc.dir/heavy_hitters.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/hypercube_run.cc.o"
  "CMakeFiles/lamp_mpc.dir/hypercube_run.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/join_strategies.cc.o"
  "CMakeFiles/lamp_mpc.dir/join_strategies.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/shares_skew.cc.o"
  "CMakeFiles/lamp_mpc.dir/shares_skew.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/simulator.cc.o"
  "CMakeFiles/lamp_mpc.dir/simulator.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/skew.cc.o"
  "CMakeFiles/lamp_mpc.dir/skew.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/stats.cc.o"
  "CMakeFiles/lamp_mpc.dir/stats.cc.o.d"
  "CMakeFiles/lamp_mpc.dir/yannakakis.cc.o"
  "CMakeFiles/lamp_mpc.dir/yannakakis.cc.o.d"
  "liblamp_mpc.a"
  "liblamp_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
