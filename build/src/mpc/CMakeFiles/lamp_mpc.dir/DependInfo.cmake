
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/cascade.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/cascade.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/cascade.cc.o.d"
  "/root/repo/src/mpc/decomposition.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/decomposition.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/decomposition.cc.o.d"
  "/root/repo/src/mpc/gym.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/gym.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/gym.cc.o.d"
  "/root/repo/src/mpc/heavy_hitters.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/heavy_hitters.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/heavy_hitters.cc.o.d"
  "/root/repo/src/mpc/hypercube_run.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/hypercube_run.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/hypercube_run.cc.o.d"
  "/root/repo/src/mpc/join_strategies.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/join_strategies.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/join_strategies.cc.o.d"
  "/root/repo/src/mpc/shares_skew.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/shares_skew.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/shares_skew.cc.o.d"
  "/root/repo/src/mpc/simulator.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/simulator.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/simulator.cc.o.d"
  "/root/repo/src/mpc/skew.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/skew.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/skew.cc.o.d"
  "/root/repo/src/mpc/stats.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/stats.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/stats.cc.o.d"
  "/root/repo/src/mpc/yannakakis.cc" "src/mpc/CMakeFiles/lamp_mpc.dir/yannakakis.cc.o" "gcc" "src/mpc/CMakeFiles/lamp_mpc.dir/yannakakis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/distribution/CMakeFiles/lamp_distribution.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/lamp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/lamp_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/lamp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lamp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
