file(REMOVE_RECURSE
  "liblamp_mpc.a"
)
