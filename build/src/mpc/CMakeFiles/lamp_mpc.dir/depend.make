# Empty dependencies file for lamp_mpc.
# This may be replaced when dependencies are built.
