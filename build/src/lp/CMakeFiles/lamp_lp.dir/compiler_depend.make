# Empty compiler generated dependencies file for lamp_lp.
# This may be replaced when dependencies are built.
