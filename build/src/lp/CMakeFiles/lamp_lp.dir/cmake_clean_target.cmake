file(REMOVE_RECURSE
  "liblamp_lp.a"
)
