file(REMOVE_RECURSE
  "CMakeFiles/lamp_lp.dir/edge_packing.cc.o"
  "CMakeFiles/lamp_lp.dir/edge_packing.cc.o.d"
  "CMakeFiles/lamp_lp.dir/simplex.cc.o"
  "CMakeFiles/lamp_lp.dir/simplex.cc.o.d"
  "liblamp_lp.a"
  "liblamp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
