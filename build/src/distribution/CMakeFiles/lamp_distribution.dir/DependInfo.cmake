
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distribution/domain_guided.cc" "src/distribution/CMakeFiles/lamp_distribution.dir/domain_guided.cc.o" "gcc" "src/distribution/CMakeFiles/lamp_distribution.dir/domain_guided.cc.o.d"
  "/root/repo/src/distribution/hypercube.cc" "src/distribution/CMakeFiles/lamp_distribution.dir/hypercube.cc.o" "gcc" "src/distribution/CMakeFiles/lamp_distribution.dir/hypercube.cc.o.d"
  "/root/repo/src/distribution/parallel_correctness.cc" "src/distribution/CMakeFiles/lamp_distribution.dir/parallel_correctness.cc.o" "gcc" "src/distribution/CMakeFiles/lamp_distribution.dir/parallel_correctness.cc.o.d"
  "/root/repo/src/distribution/policies.cc" "src/distribution/CMakeFiles/lamp_distribution.dir/policies.cc.o" "gcc" "src/distribution/CMakeFiles/lamp_distribution.dir/policies.cc.o.d"
  "/root/repo/src/distribution/policy.cc" "src/distribution/CMakeFiles/lamp_distribution.dir/policy.cc.o" "gcc" "src/distribution/CMakeFiles/lamp_distribution.dir/policy.cc.o.d"
  "/root/repo/src/distribution/transfer.cc" "src/distribution/CMakeFiles/lamp_distribution.dir/transfer.cc.o" "gcc" "src/distribution/CMakeFiles/lamp_distribution.dir/transfer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cq/CMakeFiles/lamp_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/lamp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lamp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
