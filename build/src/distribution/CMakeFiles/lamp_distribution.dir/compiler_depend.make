# Empty compiler generated dependencies file for lamp_distribution.
# This may be replaced when dependencies are built.
