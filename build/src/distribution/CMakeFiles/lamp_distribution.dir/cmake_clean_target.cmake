file(REMOVE_RECURSE
  "liblamp_distribution.a"
)
