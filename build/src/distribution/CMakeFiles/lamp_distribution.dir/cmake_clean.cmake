file(REMOVE_RECURSE
  "CMakeFiles/lamp_distribution.dir/domain_guided.cc.o"
  "CMakeFiles/lamp_distribution.dir/domain_guided.cc.o.d"
  "CMakeFiles/lamp_distribution.dir/hypercube.cc.o"
  "CMakeFiles/lamp_distribution.dir/hypercube.cc.o.d"
  "CMakeFiles/lamp_distribution.dir/parallel_correctness.cc.o"
  "CMakeFiles/lamp_distribution.dir/parallel_correctness.cc.o.d"
  "CMakeFiles/lamp_distribution.dir/policies.cc.o"
  "CMakeFiles/lamp_distribution.dir/policies.cc.o.d"
  "CMakeFiles/lamp_distribution.dir/policy.cc.o"
  "CMakeFiles/lamp_distribution.dir/policy.cc.o.d"
  "CMakeFiles/lamp_distribution.dir/transfer.cc.o"
  "CMakeFiles/lamp_distribution.dir/transfer.cc.o.d"
  "liblamp_distribution.a"
  "liblamp_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
