file(REMOVE_RECURSE
  "CMakeFiles/lamp_scaleindep.dir/access.cc.o"
  "CMakeFiles/lamp_scaleindep.dir/access.cc.o.d"
  "liblamp_scaleindep.a"
  "liblamp_scaleindep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_scaleindep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
