# Empty dependencies file for lamp_scaleindep.
# This may be replaced when dependencies are built.
