file(REMOVE_RECURSE
  "liblamp_scaleindep.a"
)
