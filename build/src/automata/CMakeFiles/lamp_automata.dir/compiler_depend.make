# Empty compiler generated dependencies file for lamp_automata.
# This may be replaced when dependencies are built.
