file(REMOVE_RECURSE
  "CMakeFiles/lamp_automata.dir/register_automaton.cc.o"
  "CMakeFiles/lamp_automata.dir/register_automaton.cc.o.d"
  "CMakeFiles/lamp_automata.dir/streaming_ops.cc.o"
  "CMakeFiles/lamp_automata.dir/streaming_ops.cc.o.d"
  "liblamp_automata.a"
  "liblamp_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
