file(REMOVE_RECURSE
  "liblamp_automata.a"
)
