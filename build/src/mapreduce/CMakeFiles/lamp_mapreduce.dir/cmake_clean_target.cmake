file(REMOVE_RECURSE
  "liblamp_mapreduce.a"
)
