file(REMOVE_RECURSE
  "CMakeFiles/lamp_mapreduce.dir/mapreduce.cc.o"
  "CMakeFiles/lamp_mapreduce.dir/mapreduce.cc.o.d"
  "CMakeFiles/lamp_mapreduce.dir/recursive.cc.o"
  "CMakeFiles/lamp_mapreduce.dir/recursive.cc.o.d"
  "CMakeFiles/lamp_mapreduce.dir/relational_jobs.cc.o"
  "CMakeFiles/lamp_mapreduce.dir/relational_jobs.cc.o.d"
  "liblamp_mapreduce.a"
  "liblamp_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
