# Empty compiler generated dependencies file for lamp_mapreduce.
# This may be replaced when dependencies are built.
