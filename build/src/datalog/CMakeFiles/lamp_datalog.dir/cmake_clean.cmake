file(REMOVE_RECURSE
  "CMakeFiles/lamp_datalog.dir/components.cc.o"
  "CMakeFiles/lamp_datalog.dir/components.cc.o.d"
  "CMakeFiles/lamp_datalog.dir/eval.cc.o"
  "CMakeFiles/lamp_datalog.dir/eval.cc.o.d"
  "CMakeFiles/lamp_datalog.dir/monotone.cc.o"
  "CMakeFiles/lamp_datalog.dir/monotone.cc.o.d"
  "CMakeFiles/lamp_datalog.dir/program.cc.o"
  "CMakeFiles/lamp_datalog.dir/program.cc.o.d"
  "CMakeFiles/lamp_datalog.dir/wellfounded.cc.o"
  "CMakeFiles/lamp_datalog.dir/wellfounded.cc.o.d"
  "liblamp_datalog.a"
  "liblamp_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
