file(REMOVE_RECURSE
  "liblamp_datalog.a"
)
