# Empty compiler generated dependencies file for lamp_datalog.
# This may be replaced when dependencies are built.
