
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/components.cc" "src/datalog/CMakeFiles/lamp_datalog.dir/components.cc.o" "gcc" "src/datalog/CMakeFiles/lamp_datalog.dir/components.cc.o.d"
  "/root/repo/src/datalog/eval.cc" "src/datalog/CMakeFiles/lamp_datalog.dir/eval.cc.o" "gcc" "src/datalog/CMakeFiles/lamp_datalog.dir/eval.cc.o.d"
  "/root/repo/src/datalog/monotone.cc" "src/datalog/CMakeFiles/lamp_datalog.dir/monotone.cc.o" "gcc" "src/datalog/CMakeFiles/lamp_datalog.dir/monotone.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/datalog/CMakeFiles/lamp_datalog.dir/program.cc.o" "gcc" "src/datalog/CMakeFiles/lamp_datalog.dir/program.cc.o.d"
  "/root/repo/src/datalog/wellfounded.cc" "src/datalog/CMakeFiles/lamp_datalog.dir/wellfounded.cc.o" "gcc" "src/datalog/CMakeFiles/lamp_datalog.dir/wellfounded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cq/CMakeFiles/lamp_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/lamp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lamp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
