# CMake generated Testfile for 
# Source directory: /root/repo/src/relational
# Build directory: /root/repo/build/src/relational
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
