# Empty compiler generated dependencies file for lamp_relational.
# This may be replaced when dependencies are built.
