file(REMOVE_RECURSE
  "liblamp_relational.a"
)
