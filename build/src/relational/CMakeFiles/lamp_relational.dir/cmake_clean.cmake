file(REMOVE_RECURSE
  "CMakeFiles/lamp_relational.dir/fact.cc.o"
  "CMakeFiles/lamp_relational.dir/fact.cc.o.d"
  "CMakeFiles/lamp_relational.dir/generators.cc.o"
  "CMakeFiles/lamp_relational.dir/generators.cc.o.d"
  "CMakeFiles/lamp_relational.dir/instance.cc.o"
  "CMakeFiles/lamp_relational.dir/instance.cc.o.d"
  "CMakeFiles/lamp_relational.dir/io.cc.o"
  "CMakeFiles/lamp_relational.dir/io.cc.o.d"
  "CMakeFiles/lamp_relational.dir/schema.cc.o"
  "CMakeFiles/lamp_relational.dir/schema.cc.o.d"
  "liblamp_relational.a"
  "liblamp_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
