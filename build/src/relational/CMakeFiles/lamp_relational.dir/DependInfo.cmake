
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/fact.cc" "src/relational/CMakeFiles/lamp_relational.dir/fact.cc.o" "gcc" "src/relational/CMakeFiles/lamp_relational.dir/fact.cc.o.d"
  "/root/repo/src/relational/generators.cc" "src/relational/CMakeFiles/lamp_relational.dir/generators.cc.o" "gcc" "src/relational/CMakeFiles/lamp_relational.dir/generators.cc.o.d"
  "/root/repo/src/relational/instance.cc" "src/relational/CMakeFiles/lamp_relational.dir/instance.cc.o" "gcc" "src/relational/CMakeFiles/lamp_relational.dir/instance.cc.o.d"
  "/root/repo/src/relational/io.cc" "src/relational/CMakeFiles/lamp_relational.dir/io.cc.o" "gcc" "src/relational/CMakeFiles/lamp_relational.dir/io.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/lamp_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/lamp_relational.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lamp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
