# Empty dependencies file for lamp_cq.
# This may be replaced when dependencies are built.
