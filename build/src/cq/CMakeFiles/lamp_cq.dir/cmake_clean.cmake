file(REMOVE_RECURSE
  "CMakeFiles/lamp_cq.dir/acyclic.cc.o"
  "CMakeFiles/lamp_cq.dir/acyclic.cc.o.d"
  "CMakeFiles/lamp_cq.dir/containment.cc.o"
  "CMakeFiles/lamp_cq.dir/containment.cc.o.d"
  "CMakeFiles/lamp_cq.dir/cq.cc.o"
  "CMakeFiles/lamp_cq.dir/cq.cc.o.d"
  "CMakeFiles/lamp_cq.dir/eval.cc.o"
  "CMakeFiles/lamp_cq.dir/eval.cc.o.d"
  "CMakeFiles/lamp_cq.dir/minimal.cc.o"
  "CMakeFiles/lamp_cq.dir/minimal.cc.o.d"
  "CMakeFiles/lamp_cq.dir/parser.cc.o"
  "CMakeFiles/lamp_cq.dir/parser.cc.o.d"
  "CMakeFiles/lamp_cq.dir/ucq.cc.o"
  "CMakeFiles/lamp_cq.dir/ucq.cc.o.d"
  "CMakeFiles/lamp_cq.dir/valuation.cc.o"
  "CMakeFiles/lamp_cq.dir/valuation.cc.o.d"
  "liblamp_cq.a"
  "liblamp_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
