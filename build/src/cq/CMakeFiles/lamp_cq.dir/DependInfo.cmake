
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cq/acyclic.cc" "src/cq/CMakeFiles/lamp_cq.dir/acyclic.cc.o" "gcc" "src/cq/CMakeFiles/lamp_cq.dir/acyclic.cc.o.d"
  "/root/repo/src/cq/containment.cc" "src/cq/CMakeFiles/lamp_cq.dir/containment.cc.o" "gcc" "src/cq/CMakeFiles/lamp_cq.dir/containment.cc.o.d"
  "/root/repo/src/cq/cq.cc" "src/cq/CMakeFiles/lamp_cq.dir/cq.cc.o" "gcc" "src/cq/CMakeFiles/lamp_cq.dir/cq.cc.o.d"
  "/root/repo/src/cq/eval.cc" "src/cq/CMakeFiles/lamp_cq.dir/eval.cc.o" "gcc" "src/cq/CMakeFiles/lamp_cq.dir/eval.cc.o.d"
  "/root/repo/src/cq/minimal.cc" "src/cq/CMakeFiles/lamp_cq.dir/minimal.cc.o" "gcc" "src/cq/CMakeFiles/lamp_cq.dir/minimal.cc.o.d"
  "/root/repo/src/cq/parser.cc" "src/cq/CMakeFiles/lamp_cq.dir/parser.cc.o" "gcc" "src/cq/CMakeFiles/lamp_cq.dir/parser.cc.o.d"
  "/root/repo/src/cq/ucq.cc" "src/cq/CMakeFiles/lamp_cq.dir/ucq.cc.o" "gcc" "src/cq/CMakeFiles/lamp_cq.dir/ucq.cc.o.d"
  "/root/repo/src/cq/valuation.cc" "src/cq/CMakeFiles/lamp_cq.dir/valuation.cc.o" "gcc" "src/cq/CMakeFiles/lamp_cq.dir/valuation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/lamp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lamp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
