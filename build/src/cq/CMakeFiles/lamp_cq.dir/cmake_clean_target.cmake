file(REMOVE_RECURSE
  "liblamp_cq.a"
)
