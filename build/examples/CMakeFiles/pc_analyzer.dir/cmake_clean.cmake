file(REMOVE_RECURSE
  "CMakeFiles/pc_analyzer.dir/pc_analyzer.cpp.o"
  "CMakeFiles/pc_analyzer.dir/pc_analyzer.cpp.o.d"
  "pc_analyzer"
  "pc_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
