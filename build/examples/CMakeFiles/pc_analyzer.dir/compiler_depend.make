# Empty compiler generated dependencies file for pc_analyzer.
# This may be replaced when dependencies are built.
