# Empty compiler generated dependencies file for triangle_mpc.
# This may be replaced when dependencies are built.
