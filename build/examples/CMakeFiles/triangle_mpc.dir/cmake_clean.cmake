file(REMOVE_RECURSE
  "CMakeFiles/triangle_mpc.dir/triangle_mpc.cpp.o"
  "CMakeFiles/triangle_mpc.dir/triangle_mpc.cpp.o.d"
  "triangle_mpc"
  "triangle_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
