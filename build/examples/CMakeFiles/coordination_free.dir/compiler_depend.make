# Empty compiler generated dependencies file for coordination_free.
# This may be replaced when dependencies are built.
