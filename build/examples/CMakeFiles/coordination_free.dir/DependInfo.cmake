
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/coordination_free.cpp" "examples/CMakeFiles/coordination_free.dir/coordination_free.cpp.o" "gcc" "examples/CMakeFiles/coordination_free.dir/coordination_free.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lamp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/lamp_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/distribution/CMakeFiles/lamp_distribution.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/lamp_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/lamp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lamp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
