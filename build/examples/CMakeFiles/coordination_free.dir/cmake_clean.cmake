file(REMOVE_RECURSE
  "CMakeFiles/coordination_free.dir/coordination_free.cpp.o"
  "CMakeFiles/coordination_free.dir/coordination_free.cpp.o.d"
  "coordination_free"
  "coordination_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordination_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
