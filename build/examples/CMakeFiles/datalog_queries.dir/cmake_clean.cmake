file(REMOVE_RECURSE
  "CMakeFiles/datalog_queries.dir/datalog_queries.cpp.o"
  "CMakeFiles/datalog_queries.dir/datalog_queries.cpp.o.d"
  "datalog_queries"
  "datalog_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
