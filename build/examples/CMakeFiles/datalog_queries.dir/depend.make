# Empty dependencies file for datalog_queries.
# This may be replaced when dependencies are built.
