file(REMOVE_RECURSE
  "CMakeFiles/mpc_algorithms_test.dir/mpc_algorithms_test.cc.o"
  "CMakeFiles/mpc_algorithms_test.dir/mpc_algorithms_test.cc.o.d"
  "mpc_algorithms_test"
  "mpc_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
