# Empty compiler generated dependencies file for mpc_algorithms_test.
# This may be replaced when dependencies are built.
