# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mpc_algorithms_test.
