file(REMOVE_RECURSE
  "CMakeFiles/monotone_test.dir/monotone_test.cc.o"
  "CMakeFiles/monotone_test.dir/monotone_test.cc.o.d"
  "monotone_test"
  "monotone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monotone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
