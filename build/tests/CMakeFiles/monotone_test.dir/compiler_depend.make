# Empty compiler generated dependencies file for monotone_test.
# This may be replaced when dependencies are built.
