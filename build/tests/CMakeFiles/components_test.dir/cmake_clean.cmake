file(REMOVE_RECURSE
  "CMakeFiles/components_test.dir/components_test.cc.o"
  "CMakeFiles/components_test.dir/components_test.cc.o.d"
  "components_test"
  "components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
