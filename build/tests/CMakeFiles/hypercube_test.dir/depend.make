# Empty dependencies file for hypercube_test.
# This may be replaced when dependencies are built.
