file(REMOVE_RECURSE
  "CMakeFiles/hypercube_test.dir/hypercube_test.cc.o"
  "CMakeFiles/hypercube_test.dir/hypercube_test.cc.o.d"
  "hypercube_test"
  "hypercube_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
