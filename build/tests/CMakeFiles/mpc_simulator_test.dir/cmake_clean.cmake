file(REMOVE_RECURSE
  "CMakeFiles/mpc_simulator_test.dir/mpc_simulator_test.cc.o"
  "CMakeFiles/mpc_simulator_test.dir/mpc_simulator_test.cc.o.d"
  "mpc_simulator_test"
  "mpc_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
