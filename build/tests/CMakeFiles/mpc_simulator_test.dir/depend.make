# Empty dependencies file for mpc_simulator_test.
# This may be replaced when dependencies are built.
