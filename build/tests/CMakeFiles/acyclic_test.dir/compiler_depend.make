# Empty compiler generated dependencies file for acyclic_test.
# This may be replaced when dependencies are built.
