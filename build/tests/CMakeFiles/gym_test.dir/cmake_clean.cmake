file(REMOVE_RECURSE
  "CMakeFiles/gym_test.dir/gym_test.cc.o"
  "CMakeFiles/gym_test.dir/gym_test.cc.o.d"
  "gym_test"
  "gym_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gym_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
