# Empty compiler generated dependencies file for gym_test.
# This may be replaced when dependencies are built.
