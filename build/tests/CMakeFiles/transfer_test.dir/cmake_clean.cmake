file(REMOVE_RECURSE
  "CMakeFiles/transfer_test.dir/transfer_test.cc.o"
  "CMakeFiles/transfer_test.dir/transfer_test.cc.o.d"
  "transfer_test"
  "transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
