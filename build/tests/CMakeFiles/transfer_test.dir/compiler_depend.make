# Empty compiler generated dependencies file for transfer_test.
# This may be replaced when dependencies are built.
