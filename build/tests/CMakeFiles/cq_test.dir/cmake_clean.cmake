file(REMOVE_RECURSE
  "CMakeFiles/cq_test.dir/cq_test.cc.o"
  "CMakeFiles/cq_test.dir/cq_test.cc.o.d"
  "cq_test"
  "cq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
