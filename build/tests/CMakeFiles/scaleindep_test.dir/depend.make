# Empty dependencies file for scaleindep_test.
# This may be replaced when dependencies are built.
