file(REMOVE_RECURSE
  "CMakeFiles/scaleindep_test.dir/scaleindep_test.cc.o"
  "CMakeFiles/scaleindep_test.dir/scaleindep_test.cc.o.d"
  "scaleindep_test"
  "scaleindep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleindep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
