file(REMOVE_RECURSE
  "CMakeFiles/automata_test.dir/automata_test.cc.o"
  "CMakeFiles/automata_test.dir/automata_test.cc.o.d"
  "automata_test"
  "automata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
