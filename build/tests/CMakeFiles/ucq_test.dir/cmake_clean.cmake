file(REMOVE_RECURSE
  "CMakeFiles/ucq_test.dir/ucq_test.cc.o"
  "CMakeFiles/ucq_test.dir/ucq_test.cc.o.d"
  "ucq_test"
  "ucq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
