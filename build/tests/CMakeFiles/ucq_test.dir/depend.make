# Empty dependencies file for ucq_test.
# This may be replaced when dependencies are built.
