file(REMOVE_RECURSE
  "CMakeFiles/parallel_correctness_test.dir/parallel_correctness_test.cc.o"
  "CMakeFiles/parallel_correctness_test.dir/parallel_correctness_test.cc.o.d"
  "parallel_correctness_test"
  "parallel_correctness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
