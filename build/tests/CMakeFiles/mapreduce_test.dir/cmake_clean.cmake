file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_test.dir/mapreduce_test.cc.o"
  "CMakeFiles/mapreduce_test.dir/mapreduce_test.cc.o.d"
  "mapreduce_test"
  "mapreduce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
