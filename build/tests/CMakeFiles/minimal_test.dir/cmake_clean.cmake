file(REMOVE_RECURSE
  "CMakeFiles/minimal_test.dir/minimal_test.cc.o"
  "CMakeFiles/minimal_test.dir/minimal_test.cc.o.d"
  "minimal_test"
  "minimal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
