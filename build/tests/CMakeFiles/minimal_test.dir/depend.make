# Empty dependencies file for minimal_test.
# This may be replaced when dependencies are built.
