// obs_audit: renders and demonstrates the theory-aware audit layer
// (obs/audit): load-bound audit records, the statistics catalog and
// causal coordination profiles.
//
//   obs_audit report <audit.jsonl>...   headroom table + worst-round
//                                       per-server load heatmaps from
//                                       lamp.audit.v1 JSON-lines files
//   obs_audit catalog <catalog.json>    per-relation skew report from a
//                                       lamp.catalog.v1 document
//   obs_audit causal <trace.json>       coordination depth + causal
//                                       critical path from a lamp.trace.v1
//                                       recording of a transducer run
//   obs_audit demo-audit                audit a HyperCube triangle and a
//                                       repartition join, render report
//   obs_audit demo-catalog              print the lamp.catalog.v1 of a
//                                       skewed demo instance
//   obs_audit demo-causal               contrast a monotone broadcast
//                                       (coordination-free) with a
//                                       counting barrier (coordinated)
//   obs_audit demo-violation            run a deliberately skewed
//                                       repartition join and hard-fail on
//                                       its bound violation (exit 4) —
//                                       the pinned WILL_FAIL demo
//   obs_audit ... --json                emit machine-readable JSON where
//                                       the subcommand supports it
//
// Exit codes: 0 ok, 2 usage/parse error, 4 hard bound violation
// (demo-violation, and report --check).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "mpc/hypercube_run.h"
#include "mpc/join_strategies.h"
#include "net/network.h"
#include "net/programs.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/audit/causal.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "relational/generators.h"

namespace lamp {
namespace {

using obs::audit::AuditRecord;
using obs::audit::Catalog;
using obs::audit::CausalReport;
using obs::audit::Strategy;

// Eight block glyphs, matching trace_dump's heatmap convention ('.' = 0).
const char* LoadGlyph(std::uint64_t load, std::uint64_t max) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (load == 0) return ".";
  if (max == 0) return kBlocks[0];
  std::size_t idx = static_cast<std::size_t>((8 * load - 1) / max);
  return kBlocks[std::min<std::size_t>(idx, 7)];
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "obs_audit: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- report -------------------------------------------------------------

std::vector<AuditRecord> ParseAuditLines(const std::string& text,
                                         const std::string& origin,
                                         bool* ok) {
  std::vector<AuditRecord> records;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(line);
    std::optional<AuditRecord> record;
    if (doc.has_value()) record = AuditRecord::FromJson(*doc);
    if (!record.has_value()) {
      std::fprintf(stderr, "obs_audit: %s:%zu is not a lamp.audit.v1"
                           " record\n",
                   origin.c_str(), lineno);
      *ok = false;
      continue;
    }
    records.push_back(std::move(*record));
  }
  return records;
}

void RenderReport(const std::vector<AuditRecord>& records) {
  std::printf("== lamp.audit.v1 headroom report ==\n");
  std::printf("  %-18s %-26s %-18s %5s %12s %10s %9s  %s\n", "bench", "label",
              "strategy", "p", "bound", "meas.max", "headroom", "status");
  std::size_t ok = 0, expected = 0, hard = 0, unbounded = 0;
  for (const AuditRecord& r : records) {
    std::string bound = "-";
    std::string headroom = "-";
    if (r.bound.has_bound) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", r.bound.tuples);
      bound = buf;
      std::snprintf(buf, sizeof(buf), "%.2f", r.Headroom());
      headroom = buf;
    }
    const char* status = "ok";
    if (!r.bound.has_bound) {
      status = "no bound";
      ++unbounded;
    } else if (r.HardViolation()) {
      status = "VIOLATION";
      ++hard;
    } else if (!r.Pass()) {
      status = "expected violation";
      ++expected;
    } else {
      ++ok;
    }
    std::printf("  %-18s %-26s %-18s %5zu %12s %10zu %9s  %s\n",
                r.bench.c_str(), r.label.c_str(),
                std::string(obs::audit::StrategyName(r.strategy)).c_str(),
                r.p, bound.c_str(), r.measured_max_load, headroom.c_str(),
                status);
  }
  std::printf("\n  %zu record(s): %zu within bound, %zu expected"
              " violation(s), %zu hard violation(s), %zu without bound\n",
              records.size(), ok, expected, hard, unbounded);

  // Planner slack: records stamped by a lamp.plan.v1 certificate carry
  // the *predicted* max load and wire bytes next to the measured ones.
  // ratio = measured/predicted — ~1 means the cost model is honest,
  // >>1 means it missed something (skew it didn't see), <<1 means it is
  // too pessimistic to rank strategies. "planned" is the strategy the
  // certificate ranked first for the whole scenario, which may differ
  // from the strategy this record measured (every lane of a race is
  // stamped with the same verdict).
  bool any_planned = false;
  for (const AuditRecord& r : records) any_planned |= r.HasPrediction();
  if (any_planned) {
    std::printf("\n== planner slack (predicted vs measured) ==\n");
    std::printf("  %-18s %-26s %-18s %5s %12s %10s %7s %12s %12s\n", "bench",
                "label", "planned", "p", "pred.load", "meas.max", "ratio",
                "pred.bytes", "wire bytes");
    for (const AuditRecord& r : records) {
      if (!r.HasPrediction()) continue;
      std::printf("  %-18s %-26s %-18s %5zu %12.1f %10zu %7.2f %12.0f"
                  " %12zu\n",
                  r.bench.c_str(), r.label.c_str(),
                  r.planned_strategy.c_str(), r.p, r.predicted_max_load,
                  r.measured_max_load, r.PredictionRatio(),
                  r.predicted_wire_bytes, r.wire_bytes);
    }
  }

  std::printf("\n== worst-round per-server load heatmaps ==\n");
  for (const AuditRecord& r : records) {
    if (r.per_server.empty()) continue;
    std::uint64_t max = 0;
    for (const std::size_t load : r.per_server) {
      max = std::max<std::uint64_t>(max, load);
    }
    std::string heat;
    for (const std::size_t load : r.per_server) heat += LoadGlyph(load, max);
    std::printf("  %s/%s p=%zu round %zu max=%zu\n    |%s|\n",
                r.bench.c_str(), r.label.c_str(), r.p, r.worst_round,
                r.measured_max_load, heat.c_str());
  }

  // Wire traffic next to logical load: load bounds count *tuples*, the
  // transport counts *bytes*, and the per-round bytes/tuple ratio ties the
  // two — a round whose ratio jumps is paying framing or replication
  // overhead the tuple counts don't show. Rounds that moved no tuples
  // (wire bytes all framing, e.g. empty batch frames every peer still
  // sends) render "-" instead of a ratio. Records produced by a traced
  // multi-process run (tools/mpc_procs with LAMP_TRACE_SHARD) also carry
  // per-round wire-latency percentiles from the merged shards; in-process
  // runs leave those columns "-".
  bool any_wire = false;
  bool any_latency = false;
  for (const AuditRecord& r : records) {
    any_wire |= r.wire_bytes > 0;
    any_latency |= !r.round_wire_p50_ns.empty();
  }
  if (!any_wire) return;
  std::printf("\n== wire traffic (lamp.wire.v1 bytes vs logical load) ==\n");
  std::printf("  %-18s %-26s %5s %12s %10s %9s", "bench", "label", "round",
              "wire bytes", "tuples", "B/tuple");
  if (any_latency) std::printf(" %12s %12s", "lat p50(ns)", "lat p99(ns)");
  std::printf("\n");
  for (const AuditRecord& r : records) {
    if (r.wire_bytes == 0) continue;
    const std::size_t rounds =
        std::min(r.round_wire_bytes.size(), r.round_total_load.size());
    for (std::size_t i = 0; i < rounds; ++i) {
      const std::size_t bytes = r.round_wire_bytes[i];
      const std::size_t tuples = r.round_total_load[i];
      char round_label[32];
      std::snprintf(round_label, sizeof(round_label), "%zu", i);
      char ratio[32];
      if (tuples > 0) {
        std::snprintf(ratio, sizeof(ratio), "%9.1f",
                      static_cast<double>(bytes) /
                          static_cast<double>(tuples));
      } else {
        std::snprintf(ratio, sizeof(ratio), "%9s", "-");
      }
      std::printf("  %-18s %-26s %5s %12zu %10zu %s", r.bench.c_str(),
                  r.label.c_str(), round_label, bytes, tuples, ratio);
      if (any_latency) {
        char p50[32];
        char p99[32];
        if (i < r.round_wire_p50_ns.size()) {
          std::snprintf(p50, sizeof(p50), "%12zu", r.round_wire_p50_ns[i]);
        } else {
          std::snprintf(p50, sizeof(p50), "%12s", "-");
        }
        if (i < r.round_wire_p99_ns.size()) {
          std::snprintf(p99, sizeof(p99), "%12zu", r.round_wire_p99_ns[i]);
        } else {
          std::snprintf(p99, sizeof(p99), "%12s", "-");
        }
        std::printf(" %s %s", p50, p99);
      }
      std::printf("\n");
    }
    if (rounds > 1) {
      const double total_tuples = [&] {
        std::size_t t = 0;
        for (std::size_t i = 0; i < rounds; ++i) t += r.round_total_load[i];
        return static_cast<double>(t);
      }();
      char ratio[32];
      if (total_tuples > 0) {
        std::snprintf(ratio, sizeof(ratio), "%9.1f",
                      static_cast<double>(r.wire_bytes) / total_tuples);
      } else {
        std::snprintf(ratio, sizeof(ratio), "%9s", "-");
      }
      std::printf("  %-18s %-26s %5s %12zu %10.0f %s", r.bench.c_str(),
                  r.label.c_str(), "all", r.wire_bytes, total_tuples, ratio);
      if (any_latency) std::printf(" %12s %12s", "-", "-");
      std::printf("\n");
    }
  }
}

int ReportMain(const std::vector<std::string>& files, bool check) {
  if (files.empty()) {
    std::fprintf(stderr, "obs_audit: report needs at least one"
                         " audit.jsonl file\n");
    return 2;
  }
  std::vector<AuditRecord> records;
  bool ok = true;
  for (const std::string& path : files) {
    const std::optional<std::string> text = ReadFile(path);
    if (!text.has_value()) return 2;
    std::vector<AuditRecord> parsed = ParseAuditLines(*text, path, &ok);
    records.insert(records.end(), parsed.begin(), parsed.end());
  }
  if (!ok && records.empty()) return 2;
  RenderReport(records);
  if (check) {
    for (const AuditRecord& r : records) {
      if (r.HardViolation()) return obs::audit::kAuditHardFailExit;
    }
  }
  return ok ? 0 : 2;
}

// --- catalog ------------------------------------------------------------

void RenderCatalog(const Catalog& catalog) {
  std::printf("== lamp.catalog.v1 skew report ==\n");
  std::printf("  %-12s %5s %12s %8s  per-column profile\n", "relation",
              "arity", "cardinality", "skew(s)");
  for (const auto& rel : catalog.relations) {
    std::printf("  %-12s %5zu %12llu %8.2f", rel.name.c_str(), rel.arity,
                static_cast<unsigned long long>(rel.cardinality),
                rel.SkewEstimate());
    for (std::size_t c = 0; c < rel.columns.size(); ++c) {
      const auto& col = rel.columns[c];
      std::printf("  col%zu: %zu distinct, s=%.2f", c, col.distinct,
                  col.zipf_s);
    }
    std::printf("\n");
    // Heavy hitters are only interesting when a single value carries a
    // nontrivial fraction of the relation.
    for (std::size_t c = 0; c < rel.columns.size(); ++c) {
      const auto& col = rel.columns[c];
      if (rel.cardinality == 0) continue;
      const double top_share =
          static_cast<double>(col.MaxFrequencyLower()) /
          static_cast<double>(rel.cardinality);
      if (top_share < 0.05) continue;
      std::printf("    heavy hitters in col%zu:", c);
      for (const auto& e : col.heavy) {
        if (e.count - e.error == 0) break;
        std::printf(" %lld:%llu", static_cast<long long>(e.value),
                    static_cast<unsigned long long>(e.count));
      }
      std::printf("\n");
    }
  }
  std::printf("  total facts: %llu\n",
              static_cast<unsigned long long>(catalog.TotalFacts()));
}

int CatalogMain(const std::string& path) {
  const std::optional<std::string> text = ReadFile(path);
  if (!text.has_value()) return 2;
  const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(*text);
  std::optional<Catalog> catalog;
  if (doc.has_value()) catalog = Catalog::FromJson(*doc);
  if (!catalog.has_value()) {
    std::fprintf(stderr, "obs_audit: %s is not a lamp.catalog.v1"
                         " document\n",
                 path.c_str());
    return 2;
  }
  RenderCatalog(*catalog);
  return 0;
}

// --- causal -------------------------------------------------------------

int CausalMain(const std::string& path, bool json) {
  const std::optional<std::string> text = ReadFile(path);
  if (!text.has_value()) return 2;
  const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(*text);
  std::optional<CausalReport> report;
  if (doc.has_value()) report = obs::audit::CausalReportFromTraceJson(*doc);
  if (!report.has_value()) {
    std::fprintf(stderr, "obs_audit: %s is not a lamp.trace.v1 document\n",
                 path.c_str());
    return 2;
  }
  if (json) {
    std::printf("%s\n", report->ToJson().Dump(2).c_str());
  } else {
    std::printf("%s", report->Render().c_str());
  }
  return 0;
}

// --- demos --------------------------------------------------------------

/// The demo workload: a skew-free triangle input plus a skewed binary
/// join input (half of R concentrated on one join value).
struct DemoDb {
  Schema schema;
  Instance triangle_db;
  Instance join_skewed;
  ConjunctiveQuery triangle;
  ConjunctiveQuery join;
};

DemoDb MakeDemoDb() {
  DemoDb db;
  db.triangle =
      ParseQuery(db.schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  db.join = ParseQuery(db.schema, "J(x,y,z) <- A(x,y), B(y,z)");
  Rng rng(11);
  const std::size_t m = 4000;
  AddMatchingRelation(db.schema, db.schema.IdOf("R"), m, 0, rng, db.triangle_db);
  AddMatchingRelation(db.schema, db.schema.IdOf("S"), m, 0, rng, db.triangle_db);
  AddMatchingRelation(db.schema, db.schema.IdOf("T"), m, 0, rng, db.triangle_db);
  // A: half the tuples share join value 0 (the Example 3.1 heavy hitter);
  // B stays skew-free.
  const RelationId a = db.schema.IdOf("A");
  for (std::size_t i = 0; i < m / 2; ++i) {
    db.join_skewed.Insert(Fact(a, {static_cast<std::int64_t>(i), 0}));
    db.join_skewed.Insert(Fact(
        a, {static_cast<std::int64_t>(m + i), static_cast<std::int64_t>(i + 1)}));
  }
  Rng rng2(12);
  AddMatchingRelation(db.schema, db.schema.IdOf("B"), m, 0, rng2, db.join_skewed);
  return db;
}

int DemoAuditMain() {
  DemoDb db = MakeDemoDb();
  const std::size_t p = 64;
  std::vector<AuditRecord> records;

  // Skew-free HyperCube triangle: measured max stays within the expected
  // load (up to hashing slack).
  {
    const Catalog catalog =
        obs::audit::BuildCatalog(db.schema, db.triangle_db);
    const Shares shares = LpRoundedShares(db.triangle, p);
    const MpcRunResult run = RunHyperCube(db.triangle, db.triangle_db, shares);
    records.push_back(obs::audit::MakeAuditRecord(
        "obs_audit_demo", "triangle/skew_free", Strategy::kHyperCube, p,
        obs::audit::HyperCubeBound(db.triangle, db.schema, catalog, shares),
        run.stats));
  }
  // Skewed repartition join: the heavy hitter sends half of A to one
  // server, blowing the m/p bound — recorded as an *expected* violation.
  {
    const Catalog catalog = obs::audit::BuildCatalog(db.schema, db.join_skewed);
    const MpcRunResult run = RepartitionJoin(db.join, db.join_skewed, p);
    AuditRecord record = obs::audit::MakeAuditRecord(
        "obs_audit_demo", "join/skewed", Strategy::kRepartition, p,
        obs::audit::RepartitionBound(db.join, db.schema, catalog, p),
        run.stats);
    record.expected_violation = true;
    records.push_back(std::move(record));
  }
  // The skew-independent fragment-replicate join on the same skewed
  // input honours its m/sqrt(p) bound.
  {
    const Catalog catalog = obs::audit::BuildCatalog(db.schema, db.join_skewed);
    const MpcRunResult run = FragmentReplicateJoin(db.join, db.join_skewed, p);
    records.push_back(obs::audit::MakeAuditRecord(
        "obs_audit_demo", "join/skewed", Strategy::kFragmentReplicate, p,
        obs::audit::SqrtPBound(db.join, db.schema, catalog, p), run.stats));
  }
  RenderReport(records);
  // Emit through the same sink the benches use, so
  //   LAMP_AUDIT_JSON=f obs_audit demo-audit && obs_audit report f
  // round-trips the wire format.
  for (AuditRecord& record : records) {
    obs::audit::GlobalAuditSink().Add(std::move(record));
  }
  return obs::audit::FinalizeGlobalAudit();
}

int DemoCatalogMain() {
  DemoDb db = MakeDemoDb();
  const Catalog catalog = obs::audit::BuildCatalog(db.schema, db.join_skewed);
  std::printf("%s\n", catalog.ToJson().Dump(2).c_str());
  return 0;
}

int DemoViolationMain() {
  // The deliberately skewed single-round hash join, hard-failed: the
  // pinned demonstration that the audit gate actually bites. Exit 4.
  DemoDb db = MakeDemoDb();
  const std::size_t p = 64;
  const Catalog catalog = obs::audit::BuildCatalog(db.schema, db.join_skewed);
  const MpcRunResult run = RepartitionJoin(db.join, db.join_skewed, p);
  const AuditRecord record = obs::audit::MakeAuditRecord(
      "obs_audit_demo", "join/skewed/hard", Strategy::kRepartition, p,
      obs::audit::RepartitionBound(db.join, db.schema, catalog, p),
      run.stats);
  RenderReport({record});
  if (record.HardViolation()) {
    std::fprintf(stderr,
                 "obs_audit: skewed repartition join violated m/p as the"
                 " theory predicts (measured %zu vs bound %.1f x %.1f);"
                 " failing hard\n",
                 record.measured_max_load, record.bound.tuples, record.slack);
    return obs::audit::kAuditHardFailExit;
  }
  std::fprintf(stderr, "obs_audit: expected a bound violation but the run"
                       " passed — the demo workload lost its heavy"
                       " hitter\n");
  return 2;
}

int DemoCausalMain(bool json) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const ConjunctiveQuery tc2 =
      ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z)");
  Instance graph;
  AddPathGraph(schema, e, 6, graph);
  const auto query = [&tc2](const Instance& instance) {
    return Evaluate(tc2, instance);
  };

  auto profile = [](TransducerProgram& program,
                    std::vector<Instance> locals) {
    obs::Tracer tracer;
    {
      obs::ScopedTracer install(tracer);
      TransducerNetwork net(std::move(locals), program, nullptr,
                            /*aware=*/true);
      (void)net.Run(/*seed=*/1);
    }
    return obs::audit::BuildCausalReport(tracer.Events());
  };

  MonotoneBroadcastProgram monotone(query);
  const CausalReport free_profile =
      profile(monotone, DistributeReplicated(graph, 3));

  Schema barrier_schema = schema;
  CoordinatedBarrierProgram barrier(query, barrier_schema);
  const CausalReport coord_profile =
      profile(barrier, DistributeReplicated(graph, 3));

  if (json) {
    obs::JsonValue doc = obs::JsonValue::Object();
    doc.Set("monotone_broadcast", free_profile.ToJson());
    doc.Set("coordinated_barrier", coord_profile.ToJson());
    std::printf("%s\n", doc.Dump(2).c_str());
  } else {
    std::printf("monotone broadcast on a replicated (ideal) distribution"
                " — CALM says coordination-free:\n%s\n",
                free_profile.Render().c_str());
    std::printf("coordinated barrier on the same distribution — must wait"
                " for every peer:\n%s",
                coord_profile.Render().c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  bool json = false;
  bool check = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: obs_audit <command> [args]\n"
          "  report <audit.jsonl>...  headroom table + load heatmaps\n"
          "                           (--check: exit 4 on hard violations)\n"
          "  catalog <catalog.json>   per-relation skew report\n"
          "  causal <trace.json>      coordination depth + critical path\n"
          "  demo-audit               audit two demo joins, render report\n"
          "  demo-catalog             print a demo lamp.catalog.v1\n"
          "  demo-causal              monotone vs barrier causal profiles\n"
          "  demo-violation           skewed repartition join, hard-fail\n"
          "                           (exits 4 by design)\n");
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr, "obs_audit: need a command (see --help)\n");
    return 2;
  }
  const std::string command = args.front();
  args.erase(args.begin());
  if (command == "report") return ReportMain(args, check);
  if (command == "catalog") {
    if (args.size() != 1) {
      std::fprintf(stderr, "obs_audit: catalog needs one file\n");
      return 2;
    }
    return CatalogMain(args[0]);
  }
  if (command == "causal") {
    if (args.size() != 1) {
      std::fprintf(stderr, "obs_audit: causal needs one file\n");
      return 2;
    }
    return CausalMain(args[0], json);
  }
  if (command == "demo-audit") return DemoAuditMain();
  if (command == "demo-catalog") return DemoCatalogMain();
  if (command == "demo-causal") return DemoCausalMain(json);
  if (command == "demo-violation") return DemoViolationMain();
  std::fprintf(stderr, "obs_audit: unknown command '%s' (see --help)\n",
               command.c_str());
  return 2;
}

}  // namespace
}  // namespace lamp

int main(int argc, char** argv) { return lamp::Main(argc, argv); }
