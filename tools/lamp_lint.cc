// lamp_lint: static fragment analysis and lint for Datalog programs.
//
//   lamp_lint [options] <program.dl>...   analyze .dl files
//   lamp_lint [options] --builtin         analyze the example catalog
//
//   --json             emit the lamp.sa.v1 JSON document (an array when
//                      more than one program is analyzed)
//   --strict           exit non-zero on any error diagnostic; with
//                      --builtin, also when an analysis disagrees with
//                      the catalog's documented expectations
//   --no-subsumption   skip the containment-based subsumed-rule pass
//   --output NAME      declare an output relation for the dead-rule pass
//                      (repeatable; merged with # @output pragmas)
//   --catalog FILE     lamp.catalog.v1 statistics JSON; enables the
//                      no-statistics pass (extensional body atoms whose
//                      cardinality the catalog lacks)
//   --werror           treat warnings as strict violations too
//
// File syntax is the repo's .dl convention: one rule per line, `#`/`%`
// comments, plus `# @edb NAME/ARITY` and `# @output NAME` pragmas (see
// sa/analyzer.h). Exit codes: 0 clean (or non-strict), 1 strict
// violations, 2 usage or I/O errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "sa/analyzer.h"
#include "sa/catalog.h"

namespace lamp::sa {
namespace {

struct Cli {
  bool builtin = false;
  bool json = false;
  bool strict = false;
  bool werror = false;
  AnalyzerOptions options;
  std::vector<std::string> files;
};

/// Extracts the relation names of a lamp.catalog.v1 document. Parsed
/// minimally here (names only) — lamp_lint links lamp_sa, not the audit
/// layer that owns the full Catalog type.
bool LoadCatalogRelations(const std::string& path, AnalyzerOptions& options) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  const std::optional<obs::JsonValue> doc =
      obs::JsonValue::Parse(text.str());
  if (!doc.has_value() || !doc->IsObject()) return false;
  const obs::JsonValue* schema = doc->Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->AsString() != "lamp.catalog.v1") {
    return false;
  }
  const obs::JsonValue* relations = doc->Find("relations");
  if (relations == nullptr || !relations->IsArray()) return false;
  for (std::size_t i = 0; i < relations->size(); ++i) {
    const obs::JsonValue& entry = relations->at(i);
    if (!entry.IsObject()) return false;
    const obs::JsonValue* name = entry.Find("name");
    if (name == nullptr || !name->IsString()) return false;
    options.catalog_relations.push_back(name->AsString());
  }
  options.have_catalog = true;
  return true;
}

std::string FileStem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string stem =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  return stem;
}

int Run(const Cli& cli) {
  struct Result {
    Schema schema;
    ProgramAnalysis analysis;
    std::vector<std::string> mismatches;  // Builtin mode only.
  };
  std::vector<Result> results;

  if (cli.builtin) {
    for (const CatalogEntry& entry : ExampleCatalog()) {
      Result& r = results.emplace_back();
      r.analysis =
          AnalyzeProgramText(r.schema, entry.text, cli.options);
      r.analysis.name = std::string(entry.id);
      r.mismatches = CheckCatalogExpectations(entry, r.analysis);
    }
  } else {
    for (const std::string& path : cli.files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "lamp_lint: cannot read %s\n", path.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      Result& r = results.emplace_back();
      r.analysis =
          AnalyzeProgramText(r.schema, text.str(), cli.options);
      r.analysis.name = FileStem(path);
    }
  }

  bool violations = false;
  for (const Result& r : results) {
    bool clean = !r.analysis.HasErrors() &&
                 (!cli.werror || r.analysis.WarningCount() == 0);
    if (cli.builtin) {
      // Expected unstratifiability (e.g. win_move) is documented, not a
      // violation; CheckCatalogExpectations already filtered it.
      clean = r.mismatches.empty();
    }
    if (!clean) violations = true;
  }

  if (cli.json) {
    obs::JsonValue out;
    if (results.size() == 1) {
      out = AnalysisToJson(results[0].schema, results[0].analysis);
    } else {
      out = obs::JsonValue::Array();
      for (const Result& r : results) {
        out.PushBack(AnalysisToJson(r.schema, r.analysis));
      }
    }
    std::printf("%s\n", out.Dump(2).c_str());
  } else {
    for (const Result& r : results) {
      std::printf("%s", RenderAnalysisText(r.schema, r.analysis).c_str());
      for (const std::string& mismatch : r.mismatches) {
        std::printf("  expectation MISMATCH: %s\n", mismatch.c_str());
      }
      if (cli.builtin && r.mismatches.empty()) {
        std::printf("  catalog expectations: all met\n");
      }
      std::printf("\n");
    }
  }

  return cli.strict && violations ? 1 : 0;
}

int Main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--builtin") {
      cli.builtin = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--strict") {
      cli.strict = true;
    } else if (arg == "--werror") {
      cli.werror = true;
    } else if (arg == "--no-subsumption") {
      cli.options.subsumption = false;
    } else if (arg == "--catalog") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lamp_lint: --catalog needs a file\n");
        return 2;
      }
      if (!LoadCatalogRelations(argv[++i], cli.options)) {
        std::fprintf(stderr,
                     "lamp_lint: %s is not a readable lamp.catalog.v1 "
                     "document\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--output") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lamp_lint: --output needs a name\n");
        return 2;
      }
      cli.options.outputs.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: lamp_lint [--json] [--strict] [--werror] "
          "[--no-subsumption] [--catalog FILE] [--output NAME]... "
          "(<program.dl>... | --builtin)\n");
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "lamp_lint: unknown option %s\n", argv[i]);
      return 2;
    } else {
      cli.files.emplace_back(arg);
    }
  }
  if (!cli.builtin && cli.files.empty()) {
    std::fprintf(stderr,
                 "lamp_lint: pass .dl files or --builtin (try --help)\n");
    return 2;
  }
  if (cli.builtin && !cli.files.empty()) {
    std::fprintf(stderr,
                 "lamp_lint: --builtin does not take file arguments\n");
    return 2;
  }
  return Run(cli);
}

}  // namespace
}  // namespace lamp::sa

int main(int argc, char** argv) { return lamp::sa::Main(argc, argv); }
